#!/usr/bin/env python3
"""Merge per-bench --json outputs into one BENCH_*.json trajectory file, and
check a generated file's metric *presence* against the committed one.

The committed BENCH_PR<N>.json files record the perf trajectory of the repo:
which benches exist, which scenarios and metrics each reports, and the
numbers one machine saw at the time the PR landed. CI never compares the
numbers (hosted runners are too noisy for that) — it compares the *shape*:
every (bench, scenario, metric, unit) key in the committed file must be
emitted by the current build, and vice versa. A bench that silently stops
reporting a metric, or starts reporting new ones without refreshing the
committed file, fails the check.

Usage:
  bench_report.py merge --out BENCH_PR6.json json_dir/*.json
  bench_report.py check BENCH_PR6.json build/BENCH_PR6.json

Stdlib only; exits non-zero on schema skew, duplicate keys, or presence
drift.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
# Presence identity of one record. Values, threads, and shards are
# informational: they vary run to run and machine to machine.
KEY_FIELDS = ("bench", "scenario", "metric", "unit")
REQUIRED_FIELDS = KEY_FIELDS + ("value", "threads", "shards")


def fail(message):
    print("bench_report: " + message, file=sys.stderr)
    sys.exit(1)


def load_records(path):
    """Parses one bench JSON file, validating the schema; returns records."""
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    if not isinstance(data, dict):
        fail(f"{path}: top level must be an object")
    if data.get("schema_version") != SCHEMA_VERSION:
        fail(
            f"{path}: schema_version {data.get('schema_version')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    records = data.get("records")
    if not isinstance(records, list):
        fail(f"{path}: 'records' must be a list")
    for i, record in enumerate(records):
        if not isinstance(record, dict):
            fail(f"{path}: records[{i}] is not an object")
        missing = [k for k in REQUIRED_FIELDS if k not in record]
        if missing:
            fail(f"{path}: records[{i}] missing fields {missing}")
    return records


def record_key(record):
    return tuple(str(record[k]) for k in KEY_FIELDS)


def format_key(key):
    return "/".join(key[:3]) + f" [{key[3]}]"


def cmd_merge(args):
    records = []
    for path in args.files:
        records.extend(load_records(path))
    seen = {}
    for record in records:
        key = record_key(record)
        if key in seen:
            fail(f"duplicate metric {format_key(key)} across inputs")
        seen[key] = record
    records.sort(key=record_key)
    out = {"schema_version": SCHEMA_VERSION, "records": records}
    try:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(out, f, indent=1)
            f.write("\n")
    except OSError as e:
        fail(f"cannot write {args.out}: {e}")
    benches = sorted({r["bench"] for r in records})
    print(
        f"bench_report: wrote {len(records)} records from "
        f"{len(benches)} benches ({', '.join(benches)}) to {args.out}"
    )


def cmd_check(args):
    committed = {record_key(r) for r in load_records(args.committed)}
    generated = {record_key(r) for r in load_records(args.generated)}
    missing = committed - generated
    extra = generated - committed
    for key in sorted(missing):
        print(
            f"bench_report: MISSING {format_key(key)} — committed in "
            f"{args.committed} but not emitted by this build",
            file=sys.stderr,
        )
    for key in sorted(extra):
        print(
            f"bench_report: EXTRA {format_key(key)} — emitted by this build "
            f"but absent from {args.committed}; refresh the committed file",
            file=sys.stderr,
        )
    if missing or extra:
        sys.exit(1)
    print(
        f"bench_report: OK — {len(generated)} metrics match the committed "
        f"trajectory ({args.committed})"
    )


def main():
    parser = argparse.ArgumentParser(prog="bench_report.py")
    sub = parser.add_subparsers(dest="command", required=True)
    merge = sub.add_parser("merge", help="merge per-bench JSON files")
    merge.add_argument("--out", required=True, help="output trajectory file")
    merge.add_argument("files", nargs="+", help="per-bench --json outputs")
    merge.set_defaults(func=cmd_merge)
    check = sub.add_parser("check", help="diff metric presence, not values")
    check.add_argument("committed", help="committed BENCH_PR<N>.json")
    check.add_argument("generated", help="freshly merged trajectory file")
    check.set_defaults(func=cmd_check)
    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
