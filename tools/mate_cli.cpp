// mate_cli — command-line front end for the MATE library. Every command
// runs through mate::Session, the library's owning service facade.
//
//   mate_cli index   --csv-dir DIR --corpus OUT.corpus --index OUT.index
//                    [--hash Xash] [--bits 128] [--threads N]
//   mate_cli search  --corpus F --index F --query Q.csv --key a,b[,c...]
//                    [--k 10] [--threads N] [--intra-threads N |
//                    --auto-parallel]
//   mate_cli search  --corpus F --index F --batch DIR --key a,b[,c...]
//                    [--k 10] [--threads N] [--cache-mb 64] [--no-cache]
//                    [--intra-threads N | --auto-parallel]
//                    [--corpus-budget-mb N]
//   mate_cli stats   --corpus F [--index F] [--verify-stats]
//                    [--corpus-budget-mb N]
//   mate_cli dups    --corpus F [--min-overlap 0.85]
//   mate_cli union   --corpus F --query Q.csv [--k 10]
//   mate_cli convert-corpus --corpus F [--out G]
//   mate_cli client  --port N [--host 127.0.0.1]
//                    [--query Q.csv --key a,b | --batch DIR --key a,b]
//                    [--k 10] [--tenant T] [--stats] [--ping]
//
// `client` talks to a running mate_server over its wire protocol instead of
// opening the corpus locally: each query CSV is projected down to its key
// columns, sent as one frame, and the served top-k (bit-identical to an
// in-process search) is printed. --tenant routes the queries to that
// tenant's result-cache partition; --stats fetches and prints the server's
// observability snapshot afterwards; a kOverloaded shed prints as such and
// sets a non-zero exit code.
//
// Key columns are given by header name or zero-based position. `--batch`
// points at a directory of query CSVs; all of them are resolved against the
// same --key spec and discovered concurrently on --threads workers, with
// repeated queries served from the session's result cache (size it with
// --cache-mb, disable with --no-cache).
//
// Intra-query parallelism: `--intra-threads N` shards a single query's
// evaluation over min(N, --threads) workers (`0` = auto); `--auto-parallel`
// is shorthand for `--intra-threads 0`, letting the session fan out only
// when a query is large enough to pay off. Results are bit-identical at
// every setting; the per-query "exec:" line reports the shard/fan-out
// shape actually used. Default is serial (today's single-query behavior).
//
// Cold start: search opens the session *phased* — Open returns after the
// index header, dictionary, and corpus/index validation, while the mmap'd
// posting region and super keys stream in on the pool; the first query
// blocks on the readiness latch. The corpus side is *lazy* (format v2/v3):
// Open parses only the shape header, queries materialize just the tables
// they evaluate, and a background warmer streams the rest. `--eager`
// forces the old fully blocking index open, `--eager-corpus` the fully
// materialized corpus load. Results are identical at every setting.
//
// Memory governance: `--corpus-budget-mb N` arms a residency byte budget
// over the lazy corpus — candidate tables (just their touched columns, for
// single-column keys over a v3 file) materialize on demand and the
// least-recently-used tables are evicted back down to the budget between
// queries. Results stay bit-identical; search and stats report the
// residency traffic (resident/peak bytes, evictions, re-parses).
//
// convert-corpus migrates a v1/v2 corpus file to format v3 (persisted
// stats + lazy-loadable cell region with per-column extents) in place —
// atomically via rename, after a round-trip equality check against the
// original — or to --out.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/session.h"
#include "core/similarity.h"
#include "core/union_search.h"
#include "obs/trace.h"
#include "server/client.h"
#include "hash/xash.h"
#include "storage/corpus_io.h"
#include "storage/csv.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace mate {
namespace {

int Usage() {
  std::cerr <<
      "usage:\n"
      "  mate_cli index  --csv-dir DIR --corpus OUT --index OUT"
      " [--hash Xash] [--bits 128] [--threads N]\n"
      "  mate_cli search --corpus F --index F --query Q.csv --key a,b [--k N]"
      " [--threads N] [--intra-threads N | --auto-parallel] [--eager]"
      " [--eager-corpus] [--trace PATH]\n"
      "  mate_cli search --corpus F --index F --batch DIR --key a,b [--k N]"
      " [--threads N] [--cache-mb N] [--no-cache]"
      " [--intra-threads N | --auto-parallel] [--eager] [--eager-corpus]"
      " [--corpus-budget-mb N]\n"
      "  mate_cli stats  --corpus F [--index F] [--verify-stats]"
      " [--corpus-budget-mb N]\n"
      "  mate_cli dups   --corpus F [--min-overlap 0.85]\n"
      "  mate_cli union  --corpus F --query Q.csv [--k N]\n"
      "  mate_cli convert-corpus --corpus F [--out G]\n"
      "  mate_cli client --port N [--host 127.0.0.1]"
      " [--query Q.csv --key a,b | --batch DIR --key a,b] [--k N]"
      " [--tenant T] [--stats] [--ping] [--metrics]\n";
  return 2;
}

// Flags that take no value; stored with the value "1".
bool IsBooleanFlag(std::string_view name) {
  return name == "no-cache" || name == "auto-parallel" || name == "eager" ||
         name == "eager-corpus" || name == "verify-stats" ||
         name == "stats" || name == "ping" || name == "metrics";
}

// --flag value parsing into a map; returns false on malformed input.
bool ParseFlags(int argc, char** argv, int first,
                std::map<std::string, std::string>* flags) {
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return false;
    key = key.substr(2);
    if (IsBooleanFlag(key)) {
      (*flags)[key] = "1";
      continue;
    }
    if (i + 1 >= argc) return false;
    (*flags)[key] = argv[++i];
  }
  return true;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

// Strict parse for small numeric flags; rejects garbage and absurd values
// instead of crashing in stoul or spawning 4 billion threads.
Result<unsigned> ParseUintFlag(const std::string& flag,
                               const std::string& text, unsigned max) {
  unsigned value = 0;
  if (!ParseSmallUint(text, max, &value)) {
    return Status::InvalidArgument("--" + flag + " must be an integer in [0, " +
                                   std::to_string(max) + "], got '" + text +
                                   "'");
  }
  return value;
}

Result<unsigned> ParseThreads(const std::string& text) {
  return ParseUintFlag("threads", text, 1024);
}

Result<uint64_t> ParseBudgetBytes(
    const std::map<std::string, std::string>& flags) {
  auto mb = ParseUintFlag("corpus-budget-mb",
                          FlagOr(flags, "corpus-budget-mb", "0"), 1u << 20);
  if (!mb.ok()) return mb.status();
  return uint64_t{*mb} << 20;
}

void PrintResidency(const ResidencyStats& r) {
  std::cout << "residency: resident=" << r.resident_bytes << "B peak="
            << r.peak_resident_bytes << "B budget=" << r.budget_bytes
            << "B materialized=" << r.bytes_materialized << "B evictions="
            << r.evictions << " (" << r.bytes_evicted << "B) re-parses="
            << r.rematerializations << " tables=" << r.tables_resident
            << " (" << r.partial_tables << " partial)\n";
}

Result<std::vector<ColumnId>> ResolveKeyColumns(const Table& query,
                                                const std::string& spec) {
  std::vector<ColumnId> key_columns;
  for (const std::string& part : Split(spec, ',')) {
    if (part.empty()) return Status::InvalidArgument("empty key column");
    ColumnId c = query.FindColumn(part);
    if (c == kInvalidColumnId && IsAllDigits(part)) {
      unsigned long idx = std::stoul(part);
      if (idx < query.NumColumns()) c = static_cast<ColumnId>(idx);
    }
    if (c == kInvalidColumnId) {
      return Status::NotFound("no query column named '" + part + "'");
    }
    key_columns.push_back(c);
  }
  return key_columns;
}

int CmdIndex(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "csv-dir", "");
  const std::string corpus_out = FlagOr(flags, "corpus", "");
  const std::string index_out = FlagOr(flags, "index", "");
  if (dir.empty() || corpus_out.empty() || index_out.empty()) return Usage();

  Corpus corpus;
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".csv") files.push_back(entry.path());
  }
  if (ec) return Fail(Status::IOError("cannot list " + dir));
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    auto table = LoadCsvFile(path.string(), path.stem().string());
    if (!table.ok()) {
      std::cerr << "skipping " << path << ": " << table.status().ToString()
                << "\n";
      continue;
    }
    corpus.AddTable(std::move(*table));
  }
  if (corpus.NumTables() == 0) {
    return Fail(Status::NotFound("no readable .csv files in " + dir));
  }
  std::cout << "loaded " << corpus.NumTables() << " tables\n";

  SessionOptions session_options;
  session_options.corpus = std::move(corpus);
  session_options.build_index = true;
  auto bits = ParseUintFlag("bits", FlagOr(flags, "bits", "128"), 512);
  if (!bits.ok()) return Fail(bits.status());
  session_options.build_options.hash_bits = *bits;
  auto num_threads = ParseThreads(FlagOr(flags, "threads", "1"));
  if (!num_threads.ok()) return Fail(num_threads.status());
  session_options.build_options.num_threads = *num_threads;
  auto family = ParseHashFamily(FlagOr(flags, "hash", "Xash"));
  if (!family.ok()) return Fail(family.status());
  session_options.build_options.hash_family = *family;

  Stopwatch timer;
  auto session = Session::Open(std::move(session_options));
  if (!session.ok()) return Fail(session.status());
  std::cout << "indexed in " << timer.ElapsedSeconds() << "s: "
            << session->build_report().ToString() << "\n";

  if (Status s = session->Save(corpus_out, index_out); !s.ok()) {
    return Fail(s);
  }
  std::cout << "wrote " << corpus_out << " and " << index_out << "\n";
  return 0;
}

void PrintTopK(const Corpus& corpus, const Table& query,
               const std::vector<ColumnId>& key_columns,
               const DiscoveryResult& result) {
  // Shape accessors: printing names must not materialize tables (served
  // results can come from the cache without the table ever being touched).
  for (const TableResult& tr : result.top_k) {
    std::cout << "  " << corpus.table_name(tr.table_id)
              << "  joinability=" << tr.joinability << "  mapping:";
    for (size_t i = 0; i < tr.best_mapping.size(); ++i) {
      std::cout << " " << query.column_name(key_columns[i]) << "->"
                << corpus.table_column_name(tr.table_id, tr.best_mapping[i]);
    }
    std::cout << "\n";
  }
}

int CmdSearch(const std::map<std::string, std::string>& flags) {
  const std::string corpus_path = FlagOr(flags, "corpus", "");
  const std::string index_path = FlagOr(flags, "index", "");
  const std::string query_path = FlagOr(flags, "query", "");
  const std::string batch_dir = FlagOr(flags, "batch", "");
  const std::string key_spec = FlagOr(flags, "key", "");
  if (corpus_path.empty() || index_path.empty() || key_spec.empty() ||
      (query_path.empty() == batch_dir.empty())) {
    return Usage();
  }
  SessionOptions session_options;
  session_options.corpus_path = corpus_path;
  session_options.index_path = index_path;
  auto num_threads = ParseThreads(FlagOr(flags, "threads", "1"));
  if (!num_threads.ok()) return Fail(num_threads.status());
  session_options.num_threads = *num_threads;
  auto cache_mb = ParseUintFlag("cache-mb", FlagOr(flags, "cache-mb", "64"),
                                1u << 20);
  if (!cache_mb.ok()) return Fail(cache_mb.status());
  session_options.cache_bytes =
      flags.count("no-cache") ? 0 : size_t{*cache_mb} << 20;
  session_options.eager_load = flags.count("eager") > 0;
  session_options.eager_corpus = flags.count("eager-corpus") > 0;
  auto budget_bytes = ParseBudgetBytes(flags);
  if (!budget_bytes.ok()) return Fail(budget_bytes.status());
  session_options.corpus_budget_bytes = *budget_bytes;
  Stopwatch open_timer;
  auto session = Session::Open(std::move(session_options));
  if (!session.ok()) return Fail(session.status());
  std::cerr << "session open in " << open_timer.ElapsedSeconds() << "s";
  if (!session->index_ready()) std::cerr << " (index warming in background)";
  if (!session->corpus_resident()) {
    std::cerr << " (corpus " << session->corpus().tables_resident() << "/"
              << session->corpus().NumTables()
              << " tables resident, warming in background)";
  }
  std::cerr << "\n";

  // Single query and batch both run through the session; a single query is
  // just a batch of one.
  std::vector<Table> query_tables;
  if (!query_path.empty()) {
    auto query = LoadCsvFile(query_path, "query");
    if (!query.ok()) return Fail(query.status());
    query_tables.push_back(std::move(*query));
  } else {
    // try/catch as well as the error_code: the ec overload only covers
    // construction, increments still throw.
    std::vector<std::filesystem::path> files;
    std::error_code ec;
    try {
      for (const auto& entry :
           std::filesystem::directory_iterator(batch_dir, ec)) {
        if (entry.path().extension() == ".csv") files.push_back(entry.path());
      }
    } catch (const std::filesystem::filesystem_error& e) {
      return Fail(Status::IOError("cannot list " + batch_dir + ": " +
                                  e.what()));
    }
    if (ec) return Fail(Status::IOError("cannot list " + batch_dir));
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
      auto query = LoadCsvFile(path.string(), path.stem().string());
      if (!query.ok()) {
        std::cerr << "skipping " << path << ": " << query.status().ToString()
                  << "\n";
        continue;
      }
      query_tables.push_back(std::move(*query));
    }
    if (query_tables.empty()) {
      return Fail(Status::NotFound("no readable .csv files in " + batch_dir));
    }
  }

  // Same policy as unreadable CSVs above: warn and skip, keep the batch
  // going. A single query (no --batch) still fails hard.
  DiscoveryOptions options;
  auto k = ParseUintFlag("k", FlagOr(flags, "k", "10"), 1000000);
  if (!k.ok()) return Fail(k.status());
  options.k = static_cast<int>(*k);

  // Intra-query execution shape: serial by default; `--auto-parallel` lets
  // the session decide per query; an explicit `--intra-threads` wins.
  unsigned intra_threads = 1;
  if (flags.count("auto-parallel")) intra_threads = 0;
  if (flags.count("intra-threads")) {
    auto parsed =
        ParseUintFlag("intra-threads", FlagOr(flags, "intra-threads", "0"),
                      1024);
    if (!parsed.ok()) return Fail(parsed.status());
    intra_threads = *parsed;
  }

  std::vector<QuerySpec> specs;
  specs.reserve(query_tables.size());
  for (const Table& query : query_tables) {
    QuerySpec spec;
    spec.table = &query;
    spec.options = options;
    spec.intra_query_threads = intra_threads;
    auto key_columns = ResolveKeyColumns(query, key_spec);
    if (key_columns.ok()) {
      spec.key_columns = std::move(*key_columns);
      // Surface malformed specs here (duplicate positions etc.) with the
      // same warn-and-skip policy instead of failing the whole batch.
      if (Status s = session->ValidateQuery(spec); !s.ok()) {
        key_columns = s;
      }
    }
    if (!key_columns.ok()) {
      Status error = Status::InvalidArgument(
          "query '" + query.name() + "': " + key_columns.status().ToString());
      if (query_tables.size() == 1) return Fail(error);
      std::cerr << "skipping " << error.ToString() << "\n";
      continue;
    }
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    return Fail(Status::NotFound("no query resolves key <" + key_spec + ">"));
  }

  // --trace PATH: run the (single) query with phase tracing armed, dump the
  // span tree as Chrome trace-event JSON, and print the top spans by self
  // time — the quick "where did the time go" view without opening the file.
  const std::string trace_path = FlagOr(flags, "trace", "");
  if (!trace_path.empty()) {
    if (specs.size() != 1 || query_path.empty()) {
      return Fail(Status::InvalidArgument(
          "--trace requires single-query mode (--query, not --batch)"));
    }
    QueryTrace trace("search");
    specs[0].trace = &trace;
    auto result = session->Discover(specs[0]);
    if (!result.ok()) return Fail(result.status());
    std::cout << "[" << specs[0].table->name() << "] top-" << options.k
              << " joinable tables on key <" << key_spec << ">:\n";
    PrintTopK(session->corpus(), *specs[0].table, specs[0].key_columns,
              result.value());
    std::cout << "  stats: " << result.value().stats.ToString() << "\n";
    std::ofstream out(trace_path, std::ios::trunc);
    out << trace.ToChromeTraceJson() << "\n";
    if (!out) return Fail(Status::IOError("cannot write " + trace_path));
    const std::vector<TraceSpan> spans = trace.Spans();
    std::vector<uint64_t> self_us = SelfTimesUs(spans);
    std::vector<size_t> order(spans.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return self_us[a] > self_us[b];
    });
    std::cerr << "trace written to " << trace_path << "; top spans by self"
              << " time:\n";
    for (size_t i = 0; i < order.size() && i < 3; ++i) {
      const TraceSpan& span = spans[order[i]];
      std::cerr << "  " << span.name << "  self=" << self_us[order[i]]
                << "us total=" << span.duration_us << "us\n";
    }
    if (*budget_bytes > 0) PrintResidency(session->corpus_residency());
    return 0;
  }

  auto batch = session->DiscoverBatch(specs);
  if (!batch.ok()) return Fail(batch.status());

  for (size_t q = 0; q < batch->results.size(); ++q) {
    const Table& query = *specs[q].table;
    std::cout << "[" << query.name() << "] top-" << options.k
              << " joinable tables on key <" << key_spec << ">:\n";
    PrintTopK(session->corpus(), query, specs[q].key_columns,
              batch->results[q]);
    const DiscoveryStats& stats = batch->results[q].stats;
    std::cout << "  stats: " << stats.ToString() << "\n";
    std::cout << "  exec: shards=" << stats.shards_used
              << " fanout=" << stats.fanout_threads << "\n";
  }
  if (batch->results.size() > 1) {
    // Batch line carries the cache hit/miss counters plus the intra-query
    // fan-out traffic when any query ran sharded.
    std::cout << "batch: " << batch->stats.ToString() << "\n";
  }
  if (*budget_bytes > 0) PrintResidency(session->corpus_residency());
  return 0;
}

// Opens a corpus-only session (plus index when `index_path` is set) — the
// stats/curation commands never construct storage readers directly.
Result<Session> OpenSession(const std::string& corpus_path,
                            const std::string& index_path = "",
                            uint64_t corpus_budget_bytes = 0) {
  SessionOptions options;
  options.corpus_path = corpus_path;
  options.index_path = index_path;
  options.cache_bytes = 0;   // no discovery happens in these commands
  options.warm_corpus = false;  // one-shot commands: materialize strictly
                                // on demand — stats' fast path must not
                                // stall process exit behind a warmer
  options.corpus_budget_bytes = corpus_budget_bytes;
  return Session::Open(std::move(options));
}

int CmdStats(const std::map<std::string, std::string>& flags) {
  const std::string corpus_path = FlagOr(flags, "corpus", "");
  if (corpus_path.empty()) return Usage();
  const std::string index_path = FlagOr(flags, "index", "");
  auto budget_bytes = ParseBudgetBytes(flags);
  if (!budget_bytes.ok()) return Fail(budget_bytes.status());
  auto session = OpenSession(corpus_path, index_path, *budget_bytes);
  if (!session.ok()) return Fail(session.status());
  // The fast path reports the stored snapshot (corpus v2 header, or the
  // index file's copy) — no cell is parsed. `--verify-stats` re-runs the
  // full ComputeStats scan and cross-checks the snapshot, the diagnostic
  // to reach for after maintenance edits or a suspect file.
  std::cout << "corpus: " << session->corpus_stats().ToString() << "\n";
  std::cout << "residency: " << session->corpus().tables_resident() << "/"
            << session->corpus().NumTables() << " tables resident\n";
  PrintResidency(session->corpus_residency());
  if (flags.count("verify-stats")) {
    const CorpusStats scanned = session->corpus().ComputeStats();
    if (Status s = session->corpus().load_status(); !s.ok()) return Fail(s);
    std::cout << "scanned: " << scanned.ToString() << "\n";
    if (scanned == session->corpus_stats()) {
      std::cout << "stats verified: stored snapshot matches the scan\n";
    } else {
      std::cerr << "stats MISMATCH: stored snapshot disagrees with the "
                   "scan (stale after maintenance edits? re-save to "
                   "refresh)\n";
      return 1;
    }
  }
  if (session->has_index()) {
    // Stats needs the whole index resident; drain the phased load and
    // surface deferred corruption instead of reading a half-built index.
    if (Status ready = session->WaitUntilReady(); !ready.ok()) {
      return Fail(ready);
    }
    const InvertedIndex& index = session->index();
    std::cout << "index: hash=" << index.hash().Name() << "/"
              << index.hash_bits() << "b postings="
              << index.NumPostingEntries() << " lists="
              << index.NumPostingLists() << " bytes="
              << index.MemoryBytes() << "\n";
  }
  return 0;
}

int CmdDups(const std::map<std::string, std::string>& flags) {
  const std::string corpus_path = FlagOr(flags, "corpus", "");
  if (corpus_path.empty()) return Usage();
  auto session = OpenSession(corpus_path);
  if (!session.ok()) return Fail(session.status());
  auto hash = Xash::FromCorpusStats(128, session->corpus_stats());
  DuplicateRowFinder finder(&session->corpus(), hash.get());
  DuplicateFinderOptions options;
  options.min_overlap = std::stod(FlagOr(flags, "min-overlap", "0.85"));
  auto pairs = finder.FindDuplicates(options);
  std::cout << pairs.size() << " near-duplicate row pairs (overlap >= "
            << options.min_overlap << "):\n";
  for (const DuplicateRowPair& pair : pairs) {
    const Corpus& corpus = session->corpus();
    std::cout << "  " << corpus.table_name(pair.left_table) << "#"
              << pair.left_row << "  ~  "
              << corpus.table_name(pair.right_table) << "#"
              << pair.right_row << "  overlap=" << pair.overlap << "\n";
  }
  return 0;
}

int CmdUnion(const std::map<std::string, std::string>& flags) {
  const std::string corpus_path = FlagOr(flags, "corpus", "");
  const std::string query_path = FlagOr(flags, "query", "");
  if (corpus_path.empty() || query_path.empty()) return Usage();
  auto session = OpenSession(corpus_path);
  if (!session.ok()) return Fail(session.status());
  auto query = LoadCsvFile(query_path, "query");
  if (!query.ok()) return Fail(query.status());
  auto hash = Xash::FromCorpusStats(256, session->corpus_stats());
  UnionIndex union_index =
      UnionIndex::Build(session->corpus(), hash.get(), /*sample_size=*/64);
  UnionSearchOptions options;
  options.k = std::stoi(FlagOr(flags, "k", "10"));
  auto results = union_index.Discover(*query, options);
  std::cout << "top-" << options.k << " unionable tables:\n";
  for (const UnionResult& result : results) {
    const Corpus& corpus = session->corpus();
    std::cout << "  " << corpus.table_name(result.table_id)
              << "  score=" << result.score << "  alignment:";
    for (const ColumnAlignment& a : result.alignment) {
      std::cout << " " << query->column_name(a.query_column) << "->"
                << corpus.table_column_name(result.table_id,
                                            a.candidate_column);
    }
    std::cout << "\n";
  }
  return 0;
}

// Migrates a corpus file to format v3: persisted stats in the header and a
// size-prefixed cell region (with per-column extents) that later sessions
// open lazily. Writes to --out, or in place (atomic rename) without it.
// The rewrite is verified by a round-trip equality check *before* any byte
// lands on disk.
int CmdConvertCorpus(const std::map<std::string, std::string>& flags) {
  const std::string corpus_path = FlagOr(flags, "corpus", "");
  if (corpus_path.empty()) return Usage();
  const std::string out_path = FlagOr(flags, "out", corpus_path);

  auto corpus = LoadCorpus(corpus_path);  // eager; reads v1, v2, and v3
  if (!corpus.ok()) return Fail(corpus.status());
  const CorpusStats stats = corpus->ComputeStats();

  std::string buffer;
  SerializeCorpus(*corpus, stats, &buffer);
  auto reparsed = DeserializeCorpus(buffer);
  if (!reparsed.ok()) return Fail(reparsed.status());
  if (!CorporaEqual(*corpus, *reparsed)) {
    return Fail(Status::Internal(
        "round-trip check failed: the v3 rewrite does not reproduce the "
        "original corpus; " + corpus_path + " left untouched"));
  }
  if (Status s = WriteFileAtomic(out_path, buffer); !s.ok()) return Fail(s);
  std::cout << "wrote " << out_path << " (format v3, " << buffer.size()
            << " bytes, " << corpus->NumTables()
            << " tables, round-trip verified)\n"
            << "stats: " << stats.ToString() << "\n";
  return 0;
}

// Talks to a running mate_server: sends each query CSV (projected to its
// key columns) as one QUERY frame, prints served results, and optionally
// fetches the server's STATS snapshot. Exit codes: 0 all served, 1 a
// transport error, 3 at least one query shed with kOverloaded.
int CmdClient(const std::map<std::string, std::string>& flags) {
  const std::string host = FlagOr(flags, "host", "127.0.0.1");
  const std::string port_text = FlagOr(flags, "port", "");
  const std::string query_path = FlagOr(flags, "query", "");
  const std::string batch_dir = FlagOr(flags, "batch", "");
  const std::string key_spec = FlagOr(flags, "key", "");
  const bool want_stats = flags.count("stats") > 0;
  const bool want_ping = flags.count("ping") > 0;
  const bool want_metrics = flags.count("metrics") > 0;
  const bool has_queries = !query_path.empty() || !batch_dir.empty();
  if (port_text.empty()) return Usage();
  if (!query_path.empty() && !batch_dir.empty()) return Usage();
  if (has_queries && key_spec.empty()) return Usage();
  if (!has_queries && !want_stats && !want_ping && !want_metrics) {
    return Usage();
  }
  auto port = ParseUintFlag("port", port_text, 65535);
  if (!port.ok()) return Fail(port.status());
  auto k = ParseUintFlag("k", FlagOr(flags, "k", "10"), 1000000);
  if (!k.ok()) return Fail(k.status());

  auto client = MateClient::Connect(host, static_cast<uint16_t>(*port));
  if (!client.ok()) return Fail(client.status());

  if (want_ping) {
    if (Status s = client->Ping(); !s.ok()) return Fail(s);
    std::cout << "pong from " << host << ":" << *port << "\n";
  }

  std::vector<Table> query_tables;
  if (!query_path.empty()) {
    auto query = LoadCsvFile(query_path, "query");
    if (!query.ok()) return Fail(query.status());
    query_tables.push_back(std::move(*query));
  } else if (!batch_dir.empty()) {
    std::vector<std::filesystem::path> files;
    std::error_code ec;
    try {
      for (const auto& entry :
           std::filesystem::directory_iterator(batch_dir, ec)) {
        if (entry.path().extension() == ".csv") files.push_back(entry.path());
      }
    } catch (const std::filesystem::filesystem_error& e) {
      return Fail(Status::IOError("cannot list " + batch_dir + ": " +
                                  e.what()));
    }
    if (ec) return Fail(Status::IOError("cannot list " + batch_dir));
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
      auto query = LoadCsvFile(path.string(), path.stem().string());
      if (!query.ok()) {
        std::cerr << "skipping " << path << ": " << query.status().ToString()
                  << "\n";
        continue;
      }
      query_tables.push_back(std::move(*query));
    }
    if (query_tables.empty()) {
      return Fail(Status::NotFound("no readable .csv files in " + batch_dir));
    }
  }

  size_t served = 0, shed = 0;
  for (const Table& query : query_tables) {
    auto key_columns = ResolveKeyColumns(query, key_spec);
    if (!key_columns.ok()) {
      Status error = Status::InvalidArgument(
          "query '" + query.name() + "': " + key_columns.status().ToString());
      if (query_tables.size() == 1) return Fail(error);
      std::cerr << "skipping " << error.ToString() << "\n";
      continue;
    }
    QueryRequest request =
        MakeQueryRequest(query, *key_columns, static_cast<int>(*k),
                         FlagOr(flags, "tenant", ""));
    auto response = client->Query(request);
    if (!response.ok()) return Fail(response.status());
    std::cout << "[" << query.name() << "] ";
    if (!response->status.ok()) {
      std::cout << (response->status.IsOverloaded() ? "SHED: " : "ERROR: ")
                << response->status.ToString() << "\n";
      ++shed;
      continue;
    }
    ++served;
    std::cout << "top-" << *k << " joinable tables on key <" << key_spec
              << ">:\n";
    for (const ServedResult& r : response->results) {
      std::cout << "  " << r.table_name << "  joinability=" << r.joinability
                << "  mapping:";
      for (size_t i = 0; i < r.mapping.size(); ++i) {
        std::cout << " " << query.column_name((*key_columns)[i]) << "->"
                  << r.mapping_names[i];
      }
      std::cout << "\n";
    }
  }
  if (!query_tables.empty()) {
    std::cout << "client: " << served << " served, " << shed
              << " shed/errored\n";
  }

  if (want_stats) {
    auto stats = client->Stats();
    if (!stats.ok()) return Fail(stats.status());
    std::cout << stats->ToString();
  }

  if (want_metrics) {
    auto page = client->Metrics();
    if (!page.ok()) return Fail(page.status());
    std::cout << *page;
  }
  return shed > 0 ? 3 : 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  std::map<std::string, std::string> flags;
  if (!ParseFlags(argc, argv, 2, &flags)) return Usage();
  if (command == "index") return CmdIndex(flags);
  if (command == "search") return CmdSearch(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "dups") return CmdDups(flags);
  if (command == "union") return CmdUnion(flags);
  if (command == "convert-corpus") return CmdConvertCorpus(flags);
  if (command == "client") return CmdClient(flags);
  return Usage();
}

}  // namespace
}  // namespace mate

int main(int argc, char** argv) { return mate::Run(argc, argv); }
