#!/usr/bin/env bash
# End-to-end serving smoke: index a toy CSV lake, start mate_server on an
# ephemeral port, round-trip a client PING + QUERY + STATS + METRICS over
# the wire (asserting the Prometheus page parses and carries the core
# serving series), then SIGTERM the server and require a clean
# graceful-drain exit (0).
#
# Usage: tools/server_smoke.sh [BIN_DIR]   (default: build)
set -euo pipefail

BIN_DIR="${1:-build}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill -KILL "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

mkdir -p "$WORK/lake"
cat > "$WORK/lake/people.csv" <<'EOF'
first,last,country
Muhammad,Lee,US
Helmut,Newton,Germany
Ansel,Adams,UK
EOF
cat > "$WORK/lake/pets.csv" <<'EOF'
owner_first,owner_last,pet
Muhammad,Lee,cat
Helmut,Newton,dachshund
Grace,Hopper,moth
EOF
cat > "$WORK/query.csv" <<'EOF'
first,last
Muhammad,Lee
Helmut,Newton
EOF

"$BIN_DIR/mate_cli" index --csv-dir "$WORK/lake" \
  --corpus "$WORK/corpus.mate" --index "$WORK/index.mate"

"$BIN_DIR/mate_server" --corpus "$WORK/corpus.mate" \
  --index "$WORK/index.mate" --port 0 --port-file "$WORK/port.txt" \
  --queue-depth 16 --tenant-cache-mb 4 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [[ -s "$WORK/port.txt" ]] && break
  sleep 0.1
done
[[ -s "$WORK/port.txt" ]] || { echo "server never published a port"; exit 1; }
PORT="$(cat "$WORK/port.txt")"

"$BIN_DIR/mate_cli" client --port "$PORT" --ping
# Exit 0 requires every request served (sheds exit 3, transport errors 1).
"$BIN_DIR/mate_cli" client --port "$PORT" --query "$WORK/query.csv" \
  --key first,last --tenant acme --k 5 --stats

# METRICS: the Prometheus text page must parse (every non-comment line is
# `name{labels} value`) and carry the core serving series, with the
# admitted-queries counter reflecting the query served above.
"$BIN_DIR/mate_cli" client --port "$PORT" --metrics > "$WORK/metrics.txt"
for series in mate_queries_total mate_queue_depth \
    mate_query_latency_seconds; do
  grep -q "^# TYPE $series " "$WORK/metrics.txt" || {
    echo "METRICS page is missing series $series"; exit 1; }
done
grep -q '^mate_queries_total 1$' "$WORK/metrics.txt" || {
  echo "mate_queries_total should be 1 after one served query"; cat "$WORK/metrics.txt"; exit 1; }
awk '/^#/ { next } NF != 2 && !/^$/ { print "unparseable metrics line: " $0; bad = 1 } END { exit bad }' \
  "$WORK/metrics.txt"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"  # non-zero here fails the script: drain must be clean
SERVER_PID=""

# Steering smoke: same lake, --steering=auto with a deliberately tiny p99
# target. Served bits must still match (mate_cli client verifies ranks
# in-process via --stats) and the steering decision counter must appear
# on the METRICS page with at least one decision taken.
"$BIN_DIR/mate_server" --corpus "$WORK/corpus.mate" \
  --index "$WORK/index.mate" --port 0 --port-file "$WORK/port2.txt" \
  --queue-depth 16 --tenant-cache-mb 4 --max-tenants 8 \
  --steering=auto --target-p99-ms 1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [[ -s "$WORK/port2.txt" ]] && break
  sleep 0.1
done
[[ -s "$WORK/port2.txt" ]] || { echo "steering server never published a port"; exit 1; }
PORT="$(cat "$WORK/port2.txt")"

"$BIN_DIR/mate_cli" client --port "$PORT" --query "$WORK/query.csv" \
  --key first,last --tenant acme --k 5 --stats
"$BIN_DIR/mate_cli" client --port "$PORT" --metrics > "$WORK/metrics2.txt"
grep -q '^# TYPE mate_steering_decisions_total counter$' "$WORK/metrics2.txt" || {
  echo "METRICS page is missing mate_steering_decisions_total"; exit 1; }
awk -F' ' '/^mate_steering_decisions_total\{/ { total += $2 }
  END { exit total > 0 ? 0 : 1 }' "$WORK/metrics2.txt" || {
  echo "steering=auto served a query but counted no steering decision"
  cat "$WORK/metrics2.txt"; exit 1; }

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
echo "server smoke OK"
