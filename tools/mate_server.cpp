// mate_server — resident multi-tenant serving front-end for a MATE corpus +
// index. Opens ONE shared Session (phased: the process accepts connections
// while postings and corpus cells stream in), then serves the wire protocol
// in src/server/protocol.h until SIGINT/SIGTERM, at which point it drains
// gracefully: in-flight queries finish, new ones are shed with kOverloaded,
// and the process exits 0.
//
//   mate_server --corpus F --index F [--host 127.0.0.1] [--port 0]
//               [--port-file PATH] [--threads N] [--queue-depth 64]
//               [--max-connections 256] [--max-tenants 64] [--cache-mb 64]
//               [--tenant-cache-mb 0] [--slow-query-ms 0]
//               [--slow-query-log PATH] [--steering=off|auto]
//               [--target-p99-ms 0]
//
// --port 0 binds an ephemeral port; --port-file writes the resolved port as
// a single line so scripts (CI smoke, the tail-latency bench) can find the
// server without racing its stdout. --tenant-cache-mb gives every tenant's
// result-cache partition an independent byte budget; 0 leaves partitions on
// the session-wide default. --max-tenants bounds how many distinct tenant
// rows (counters, metric series, cache partitions) can exist; overflow
// tenants share the "__other__" row. --slow-query-ms arms per-request
// tracing: queries slower than the threshold dump their span tree as one
// JSONL line to --slow-query-log (stderr when unset); 0 disables tracing
// entirely. --steering=auto turns on SLO-aware fan-out steering at the
// dispatcher's dequeue point: big queries fan out across the pool only when
// the queue is shallow and the live p99 is within --target-p99-ms (0
// disables the latency term; queue depth still steers). Flags accept both
// "--key value" and "--key=value".

#include <signal.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "core/session.h"
#include "server/server.h"
#include "util/string_util.h"

namespace mate {
namespace {

// Self-pipe written by the signal handler; main blocks reading it.
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int /*signo*/) {
  const char byte = 's';
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int Usage() {
  std::cerr << "usage:\n"
               "  mate_server --corpus F --index F [--host 127.0.0.1]"
               " [--port 0] [--port-file PATH] [--threads N]"
               " [--queue-depth 64] [--max-connections 256]"
               " [--max-tenants 64] [--cache-mb 64] [--tenant-cache-mb 0]"
               " [--slow-query-ms 0] [--slow-query-log PATH]"
               " [--steering=off|auto] [--target-p99-ms 0]\n";
  return 2;
}

bool ParseFlags(int argc, char** argv, int first,
                std::map<std::string, std::string>* flags) {
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return false;
    key = key.substr(2);
    if (const size_t eq = key.find('='); eq != std::string::npos) {
      (*flags)[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    if (i + 1 >= argc) return false;
    (*flags)[key] = argv[++i];
  }
  return true;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

Result<unsigned> ParseUintFlag(const std::string& flag,
                               const std::string& text, unsigned max) {
  unsigned value = 0;
  if (!ParseSmallUint(text, max, &value)) {
    return Status::InvalidArgument("--" + flag +
                                   " must be an integer in [0, " +
                                   std::to_string(max) + "], got '" + text +
                                   "'");
  }
  return value;
}

int Run(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  if (!ParseFlags(argc, argv, 1, &flags)) return Usage();
  const std::string corpus_path = FlagOr(flags, "corpus", "");
  const std::string index_path = FlagOr(flags, "index", "");
  if (corpus_path.empty() || index_path.empty()) return Usage();

  auto port = ParseUintFlag("port", FlagOr(flags, "port", "0"), 65535);
  if (!port.ok()) return Fail(port.status());
  auto threads = ParseUintFlag("threads", FlagOr(flags, "threads", "1"),
                               1024);
  if (!threads.ok()) return Fail(threads.status());
  auto queue_depth =
      ParseUintFlag("queue-depth", FlagOr(flags, "queue-depth", "64"),
                    1u << 20);
  if (!queue_depth.ok()) return Fail(queue_depth.status());
  auto max_connections = ParseUintFlag(
      "max-connections", FlagOr(flags, "max-connections", "256"), 1u << 16);
  if (!max_connections.ok()) return Fail(max_connections.status());
  if (*max_connections == 0) {
    return Fail(Status::InvalidArgument("--max-connections must be >= 1"));
  }
  auto cache_mb =
      ParseUintFlag("cache-mb", FlagOr(flags, "cache-mb", "64"), 1u << 20);
  if (!cache_mb.ok()) return Fail(cache_mb.status());
  auto tenant_cache_mb = ParseUintFlag(
      "tenant-cache-mb", FlagOr(flags, "tenant-cache-mb", "0"), 1u << 20);
  if (!tenant_cache_mb.ok()) return Fail(tenant_cache_mb.status());
  auto slow_query_ms = ParseUintFlag(
      "slow-query-ms", FlagOr(flags, "slow-query-ms", "0"), 1u << 30);
  if (!slow_query_ms.ok()) return Fail(slow_query_ms.status());
  auto max_tenants = ParseUintFlag(
      "max-tenants", FlagOr(flags, "max-tenants", "64"), 1u << 16);
  if (!max_tenants.ok()) return Fail(max_tenants.status());
  if (*max_tenants == 0) {
    return Fail(Status::InvalidArgument("--max-tenants must be >= 1"));
  }
  auto target_p99_ms = ParseUintFlag(
      "target-p99-ms", FlagOr(flags, "target-p99-ms", "0"), 1u << 30);
  if (!target_p99_ms.ok()) return Fail(target_p99_ms.status());
  const std::string steering = FlagOr(flags, "steering", "off");
  if (steering != "off" && steering != "auto") {
    return Fail(Status::InvalidArgument(
        "--steering must be 'off' or 'auto', got '" + steering + "'"));
  }

  SessionOptions session_options;
  session_options.corpus_path = corpus_path;
  session_options.index_path = index_path;
  session_options.num_threads = *threads;
  session_options.cache_bytes = size_t{*cache_mb} << 20;
  auto session = Session::Open(std::move(session_options));
  if (!session.ok()) return Fail(session.status());

  ServerOptions server_options;
  server_options.host = FlagOr(flags, "host", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(*port);
  server_options.max_queue_depth = *queue_depth;
  server_options.max_connections = *max_connections;
  server_options.tenant_cache_bytes = size_t{*tenant_cache_mb} << 20;
  server_options.max_tenants = *max_tenants;
  server_options.steering =
      steering == "auto" ? SteeringMode::kAuto : SteeringMode::kOff;
  server_options.target_p99 = std::chrono::milliseconds(*target_p99_ms);
  server_options.slow_query_threshold =
      std::chrono::milliseconds(*slow_query_ms);
  server_options.slow_query_log_path = FlagOr(flags, "slow-query-log", "");

  // Belt and braces next to WriteFrame's MSG_NOSIGNAL: a client that hangs
  // up before its response is written must never SIGPIPE the server.
  // Installed before Start() so no accepted connection predates it.
  struct sigaction ignore_pipe;
  std::memset(&ignore_pipe, 0, sizeof(ignore_pipe));
  ignore_pipe.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &ignore_pipe, nullptr);

  MateServer server(&session.value(), server_options);
  if (Status s = server.Start(); !s.ok()) return Fail(s);
  std::cout << "mate_server listening on " << server_options.host << ":"
            << server.port() << " (queue depth "
            << server_options.max_queue_depth << ")" << std::endl;

  const std::string port_file = FlagOr(flags, "port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      server.Stop();
      return Fail(Status::IOError("cannot write --port-file " + port_file));
    }
  }

  if (::pipe(g_signal_pipe) < 0) {
    server.Stop();
    return Fail(Status::IOError("pipe() failed: " +
                                std::string(std::strerror(errno))));
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::cout << "draining: finishing in-flight queries, shedding new ones"
            << std::endl;
  server.Stop();
  std::cout << server.stats().ToString();
  return 0;
}

}  // namespace
}  // namespace mate

int main(int argc, char** argv) { return mate::Run(argc, argv); }
