#include "core/mate.h"

#include "core/query_executor.h"

namespace mate {

DiscoveryResult MateSearch::Discover(const Table& query,
                                     const std::vector<ColumnId>& key_columns,
                                     const DiscoveryOptions& options) const {
  // Serial execution is the one-shard special case of the intra-query
  // executor — a single code path, so the sharded runs cannot drift from
  // this reference.
  QueryExecutor executor(corpus_, index_);
  ExecutorOptions exec;
  exec.intra_query_threads = 1;
  exec.num_shards = 1;
  return executor.Discover(query, key_columns, options, exec,
                           /*pool=*/nullptr);
}

}  // namespace mate
