#include "core/mate.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/stopwatch.h"
#include "util/string_util.h"

namespace mate {

namespace {

// One fetched PL item plus the distinct init-value it came from.
struct FetchedItem {
  PostingEntry entry;
  uint32_t init_value_idx;
};

struct TableCandidates {
  TableId table_id;
  std::vector<FetchedItem> items;
};

}  // namespace

DiscoveryResult MateSearch::Discover(const Table& query,
                                     const std::vector<ColumnId>& key_columns,
                                     const DiscoveryOptions& options) const {
  Stopwatch timer;
  DiscoveryResult result;
  DiscoveryStats& stats = result.stats;
  if (key_columns.empty() || options.k <= 0) {
    result.stats.runtime_seconds = timer.ElapsedSeconds();
    return result;
  }

  // ---- Initialization (§6.1, Alg. 1 lines 3-6) -----------------------
  const size_t init_pos = SelectInitColumn(query, key_columns,
                                           options.init_strategy, index_);

  // Distinct key combos with their super keys.
  const std::vector<std::vector<std::string>> combos =
      ExtractKeyCombos(query, key_columns);
  std::vector<BitVector> combo_keys;
  combo_keys.reserve(combos.size());
  for (const auto& combo : combos) {
    combo_keys.push_back(index_->hash().MakeSuperKey(combo));
  }

  // Dictionary: distinct init value -> combo ids (Alg. 1 line 6).
  std::vector<std::string> init_values;
  std::vector<std::vector<uint32_t>> combos_of_value;
  {
    std::unordered_map<std::string_view, uint32_t> value_idx;
    for (uint32_t combo_id = 0; combo_id < combos.size(); ++combo_id) {
      const std::string& v = combos[combo_id][init_pos];
      auto [it, inserted] =
          value_idx.emplace(v, static_cast<uint32_t>(init_values.size()));
      if (inserted) {
        init_values.push_back(v);
        combos_of_value.emplace_back();
      }
      combos_of_value[it->second].push_back(combo_id);
    }
  }

  // ---- Fetch PL items and group by table (Alg. 1 lines 4-5) ----------
  std::unordered_set<TableId> excluded(options.exclude_tables.begin(),
                                       options.exclude_tables.end());
  std::unordered_set<TableId> restricted(options.restrict_tables.begin(),
                                         options.restrict_tables.end());
  std::unordered_map<TableId, std::vector<FetchedItem>> by_table;
  for (uint32_t v = 0; v < init_values.size(); ++v) {
    const PostingList* pl = index_->Lookup(init_values[v]);
    if (pl == nullptr) continue;
    stats.pl_items_fetched += pl->size();
    for (const PostingEntry& entry : *pl) {
      if (excluded.count(entry.table_id)) continue;
      if (!restricted.empty() && !restricted.count(entry.table_id)) continue;
      by_table[entry.table_id].push_back({entry, v});
    }
  }
  stats.candidate_tables = by_table.size();

  // Evaluate promising tables first: PL-item count desc, table id asc.
  std::vector<TableCandidates> candidates;
  candidates.reserve(by_table.size());
  for (auto& [table_id, items] : by_table) {
    candidates.push_back({table_id, std::move(items)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const TableCandidates& a, const TableCandidates& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() > b.items.size();
              }
              return a.table_id < b.table_id;
            });

  // ---- Per-table evaluation (Alg. 1 lines 7-22) -----------------------
  TopKHeap<TableId> topk(static_cast<size_t>(options.k));
  std::unordered_map<TableId, std::vector<ColumnId>> best_mappings;
  const SuperKeyStore& superkeys = index_->superkeys();
  MappingAccumulator acc;

  for (size_t cand_idx = 0; cand_idx < candidates.size(); ++cand_idx) {
    const TableCandidates& cand = candidates[cand_idx];
    const int64_t items_in_table = static_cast<int64_t>(cand.items.size());

    // Table filter rule 1 (line 9): tables arrive in decreasing PL-item
    // order, so once a table cannot beat the current j_k nothing later can.
    if (options.use_table_filters && topk.Full() &&
        items_in_table < topk.KthScore()) {
      stats.tables_pruned_rule1 += candidates.size() - cand_idx;
      break;
    }

    ++stats.tables_evaluated;
    const Table& table = corpus_->table(cand.table_id);
    acc.Clear();
    int64_t rows_checked_here = 0;
    int64_t rows_matched_here = 0;  // r_match of rule 2
    bool pruned_mid_table = false;

    for (const FetchedItem& item : cand.items) {
      // Table filter rule 2 (line 14): even if every remaining row is
      // joinable, the table cannot beat the worst top-k entry.
      if (options.use_table_filters && topk.Full() &&
          items_in_table - rows_checked_here + rows_matched_here <
              topk.KthScore()) {
        ++stats.tables_pruned_rule2;
        pruned_mid_table = true;
        break;
      }
      ++rows_checked_here;
      ++stats.rows_checked;

      const RowId row = item.entry.row_id;
      bool row_passed_filter = false;
      bool row_matched = false;
      for (uint32_t combo_id : combos_of_value[item.init_value_idx]) {
        // Row filter (§6.3, line 18): the combo's super key must be masked
        // by the row's super key.
        if (options.use_row_filter &&
            !superkeys.Covers(cand.table_id, row, combo_keys[combo_id])) {
          continue;
        }
        row_passed_filter = true;
        if (VerifyComboInRow(table, row, combos[combo_id],
                             combo_id, item.entry.column_id, init_pos, &acc,
                             &stats.value_comparisons)) {
          row_matched = true;
        }
      }
      if (row_passed_filter) ++stats.rows_sent_to_verification;
      if (row_matched) ++stats.rows_true_positive;
      // r_match: with the super-key filter the paper counts filter
      // survivors (cheap, optimistic); without it, exact matches.
      if (options.use_row_filter ? row_passed_filter : row_matched) {
        ++rows_matched_here;
      }
    }

    if (pruned_mid_table) continue;
    const int64_t j = acc.MaxJoinability();
    if (j > 0) {
      if (topk.Add(cand.table_id, j)) {
        best_mappings[cand.table_id] = acc.BestMapping();
      }
    }
  }

  result.top_k = FinalizeTopK(topk, best_mappings);
  stats.runtime_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace mate
