#include "core/topk.h"

#include <algorithm>
#include <sstream>

namespace mate {

void DiscoveryStats::Merge(const DiscoveryStats& other) {
  runtime_seconds += other.runtime_seconds;
  pl_items_fetched += other.pl_items_fetched;
  candidate_tables += other.candidate_tables;
  tables_evaluated += other.tables_evaluated;
  tables_pruned_rule1 += other.tables_pruned_rule1;
  tables_pruned_rule2 += other.tables_pruned_rule2;
  rows_checked += other.rows_checked;
  rows_sent_to_verification += other.rows_sent_to_verification;
  rows_true_positive += other.rows_true_positive;
  value_comparisons += other.value_comparisons;
  tables_materialized += other.tables_materialized;
  tables_rematerialized += other.tables_rematerialized;
  cell_bytes_materialized += other.cell_bytes_materialized;
  // Execution shape is not additive: merging per-shard or per-query stats
  // keeps the widest configuration seen.
  shards_used = std::max(shards_used, other.shards_used);
  fanout_threads = std::max(fanout_threads, other.fanout_threads);
}

std::string DiscoveryStats::ToString() const {
  std::ostringstream os;
  os << "runtime=" << runtime_seconds << "s pl_items=" << pl_items_fetched
     << " tables(cand/eval/p1/p2)=" << candidate_tables << "/"
     << tables_evaluated << "/" << tables_pruned_rule1 << "/"
     << tables_pruned_rule2 << " rows(checked/verify/tp)=" << rows_checked
     << "/" << rows_sent_to_verification << "/" << rows_true_positive
     << " cmp=" << value_comparisons << " precision=" << Precision();
  if (shards_used > 1 || fanout_threads > 1) {
    os << " shards=" << shards_used << " fanout=" << fanout_threads;
  }
  if (tables_materialized > 0) {
    os << " materialized=" << tables_materialized << " ("
       << tables_rematerialized << " re-parsed, " << cell_bytes_materialized
       << " bytes)";
  }
  return os.str();
}

std::vector<TableResult> FinalizeTopK(
    const TopKHeap<TableId>& heap,
    const std::unordered_map<TableId, std::vector<ColumnId>>& best_mappings) {
  std::vector<TableResult> results;
  for (const auto& entry : heap.SortedDesc()) {
    TableResult result;
    result.table_id = entry.id;
    result.joinability = entry.score;
    auto it = best_mappings.find(entry.id);
    if (it != best_mappings.end()) result.best_mapping = it->second;
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace mate
