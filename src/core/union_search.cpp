#include "core/union_search.h"

#include <algorithm>
#include <unordered_set>

#include "util/string_util.h"

namespace mate {

namespace {

// Deterministic sample of up to `limit` distinct normalized column values.
std::vector<std::string> SampleColumnValues(const Table& table, ColumnId c,
                                            size_t limit) {
  std::vector<std::string> sample;
  std::unordered_set<std::string> seen;
  for (RowId r = 0; r < table.NumRows() && sample.size() < limit; ++r) {
    if (table.IsRowDeleted(r)) continue;
    std::string norm = NormalizeValue(table.cell(r, c));
    if (norm.empty()) continue;
    if (seen.insert(norm).second) sample.push_back(std::move(norm));
  }
  return sample;
}

}  // namespace

UnionIndex UnionIndex::Build(const Corpus& corpus,
                             const RowHashFunction* hash,
                             size_t sample_size) {
  UnionIndex index;
  index.hash_ = hash;
  index.sample_size_ = sample_size;
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    const Table& table = corpus.table(t);
    size_t begin = index.sketches_.size();
    for (ColumnId c = 0; c < table.NumColumns(); ++c) {
      std::vector<std::string> sample =
          SampleColumnValues(table, c, sample_size);
      if (sample.empty()) continue;
      ColumnSketch sketch;
      sketch.table_id = t;
      sketch.column_id = c;
      sketch.bits = hash->MakeSuperKey(sample);
      sketch.sampled_values = static_cast<uint32_t>(sample.size());
      index.sketches_.push_back(std::move(sketch));
    }
    if (index.sketches_.size() > begin) {
      index.table_ranges_.push_back({t, {begin, index.sketches_.size()}});
    }
  }
  return index;
}

std::vector<UnionResult> UnionIndex::Discover(
    const Table& query, const UnionSearchOptions& options,
    const std::vector<TableId>& exclude) const {
  std::unordered_set<TableId> excluded(exclude.begin(), exclude.end());

  // Per query column: sampled values + their signatures.
  struct QueryColumn {
    ColumnId column;
    std::vector<BitVector> signatures;
  };
  std::vector<QueryColumn> query_columns;
  for (ColumnId c = 0; c < query.NumColumns(); ++c) {
    std::vector<std::string> sample =
        SampleColumnValues(query, c, options.sample_size);
    if (sample.empty()) continue;
    QueryColumn qc;
    qc.column = c;
    qc.signatures.reserve(sample.size());
    for (const std::string& value : sample) {
      qc.signatures.push_back(hash_->HashValue(value));
    }
    query_columns.push_back(std::move(qc));
  }
  if (query_columns.empty()) return {};

  std::vector<UnionResult> results;
  for (const auto& [table_id, range] : table_ranges_) {
    if (excluded.count(table_id)) continue;
    const auto [begin, end] = range;

    // Score every (query column, candidate column) pair.
    struct Pair {
      double score;
      size_t q;  // index into query_columns
      size_t s;  // sketch index
    };
    std::vector<Pair> pairs;
    for (size_t q = 0; q < query_columns.size(); ++q) {
      for (size_t s = begin; s < end; ++s) {
        size_t masked = 0;
        for (const BitVector& sig : query_columns[q].signatures) {
          if (sig.IsSubsetOf(sketches_[s].bits)) ++masked;
        }
        double score = static_cast<double>(masked) /
                       static_cast<double>(query_columns[q].signatures.size());
        if (score >= options.min_column_score) pairs.push_back({score, q, s});
      }
    }
    // Greedy one-to-one alignment, best pairs first (deterministic
    // tie-break on column ids).
    std::sort(pairs.begin(), pairs.end(), [&](const Pair& a, const Pair& b) {
      if (a.score != b.score) return a.score > b.score;
      if (a.q != b.q) return a.q < b.q;
      return a.s < b.s;
    });
    std::vector<char> q_used(query_columns.size(), 0);
    std::unordered_set<size_t> s_used;
    UnionResult result;
    result.table_id = table_id;
    double score_sum = 0.0;
    for (const Pair& pair : pairs) {
      if (q_used[pair.q] || s_used.count(pair.s)) continue;
      q_used[pair.q] = 1;
      s_used.insert(pair.s);
      result.alignment.push_back({query_columns[pair.q].column,
                                  sketches_[pair.s].column_id, pair.score});
      score_sum += pair.score;
    }
    double aligned_fraction =
        static_cast<double>(result.alignment.size()) /
        static_cast<double>(query_columns.size());
    if (aligned_fraction < options.min_aligned_fraction) continue;
    if (result.alignment.empty()) continue;
    result.score = score_sum /
                   static_cast<double>(result.alignment.size()) *
                   aligned_fraction;
    std::sort(result.alignment.begin(), result.alignment.end(),
              [](const ColumnAlignment& a, const ColumnAlignment& b) {
                return a.query_column < b.query_column;
              });
    results.push_back(std::move(result));
  }

  std::sort(results.begin(), results.end(),
            [](const UnionResult& a, const UnionResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.table_id < b.table_id;
            });
  if (results.size() > static_cast<size_t>(options.k)) {
    results.resize(static_cast<size_t>(options.k));
  }
  return results;
}

size_t UnionIndex::MemoryBytes() const {
  size_t bytes = table_ranges_.size() * sizeof(table_ranges_[0]);
  for (const ColumnSketch& sketch : sketches_) {
    bytes += sizeof(ColumnSketch) + sketch.bits.num_words() * 8;
  }
  return bytes;
}

}  // namespace mate
