// Keyed result cache for discovery (the ROADMAP's "result caching" item):
// query fingerprint -> DiscoveryResult, LRU-evicted under a byte budget.
// A hit returns the originally computed result verbatim (byte for byte,
// including its recorded runtime), so cached and uncached discovery are
// bit-identical. Thread-safe: batch workers may probe/insert concurrently.
//
// Multi-tenant serving (src/server/) partitions the cache: every entry
// lives in exactly one named partition with its own independent byte
// budget and LRU list, so one tenant's churn can never evict another's
// results. The unnamed partition "" always exists (created with the
// constructor's capacity) and is what the single-tenant API overloads use;
// other partitions spring into existence on first touch with the default
// capacity, or explicitly via ConfigurePartition.
//
// The cache itself is key-agnostic; Session (session.h) owns one and keys
// it with a canonical fingerprint of (key-column contents, options), using
// QuerySpec::tenant as the partition.

#ifndef MATE_CORE_RESULT_CACHE_H_
#define MATE_CORE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/topk.h"

namespace mate {

/// Snapshot of cache instrumentation. Hits/misses/insertions/evictions are
/// cumulative over the cache's lifetime (Clear() does not reset them);
/// entries/bytes describe the current contents. Aggregated snapshots sum
/// every partition (capacity included).
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;
  size_t capacity_bytes = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }

  std::string ToString() const;
};

class ResultCache {
 public:
  /// A cache whose partitions each hold at most `capacity_bytes` of keys +
  /// results by default. Entries individually larger than their partition's
  /// budget are never admitted.
  explicit ResultCache(size_t capacity_bytes)
      : default_capacity_bytes_(capacity_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// On hit, copies the cached result into `*result`, moves the entry to
  /// the front of its partition's LRU list, and returns true. Counts one
  /// hit or miss against `partition` (touching a partition creates it).
  bool Lookup(std::string_view partition, const std::string& key,
              DiscoveryResult* result);
  /// Single-tenant convenience: the unnamed partition.
  bool Lookup(const std::string& key, DiscoveryResult* result) {
    return Lookup(std::string_view(), key, result);
  }

  /// Inserts (or refreshes) `key -> result` in `partition`, evicting that
  /// partition's least-recently-used entries until its byte budget holds.
  void Insert(std::string_view partition, const std::string& key,
              const DiscoveryResult& result);
  void Insert(const std::string& key, const DiscoveryResult& result) {
    Insert(std::string_view(), key, result);
  }

  /// Creates `partition` (or resizes it, evicting down to the new budget).
  /// A budget of 0 keeps the partition but admits nothing new and drops its
  /// current contents.
  void ConfigurePartition(std::string_view partition, size_t capacity_bytes);

  /// Drops every entry in every partition (the Session::InvalidateCache
  /// hook). Partitions and their budgets survive, and cumulative counters
  /// survive so hit-rate reporting spans invalidations.
  void Clear();

  /// Drops every entry of one partition; returns false when the partition
  /// has never been touched (nothing to clear).
  bool ClearPartition(std::string_view partition);

  /// Aggregate across every partition.
  ResultCacheStats stats() const;
  /// One partition's counters (zeroed stats for a never-touched partition).
  ResultCacheStats partition_stats(std::string_view partition) const;
  /// Every partition's counters, sorted by partition name.
  std::vector<std::pair<std::string, ResultCacheStats>> AllPartitionStats()
      const;

  size_t capacity_bytes() const { return default_capacity_bytes_; }

  /// Approximate heap footprint of a result (used for budget accounting).
  static size_t ApproxResultBytes(const DiscoveryResult& result);

 private:
  struct Entry {
    std::string key;
    DiscoveryResult result;
    size_t bytes = 0;
  };

  // One LRU list + probe index + budget per partition. Most-recently-used
  // at the front. The map's string_view keys point into Entry::key, which
  // is stable: list nodes never relocate.
  struct Partition {
    std::list<Entry> lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    size_t capacity_bytes = 0;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Partition& GetOrCreate(std::string_view partition);
  static void EvictToBudget(Partition* p);
  static ResultCacheStats SnapshotPartition(const Partition& p);

  mutable std::mutex mu_;
  // Ordered (heterogeneous-lookup) map: AllPartitionStats comes out sorted
  // and string_view probes never allocate.
  std::map<std::string, Partition, std::less<>> partitions_;
  size_t default_capacity_bytes_;
};

}  // namespace mate

#endif  // MATE_CORE_RESULT_CACHE_H_
