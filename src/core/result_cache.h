// Keyed result cache for discovery (the ROADMAP's "result caching" item):
// query fingerprint -> DiscoveryResult, LRU-evicted under a byte budget.
// A hit returns the originally computed result verbatim (byte for byte,
// including its recorded runtime), so cached and uncached discovery are
// bit-identical. Thread-safe: batch workers may probe/insert concurrently.
//
// The cache itself is key-agnostic; Session (session.h) owns one and keys
// it with a canonical fingerprint of (key-column contents, options).

#ifndef MATE_CORE_RESULT_CACHE_H_
#define MATE_CORE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/topk.h"

namespace mate {

/// Snapshot of cache instrumentation. Hits/misses/insertions/evictions are
/// cumulative over the cache's lifetime (Clear() does not reset them);
/// entries/bytes describe the current contents.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;
  size_t capacity_bytes = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }

  std::string ToString() const;
};

class ResultCache {
 public:
  /// A cache holding at most `capacity_bytes` of keys + results. Entries
  /// individually larger than the budget are never admitted.
  explicit ResultCache(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// On hit, copies the cached result into `*result`, moves the entry to
  /// the front of the LRU list, and returns true. Counts one hit or miss.
  bool Lookup(const std::string& key, DiscoveryResult* result);

  /// Inserts (or refreshes) `key -> result`, evicting least-recently-used
  /// entries until the byte budget holds.
  void Insert(const std::string& key, const DiscoveryResult& result);

  /// Drops every entry (the Session::InvalidateCache hook). Cumulative
  /// counters survive so hit-rate reporting spans invalidations.
  void Clear();

  ResultCacheStats stats() const;
  size_t capacity_bytes() const { return capacity_bytes_; }

  /// Approximate heap footprint of a result (used for budget accounting).
  static size_t ApproxResultBytes(const DiscoveryResult& result);

 private:
  struct Entry {
    std::string key;
    DiscoveryResult result;
    size_t bytes = 0;
  };

  // Most-recently-used at the front. The map's string_view keys point into
  // Entry::key, which is stable: list nodes never relocate.
  mutable std::mutex mu_;
  std::list<Entry> lru_;
  std::unordered_map<std::string_view, std::list<Entry>::iterator> index_;
  size_t capacity_bytes_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace mate

#endif  // MATE_CORE_RESULT_CACHE_H_
