// Initial query-column selection (§6.1): MATE probes the single-column
// index with exactly one key column; the choice drives how many PL items are
// fetched. The default is the paper's minimum-cardinality heuristic; the
// other strategies exist for the §7.5.4 comparison.

#ifndef MATE_CORE_INIT_COLUMN_H_
#define MATE_CORE_INIT_COLUMN_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "index/inverted_index.h"
#include "storage/table.h"

namespace mate {

enum class InitColumnStrategy {
  kMinCardinality,  // fewest distinct values (MATE's default heuristic)
  kColumnOrder,     // first key column as listed
  kLongestString,   // column containing the longest cell value ("TLS")
  kWorstCase,       // oracle: most PL items fetched (upper bound)
  kBestCase,        // oracle: fewest PL items fetched (ground truth "Best")
};

std::string_view InitColumnStrategyName(InitColumnStrategy strategy);

/// Total PL items the index returns for the distinct normalized values of
/// query column `c` — the §7.5.4 cost metric.
uint64_t CountPlItemsForColumn(const Table& query, ColumnId c,
                               const InvertedIndex& index);

/// Number of non-empty posting lists probed for column `c` (distinct values
/// present in the corpus) — the metric §7.5.4 reports as "PLs".
uint64_t CountPostingListsForColumn(const Table& query, ColumnId c,
                                    const InvertedIndex& index);

/// Picks the initial column among `key_columns` (position returned is the
/// *index into key_columns*, not the ColumnId). The oracle strategies
/// require `index`; the heuristics ignore it. Ties break on the earlier key
/// column for determinism.
size_t SelectInitColumn(const Table& query,
                        const std::vector<ColumnId>& key_columns,
                        InitColumnStrategy strategy,
                        const InvertedIndex* index);

}  // namespace mate

#endif  // MATE_CORE_INIT_COLUMN_H_
