#include "core/query_executor.h"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "index/index_shards.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mate {

namespace {

// One fetched PL item plus the distinct init-value it came from.
struct FetchedItem {
  PostingEntry entry;
  uint32_t init_value_idx;
};

struct TableCandidates {
  TableId table_id;
  std::vector<FetchedItem> items;
};

// Query-side state of Algorithm 1's initialization (§6.1, lines 3-6),
// computed once and read concurrently by every shard task.
struct PreparedQuery {
  size_t init_pos = 0;
  std::vector<std::vector<std::string>> combos;
  std::vector<BitVector> combo_keys;
  std::vector<std::string> init_values;
  std::vector<std::vector<uint32_t>> combos_of_value;
  /// posting_lists[v] is Lookup(init_values[v]) (nullptr when absent),
  /// resolved once here so S shard tasks don't repeat the string-keyed
  /// probes.
  std::vector<const PostingList*> posting_lists;
  std::unordered_set<TableId> excluded;
  std::unordered_set<TableId> restricted;
};

PreparedQuery PrepareQuery(const Table& query,
                           const std::vector<ColumnId>& key_columns,
                           const DiscoveryOptions& options,
                           const InvertedIndex& index) {
  PreparedQuery prep;
  prep.init_pos =
      SelectInitColumn(query, key_columns, options.init_strategy, &index);

  // Distinct key combos with their super keys.
  prep.combos = ExtractKeyCombos(query, key_columns);
  prep.combo_keys.reserve(prep.combos.size());
  for (const auto& combo : prep.combos) {
    prep.combo_keys.push_back(index.hash().MakeSuperKey(combo));
  }

  // Dictionary: distinct init value -> combo ids (Alg. 1 line 6).
  {
    std::unordered_map<std::string_view, uint32_t> value_idx;
    for (uint32_t combo_id = 0; combo_id < prep.combos.size(); ++combo_id) {
      const std::string& v = prep.combos[combo_id][prep.init_pos];
      auto [it, inserted] = value_idx.emplace(
          v, static_cast<uint32_t>(prep.init_values.size()));
      if (inserted) {
        prep.init_values.push_back(v);
        prep.combos_of_value.emplace_back();
      }
      prep.combos_of_value[it->second].push_back(combo_id);
    }
  }

  prep.posting_lists.reserve(prep.init_values.size());
  for (const std::string& v : prep.init_values) {
    prep.posting_lists.push_back(index.Lookup(v));
  }

  prep.excluded.insert(options.exclude_tables.begin(),
                       options.exclude_tables.end());
  prep.restricted.insert(options.restrict_tables.begin(),
                         options.restrict_tables.end());
  return prep;
}

// Upper bound on the PL items the row loop would visit — the auto-parallel
// gate. List sizes only, no PL scan.
uint64_t EstimatePreparedPlItems(const PreparedQuery& prep) {
  uint64_t total = 0;
  for (const PostingList* pl : prep.posting_lists) {
    if (pl != nullptr) total += pl->size();
  }
  return total;
}

// One shard's (or one seed table's) private evaluation state: local heap,
// local mappings, local counters. Never touched by another task; merged in
// a fixed order afterwards.
struct ShardOutcome {
  explicit ShardOutcome(size_t k) : topk(k) {}

  TopKHeap<TableId> topk;
  std::unordered_map<TableId, std::vector<ColumnId>> best_mappings;
  DiscoveryStats stats;
};

// Fetches the shard's slice of every probed posting list (Alg. 1 lines 4-5
// restricted to [range.begin, range.end)) and groups items by table.
// Postings are sorted by (table_id, row, column), so the slice is one
// contiguous run per PL.
std::vector<TableCandidates> FetchShardCandidates(const PreparedQuery& prep,
                                                  const ShardRange& range,
                                                  DiscoveryStats* stats) {
  const auto by_table_id = [](const PostingEntry& e, TableId t) {
    return e.table_id < t;
  };
  std::unordered_map<TableId, std::vector<FetchedItem>> by_table;
  for (uint32_t v = 0; v < prep.init_values.size(); ++v) {
    const PostingList* pl = prep.posting_lists[v];
    if (pl == nullptr) continue;
    const auto lo =
        std::lower_bound(pl->begin(), pl->end(), range.begin, by_table_id);
    const auto hi = std::lower_bound(lo, pl->end(), range.end, by_table_id);
    stats->pl_items_fetched += static_cast<uint64_t>(hi - lo);
    for (auto it = lo; it != hi; ++it) {
      if (prep.excluded.count(it->table_id)) continue;
      if (!prep.restricted.empty() && !prep.restricted.count(it->table_id)) {
        continue;
      }
      by_table[it->table_id].push_back({*it, v});
    }
  }
  stats->candidate_tables += by_table.size();

  // Evaluate promising tables first: PL-item count desc, table id asc.
  std::vector<TableCandidates> candidates;
  candidates.reserve(by_table.size());
  for (auto& [table_id, items] : by_table) {
    candidates.push_back({table_id, std::move(items)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const TableCandidates& a, const TableCandidates& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() > b.items.size();
              }
              return a.table_id < b.table_id;
            });
  return candidates;
}

// Per-table evaluation (Alg. 1 lines 7-22) over candidates[start, end)
// with a local heap. §6.2 pruning runs against the better of the local j_k
// and the caller's `floor` — both never exceed the final global j_k (a
// local heap holds the best k of a subset; the floor is the k-th score
// over tables evaluated in earlier rounds), so nothing pruned here could
// have survived the final merge. Returns true iff rule 1 broke out: the
// list is sorted by item count and thresholds only grow, so the shard is
// finished for good (the caller accounts for candidates beyond `end`).
// No floor over the full range is exactly the serial Algorithm 1.
bool EvaluateCandidates(const Corpus& corpus, const InvertedIndex& index,
                        const PreparedQuery& prep,
                        const DiscoveryOptions& options,
                        const std::vector<TableCandidates>& candidates,
                        size_t start, size_t end,
                        std::optional<int64_t> floor, ShardOutcome* out,
                        QueryTrace* trace = nullptr,
                        uint32_t trace_parent = QueryTrace::kNoParent,
                        uint64_t trace_tid = 0) {
  DiscoveryStats& stats = out->stats;
  TopKHeap<TableId>& topk = out->topk;
  const SuperKeyStore& superkeys = index.superkeys();
  MappingAccumulator acc;

  // Best provable score threshold right now (INT64_MIN = none yet).
  const auto prune_threshold = [&topk, floor] {
    int64_t threshold =
        floor.has_value() ? *floor : std::numeric_limits<int64_t>::min();
    if (topk.Full()) threshold = std::max(threshold, topk.KthScore());
    return threshold;
  };

  for (size_t cand_idx = start; cand_idx < end; ++cand_idx) {
    const TableCandidates& cand = candidates[cand_idx];
    const int64_t items_in_table = static_cast<int64_t>(cand.items.size());

    // Table filter rule 1 (line 9): tables arrive in decreasing PL-item
    // order, so once a table cannot beat the current j_k nothing later can.
    if (options.use_table_filters && items_in_table < prune_threshold()) {
      stats.tables_pruned_rule1 += end - cand_idx;
      if (trace != nullptr) {
        trace->AddCompleteSpan(
            "rule1_prune", trace_parent, trace->NowUs(), 0, trace_tid,
            "\"tables_pruned\":" + std::to_string(end - cand_idx));
      }
      return true;
    }

    ++stats.tables_evaluated;
    // The lazy corpus's materialization point: cells parse here, on first
    // touch, for evaluated candidates only. Keeping this access *after* the
    // rule-1 break above matters — pruned tables never materialize, which
    // is what lets a small query finish without paying for a cold giant
    // table it would only have pruned.
    //
    // Single-column keys materialize *columnar*: with m == 1 the verifier
    // only ever reads each PL item's fixed column (joinability.cpp), so
    // this candidate needs cells for its distinct posting columns alone —
    // over a format-v3 backing that is a sliver of a giant table. Multi-
    // column keys scan whole rows and take the full-table path.
    MaterializeOutcome mat;
    const bool single_column_key =
        !prep.combos.empty() && prep.combos[0].size() == 1;
    std::vector<ColumnId> touched_columns;
    if (single_column_key) {
      // Sorted distinct column set: a wide candidate can carry thousands
      // of items over a handful of columns, and the former find-per-item
      // dedup was O(items * columns). The store materializes per column
      // under done-flags, so the order change is invisible to it.
      touched_columns.reserve(cand.items.size());
      for (const FetchedItem& item : cand.items) {
        touched_columns.push_back(item.entry.column_id);
      }
      std::sort(touched_columns.begin(), touched_columns.end());
      touched_columns.erase(
          std::unique(touched_columns.begin(), touched_columns.end()),
          touched_columns.end());
    }
    const uint64_t mat_start_us = trace != nullptr ? trace->NowUs() : 0;
    const Table& table =
        single_column_key
            ? corpus.MaterializeColumns(cand.table_id, touched_columns, &mat)
            : corpus.MaterializeTable(cand.table_id, &mat);
    if (mat.bytes_parsed > 0) {
      ++stats.tables_materialized;
      stats.cell_bytes_materialized += mat.bytes_parsed;
      if (mat.rematerialized) ++stats.tables_rematerialized;
    }
    if (trace != nullptr) {
      const uint64_t now = trace->NowUs();
      trace->AddCompleteSpan(
          "materialize", trace_parent, mat_start_us, now - mat_start_us,
          trace_tid,
          "\"table\":" + std::to_string(cand.table_id) +
              ",\"bytes_parsed\":" + std::to_string(mat.bytes_parsed) +
              ",\"parse_us\":" +
              std::to_string(
                  static_cast<uint64_t>(mat.parse_seconds * 1e6)));
    }
    const uint64_t rows_start_us = trace != nullptr ? trace->NowUs() : 0;
    acc.Clear();
    int64_t rows_checked_here = 0;
    int64_t rows_matched_here = 0;  // r_match of rule 2
    bool pruned_mid_table = false;

    // The row loop runs gather -> probe -> walk. Items arrive grouped by
    // init value (FetchShardCandidates appends one PL slice at a time), so
    // each run shares one combo set; within a run, blocks of up to
    // kMaxProbeBatch rows are gathered and every combo's super key is
    // probed over the whole block in one SuperKeyStore::CoversBatch call.
    // Rule 2's mid-table prune semantics survive unchanged: probes are
    // side-effect free, items are still walked strictly in row order, every
    // counter (rows_checked, rows_sent_to_verification, value_comparisons)
    // advances only for walked items, and a prune simply discards the
    // unused tail of the block's masks.
    const size_t num_items = cand.items.size();
    std::array<RowId, SuperKeyStore::kMaxProbeBatch> block_rows;
    std::vector<uint32_t> combo_masks;
    size_t run_begin = 0;
    while (run_begin < num_items && !pruned_mid_table) {
      const uint32_t value_idx = cand.items[run_begin].init_value_idx;
      size_t run_end = run_begin + 1;
      while (run_end < num_items &&
             cand.items[run_end].init_value_idx == value_idx) {
        ++run_end;
      }
      const std::vector<uint32_t>& combo_ids =
          prep.combos_of_value[value_idx];

      for (size_t block = run_begin; block < run_end && !pruned_mid_table;
           block += SuperKeyStore::kMaxProbeBatch) {
        const size_t count =
            std::min(SuperKeyStore::kMaxProbeBatch, run_end - block);
        if (options.use_row_filter) {
          for (size_t i = 0; i < count; ++i) {
            block_rows[i] = cand.items[block + i].entry.row_id;
          }
          combo_masks.resize(combo_ids.size());
          for (size_t c = 0; c < combo_ids.size(); ++c) {
            // Row filter (§6.3, line 18): the combo's super key must be
            // masked by each row's super key; one batched probe per combo.
            combo_masks[c] =
                superkeys.CoversBatch(cand.table_id, block_rows.data(),
                                      count, prep.combo_keys[combo_ids[c]]);
          }
        }

        for (size_t i = 0; i < count; ++i) {
          const FetchedItem& item = cand.items[block + i];
          // Table filter rule 2 (line 14): even if every remaining row is
          // joinable, the table cannot beat the worst top-k entry.
          if (options.use_table_filters &&
              items_in_table - rows_checked_here + rows_matched_here <
                  prune_threshold()) {
            ++stats.tables_pruned_rule2;
            pruned_mid_table = true;
            break;
          }
          ++rows_checked_here;
          ++stats.rows_checked;

          const RowId row = item.entry.row_id;
          bool row_passed_filter = false;
          bool row_matched = false;
          for (size_t c = 0; c < combo_ids.size(); ++c) {
            if (options.use_row_filter &&
                ((combo_masks[c] >> i) & 1u) == 0) {
              continue;
            }
            const uint32_t combo_id = combo_ids[c];
            row_passed_filter = true;
            if (VerifyComboInRow(table, row, prep.combos[combo_id],
                                 combo_id, item.entry.column_id,
                                 prep.init_pos, &acc,
                                 &stats.value_comparisons)) {
              row_matched = true;
            }
          }
          if (row_passed_filter) ++stats.rows_sent_to_verification;
          if (row_matched) ++stats.rows_true_positive;
          // r_match: with the super-key filter the paper counts filter
          // survivors (cheap, optimistic); without it, exact matches.
          if (options.use_row_filter ? row_passed_filter : row_matched) {
            ++rows_matched_here;
          }
        }
      }
      run_begin = run_end;
    }

    if (trace != nullptr) {
      const uint64_t now = trace->NowUs();
      trace->AddCompleteSpan(
          "row_loop", trace_parent, rows_start_us, now - rows_start_us,
          trace_tid,
          "\"table\":" + std::to_string(cand.table_id) +
              ",\"rows_checked\":" + std::to_string(rows_checked_here));
    }
    if (pruned_mid_table) continue;
    const int64_t j = acc.MaxJoinability();
    if (j > 0) {
      if (topk.Add(cand.table_id, j)) {
        out->best_mappings[cand.table_id] = acc.BestMapping();
      }
    }
  }
  return false;
}

// Runs fn(0..n) over min(`fanout`, n) strided pool tasks; inline when the
// fan-out degenerates. The pool's Wait() is global, so this must only run
// from a top-level (non-pool) thread.
void RunStrided(ThreadPool* pool, size_t fanout, size_t n,
                const std::function<void(size_t)>& fn) {
  fanout = std::min(fanout, n);
  if (pool == nullptr || fanout <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (size_t w = 0; w < fanout; ++w) {
    pool->Submit([&fn, w, fanout, n] {
      for (size_t i = w; i < n; i += fanout) fn(i);
    });
  }
  pool->Wait();
}

}  // namespace

uint64_t QueryExecutor::EstimatePlItems(
    const Table& query, const std::vector<ColumnId>& key_columns,
    const DiscoveryOptions& options) const {
  if (key_columns.empty() || options.k <= 0) return 0;
  const size_t init_pos =
      SelectInitColumn(query, key_columns, options.init_strategy, index_);
  // PrepareQuery derives its distinct init values from the distinct key
  // combos, but the value set is identical to the distinct live values of
  // the init column itself — every live row's combo is in the combo set and
  // vice versa — so this skips the tuple hashing and super-key work and
  // matches EstimatePreparedPlItems(prep) exactly.
  const ColumnId init_column = key_columns[init_pos];
  std::unordered_set<std::string_view> seen;
  uint64_t total = 0;
  for (RowId r = 0; r < query.NumRows(); ++r) {
    if (query.IsRowDeleted(r)) continue;
    const std::string& v = query.cell(r, init_column);
    if (!seen.insert(v).second) continue;
    const PostingList* pl = index_->Lookup(v);
    if (pl != nullptr) total += pl->size();
  }
  return total;
}

DiscoveryResult QueryExecutor::Discover(
    const Table& query, const std::vector<ColumnId>& key_columns,
    const DiscoveryOptions& options, const ExecutorOptions& exec,
    ThreadPool* pool) const {
  Stopwatch timer;
  QueryTrace* const trace = exec.trace;
  const uint32_t troot = exec.trace_parent;
  DiscoveryResult result;
  DiscoveryStats& stats = result.stats;
  if (key_columns.empty() || options.k <= 0) {
    stats.runtime_seconds = timer.ElapsedSeconds();
    return result;
  }
  const size_t k = static_cast<size_t>(options.k);

  ScopedSpan prepare_span(trace, "prepare", troot);
  const PreparedQuery prep =
      PrepareQuery(query, key_columns, options, *index_);
  prepare_span.End();

  // ---- Resolve the execution shape -----------------------------------
  const unsigned pool_width = pool != nullptr ? pool->num_threads() : 1;
  unsigned width = 1;
  if (exec.intra_query_threads == 0) {
    if (pool_width > 1 &&
        EstimatePreparedPlItems(prep) >= kAutoParallelMinItems) {
      width = pool_width;
    }
  } else {
    width = std::min(exec.intra_query_threads, pool_width);
  }
  const size_t requested_shards =
      exec.num_shards != 0 ? exec.num_shards : width;
  // The serial path (every MateSearch::Discover and per-query batch
  // execution) must not pay the O(NumTables) weight walk a real plan
  // costs: one trivial all-tables range is enough.
  std::vector<ShardRange> ranges;
  if (requested_shards <= 1) {
    if (corpus_->NumTables() > 0) {
      ranges.push_back({0, static_cast<TableId>(corpus_->NumTables())});
    }
  } else {
    ranges = IndexShards::Build(*corpus_, requested_shards).ranges();
  }
  const size_t num_shards = ranges.size();  // 0 on an empty corpus

  // ---- Fetch, shard-local --------------------------------------------
  std::vector<ShardOutcome> outcomes;
  outcomes.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) outcomes.emplace_back(k);
  std::vector<std::vector<TableCandidates>> shard_candidates(num_shards);
  ScopedSpan fetch_span(trace, "fetch", troot);
  RunStrided(pool, width, num_shards, [&](size_t s) {
    // Shard spans render on track s + 1 (track 0 is the query's main line).
    ScopedSpan shard_span(trace, "fetch_shard", fetch_span.id(), s + 1);
    shard_candidates[s] =
        FetchShardCandidates(prep, ranges[s], &outcomes[s].stats);
  });
  fetch_span.End();

  // ---- Round-based evaluation with a shared pruning floor ------------
  // Serial Algorithm 1 prunes against one shared heap whose j_k rises as
  // evaluation proceeds; S isolated local heaps would each have to fill
  // before §6.2 fires and would then prune against much weaker thresholds
  // (at full OD scale that means every candidate table gets evaluated —
  // 2-3x the serial work). Instead the shards advance in lockstep rounds
  // of k candidates each: between rounds, a barrier folds every local heap
  // into one global heap and publishes its k-th score as the shared floor.
  // The floor is exactly the serial heap's j_k over the evaluated prefix —
  // deterministic (round boundaries depend only on the shard plan, never
  // the schedule) and always <= the final j_k, so pruning with it cannot
  // drop a final top-k table. Round one evaluates <= S*k tables unpruned
  // (serial evaluates >= k before its heap fills, typically a comparable
  // number); from round two on, rule 1 usually breaks every shard at once.
  ScopedSpan evaluate_span(trace, "evaluate", troot);
  if (num_shards == 1) {
    EvaluateCandidates(*corpus_, *index_, prep, options, shard_candidates[0],
                       0, shard_candidates[0].size(), /*floor=*/std::nullopt,
                       &outcomes[0], trace, evaluate_span.id());
  } else if (num_shards > 1) {
    std::vector<size_t> pos(num_shards, 0);
    std::vector<size_t> chunk_end(num_shards, 0);
    // One flag byte per shard, each written by exactly one task per round.
    std::vector<unsigned char> broke(num_shards, 0);
    std::optional<int64_t> floor;
    std::vector<size_t> active;
    // ~k tables across all shards per round — the cadence at which the
    // serial heap's j_k moves. Wider chunks would evaluate whole rounds
    // against a stale floor and forfeit most of rule 2's mid-table cuts;
    // the barrier itself is microseconds against millisecond rounds.
    const size_t chunk =
        std::max<size_t>(1, (k + num_shards - 1) / num_shards);
    while (true) {
      active.clear();
      for (size_t s = 0; s < num_shards; ++s) {
        if (!broke[s] && pos[s] < shard_candidates[s].size()) {
          active.push_back(s);
        }
      }
      if (active.empty()) break;
      RunStrided(pool, width, active.size(), [&](size_t i) {
        const size_t s = active[i];
        ScopedSpan shard_span(trace, "evaluate_shard", evaluate_span.id(),
                              s + 1);
        const std::vector<TableCandidates>& cands = shard_candidates[s];
        chunk_end[s] = std::min(pos[s] + chunk, cands.size());
        broke[s] = EvaluateCandidates(*corpus_, *index_, prep, options,
                                      cands, pos[s], chunk_end[s], floor,
                                      &outcomes[s], trace, shard_span.id(),
                                      s + 1)
                       ? 1
                       : 0;
      });
      TopKHeap<TableId> global(k);
      for (const size_t s : active) {
        if (broke[s]) {
          // Rule 1 terminates the whole shard, not just the chunk.
          outcomes[s].stats.tables_pruned_rule1 +=
              shard_candidates[s].size() - chunk_end[s];
        } else {
          pos[s] = chunk_end[s];
        }
      }
      for (const ShardOutcome& out : outcomes) {
        for (const auto& entry : out.topk.SortedDesc()) {
          global.Add(entry.id, entry.score);
        }
      }
      if (global.Full()) floor = global.KthScore();
    }
  }

  evaluate_span.End();

  // ---- Deterministic merge (score desc, table id asc) ----------------
  // Each local heap holds the best k of its shard, so the union contains
  // the global top-k; re-offering every entry to one heap applies the
  // exact serial tie-break regardless of arrival order.
  ScopedSpan merge_span(trace, "merge", troot);
  const size_t fanout = std::max<size_t>(std::min<size_t>(width, num_shards),
                                         1);
  TopKHeap<TableId> merged(k);
  std::unordered_map<TableId, std::vector<ColumnId>> best_mappings;
  for (ShardOutcome& out : outcomes) {
    stats.Merge(out.stats);
    for (const auto& entry : out.topk.SortedDesc()) {
      merged.Add(entry.id, entry.score);
    }
    for (auto& [table_id, mapping] : out.best_mappings) {
      best_mappings.emplace(table_id, std::move(mapping));
    }
  }
  result.top_k = FinalizeTopK(merged, best_mappings);
  stats.shards_used = num_shards > 0 ? num_shards : 1;
  stats.fanout_threads = fanout;
  stats.runtime_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace mate
