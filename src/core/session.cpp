#include "core/session.h"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/query_executor.h"
#include "hash/md5.h"
#include "index/index_io.h"
#include "storage/corpus_io.h"
#include "util/coding.h"
#include "util/simd.h"
#include "util/stopwatch.h"

namespace mate {

namespace {

// Cross-checks that the index covers exactly the corpus's tables and rows
// — the cheap shape invariant that catches a corpus/index file mix-up at
// Open instead of as an out-of-bounds probe mid-query. `rows_per_table`
// comes from the super keys for in-memory indexes and from the file's
// shape header for phased loads (where the super keys are not resident
// yet).
Status ValidateShapeMatchesCorpus(const Corpus& corpus,
                                  const std::vector<uint64_t>& rows_per_table) {
  if (rows_per_table.size() != corpus.NumTables()) {
    return Status::Corruption(
        "index covers " + std::to_string(rows_per_table.size()) +
        " tables but the corpus has " + std::to_string(corpus.NumTables()));
  }
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    // Shape accessor: cross-validation against a lazily opened corpus must
    // parse zero cells (both sides come from their files' shape headers).
    if (rows_per_table[t] != corpus.table_num_rows(t)) {
      return Status::Corruption(
          "index table " + std::to_string(t) + " has " +
          std::to_string(rows_per_table[t]) + " super keys but the corpus "
          "table has " + std::to_string(corpus.table_num_rows(t)) + " rows");
    }
  }
  return Status::OK();
}

Status ValidateIndexMatchesCorpus(const Corpus& corpus,
                                  const InvertedIndex& index) {
  return ValidateShapeMatchesCorpus(corpus, index.superkeys().RowCounts());
}

}  // namespace

// Phase-2 streaming state shared between the session and its loader
// task/thread. The task captures the shared_ptr (so the state survives
// Session moves) and writes into the index through the PhasedIndexLoad's
// internal pointer — stable because the index lives behind a unique_ptr.
// `status` is written before the latch counts down, so readers returning
// from Wait observe it.
struct Session::PendingLoad {
  explicit PendingLoad(PhasedIndexLoad load_in) : load(std::move(load_in)) {}
  ~PendingLoad() {
    if (thread.joinable()) thread.join();
  }

  PhasedIndexLoad load;
  Latch done{1};
  Status status;
  std::thread thread;  // set when the pool is serial (inline Submit)
};

// Background corpus-warmer state. The warmer callable co-owns the table
// store (Corpus::MakeWarmer), so materialization stays valid across Session
// moves; the latch + join give QuiesceLoad a reliable drain. Always a
// dedicated thread: pool Wait() is global, and a query's shard barrier must
// never absorb a cold giant table's parse.
struct Session::PendingWarm {
  explicit PendingWarm(std::function<Status()> warmer_in)
      : warmer(std::move(warmer_in)) {}
  ~PendingWarm() {
    if (thread.joinable()) thread.join();
  }

  std::function<Status()> warmer;
  Latch done{1};
  Status status;
  std::thread thread;
};

Session::~Session() { QuiesceLoad(); }

Session::Session(Session&&) noexcept = default;

Session& Session::operator=(Session&& other) noexcept {
  if (this != &other) {
    // Our loader (if any) must be fully stopped before our index goes
    // away; the pool's destructor only covers the pool-task flavor.
    QuiesceLoad();
    corpus_ = std::move(other.corpus_);
    index_ = std::move(other.index_);
    pool_ = std::move(other.pool_);
    cache_ = std::move(other.cache_);
    corpus_stats_ = std::move(other.corpus_stats_);
    hash_family_ = other.hash_family_;
    build_report_ = std::move(other.build_report_);
    pending_ = std::move(other.pending_);
    warm_ = std::move(other.warm_);
  }
  return *this;
}

void Session::QuiesceLoad() const {
  if (pending_ != nullptr) {
    pending_->done.Wait();
    if (pending_->thread.joinable()) pending_->thread.join();
  }
  if (warm_ != nullptr) {
    warm_->done.Wait();
    if (warm_->thread.joinable()) warm_->thread.join();
  }
}

Status Session::WaitUntilReady() const {
  if (pending_ == nullptr) return Status::OK();
  pending_->done.Wait();
  return pending_->status;
}

bool Session::index_ready() const {
  return pending_ == nullptr || pending_->done.TryWait();
}

Status Session::WaitCorpusResident() const {
  if (warm_ != nullptr) {
    warm_->done.Wait();
    return warm_->status;
  }
  // No warmer running (eager/adopted corpora are already resident, this
  // returns immediately; warm_corpus=false sessions materialize here).
  return corpus_.MaterializeAll();
}

bool Session::corpus_resident() const { return corpus_.fully_resident(); }

Result<Session> Session::Open(SessionOptions options) {
  Session session;

  // ---- option validation (no I/O yet) -------------------------------
  if (options.corpus.has_value() && !options.corpus_path.empty()) {
    return Status::InvalidArgument(
        "SessionOptions sets both corpus and corpus_path; pick one");
  }
  if (!options.corpus.has_value() && options.corpus_path.empty()) {
    return Status::InvalidArgument(
        "SessionOptions needs a corpus source (corpus or corpus_path)");
  }
  const int index_sources = (options.index != nullptr ? 1 : 0) +
                            (!options.index_path.empty() ? 1 : 0) +
                            (options.build_index ? 1 : 0);
  if (index_sources > 1) {
    return Status::InvalidArgument(
        "SessionOptions sets more than one of index, index_path, and "
        "build_index; pick one");
  }

  // Kernel dispatch is process-global; the knob only ever *narrows* to the
  // scalar reference (a false value must not undo MATE_FORCE_SCALAR).
  if (options.force_scalar_kernels) simd::ForceScalar(true);

  session.pool_ = std::make_unique<ThreadPool>(options.num_threads);

  // ---- index phase 1, before the corpus is read ---------------------
  // A phased load kicks off its posting/super-key streaming here so phase
  // 2 overlaps the corpus deserialization below — the two big sequential
  // reads of the old blocking Open. Every query path blocks on `done`
  // before touching the index, and QuiesceLoad covers teardown (including
  // the early error returns further down: ~Session waits the latch).
  bool have_stats = false;
  if (!options.index_path.empty()) {
    MATE_ASSIGN_OR_RETURN(PhasedIndexLoad load,
                          PhasedIndexLoad::Begin(options.index_path));
    session.hash_family_ = load.hash_family();
    session.corpus_stats_ = load.corpus_stats();
    have_stats = session.corpus_stats_.num_cells > 0;
    session.index_ = load.TakeIndex();
    if (options.eager_load) {
      MATE_RETURN_IF_ERROR(load.Finish());
    } else {
      auto pending = std::make_shared<PendingLoad>(std::move(load));
      session.pending_ = pending;
      auto run = [state = pending] {
        state->status = state->load.Finish();
        state->done.CountDown();
      };
      if (session.pool_->num_threads() > 1) {
        session.pool_->Submit(std::move(run));
      } else {
        // A serial pool runs Submit inline on the caller; a dedicated
        // loader thread keeps Open non-blocking even at num_threads = 1.
        pending->thread = std::thread(std::move(run));
      }
    }
  }

  // ---- corpus (overlapped by phase 2 when phased) -------------------
  // The default path-based load is *lazy*: mmap + stats header + table
  // directory only, so the shape cross-validation below parses zero cells
  // and Open's corpus cost is the directory walk. v1 files fall back to
  // the eager legacy parse inside OpenCorpusLazy.
  bool corpus_file_stats = false;
  CorpusStats corpus_header_stats;
  if (options.corpus.has_value()) {
    session.corpus_ = std::move(*options.corpus);
  } else if (options.eager_corpus) {
    // Eager load keeps the v2 header's persisted stats too — eagerness
    // changes residency, not whether Open must pay a ComputeStats scan.
    MATE_ASSIGN_OR_RETURN(std::string data,
                          ReadFileToString(options.corpus_path));
    MATE_ASSIGN_OR_RETURN(
        session.corpus_,
        DeserializeCorpus(data, &corpus_header_stats, &corpus_file_stats));
  } else {
    MATE_ASSIGN_OR_RETURN(
        session.corpus_,
        OpenCorpusLazy(options.corpus_path, &corpus_header_stats,
                       &corpus_file_stats));
  }

  // ---- remaining index sources + cross-validation -------------------
  if (options.index != nullptr) {
    session.index_ = std::move(options.index);
    session.hash_family_ = options.index_family;
    if (options.validate) {
      MATE_RETURN_IF_ERROR(
          ValidateIndexMatchesCorpus(session.corpus_, *session.index_));
    }
  } else if (!options.index_path.empty()) {
    if (options.validate) {
      // Against the shape header parsed in phase 1 — the super keys may
      // still be streaming.
      const std::vector<uint64_t>& rows_per_table =
          session.pending_ != nullptr
              ? session.pending_->load.rows_per_table()
              : session.index_->superkeys().RowCounts();
      MATE_RETURN_IF_ERROR(
          ValidateShapeMatchesCorpus(session.corpus_, rows_per_table));
    }
  } else if (options.build_index) {
    MATE_ASSIGN_OR_RETURN(
        session.index_,
        BuildIndexWithReport(session.corpus_, options.build_options,
                             &session.build_report_));
    session.corpus_stats_ = session.build_report_.corpus_stats;
    session.hash_family_ = options.build_options.hash_family;
    have_stats = true;
    if (options.validate) {
      MATE_RETURN_IF_ERROR(
          ValidateIndexMatchesCorpus(session.corpus_, *session.index_));
    }
  }
  // Stats priority: what the index was built with (hash parameterization
  // must match), else the corpus v2 header's persisted stats (satisfying a
  // lazy open without a scan), else the full ComputeStats scan — which
  // materializes a lazy corpus, making it effectively eager.
  if (!have_stats && corpus_file_stats) {
    session.corpus_stats_ = corpus_header_stats;
    have_stats = true;
  }
  if (!have_stats) session.corpus_stats_ = session.corpus_.ComputeStats();

  // ---- corpus residency budget ---------------------------------------
  // Armed before any query can materialize tables. The immediate evict
  // covers opens whose setup already materialized cells (an eager load, or
  // the ComputeStats fallback scan above): the session must not start its
  // life over budget.
  if (options.corpus_budget_bytes > 0) {
    session.corpus_.SetBudget(options.corpus_budget_bytes);
    session.corpus_.EvictToBudget();
  }

  if (options.cache_bytes > 0) {
    session.cache_ = std::make_unique<ResultCache>(options.cache_bytes);
  }

  // ---- background corpus warmer (last: no error return may follow) ---
  // Spawned only when tables are actually cold; built/adopted/eager
  // corpora (and lazy ones fully drained by a stats scan above) skip it.
  // A residency budget also skips it: warming the whole lake just to evict
  // it back down wastes the parse, and on-demand (columnar) materialization
  // is the budgeted session's whole point.
  if (options.warm_corpus && options.corpus_budget_bytes == 0 &&
      !session.corpus_.fully_resident()) {
    auto warm = std::make_shared<PendingWarm>(session.corpus_.MakeWarmer());
    session.warm_ = warm;
    warm->thread = std::thread([state = warm] {
      state->status = state->warmer();
      state->done.CountDown();
    });
  }
  return session;
}

Status Session::ValidateQuery(const QuerySpec& spec) const {
  if (spec.table == nullptr) {
    return Status::InvalidArgument("QuerySpec.table is null");
  }
  if (spec.key_columns.empty()) {
    return Status::InvalidArgument("QuerySpec.key_columns is empty");
  }
  std::unordered_set<ColumnId> seen;
  for (ColumnId c : spec.key_columns) {
    if (c >= spec.table->NumColumns()) {
      return Status::InvalidArgument(
          "key column " + std::to_string(c) + " out of range (query table '" +
          spec.table->name() + "' has " +
          std::to_string(spec.table->NumColumns()) + " columns)");
    }
    if (!seen.insert(c).second) {
      return Status::InvalidArgument("duplicate key column " +
                                     std::to_string(c));
    }
  }
  if (spec.options.k <= 0) {
    return Status::InvalidArgument(
        "k must be positive, got " + std::to_string(spec.options.k));
  }
  for (TableId t : spec.options.exclude_tables) {
    if (t >= corpus_.NumTables()) {
      return Status::InvalidArgument(
          "exclude_tables id " + std::to_string(t) +
          " not in corpus (" + std::to_string(corpus_.NumTables()) +
          " tables)");
    }
  }
  for (TableId t : spec.options.restrict_tables) {
    if (t >= corpus_.NumTables()) {
      return Status::InvalidArgument(
          "restrict_tables id " + std::to_string(t) +
          " not in corpus (" + std::to_string(corpus_.NumTables()) +
          " tables)");
    }
  }
  return Status::OK();
}

std::string Session::FingerprintQuery(const QuerySpec& spec) const {
  // Only result-affecting state enters the stream. Execution-only knobs —
  // QuerySpec::intra_query_threads / intra_query_shards and the session's
  // pool width — are deliberately absent: the executor guarantees
  // bit-identical top_k at every setting, so the same logical query must
  // hit the cache no matter how it is parallelized.
  std::string stream;
  stream.reserve(256);
  PutVarint32(&stream, static_cast<uint32_t>(spec.options.k));
  stream.push_back(static_cast<char>(spec.options.init_strategy));
  stream.push_back(static_cast<char>((spec.options.use_row_filter ? 1 : 0) |
                                     (spec.options.use_table_filters ? 2
                                                                     : 0)));
  // Exclusion/restriction are set-semantics; sort so permutations hit.
  for (const std::vector<TableId>* ids :
       {&spec.options.exclude_tables, &spec.options.restrict_tables}) {
    std::vector<TableId> sorted(*ids);
    std::sort(sorted.begin(), sorted.end());
    PutVarint64(&stream, sorted.size());
    for (TableId t : sorted) PutVarint32(&stream, t);
  }
  // Key-column *contents* (not column ids): discovery reads nothing else
  // from the query table, so content-identical key specs share results.
  const Table& table = *spec.table;
  PutVarint64(&stream, spec.key_columns.size());
  for (RowId r = 0; r < table.NumRows(); ++r) {
    if (table.IsRowDeleted(r)) continue;
    for (ColumnId c : spec.key_columns) {
      PutLengthPrefixed(&stream, table.cell(r, c));
    }
  }
  // Digest the unambiguous stream to a fixed 16-byte key: query tables can
  // run to 10^5+ rows, and storing/compare-probing multi-MB keys would eat
  // the cache budget and every map operation. A 128-bit digest keeps the
  // bit-identical-hit guarantee up to negligible collision probability.
  const Md5Digest digest = Md5(stream);
  return std::string(reinterpret_cast<const char*>(digest.bytes.data()),
                     digest.bytes.size());
}

DiscoveryResult Session::RunQuery(const QuerySpec& spec, bool intra_parallel) {
  // Roots the executor's phase spans under the attach parent — Discover
  // points it at its "discover" span; the batch path leaves the caller's
  // (usually no) attachment in place.
  ScopedSpan execute(spec.trace, "execute",
                     spec.trace != nullptr ? spec.trace->attach_parent()
                                           : QueryTrace::kNoParent);
  QueryExecutor executor(&corpus_, index_.get());
  ExecutorOptions exec;
  exec.intra_query_threads = intra_parallel ? spec.intra_query_threads : 1;
  exec.num_shards = intra_parallel ? spec.intra_query_shards : 0;
  exec.trace = spec.trace;
  exec.trace_parent = execute.id();
  return executor.Discover(*spec.table, spec.key_columns, spec.options, exec,
                           intra_parallel ? pool_.get() : nullptr);
}

Result<uint64_t> Session::EstimatePlItems(const QuerySpec& spec) const {
  if (!has_index()) {
    return Status::InvalidArgument(
        "session has no index; open with index_path, index, or build_index");
  }
  MATE_RETURN_IF_ERROR(ValidateQuery(spec));
  MATE_RETURN_IF_ERROR(WaitUntilReady());
  QueryExecutor executor(&corpus_, index_.get());
  return executor.EstimatePlItems(*spec.table, spec.key_columns,
                                  spec.options);
}

Result<DiscoveryResult> Session::Discover(const QuerySpec& spec) {
  QueryTrace* const trace = spec.trace;
  ScopedSpan discover(trace, "discover",
                      trace != nullptr ? trace->attach_parent()
                                       : QueryTrace::kNoParent);
  if (trace != nullptr) trace->SetAttachParent(discover.id());
  if (!has_index()) {
    return Status::InvalidArgument(
        "session has no index; open with index_path, index, or build_index");
  }
  {
    ScopedSpan span(trace, "validate", discover.id());
    MATE_RETURN_IF_ERROR(ValidateQuery(spec));
  }
  // The first query after a phased Open blocks here until postings and
  // super keys are hot (and surfaces any deferred load corruption). It
  // does NOT wait for corpus residency: candidate tables materialize on
  // demand, and a malformed cell blob — hit by this query or latched
  // earlier by the warmer — surfaces as the sticky corpus status instead
  // of a silently stubbed result.
  {
    ScopedSpan span(trace, "readiness_wait", discover.id());
    MATE_RETURN_IF_ERROR(WaitUntilReady());
    MATE_RETURN_IF_ERROR(corpus_.load_status());
  }
  if (cache_ == nullptr) {
    DiscoveryResult result = RunQuery(spec, /*intra_parallel=*/true);
    MATE_RETURN_IF_ERROR(corpus_.load_status());
    // Idle point: the query's shards have drained off the pool, so the
    // residency budget (no-op when unarmed) may reclaim what it parsed.
    corpus_.EvictToBudget();
    return result;
  }
  std::string key;
  DiscoveryResult result;
  bool hit = false;
  {
    ScopedSpan span(trace, "cache_lookup", discover.id());
    key = FingerprintQuery(spec);
    hit = cache_->Lookup(spec.tenant, key, &result);
  }
  if (hit) return result;
  result = RunQuery(spec, /*intra_parallel=*/true);
  // Re-check before caching: a result computed over a stub table must
  // neither be returned nor poison future hits.
  MATE_RETURN_IF_ERROR(corpus_.load_status());
  {
    ScopedSpan span(trace, "cache_insert", discover.id());
    cache_->Insert(spec.tenant, key, result);
  }
  corpus_.EvictToBudget();
  return result;
}

Result<BatchResult> Session::DiscoverBatch(
    const std::vector<QuerySpec>& specs) {
  if (!has_index()) {
    return Status::InvalidArgument(
        "session has no index; open with index_path, index, or build_index");
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    if (Status status = ValidateQuery(specs[i]); !status.ok()) {
      return Status::InvalidArgument("query " + std::to_string(i) + ": " +
                                     status.message());
    }
  }
  MATE_RETURN_IF_ERROR(WaitUntilReady());
  MATE_RETURN_IF_ERROR(corpus_.load_status());
  // The pool serves one parallelism axis at a time (its Wait() is global,
  // so shard fan-out cannot nest inside a query fan-out): a batch that
  // boils down to one uncached query routes it through the intra-query
  // executor; otherwise queries fan out and each runs serially.
  const auto run_serial = [this, &specs](size_t i) {
    return RunQuery(specs[i], /*intra_parallel=*/false);
  };
  const auto single_query_batch = [this](const QuerySpec& spec) {
    Stopwatch wall;
    BatchResult batch;
    batch.results.push_back(RunQuery(spec, /*intra_parallel=*/true));
    batch.stats = AggregateBatchStats(batch.results, wall.ElapsedSeconds(),
                                      pool_->num_threads());
    return batch;
  };
  // One idle-point eviction per batch, with the traffic it moved recorded
  // in the batch's stats (the deltas are this call's alone: the counters
  // are cumulative across the session).
  const auto evict_into = [this](BatchStats* stats) {
    const ResidencyStats before = corpus_.residency();
    corpus_.EvictToBudget();
    const ResidencyStats after = corpus_.residency();
    stats->corpus_evictions = after.evictions - before.evictions;
    stats->corpus_evicted_bytes = after.bytes_evicted - before.bytes_evicted;
  };
  if (cache_ == nullptr) {
    BatchResult batch = specs.size() == 1
                            ? single_query_batch(specs[0])
                            : RunBatch(specs.size(), run_serial);
    // Queries racing the warmer materialize tables on demand; any blob
    // corruption either side hit is latched — surface it, not a result
    // computed over a shape stub.
    MATE_RETURN_IF_ERROR(corpus_.load_status());
    evict_into(&batch.stats);
    return batch;
  }

  Stopwatch wall;
  BatchResult batch;
  batch.results.resize(specs.size());

  // Group by (tenant, fingerprint): one probe and at most one computation
  // per distinct query per partition; followers are copies and count as
  // hits. The tenant joins the grouping key — not the fingerprint — because
  // identical queries from different tenants probe different partitions.
  std::vector<std::string> keys(specs.size());
  std::vector<std::vector<size_t>> groups;  // first-appearance order
  {
    std::unordered_map<std::string, size_t> group_of;
    for (size_t i = 0; i < specs.size(); ++i) {
      keys[i] = FingerprintQuery(specs[i]);
      std::string group_key = specs[i].tenant;
      group_key.push_back('\0');
      group_key += keys[i];
      auto [it, inserted] = group_of.emplace(std::move(group_key),
                                             groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(i);
    }
  }

  uint64_t hits = 0, misses = 0;
  std::vector<size_t> leaders;  // first index of each group to compute
  for (const std::vector<size_t>& group : groups) {
    const size_t first = group.front();
    DiscoveryResult cached;
    if (cache_->Lookup(specs[first].tenant, keys[first], &cached)) {
      for (size_t i : group) batch.results[i] = cached;
      hits += group.size();
    } else {
      leaders.push_back(first);
      misses += 1;
      hits += group.size() - 1;
    }
  }

  if (!leaders.empty()) {
    BatchResult computed;
    if (leaders.size() == 1) {
      computed.results.push_back(
          RunQuery(specs[leaders[0]], /*intra_parallel=*/true));
    } else {
      computed = RunDiscoveryBatch(
          leaders.size(), [&](size_t j) { return run_serial(leaders[j]); },
          pool_.get());
    }
    // Before any result is cached or distributed: results computed over a
    // corrupt (stubbed) table must not be served or poison the cache.
    MATE_RETURN_IF_ERROR(corpus_.load_status());
    size_t j = 0;
    for (const std::vector<size_t>& group : groups) {
      const size_t first = group.front();
      if (j < leaders.size() && leaders[j] == first) {
        const DiscoveryResult& result = computed.results[j];
        for (size_t i : group) batch.results[i] = result;
        cache_->Insert(specs[first].tenant, keys[first], result);
        ++j;
      }
    }
  }

  batch.stats = AggregateBatchStats(batch.results, wall.ElapsedSeconds(),
                                    pool_->num_threads());
  batch.stats.cache_hits = hits;
  batch.stats.cache_misses = misses;
  evict_into(&batch.stats);
  return batch;
}

BatchResult Session::RunBatch(
    size_t n, const std::function<DiscoveryResult(size_t)>& run_one) {
  return RunDiscoveryBatch(n, run_one, pool_.get());
}

void Session::InvalidateCache() {
  if (cache_ != nullptr) cache_->Clear();
}

void Session::InvalidateCache(std::string_view tenant) {
  if (cache_ != nullptr) cache_->ClearPartition(tenant);
}

ResultCacheStats Session::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : ResultCacheStats{};
}

ResultCacheStats Session::cache_partition_stats(
    std::string_view tenant) const {
  return cache_ != nullptr ? cache_->partition_stats(tenant)
                           : ResultCacheStats{};
}

void Session::ConfigureCachePartition(std::string_view tenant, size_t bytes) {
  if (cache_ != nullptr) cache_->ConfigurePartition(tenant, bytes);
}

void Session::ConfigureCache(size_t bytes) {
  cache_ = bytes > 0 ? std::make_unique<ResultCache>(bytes) : nullptr;
}

Status Session::ResetHash(HashFamily family, size_t hash_bits) {
  std::unique_ptr<RowHashFunction> hash = MakeRowHash(
      family, hash_bits,
      corpus_stats_.num_cells > 0 ? &corpus_stats_ : nullptr);
  if (hash == nullptr) {
    return Status::InvalidArgument("unsupported hash configuration");
  }
  return ResetHash(family, std::move(hash));
}

Status Session::ResetHash(HashFamily family,
                          std::unique_ptr<RowHashFunction> hash) {
  if (!has_index()) {
    return Status::InvalidArgument("session has no index to re-key");
  }
  MATE_RETURN_IF_ERROR(WaitUntilReady());
  // Re-keying scans every cell: make the corpus resident first and refuse
  // to hash shape stubs left behind by a corrupt blob.
  MATE_RETURN_IF_ERROR(WaitCorpusResident());
  MATE_RETURN_IF_ERROR(
      index_->ResetHash(corpus_, std::move(hash), pool_->num_threads()));
  hash_family_ = family;
  InvalidateCache();
  // The re-key scan materialized every cell; shed back to the budget.
  corpus_.EvictToBudget();
  return Status::OK();
}

Status Session::Save(const std::string& corpus_path,
                     const std::string& index_path) const {
  MATE_RETURN_IF_ERROR(WaitUntilReady());
  // Serialization needs every cell: drain the warmer (or materialize
  // inline) and refuse to persist a corpus whose blobs failed to parse.
  MATE_RETURN_IF_ERROR(WaitCorpusResident());
  // The stats land in the corpus v2 header, so reopening lazily needs no
  // ComputeStats scan. Like the index's stored stats, they snapshot the
  // corpus as of the last build/scan; maintenance edits can lag them.
  MATE_RETURN_IF_ERROR(SaveCorpus(corpus_, corpus_stats_, corpus_path));
  if (index_ != nullptr) {
    MATE_RETURN_IF_ERROR(
        SaveIndex(*index_, hash_family_, corpus_stats_, index_path));
  }
  // Serialization made everything resident; shed back down to the budget
  // (no-op when unarmed) now that the scan is over.
  corpus_.EvictToBudget();
  return Status::OK();
}

void Session::SetNumThreads(unsigned num_threads) {
  pool_ = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace mate
