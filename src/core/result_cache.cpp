#include "core/result_cache.h"

#include <sstream>

namespace mate {

namespace {
// Fixed per-entry overhead: list node, map slot, Entry struct.
constexpr size_t kEntryOverheadBytes = 128;
}  // namespace

std::string ResultCacheStats::ToString() const {
  std::ostringstream os;
  os << "hits=" << hits << " misses=" << misses << " hit_rate=" << HitRate()
     << " entries=" << entries << " bytes=" << bytes << "/" << capacity_bytes
     << " insertions=" << insertions << " evictions=" << evictions;
  return os.str();
}

size_t ResultCache::ApproxResultBytes(const DiscoveryResult& result) {
  size_t bytes = sizeof(DiscoveryResult);
  for (const TableResult& tr : result.top_k) {
    bytes +=
        sizeof(TableResult) + tr.best_mapping.capacity() * sizeof(ColumnId);
  }
  return bytes;
}

ResultCache::Partition& ResultCache::GetOrCreate(std::string_view partition) {
  auto it = partitions_.find(partition);
  if (it == partitions_.end()) {
    it = partitions_.emplace(std::string(partition), Partition{}).first;
    it->second.capacity_bytes = default_capacity_bytes_;
  }
  return it->second;
}

void ResultCache::EvictToBudget(Partition* p) {
  while (p->bytes > p->capacity_bytes && !p->lru.empty()) {
    const Entry& victim = p->lru.back();
    p->bytes -= victim.bytes;
    p->index.erase(std::string_view(victim.key));
    p->lru.pop_back();
    ++p->evictions;
  }
}

bool ResultCache::Lookup(std::string_view partition, const std::string& key,
                         DiscoveryResult* result) {
  std::lock_guard<std::mutex> lock(mu_);
  Partition& p = GetOrCreate(partition);
  auto it = p.index.find(std::string_view(key));
  if (it == p.index.end()) {
    ++p.misses;
    return false;
  }
  ++p.hits;
  p.lru.splice(p.lru.begin(), p.lru, it->second);
  *result = it->second->result;
  return true;
}

void ResultCache::Insert(std::string_view partition, const std::string& key,
                         const DiscoveryResult& result) {
  const size_t entry_bytes =
      key.size() + ApproxResultBytes(result) + kEntryOverheadBytes;
  std::lock_guard<std::mutex> lock(mu_);
  Partition& p = GetOrCreate(partition);
  auto it = p.index.find(std::string_view(key));
  if (it != p.index.end()) {
    if (entry_bytes > p.capacity_bytes) {
      // The refreshed value can never fit: drop the key entirely rather
      // than blowing the budget and letting the eviction loop below wipe
      // every other entry.
      p.bytes -= it->second->bytes;
      auto node = it->second;
      p.index.erase(it);  // before the list node its key view points into
      p.lru.erase(node);
      ++p.evictions;
      return;
    }
    // Refresh in place (identical queries recompute identical results, but
    // keep the newest copy and re-account its size).
    p.bytes -= it->second->bytes;
    it->second->result = result;
    it->second->bytes = entry_bytes;
    p.bytes += entry_bytes;
    p.lru.splice(p.lru.begin(), p.lru, it->second);
  } else {
    if (entry_bytes > p.capacity_bytes) return;  // can never fit
    p.lru.push_front(Entry{key, result, entry_bytes});
    p.index.emplace(std::string_view(p.lru.front().key), p.lru.begin());
    p.bytes += entry_bytes;
    ++p.insertions;
  }
  EvictToBudget(&p);
}

void ResultCache::ConfigurePartition(std::string_view partition,
                                     size_t capacity_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Partition& p = GetOrCreate(partition);
  p.capacity_bytes = capacity_bytes;
  EvictToBudget(&p);
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, p] : partitions_) {
    p.index.clear();
    p.lru.clear();
    p.bytes = 0;
  }
}

bool ResultCache::ClearPartition(std::string_view partition) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = partitions_.find(partition);
  if (it == partitions_.end()) return false;
  Partition& p = it->second;
  p.index.clear();
  p.lru.clear();
  p.bytes = 0;
  return true;
}

ResultCacheStats ResultCache::SnapshotPartition(const Partition& p) {
  ResultCacheStats stats;
  stats.hits = p.hits;
  stats.misses = p.misses;
  stats.insertions = p.insertions;
  stats.evictions = p.evictions;
  stats.entries = p.lru.size();
  stats.bytes = p.bytes;
  stats.capacity_bytes = p.capacity_bytes;
  return stats;
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheStats total;
  // An untouched cache still reports its configured capacity.
  total.capacity_bytes = partitions_.empty() ? default_capacity_bytes_ : 0;
  for (const auto& [name, p] : partitions_) {
    const ResultCacheStats s = SnapshotPartition(p);
    total.hits += s.hits;
    total.misses += s.misses;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
    total.entries += s.entries;
    total.bytes += s.bytes;
    total.capacity_bytes += s.capacity_bytes;
  }
  return total;
}

ResultCacheStats ResultCache::partition_stats(
    std::string_view partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = partitions_.find(partition);
  return it == partitions_.end() ? ResultCacheStats{}
                                 : SnapshotPartition(it->second);
}

std::vector<std::pair<std::string, ResultCacheStats>>
ResultCache::AllPartitionStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, ResultCacheStats>> out;
  out.reserve(partitions_.size());
  for (const auto& [name, p] : partitions_) {
    out.emplace_back(name, SnapshotPartition(p));
  }
  return out;
}

}  // namespace mate
