#include "core/result_cache.h"

#include <sstream>

namespace mate {

namespace {
// Fixed per-entry overhead: list node, map slot, Entry struct.
constexpr size_t kEntryOverheadBytes = 128;
}  // namespace

std::string ResultCacheStats::ToString() const {
  std::ostringstream os;
  os << "hits=" << hits << " misses=" << misses << " hit_rate=" << HitRate()
     << " entries=" << entries << " bytes=" << bytes << "/" << capacity_bytes
     << " insertions=" << insertions << " evictions=" << evictions;
  return os.str();
}

size_t ResultCache::ApproxResultBytes(const DiscoveryResult& result) {
  size_t bytes = sizeof(DiscoveryResult);
  for (const TableResult& tr : result.top_k) {
    bytes +=
        sizeof(TableResult) + tr.best_mapping.capacity() * sizeof(ColumnId);
  }
  return bytes;
}

bool ResultCache::Lookup(const std::string& key, DiscoveryResult* result) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string_view(key));
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  *result = it->second->result;
  return true;
}

void ResultCache::Insert(const std::string& key,
                         const DiscoveryResult& result) {
  const size_t entry_bytes =
      key.size() + ApproxResultBytes(result) + kEntryOverheadBytes;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string_view(key));
  if (it != index_.end()) {
    if (entry_bytes > capacity_bytes_) {
      // The refreshed value can never fit: drop the key entirely rather
      // than blowing the budget and letting the eviction loop below wipe
      // every other entry.
      bytes_ -= it->second->bytes;
      auto node = it->second;
      index_.erase(it);  // before the list node its key view points into
      lru_.erase(node);
      ++evictions_;
      return;
    }
    // Refresh in place (identical queries recompute identical results, but
    // keep the newest copy and re-account its size).
    bytes_ -= it->second->bytes;
    it->second->result = result;
    it->second->bytes = entry_bytes;
    bytes_ += entry_bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    if (entry_bytes > capacity_bytes_) return;  // can never fit
    lru_.push_front(Entry{key, result, entry_bytes});
    index_.emplace(std::string_view(lru_.front().key), lru_.begin());
    bytes_ += entry_bytes;
    ++insertions_;
  }
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(std::string_view(victim.key));
    lru_.pop_back();
    ++evictions_;
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
  bytes_ = 0;
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  stats.capacity_bytes = capacity_bytes_;
  return stats;
}

}  // namespace mate
