// Multi-threaded batch discovery: fans a set of independent queries out
// over a work-stealing thread pool and aggregates the per-query stats the
// paper reports over query *sets* (Fig. 4-6, Tables 1-3). Every query runs
// the unmodified serial `MateSearch::Discover`, and results land in slots
// indexed by query position, so a batch is bit-identical to the serial loop
// at any thread count (timings aside).
//
// Two layers:
//   * RunDiscoveryBatch — generic fan-out over any per-query callable; the
//     bench runners route all five SystemKinds through it.
//   * DiscoveryEngine — the MATE-specific convenience wrapper
//     (`DiscoverBatch`) used by the CLI and examples.

#ifndef MATE_CORE_DISCOVERY_ENGINE_H_
#define MATE_CORE_DISCOVERY_ENGINE_H_

#include <functional>
#include <string>
#include <vector>

#include "core/mate.h"

namespace mate {

class ThreadPool;

struct BatchQuery {
  /// Must outlive the batch call.
  const Table* query = nullptr;
  std::vector<ColumnId> key_columns;
};

struct BatchOptions {
  /// Worker threads for the fan-out (IndexBuilder convention: 0 = hardware
  /// concurrency, 1 = fully serial on the calling thread).
  unsigned num_threads = 1;
};

/// Aggregate instrumentation over one batch. Counter sums are accumulated
/// in query-index order, so they are deterministic at any thread count;
/// wall/latency figures are the only nondeterministic fields.
struct BatchStats {
  size_t queries = 0;
  unsigned num_threads = 1;

  double wall_seconds = 0.0;         // end-to-end batch time
  double total_query_seconds = 0.0;  // sum of per-query runtimes

  // Per-query latency distribution (seconds), computed through a
  // LatencyHistogram over integer microseconds — the same HDR layout and
  // nearest-rank rule (PercentileSorted's definition) the serving layer
  // reports, so the two surfaces can never disagree. max is exact; the
  // percentiles carry the histogram's bounded relative error (at most
  // 1/16 above the sorted-vector answer). Defined for 0/1/2-query batches
  // too. A cached query contributes the runtime recorded when its result
  // was originally computed, not its (near-zero) serving time;
  // wall_seconds is the honest end-to-end figure.
  double latency_p50_s = 0.0;
  double latency_p90_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_max_s = 0.0;

  // Work counters summed over queries.
  uint64_t pl_items_fetched = 0;
  uint64_t rows_checked = 0;
  uint64_t rows_sent_to_verification = 0;
  uint64_t rows_true_positive = 0;

  // Result-cache traffic for this batch (always 0 outside a cache-enabled
  // mate::Session). A duplicate query inside one batch counts as a hit:
  // it is served by copying the leader's result instead of recomputing.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  // Intra-query parallelism traffic (core/query_executor.h): queries that
  // ran the sharded executor (shards_used > 1), the shards they fanned out
  // over in total, and the widest per-query fan-out seen. A cache hit
  // reports the shape recorded when its result was originally computed.
  uint64_t intra_parallel_queries = 0;
  uint64_t intra_shards_total = 0;
  uint64_t max_fanout_threads = 1;

  // Corpus residency traffic. tables_materialized / cell_bytes_materialized
  // sum the queries' materialization work; corpus_evictions /
  // corpus_evicted_bytes are the budget evictions the batch's idle points
  // triggered (always 0 outside a budgeted mate::Session, which fills them
  // from the residency deltas around the batch).
  uint64_t tables_materialized = 0;
  uint64_t cell_bytes_materialized = 0;
  uint64_t corpus_evictions = 0;
  uint64_t corpus_evicted_bytes = 0;

  double QueriesPerSecond() const {
    return wall_seconds > 0.0 ? static_cast<double>(queries) / wall_seconds
                              : 0.0;
  }

  std::string ToString() const;
};

struct BatchResult {
  /// results[i] corresponds to the i-th input query.
  std::vector<DiscoveryResult> results;
  BatchStats stats;
};

/// Runs `run_one(i)` for i in [0, num_queries) on a work-stealing pool and
/// aggregates BatchStats. `run_one` must be safe to call concurrently.
BatchResult RunDiscoveryBatch(
    size_t num_queries,
    const std::function<DiscoveryResult(size_t)>& run_one,
    const BatchOptions& batch_options);

/// Same fan-out on an existing `pool` (mate::Session reuses one long-lived
/// pool this way instead of spinning workers up per batch). The pool must
/// be idle; the call submits, waits, and leaves it idle again.
BatchResult RunDiscoveryBatch(
    size_t num_queries,
    const std::function<DiscoveryResult(size_t)>& run_one, ThreadPool* pool);

/// Folds per-query results (in query-index order) plus a measured wall time
/// into BatchStats — shared by the fan-out paths above and Session's cached
/// batch path.
BatchStats AggregateBatchStats(const std::vector<DiscoveryResult>& results,
                               double wall_seconds, unsigned num_threads);

class DiscoveryEngine {
 public:
  /// Both `corpus` and `index` must outlive the engine; the index must have
  /// been built over `corpus`.
  DiscoveryEngine(const Corpus* corpus, const InvertedIndex* index)
      : search_(corpus, index) {}

  /// Top-k discovery for every query in `queries`, fanned out over
  /// `batch_options.num_threads` workers.
  BatchResult DiscoverBatch(const std::vector<BatchQuery>& queries,
                            const DiscoveryOptions& options,
                            const BatchOptions& batch_options) const;

  const MateSearch& search() const { return search_; }

 private:
  MateSearch search_;
};

}  // namespace mate

#endif  // MATE_CORE_DISCOVERY_ENGINE_H_
