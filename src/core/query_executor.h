// Intra-query parallel execution of Algorithm 1. The batch engine
// (discovery_engine.h) scales across *many* queries; this executor scales
// *one* query — the paper's hardest workloads (Fig. 4/6, the OD 10k-row
// sets) are a single giant query that the batch engine cannot help.
//
// Per-candidate-table evaluation in Algorithm 1 is independent up to the
// shared top-k heap, so the executor:
//
//   1. partitions the table-id space into S weight-balanced shards
//      (index/index_shards.h);
//   2. fans shard tasks over the caller's thread pool — each worker fetches
//      its shard's slice of every probed posting list (one binary search
//      per PL; postings are sorted by table id), groups items by table,
//      and runs the unmodified per-table evaluation loop with a *local*
//      TopKHeap and local §6.2 pruning (a local heap's j_k is always <=
//      the global j_k, so local pruning never drops a global top-k table);
//   3. advances the shards in lockstep rounds of ~k tables total: between
//      rounds, a barrier folds every local heap into one global heap and
//      publishes its k-th score as a shared pruning *floor* — the serial
//      heap's evolving j_k over the evaluated prefix. Without it, S local
//      heaps must each fill before §6.2 fires and then prune against much
//      weaker thresholds (at full OD scale, every candidate table gets
//      evaluated); with it, total work stays within a few percent of
//      serial. The floor never exceeds the final j_k, so pruning with it
//      is safe, and round boundaries depend only on the shard plan, never
//      the schedule;
//   4. merges the S local heaps deterministically — score desc, table-id
//      asc, the exact tie-break of the serial heap — into the final
//      top-k.
//
// Determinism guarantee: `top_k` (table ids, joinability scores, column
// mappings) is bit-identical to serial execution at every shard x thread
// combination. Fetch-side counters (pl_items_fetched, candidate_tables)
// are identical too. The *work* counters (rows_checked, pruning counts,
// value_comparisons) measure work actually done, which legitimately shrinks
// or grows with the shard plan — pruning information is not shared across
// shards mid-flight — but for a fixed shard count they are deterministic at
// any thread count (shard outcomes merge in shard order).
//
// MateSearch::Discover (mate.h) is the serial special case: one shard, no
// pool, same code path — so serial and sharded execution cannot drift.

#ifndef MATE_CORE_QUERY_EXECUTOR_H_
#define MATE_CORE_QUERY_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "core/mate.h"
#include "obs/trace.h"

namespace mate {

class ThreadPool;

/// Execution-only knobs: they decide how fast the answer is computed, never
/// what it is. Keep them out of result-cache fingerprints.
struct ExecutorOptions {
  /// Fan-out width for one query. 0 = auto: use the whole pool, but only
  /// when the query's estimated PL traffic clears kAutoParallelMinItems
  /// (small queries would pay fork/join for nothing); 1 = serial; N > 1 =
  /// fan out over min(N, pool width) workers.
  unsigned intra_query_threads = 0;

  /// Evaluation shard count. 0 derives one shard per resolved worker; an
  /// explicit value is honored even at width 1 (shards then run
  /// sequentially — determinism tests sweep exactly this).
  size_t num_shards = 0;

  /// Optional span recorder (src/obs/trace.h). Null — the default —
  /// disables tracing; every instrumentation site is then a single pointer
  /// check. Executor phase spans (prepare / fetch / evaluate / merge and
  /// their per-shard children) root under `trace_parent`. Tracing never
  /// changes the result, so it stays out of cache fingerprints like every
  /// other field here.
  QueryTrace* trace = nullptr;
  uint32_t trace_parent = QueryTrace::kNoParent;
};

class QueryExecutor {
 public:
  /// Candidate-item estimate at or above which auto mode (intra_query_threads
  /// == 0) fans out. Below it the fork/join + lost cross-candidate pruning
  /// costs more than the parallelism buys.
  static constexpr uint64_t kAutoParallelMinItems = 4096;

  /// Both `corpus` and `index` must outlive the executor; the index must
  /// have been built over `corpus`.
  QueryExecutor(const Corpus* corpus, const InvertedIndex* index)
      : corpus_(corpus), index_(index) {}

  /// Top-k discovery for one query. `pool` may be null (forces serial);
  /// otherwise it must be idle and owned by a caller that issues one
  /// Discover at a time (mate::Session's contract). DiscoveryStats records
  /// the resolved execution shape in shards_used / fanout_threads.
  DiscoveryResult Discover(const Table& query,
                           const std::vector<ColumnId>& key_columns,
                           const DiscoveryOptions& options,
                           const ExecutorOptions& exec,
                           ThreadPool* pool) const;

  /// The auto-parallel gate's PL-traffic estimate, surfaced *before*
  /// execution: the summed size of the posting lists the query's distinct
  /// init-column values resolve to — exactly the figure Discover's auto
  /// mode compares against kAutoParallelMinItems. Cheap relative to
  /// execution (one init-column pass plus one index probe per distinct
  /// value; no super-key hashing, no PL scan), so an admission layer can
  /// afford it per dequeue to steer fan-out (src/server/).
  uint64_t EstimatePlItems(const Table& query,
                           const std::vector<ColumnId>& key_columns,
                           const DiscoveryOptions& options) const;

 private:
  const Corpus* corpus_;
  const InvertedIndex* index_;
};

}  // namespace mate

#endif  // MATE_CORE_QUERY_EXECUTOR_H_
