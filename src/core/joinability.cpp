#include "core/joinability.h"

#include <algorithm>

#include "util/string_util.h"

namespace mate {

namespace {
constexpr char kComboSep = '\x1F';

std::string JoinCombo(const std::vector<std::string>& combo) {
  std::string key;
  for (const std::string& v : combo) {
    key.append(v);
    key.push_back(kComboSep);
  }
  return key;
}
}  // namespace

std::vector<std::vector<std::string>> ExtractKeyCombos(
    const Table& query, const std::vector<ColumnId>& key_columns) {
  std::vector<std::vector<std::string>> combos;
  std::unordered_set<std::string> seen;
  for (RowId r = 0; r < query.NumRows(); ++r) {
    if (query.IsRowDeleted(r)) continue;
    std::vector<std::string> combo;
    combo.reserve(key_columns.size());
    bool has_empty = false;
    for (ColumnId c : key_columns) {
      combo.push_back(NormalizeValue(query.cell(r, c)));
      if (combo.back().empty()) has_empty = true;
    }
    if (has_empty) continue;
    if (seen.insert(JoinCombo(combo)).second) {
      combos.push_back(std::move(combo));
    }
  }
  return combos;
}

void MappingAccumulator::AddMatch(const std::vector<ColumnId>& mapping,
                                  uint32_t combo_id) {
  matches_[mapping].insert(combo_id);
}

int64_t MappingAccumulator::MaxJoinability() const {
  int64_t best = 0;
  for (const auto& [mapping, combos] : matches_) {
    best = std::max(best, static_cast<int64_t>(combos.size()));
  }
  return best;
}

std::vector<ColumnId> MappingAccumulator::BestMapping() const {
  std::vector<ColumnId> best;
  int64_t best_count = 0;
  for (const auto& [mapping, combos] : matches_) {
    int64_t count = static_cast<int64_t>(combos.size());
    if (count > best_count ||
        (count == best_count && (best.empty() || mapping < best))) {
      best_count = count;
      best = mapping;
    }
  }
  return best;
}

bool VerifyComboInRow(const Table& table, RowId row,
                      const std::vector<std::string>& combo,
                      uint32_t combo_id, ColumnId fixed_column,
                      size_t fixed_position, MappingAccumulator* acc,
                      uint64_t* value_comparisons) {
  const size_t m = combo.size();
  const size_t n = table.NumColumns();
  if (m > n) return false;

  // Columns matching each combo position.
  std::vector<std::vector<ColumnId>> candidates(m);
  for (size_t i = 0; i < m; ++i) {
    if (fixed_column != kInvalidColumnId && i == fixed_position) {
      ++*value_comparisons;
      if (!NormalizedEquals(combo[i], table.cell(row, fixed_column))) {
        return false;
      }
      candidates[i].push_back(fixed_column);
      continue;
    }
    for (ColumnId c = 0; c < n; ++c) {
      if (fixed_column != kInvalidColumnId && c == fixed_column) continue;
      ++*value_comparisons;
      if (NormalizedEquals(combo[i], table.cell(row, c))) {
        candidates[i].push_back(c);
      }
    }
    if (candidates[i].empty()) return false;
  }

  // Enumerate distinct-column assignments (smallest candidate sets first to
  // fail fast), emitting each complete assignment as a mapping.
  std::vector<size_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return candidates[a].size() < candidates[b].size();
  });

  std::vector<ColumnId> mapping(m, kInvalidColumnId);
  std::vector<char> used(n, 0);
  int emitted = 0;
  bool any = false;

  auto backtrack = [&](auto&& self, size_t depth) -> void {
    if (emitted >= kMaxMappingsPerRowCombo) return;
    if (depth == m) {
      acc->AddMatch(mapping, combo_id);
      ++emitted;
      any = true;
      return;
    }
    size_t pos = order[depth];
    for (ColumnId c : candidates[pos]) {
      if (used[c]) continue;
      used[c] = 1;
      mapping[pos] = c;
      self(self, depth + 1);
      used[c] = 0;
      mapping[pos] = kInvalidColumnId;
      if (emitted >= kMaxMappingsPerRowCombo) return;
    }
  };
  backtrack(backtrack, 0);
  return any;
}

namespace {

void EnumerateMappings(const Table& candidate, size_t m,
                       std::vector<ColumnId>* mapping,
                       std::vector<char>* used,
                       const std::unordered_set<std::string>& query_combos,
                       BruteForceResult* result) {
  const size_t n = candidate.NumColumns();
  if (mapping->size() == m) {
    std::unordered_set<std::string> matched;
    std::string key;
    for (RowId r = 0; r < candidate.NumRows(); ++r) {
      if (candidate.IsRowDeleted(r)) continue;
      key.clear();
      bool has_empty = false;
      for (ColumnId c : *mapping) {
        std::string norm = NormalizeValue(candidate.cell(r, c));
        if (norm.empty()) has_empty = true;
        key.append(norm);
        key.push_back(kComboSep);
      }
      if (has_empty) continue;
      if (query_combos.count(key)) matched.insert(key);
    }
    int64_t j = static_cast<int64_t>(matched.size());
    if (j > result->joinability ||
        (j == result->joinability && j > 0 &&
         (result->best_mapping.empty() || *mapping < result->best_mapping))) {
      result->joinability = j;
      result->best_mapping = *mapping;
    }
    return;
  }
  for (ColumnId c = 0; c < n; ++c) {
    if ((*used)[c]) continue;
    (*used)[c] = 1;
    mapping->push_back(c);
    EnumerateMappings(candidate, m, mapping, used, query_combos, result);
    mapping->pop_back();
    (*used)[c] = 0;
  }
}

}  // namespace

BruteForceResult BruteForceJoinability(
    const Table& query, const std::vector<ColumnId>& key_columns,
    const Table& candidate) {
  BruteForceResult result;
  const size_t m = key_columns.size();
  if (m == 0 || m > candidate.NumColumns()) return result;

  std::unordered_set<std::string> query_combos;
  for (const auto& combo : ExtractKeyCombos(query, key_columns)) {
    query_combos.insert(JoinCombo(combo));
  }
  if (query_combos.empty()) return result;

  std::vector<ColumnId> mapping;
  std::vector<char> used(candidate.NumColumns(), 0);
  EnumerateMappings(candidate, m, &mapping, &used, query_combos, &result);
  return result;
}

}  // namespace mate
