// Discovery result and instrumentation types shared by MATE and every
// baseline system, plus precision accounting (§7.4: precision = TP/(TP+FP)
// over candidate rows that reach verification).

#ifndef MATE_CORE_TOPK_H_
#define MATE_CORE_TOPK_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/types.h"
#include "util/topk_heap.h"

namespace mate {

struct TableResult {
  TableId table_id = kInvalidTableId;
  int64_t joinability = 0;
  /// Best column mapping found (query key position -> candidate column).
  std::vector<ColumnId> best_mapping;
};

struct DiscoveryStats {
  double runtime_seconds = 0.0;

  /// PL items fetched in the initialization step (§6.1) — across all probed
  /// values and, for MCR, across all query columns.
  uint64_t pl_items_fetched = 0;

  uint64_t candidate_tables = 0;      // tables with >= 1 fetched PL item
  uint64_t tables_evaluated = 0;      // reached the row loop
  uint64_t tables_pruned_rule1 = 0;   // §6.2 rule 1 (sorted-order break)
  uint64_t tables_pruned_rule2 = 0;   // §6.2 rule 2 (mid-table skip)

  uint64_t rows_checked = 0;           // PL items visited in the row loop
  uint64_t rows_sent_to_verification = 0;  // passed the super-key filter
  uint64_t rows_true_positive = 0;     // verified joinable (>= 1 combo)
  uint64_t value_comparisons = 0;      // cell comparisons during verification

  /// Intra-query execution shape (core/query_executor.h): evaluation shards
  /// and resolved fan-out width this query ran with; 1/1 is the serial
  /// path. Execution-only — top_k never depends on them — and deterministic
  /// for a given query + executor configuration. Work counters above are
  /// deterministic per shard count but legitimately vary *across* shard
  /// counts (local pruning replaces the serial shared-heap pruning).
  uint64_t shards_used = 1;
  uint64_t fanout_threads = 1;

  /// Corpus residency work this query triggered (storage/table_store.h):
  /// candidate tables whose cells (or touched columns) had to parse, how
  /// many of those were re-parses after an eviction, and the on-disk extent
  /// bytes parsed. All zero against a fully resident corpus.
  uint64_t tables_materialized = 0;
  uint64_t tables_rematerialized = 0;
  uint64_t cell_bytes_materialized = 0;

  /// §7.4: TP / (TP + FP) over rows that reached verification.
  double Precision() const {
    if (rows_sent_to_verification == 0) return 1.0;
    return static_cast<double>(rows_true_positive) /
           static_cast<double>(rows_sent_to_verification);
  }

  uint64_t FalsePositiveRows() const {
    return rows_sent_to_verification - rows_true_positive;
  }

  void Merge(const DiscoveryStats& other);
  std::string ToString() const;
};

struct DiscoveryResult {
  std::vector<TableResult> top_k;  // joinability desc, table id asc
  DiscoveryStats stats;

  /// Joinability of the i-th result, 0 when absent — convenient in tests.
  int64_t JoinabilityAt(size_t i) const {
    return i < top_k.size() ? top_k[i].joinability : 0;
  }
};

/// Converts a heap into the sorted result list (j == 0 entries never enter
/// the heap). `best_mappings` supplies TableResult::best_mapping per table.
std::vector<TableResult> FinalizeTopK(
    const TopKHeap<TableId>& heap,
    const std::unordered_map<TableId, std::vector<ColumnId>>& best_mappings);

}  // namespace mate

#endif  // MATE_CORE_TOPK_H_
