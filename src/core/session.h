// mate::Session — the library's front door. MATE (§2) frames discovery as
// a *service* over a fixed indexed corpus; Session is that service shaped
// as one owning object:
//
//   * owns the corpus + inverted index pair (loaded from disk, adopted
//     in-memory, or built on open) and validates at Open that they match;
//   * opens *phased* when loading an index from disk: Open returns once
//     the header, dictionary, and corpus/index cross-validation are done,
//     the mmap'd posting region and super keys stream in on the pool, and
//     the first Discover blocks on a readiness latch (WaitUntilReady /
//     SessionOptions::eager_load give explicit control);
//   * loads the corpus *lazily* from a v2 file: Open parses only the shape
//     header (stats + table directory) over the mmap'd image, queries
//     materialize just the candidate tables they evaluate, and a dedicated
//     background warmer streams the rest (WaitCorpusResident /
//     SessionOptions::eager_corpus / warm_corpus give explicit control);
//   * owns one long-lived work-stealing ThreadPool reused across batches
//     (the per-batch worker spin-up of the raw engine is gone) and fans a
//     single large query's sharded evaluation out over the same pool
//     (core/query_executor.h — intra-query parallelism);
//   * owns the keyed result cache (query fingerprint -> DiscoveryResult,
//     LRU under a byte budget) with an explicit InvalidateCache() hook for
//     index updates;
//   * validates every query upfront (QuerySpec) and reports failures as
//     Status/Result in the repo's Arrow/RocksDB idiom instead of the UB a
//     malformed key spec used to reach.
//
// Every binary (CLI, benches, examples) goes through Session; the raw
// MateSearch/DiscoveryEngine classes remain as internal implementation
// details. Thread-safety: Discover/DiscoverBatch/RunBatch are called from
// one thread at a time (they fan work out over the pool internally);
// mutation (mutable_*, ResetHash, SetNumThreads, ConfigureCache) requires
// the session to be otherwise idle.
//
// Typical use:
//
//   SessionOptions options;
//   options.corpus_path = "lake.corpus";
//   options.index_path = "lake.index";
//   options.num_threads = 8;
//   auto session = Session::Open(std::move(options));
//   if (!session.ok()) { /* session.status() */ }
//   QuerySpec spec;
//   spec.table = &my_table;
//   spec.key_columns = {0, 1};
//   auto result = session->Discover(spec);

#ifndef MATE_CORE_SESSION_H_
#define MATE_CORE_SESSION_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/discovery_engine.h"
#include "core/result_cache.h"
#include "index/index_builder.h"
#include "storage/corpus.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mate {

class QueryTrace;  // src/obs/trace.h

/// One discovery request: the query table, the composite key, and the
/// engine options. Validated by Session before any work happens.
struct QuerySpec {
  /// Must outlive the Discover/DiscoverBatch call.
  const Table* table = nullptr;
  std::vector<ColumnId> key_columns;
  DiscoveryOptions options;

  /// Result-cache partition this query reads and populates (multi-tenant
  /// serving: src/server/). Tenants never share cached entries, and each
  /// partition carries its own byte budget (ConfigureCachePartition).
  /// Execution-only in the same sense as the knobs below — it selects
  /// *where* a result is cached, never what is computed — and the empty
  /// default is the classic shared partition.
  std::string tenant;

  // ---- execution-only knobs (core/query_executor.h) ------------------
  // They change how fast the answer is computed, never the answer, and are
  // therefore excluded from the result-cache fingerprint: the same logical
  // query hits the cache at any parallelism setting.

  /// Intra-query fan-out. 0 = auto: the whole session pool, but only when
  /// the query's estimated PL traffic clears
  /// QueryExecutor::kAutoParallelMinItems; 1 = serial (the pre-sharding
  /// path); N > 1 = fan out over min(N, pool width) workers.
  unsigned intra_query_threads = 0;
  /// Evaluation shards; 0 derives one per resolved worker. Explicit values
  /// are honored even at width 1 (shards then run sequentially).
  size_t intra_query_shards = 0;

  /// Optional span recorder (src/obs/trace.h): when set, Discover records
  /// its pipeline phases (validate -> readiness wait -> cache lookup ->
  /// execute [prepare / per-shard fetch / rule-1 prune / materialize /
  /// row loop / merge]) into it, rooted under the trace's attach parent.
  /// Null — the default — keeps every instrumentation site a single
  /// pointer check. Must outlive the call; execution-only like the knobs
  /// above, so it never enters the cache fingerprint.
  QueryTrace* trace = nullptr;
};

struct SessionOptions {
  SessionOptions() = default;
  SessionOptions(SessionOptions&&) = default;
  SessionOptions& operator=(SessionOptions&&) = default;

  // ---- corpus source (exactly one) ----------------------------------
  /// Load the corpus from a SaveCorpus file.
  std::string corpus_path;
  /// ... or adopt an in-memory corpus.
  std::optional<Corpus> corpus;

  // ---- index source (at most one; optional) -------------------------
  /// Load the index from a SaveIndex file.
  std::string index_path;
  /// ... or adopt an index already built over the corpus. `index_family`
  /// tells the session which hash family it carries (for Save/re-keying).
  std::unique_ptr<InvertedIndex> index;
  HashFamily index_family = HashFamily::kXash;
  /// ... or build one from the corpus with `build_options`. Without any of
  /// the three the session is corpus-only (stats/curation workloads) and
  /// Discover fails with InvalidArgument.
  bool build_index = false;
  IndexBuildOptions build_options;

  // ---- service knobs ------------------------------------------------
  /// Long-lived discovery pool (IndexBuilder convention: 0 = hardware
  /// concurrency, 1 = serial on the calling thread).
  unsigned num_threads = 1;
  /// Path-based index loads are *phased* by default: Open returns once the
  /// corpus, index header + value dictionary, and the corpus/index
  /// cross-validation are done, while the posting lists and super keys
  /// stream in from the mmap'd file on the session pool (a dedicated
  /// loader thread when the pool is serial). The first
  /// Discover/DiscoverBatch blocks on the readiness latch, so results are
  /// bit-identical to a blocking open — only the time at which a load
  /// error in the bulky sections surfaces moves (to WaitUntilReady / the
  /// first query, as kCorruption). Set true to force the old fully
  /// blocking Open: it returns only with the index hot and every load
  /// error surfaces from Open itself.
  bool eager_load = false;
  /// Path-based corpus loads are *lazy* by default (corpus format v2): Open
  /// mmaps the file, parses only the stats header and table directory, and
  /// cross-validates shape against the index with zero cell parsing; each
  /// table's cells materialize on its first access (queries touch only the
  /// candidate tables the index surfaces) while a background warmer streams
  /// the rest in. Results are bit-identical to an eager open — only *when*
  /// cells parse moves. Set true to force the old fully materialized load:
  /// Open returns with every cell resident and every corpus error surfaces
  /// from Open itself. v1 corpus files always load eagerly (legacy path).
  bool eager_corpus = false;
  /// Background corpus warmer (lazy corpus only): a dedicated thread
  /// materializes every table after Open returns, so steady-state queries
  /// stop paying first-touch parses. It is a *dedicated* thread, not a pool
  /// task — the pool's Wait() is global, and a query's shard barrier must
  /// not absorb a giant table's parse. Set false to materialize strictly
  /// on demand (benches isolating first-touch cost use this).
  bool warm_corpus = true;
  /// Corpus residency byte budget (0 = unlimited, the classic behavior).
  /// With a budget armed, a lazily opened corpus behaves like a buffer
  /// pool: candidate tables (or just their touched columns) materialize on
  /// demand, and at each idle point — between Discover calls, after a
  /// batch, after Save — the least-recently-touched tables are evicted
  /// until the resident cell bytes fit the budget again. Results stay
  /// bit-identical to an unlimited run; only residency changes. The budget
  /// also disables the background warmer (warming the whole lake would
  /// just be evicted again) and keeps the corpus mmap alive for re-parses.
  /// Budgets only govern path-based lazy corpora: adopted/eager/built
  /// corpora have no backing file to re-parse evicted tables from.
  uint64_t corpus_budget_bytes = 0;
  /// Result-cache byte budget; 0 disables caching entirely.
  size_t cache_bytes = kDefaultCacheBytes;
  /// Pins the scalar reference implementations of the hot-path kernels
  /// (util/simd.h) instead of the runtime-dispatched SIMD variants —
  /// results are bit-identical either way (tests/simd_test.cpp pins it);
  /// only speed changes. Process-global, like the MATE_FORCE_SCALAR
  /// environment variable it mirrors: it flips the dispatch table every
  /// session in the process reads. False leaves the dispatch as is (it
  /// does NOT re-enable SIMD if the environment forced scalar).
  bool force_scalar_kernels = false;
  /// Cross-check that index super keys cover exactly the corpus's tables
  /// and rows (catches corpus/index file mix-ups at Open instead of as
  /// out-of-bounds reads mid-query).
  bool validate = true;

  static constexpr size_t kDefaultCacheBytes = 64u << 20;  // 64 MB
};

class Session {
 public:
  /// Opens a session per `options`. Fails with:
  ///   * InvalidArgument — no corpus source, or two of them;
  ///   * IOError / Corruption — unreadable or malformed files;
  ///   * Corruption — index does not match the corpus (table/row skew).
  /// Under the default phased load (see SessionOptions::eager_load) the
  /// index's posting lists and super keys stream in after Open returns;
  /// corruption confined to those trailing sections surfaces as
  /// kCorruption from WaitUntilReady / the first query instead of here.
  static Result<Session> Open(SessionOptions options);

  /// Quiesces any in-flight phased load (waits for the loader task / joins
  /// the loader thread) before tearing the index down.
  ~Session();
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- readiness ----------------------------------------------------

  /// Blocks until the phased load (if any) has finished streaming the
  /// posting lists and super keys, and returns its status (kCorruption on
  /// a malformed posting/super-key region). Returns OK immediately for
  /// eager, built, adopted, and corpus-only sessions.
  /// Discover/DiscoverBatch/Save/ResetHash all call this themselves; call
  /// it directly to surface load errors early or before touching index()
  /// by hand.
  Status WaitUntilReady() const;

  /// Non-blocking readiness probe: true once the index (if any) is fully
  /// loaded — whether the load succeeded or failed (WaitUntilReady tells
  /// which).
  bool index_ready() const;

  /// Blocks until every corpus table is resident — draining the background
  /// warmer when one is running, materializing inline otherwise — and
  /// returns the corpus's sticky load status (kCorruption naming the table,
  /// section, and byte offset on a malformed cell blob). Returns OK
  /// immediately for eager, adopted, and built corpora. Queries do NOT wait
  /// on this (on-demand materialization is the point); Save does.
  Status WaitCorpusResident() const;

  /// Non-blocking probe: true once every corpus table is resident.
  bool corpus_resident() const;

  // ---- queries ------------------------------------------------------

  /// Checks `spec` against the session's corpus and index; returns
  /// InvalidArgument naming the offending column/table id on: null or
  /// key-less table, duplicate or out-of-range key columns, k <= 0, and
  /// exclude/restrict ids outside the corpus.
  Status ValidateQuery(const QuerySpec& spec) const;

  /// Top-k discovery for one query (validated, cached). Runs the sharded
  /// intra-query executor on the session pool per the spec's
  /// intra_query_threads/intra_query_shards knobs — results are
  /// bit-identical at every setting. A cache hit returns the originally
  /// computed DiscoveryResult verbatim (including the execution shape its
  /// stats recorded).
  Result<DiscoveryResult> Discover(const QuerySpec& spec);

  /// Pre-execution cost estimate of one query: the PL-item-traffic figure
  /// the executor's auto-parallel gate compares against
  /// QueryExecutor::kAutoParallelMinItems, surfaced *before* execution so
  /// an admission layer (src/server/) can steer the spec's
  /// intra_query_threads/intra_query_shards knobs per query. Validates the
  /// spec and blocks on index readiness exactly like Discover; cheap
  /// relative to execution (one init-column pass, one index probe per
  /// distinct value). The estimate never affects results — it only
  /// predicts how much work Discover would do.
  Result<uint64_t> EstimatePlItems(const QuerySpec& spec) const;

  /// Batch discovery over the session pool. All specs are validated before
  /// any query runs (the error names the failing spec's position). With
  /// the cache enabled, duplicate specs inside the batch compute once and
  /// count as hits; batch-level hit/miss traffic lands in BatchStats.
  /// The pool is spent on one axis at a time: a batch that boils down to a
  /// single uncached query runs it through the intra-query executor
  /// (honoring its knobs); batches with several distinct uncached queries
  /// fan out across queries, each evaluated serially. Duplicate specs that
  /// differ only in execution knobs share one computation (the leader's
  /// knobs win — the knobs are absent from the fingerprint by design).
  Result<BatchResult> DiscoverBatch(const std::vector<QuerySpec>& specs);

  /// Uncached generic fan-out of `run_one(i)` for i in [0, n) over the
  /// session pool — the substrate bench runners use for baseline systems
  /// (SCR/MCR/JOSIE share the pool but must not share MATE's cache).
  BatchResult RunBatch(size_t n,
                       const std::function<DiscoveryResult(size_t)>& run_one);

  // ---- cache --------------------------------------------------------

  /// Drops every cached result in every tenant partition. Call after
  /// mutating the corpus or index through the mutable accessors below —
  /// an index edit invalidates all tenants' results alike.
  void InvalidateCache();

  /// Drops only `tenant`'s partition (the empty name is the shared default
  /// partition). Serving uses this for per-tenant resets; index/corpus
  /// mutation must keep using the all-partition overload above.
  void InvalidateCache(std::string_view tenant);

  /// Cumulative cache counters summed over every partition (zeroed stats
  /// when the cache is disabled).
  ResultCacheStats cache_stats() const;

  /// One tenant partition's counters (zeroed when disabled or untouched).
  ResultCacheStats cache_partition_stats(std::string_view tenant) const;

  /// Creates or resizes `tenant`'s cache partition to `bytes` (evicting
  /// down when shrinking). Untouched tenants otherwise get the session
  /// cache's default byte budget on first use. No-op when caching is
  /// disabled.
  void ConfigureCachePartition(std::string_view tenant, size_t bytes);

  bool cache_enabled() const { return cache_ != nullptr; }

  /// Replaces the cache with a fresh one of `bytes` capacity (0 disables);
  /// previously cached results and current-content counters are dropped.
  void ConfigureCache(size_t bytes);

  // ---- ownership & maintenance --------------------------------------

  const Corpus& corpus() const { return corpus_; }
  /// Residency gauges/counters of the corpus store (budget, resident and
  /// peak bytes, eviction + rematerialization traffic).
  ResidencyStats corpus_residency() const { return corpus_.residency(); }
  bool has_index() const { return index_ != nullptr; }
  /// Precondition: has_index() — and, after a phased open, that
  /// WaitUntilReady() returned OK (the loader may still be streaming
  /// postings into the object otherwise).
  const InvertedIndex& index() const { return *index_; }

  /// Mutable access for §5.4 maintenance flows. The cache is NOT
  /// implicitly invalidated — call InvalidateCache() once the edit batch
  /// is complete (stale entries otherwise serve pre-edit results).
  /// mutable_corpus() first drains corpus residency (the background warmer
  /// writes table slots, and the store's mutation contract requires it to
  /// be idle — AddTable may even reallocate under the warmer otherwise);
  /// a materialization error is latched in corpus().load_status().
  /// mutable_index() has the same WaitUntilReady precondition as index().
  Corpus* mutable_corpus() {
    (void)WaitCorpusResident();
    return &corpus_;
  }
  InvertedIndex* mutable_index() { return index_.get(); }

  /// Swaps the super-key hash (re-keying on the session pool) and
  /// invalidates the cache — every tenant partition, not just the shared
  /// one: re-keying changes what the index computes for all tenants alike.
  /// The registry overload parameterizes the hash from the session's
  /// corpus stats, like the index builder does.
  Status ResetHash(HashFamily family, size_t hash_bits);
  Status ResetHash(HashFamily family, std::unique_ptr<RowHashFunction> hash);

  /// Persists the corpus (and, when present, the index) for a later
  /// path-based Open.
  Status Save(const std::string& corpus_path,
              const std::string& index_path) const;

  ThreadPool* pool() { return pool_.get(); }
  unsigned num_threads() const { return pool_->num_threads(); }
  /// Replaces the (idle) pool with one of `num_threads` workers.
  void SetNumThreads(unsigned num_threads);

  /// Stats of the corpus the session serves: from the index build when the
  /// session built its index, from the index file when it loaded one, and
  /// computed by a corpus scan otherwise.
  const CorpusStats& corpus_stats() const { return corpus_stats_; }
  HashFamily hash_family() const { return hash_family_; }
  /// Build cost/size details; meaningful when Open built the index.
  const IndexBuildReport& build_report() const { return build_report_; }

 private:
  Session() = default;

  /// Blocks until no loader task can touch this session's index again:
  /// waits the readiness latch and joins the dedicated loader thread, if
  /// any. Called before destruction / move-assignment tears the index
  /// down.
  void QuiesceLoad() const;

  /// Canonical cache key: a 128-bit digest of the key-column contents plus
  /// every result-affecting option — and nothing execution-only (thread or
  /// shard knobs). Precondition: spec validated.
  std::string FingerprintQuery(const QuerySpec& spec) const;

  /// Uncached execution of one validated spec. `intra_parallel` routes it
  /// through the sharded executor on the session pool (top-level calls);
  /// false forces the serial path (queries already running *on* the pool).
  DiscoveryResult RunQuery(const QuerySpec& spec, bool intra_parallel);

  Corpus corpus_;
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ResultCache> cache_;  // null when disabled
  CorpusStats corpus_stats_;
  HashFamily hash_family_ = HashFamily::kXash;
  IndexBuildReport build_report_;
  // Phase-2 streaming state of a phased open (null otherwise): the loader
  // task/thread shares it via shared_ptr, so it survives Session moves.
  struct PendingLoad;
  std::shared_ptr<PendingLoad> pending_;
  // Background corpus-warmer state (null unless a lazy corpus is warming):
  // the warmer thread runs a callable that co-owns the table store, so it
  // survives Session moves; QuiesceLoad drains it before teardown.
  struct PendingWarm;
  std::shared_ptr<PendingWarm> warm_;
};

}  // namespace mate

#endif  // MATE_CORE_SESSION_H_
