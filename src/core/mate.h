// MATE's online discovery phase (Algorithm 1, §6): initialization (init
// column + query super keys), table filtering (two pruning rules), super-key
// row filtering, and exact joinability calculation, maintaining a top-k
// heap of candidate tables. The phases themselves live in
// core/query_executor.{h,cpp}; MateSearch::Discover is the serial
// (one-shard, no-pool) execution of that same code path, and the sharded
// intra-query executor is guaranteed bit-identical to it.
//
// The same engine also powers the SCR baseline: with
// DiscoveryOptions::use_row_filter = false every fetched row goes straight
// to exact verification (§7.1.1's "SCR ... cannot utilize the super key").

#ifndef MATE_CORE_MATE_H_
#define MATE_CORE_MATE_H_

#include <vector>

#include "core/init_column.h"
#include "core/joinability.h"
#include "core/topk.h"
#include "index/inverted_index.h"
#include "storage/corpus.h"

namespace mate {

struct DiscoveryOptions {
  /// Number of joinable tables to return.
  int k = 10;

  InitColumnStrategy init_strategy = InitColumnStrategy::kMinCardinality;

  /// Super-key row filtering (§6.3). Disabled -> the SCR baseline.
  bool use_row_filter = true;

  /// Table-filter rules 1 and 2 (§6.2).
  bool use_table_filters = true;

  /// Tables to exclude from results (used by examples that query a table
  /// already present in the corpus against itself).
  std::vector<TableId> exclude_tables;

  /// When non-empty, only these tables are considered at all — the JOSIE
  /// adaptations evaluate exactly their candidate table set this way.
  std::vector<TableId> restrict_tables;
};

class MateSearch {
 public:
  /// Both `corpus` and `index` must outlive the searcher; the index must
  /// have been built over `corpus`.
  MateSearch(const Corpus* corpus, const InvertedIndex* index)
      : corpus_(corpus), index_(index) {}

  /// Finds the top-k tables joinable with `query` on `key_columns`
  /// (Algorithm 1). Returns results sorted by joinability desc, table id
  /// asc; tables with joinability 0 are never reported.
  DiscoveryResult Discover(const Table& query,
                           const std::vector<ColumnId>& key_columns,
                           const DiscoveryOptions& options) const;

 private:
  const Corpus* corpus_;
  const InvertedIndex* index_;
};

}  // namespace mate

#endif  // MATE_CORE_MATE_H_
