// Joinability (§2): j(R,S) = max over size-|Q| column mappings Y' of
// |pi_Q(R) ∩ pi_Y'(S)| — set semantics over distinct key combinations.
//
// Two implementations live here:
//   * MappingAccumulator + VerifyComboInRow: the incremental, row-driven
//     verification MATE and the baselines share (Algorithm 1's calculateJ).
//   * BruteForceJoinability: the P(|T'|,|Q|)-mapping reference used as
//     ground truth in tests and as the "Ideal" oracle in benches.
//
// Everything here takes `const Table&` — already-materialized tables.
// Callers holding a lazy corpus resolve candidates through the accessor API
// (Corpus::table materializes on first touch; shape-only decisions use the
// table_* accessors) before handing tables down to these kernels.

#ifndef MATE_CORE_JOINABILITY_H_
#define MATE_CORE_JOINABILITY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/table.h"
#include "storage/types.h"

namespace mate {

/// Distinct normalized key combinations of the query's key columns, in
/// first-appearance order. Combos containing an empty value are dropped
/// (empty cells are not meaningful join keys).
std::vector<std::vector<std::string>> ExtractKeyCombos(
    const Table& query, const std::vector<ColumnId>& key_columns);

/// Aggregates verified (mapping, combo) matches and reports the mapping
/// with the most distinct matched combos — Equation 2's arg max.
class MappingAccumulator {
 public:
  /// Records that query combo `combo_id` matches under `mapping` (mapping[i]
  /// = the candidate column holding the i-th key value).
  void AddMatch(const std::vector<ColumnId>& mapping, uint32_t combo_id);

  /// Max distinct combos over any single mapping (0 if no matches).
  int64_t MaxJoinability() const;

  /// A best mapping (empty if no matches); ties resolve to the
  /// lexicographically smallest mapping for determinism.
  std::vector<ColumnId> BestMapping() const;

  void Clear() { matches_.clear(); }

 private:
  struct VectorHash {
    size_t operator()(const std::vector<ColumnId>& v) const {
      size_t h = 0x9E3779B97F4A7C15ULL;
      for (ColumnId c : v) h = (h ^ c) * 0x100000001B3ULL;
      return h;
    }
  };
  std::unordered_map<std::vector<ColumnId>, std::unordered_set<uint32_t>,
                     VectorHash>
      matches_;
};

/// Safety valve for pathological rows (many repeated values): at most this
/// many column assignments are enumerated per (row, combo) pair. Exceeding
/// it can only under-count joinability on adversarial inputs; realistic
/// rows bind each key value to very few columns.
inline constexpr int kMaxMappingsPerRowCombo = 128;

/// Exact containment check of one combo in one candidate row. If every
/// combo value occurs in the row, records all feasible distinct-column
/// assignments in `acc` (those where column `fixed_column`, when not
/// kInvalidColumnId, is assigned to combo position `fixed_position`) and
/// returns true. `value_comparisons` is incremented per cell comparison.
bool VerifyComboInRow(const Table& table, RowId row,
                      const std::vector<std::string>& combo,
                      uint32_t combo_id, ColumnId fixed_column,
                      size_t fixed_position, MappingAccumulator* acc,
                      uint64_t* value_comparisons);

struct BruteForceResult {
  int64_t joinability = 0;
  std::vector<ColumnId> best_mapping;
};

/// Reference joinability: enumerates every ordered selection of |Q| distinct
/// candidate columns (Equation 3 mappings) and counts distinct matched
/// combos. Exponential in |Q|; intended for tests and small oracles.
BruteForceResult BruteForceJoinability(const Table& query,
                                       const std::vector<ColumnId>& key_columns,
                                       const Table& candidate);

}  // namespace mate

#endif  // MATE_CORE_JOINABILITY_H_
