// Table union search via XASH column sketches — the §1/§8 extension: "for
// table union search, the hash function could be applied in the same spirit
// as for joins."
//
// A column sketch is the OR of the XASH signatures of a bounded sample of
// the column's distinct values. Because signatures have no false negatives,
// a query value whose signature is NOT masked by a candidate column's
// sketch is guaranteed absent from the sampled portion; the masked fraction
// of a query column's sampled values therefore upper-bounds (and in
// practice tracks) domain overlap. Unionability of a table = the best
// one-to-one greedy alignment of query columns to candidate columns by
// sketch containment.

#ifndef MATE_CORE_UNION_SEARCH_H_
#define MATE_CORE_UNION_SEARCH_H_

#include <memory>
#include <string>
#include <vector>

#include "hash/hash_function.h"
#include "storage/corpus.h"
#include "storage/types.h"

namespace mate {

struct UnionSearchOptions {
  int k = 10;
  /// Distinct values sketched per column (larger = sharper sketches).
  size_t sample_size = 64;
  /// Minimum per-column containment score for a column pair to count as
  /// aligned.
  double min_column_score = 0.5;
  /// Fraction of query columns that must align for a table to be reported.
  double min_aligned_fraction = 0.5;
};

struct ColumnAlignment {
  ColumnId query_column;
  ColumnId candidate_column;
  double score;  // fraction of sampled query values masked by the sketch
};

struct UnionResult {
  TableId table_id = kInvalidTableId;
  double score = 0.0;  // mean score of aligned columns * aligned fraction
  std::vector<ColumnAlignment> alignment;
};

/// Offline structure: one sketch per corpus column.
class UnionIndex {
 public:
  /// Builds sketches for every column of `corpus` with `hash` (the same
  /// XASH used for join discovery works unchanged). The hash must outlive
  /// the index.
  static UnionIndex Build(const Corpus& corpus, const RowHashFunction* hash,
                          size_t sample_size);

  /// Top-k tables unionable with `query` under `options` (score desc,
  /// table id asc). Tables in `exclude` are skipped.
  std::vector<UnionResult> Discover(const Table& query,
                                    const UnionSearchOptions& options,
                                    const std::vector<TableId>& exclude = {}) const;

  size_t NumSketches() const { return sketches_.size(); }
  size_t MemoryBytes() const;

 private:
  struct ColumnSketch {
    TableId table_id;
    ColumnId column_id;
    BitVector bits;
    uint32_t sampled_values;
  };

  const RowHashFunction* hash_ = nullptr;
  size_t sample_size_ = 0;
  std::vector<ColumnSketch> sketches_;
  // First sketch index per table (sketches are grouped by table).
  std::vector<std::pair<TableId, std::pair<size_t, size_t>>> table_ranges_;
};

}  // namespace mate

#endif  // MATE_CORE_UNION_SEARCH_H_
