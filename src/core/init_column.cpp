#include "core/init_column.h"

#include <cassert>
#include <unordered_set>

#include "util/string_util.h"

namespace mate {

std::string_view InitColumnStrategyName(InitColumnStrategy strategy) {
  switch (strategy) {
    case InitColumnStrategy::kMinCardinality: return "Cardinality";
    case InitColumnStrategy::kColumnOrder: return "ColumnOrder";
    case InitColumnStrategy::kLongestString: return "TLS";
    case InitColumnStrategy::kWorstCase: return "Worst";
    case InitColumnStrategy::kBestCase: return "Best";
  }
  return "?";
}

uint64_t CountPlItemsForColumn(const Table& query, ColumnId c,
                               const InvertedIndex& index) {
  std::unordered_set<std::string> distinct;
  for (RowId r = 0; r < query.NumRows(); ++r) {
    if (query.IsRowDeleted(r)) continue;
    distinct.insert(NormalizeValue(query.cell(r, c)));
  }
  uint64_t total = 0;
  for (const std::string& value : distinct) {
    if (value.empty()) continue;
    const PostingList* pl = index.Lookup(value);
    if (pl != nullptr) total += pl->size();
  }
  return total;
}

uint64_t CountPostingListsForColumn(const Table& query, ColumnId c,
                                    const InvertedIndex& index) {
  std::unordered_set<std::string> distinct;
  for (RowId r = 0; r < query.NumRows(); ++r) {
    if (query.IsRowDeleted(r)) continue;
    distinct.insert(NormalizeValue(query.cell(r, c)));
  }
  uint64_t lists = 0;
  for (const std::string& value : distinct) {
    if (value.empty()) continue;
    if (index.Lookup(value) != nullptr) ++lists;
  }
  return lists;
}

size_t SelectInitColumn(const Table& query,
                        const std::vector<ColumnId>& key_columns,
                        InitColumnStrategy strategy,
                        const InvertedIndex* index) {
  assert(!key_columns.empty());
  switch (strategy) {
    case InitColumnStrategy::kColumnOrder:
      return 0;
    case InitColumnStrategy::kMinCardinality: {
      size_t best = 0;
      size_t best_card = query.ColumnCardinality(key_columns[0]);
      for (size_t i = 1; i < key_columns.size(); ++i) {
        size_t card = query.ColumnCardinality(key_columns[i]);
        if (card < best_card) {
          best = i;
          best_card = card;
        }
      }
      return best;
    }
    case InitColumnStrategy::kLongestString: {
      size_t best = 0;
      size_t best_len = 0;
      for (size_t i = 0; i < key_columns.size(); ++i) {
        size_t longest = 0;
        for (RowId r = 0; r < query.NumRows(); ++r) {
          if (query.IsRowDeleted(r)) continue;
          longest = std::max(longest,
                             Trim(query.cell(r, key_columns[i])).size());
        }
        if (longest > best_len) {
          best = i;
          best_len = longest;
        }
      }
      return best;
    }
    case InitColumnStrategy::kWorstCase:
    case InitColumnStrategy::kBestCase: {
      assert(index != nullptr);
      size_t best = 0;
      uint64_t best_count =
          CountPlItemsForColumn(query, key_columns[0], *index);
      for (size_t i = 1; i < key_columns.size(); ++i) {
        uint64_t count = CountPlItemsForColumn(query, key_columns[i], *index);
        bool better = strategy == InitColumnStrategy::kWorstCase
                          ? count > best_count
                          : count < best_count;
        if (better) {
          best = i;
          best_count = count;
        }
      }
      return best;
    }
  }
  return 0;
}

}  // namespace mate
