// XASH as a similarity prefilter — the paper's §1 duplicate-detection
// application ("our hash function could serve as a prefilter for finding
// similar records") and §9 future-work direction (signature distance tracks
// syntactic similarity, because similar values share rare characters and
// lengths).
//
// Two layers:
//   * value level: SignatureHamming + a candidate generator that pairs
//     values whose signatures are within a Hamming budget;
//   * row level: DuplicateRowFinder blocks rows on super-key words and
//     verifies candidate pairs by exact cell-set overlap — a near-duplicate
//     record prefilter with no false negatives for exact duplicates.

#ifndef MATE_CORE_SIMILARITY_H_
#define MATE_CORE_SIMILARITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hash/hash_function.h"
#include "storage/corpus.h"
#include "storage/types.h"

namespace mate {

/// Hamming distance between two equal-width signatures.
size_t SignatureHamming(const BitVector& a, const BitVector& b);

struct SimilarValuePair {
  size_t left;   // indices into the input value vector
  size_t right;
  size_t hamming;
};

/// All pairs of `values` whose XASH signatures differ in at most
/// `max_hamming` bits (candidate pairs for a similarity join; exact
/// duplicates always have distance 0, so they are never missed). O(n^2)
/// in the candidate set — intended as the verification-side prefilter.
std::vector<SimilarValuePair> SimilarValueCandidates(
    const RowHashFunction& hash, const std::vector<std::string>& values,
    size_t max_hamming);

struct DuplicateRowPair {
  TableId left_table;
  RowId left_row;
  TableId right_table;
  RowId right_row;
  /// Jaccard overlap of the two rows' normalized cell multisets.
  double overlap;
};

struct DuplicateFinderOptions {
  /// Minimum verified cell-set Jaccard overlap to report a pair.
  double min_overlap = 0.8;
  /// Super-key Hamming prefilter: candidate pairs whose row super keys
  /// differ in more bits are dropped before verification. Exact duplicates
  /// have distance 0, so they can never be filtered out. 0 disables the
  /// prefilter (verify every blocked pair).
  size_t max_signature_hamming = 64;
  /// Safety cap on candidate pairs examined per block.
  size_t max_pairs_per_block = 4096;
};

/// Finds near-duplicate rows across the corpus. Rows are blocked on shared
/// cell values (rows with no cell in common are never candidates), then the
/// XASH super-key Hamming prefilter cheaply discards dissimilar candidate
/// pairs before the exact Jaccard verification — the §1 "prefilter for
/// finding similar records" application.
class DuplicateRowFinder {
 public:
  DuplicateRowFinder(const Corpus* corpus, const RowHashFunction* hash)
      : corpus_(corpus), hash_(hash) {}

  /// Scans all live rows; returns verified pairs, deduplicated, ordered by
  /// (left table, left row, right table, right row).
  std::vector<DuplicateRowPair> FindDuplicates(
      const DuplicateFinderOptions& options) const;

 private:
  const Corpus* corpus_;
  const RowHashFunction* hash_;
};

/// Verified Jaccard overlap of two rows' normalized non-empty cell sets.
double RowOverlap(const Table& left, RowId lr, const Table& right, RowId rr);

}  // namespace mate

#endif  // MATE_CORE_SIMILARITY_H_
