#include "core/similarity.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"
#include "util/string_util.h"

namespace mate {

size_t SignatureHamming(const BitVector& a, const BitVector& b) {
  BitVector diff = a;
  diff.XorWith(b);
  return diff.CountOnes();
}

std::vector<SimilarValuePair> SimilarValueCandidates(
    const RowHashFunction& hash, const std::vector<std::string>& values,
    size_t max_hamming) {
  std::vector<BitVector> signatures;
  signatures.reserve(values.size());
  for (const std::string& value : values) {
    signatures.push_back(hash.HashValue(NormalizeValue(value)));
  }
  std::vector<SimilarValuePair> pairs;
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = i + 1; j < values.size(); ++j) {
      size_t hamming = SignatureHamming(signatures[i], signatures[j]);
      if (hamming <= max_hamming) pairs.push_back({i, j, hamming});
    }
  }
  return pairs;
}

double RowOverlap(const Table& left, RowId lr, const Table& right, RowId rr) {
  std::unordered_set<std::string> left_cells;
  for (ColumnId c = 0; c < left.NumColumns(); ++c) {
    std::string norm = NormalizeValue(left.cell(lr, c));
    if (!norm.empty()) left_cells.insert(std::move(norm));
  }
  std::unordered_set<std::string> right_cells;
  for (ColumnId c = 0; c < right.NumColumns(); ++c) {
    std::string norm = NormalizeValue(right.cell(rr, c));
    if (!norm.empty()) right_cells.insert(std::move(norm));
  }
  if (left_cells.empty() || right_cells.empty()) return 0.0;
  size_t intersection = 0;
  for (const std::string& cell : left_cells) {
    intersection += right_cells.count(cell);
  }
  size_t union_size = left_cells.size() + right_cells.size() - intersection;
  return static_cast<double>(intersection) /
         static_cast<double>(union_size);
}

std::vector<DuplicateRowPair> DuplicateRowFinder::FindDuplicates(
    const DuplicateFinderOptions& options) const {
  struct RowRef {
    TableId table;
    RowId row;
  };
  // Blocking: rows sharing at least one normalized cell value land in a
  // common block (rows with no value in common cannot be near-duplicates
  // under Jaccard). Super keys per row are precomputed for the Hamming
  // prefilter.
  std::unordered_map<uint64_t, std::vector<RowRef>> blocks;
  std::unordered_map<uint64_t, BitVector> row_keys;
  auto row_id64 = [](TableId t, RowId r) {
    return (static_cast<uint64_t>(t) << 32) | r;
  };
  for (TableId t = 0; t < corpus_->NumTables(); ++t) {
    // Shape check first: tables with no live rows contribute nothing, so a
    // lazily loaded corpus never materializes them for this scan.
    if (corpus_->table_num_live_rows(t) == 0) continue;
    const Table& table = corpus_->table(t);
    for (RowId r = 0; r < table.NumRows(); ++r) {
      if (table.IsRowDeleted(r)) continue;
      BitVector key(hash_->hash_bits());
      std::unordered_set<uint64_t> row_blocks;
      for (ColumnId c = 0; c < table.NumColumns(); ++c) {
        std::string norm = NormalizeValue(table.cell(r, c));
        if (!norm.empty()) {
          row_blocks.insert(SplitMix64(std::hash<std::string>{}(norm)));
        }
        hash_->AddValue(norm, &key);
      }
      for (uint64_t block : row_blocks) blocks[block].push_back({t, r});
      row_keys.emplace(row_id64(t, r), std::move(key));
    }
  }

  auto pack = [&row_id64](const RowRef& r) { return row_id64(r.table, r.row); };
  std::vector<DuplicateRowPair> pairs;
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (const auto& [block_key, rows] : blocks) {
    (void)block_key;
    if (rows.size() < 2) continue;
    size_t budget = options.max_pairs_per_block;
    for (size_t i = 0; i < rows.size() && budget > 0; ++i) {
      for (size_t j = i + 1; j < rows.size() && budget > 0; ++j) {
        const RowRef& a = rows[i];
        const RowRef& b = rows[j];
        if (a.table == b.table && a.row == b.row) continue;
        --budget;
        if (!seen.insert({pack(a), pack(b)}).second) continue;
        if (options.max_signature_hamming > 0 &&
            SignatureHamming(row_keys.at(pack(a)), row_keys.at(pack(b))) >
                options.max_signature_hamming) {
          continue;  // super-key prefilter: too dissimilar to verify
        }
        double overlap = RowOverlap(corpus_->table(a.table), a.row,
                                    corpus_->table(b.table), b.row);
        if (overlap >= options.min_overlap) {
          pairs.push_back({a.table, a.row, b.table, b.row, overlap});
        }
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const DuplicateRowPair& a, const DuplicateRowPair& b) {
              if (a.left_table != b.left_table) {
                return a.left_table < b.left_table;
              }
              if (a.left_row != b.left_row) return a.left_row < b.left_row;
              if (a.right_table != b.right_table) {
                return a.right_table < b.right_table;
              }
              return a.right_row < b.right_row;
            });
  return pairs;
}

}  // namespace mate
