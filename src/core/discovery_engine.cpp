#include "core/discovery_engine.h"

#include <algorithm>
#include <sstream>

#include "util/latency_histogram.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mate {

BatchStats AggregateBatchStats(const std::vector<DiscoveryResult>& results,
                               double wall_seconds, unsigned num_threads) {
  BatchStats stats;
  stats.queries = results.size();
  stats.num_threads = num_threads;
  stats.wall_seconds = wall_seconds;
  // One histogram feeds the percentile fields — the same HDR layout and
  // nearest-rank rule the serving layer reports (util/latency_histogram.h),
  // so batch and server percentiles can never disagree on definition.
  // Latencies record as integer microseconds: exact max, and percentiles
  // within the histogram's 1/16 relative bound (cross-checked against
  // PercentileSorted in tests/obs_test.cpp).
  LatencyHistogram latency_us;
  for (const DiscoveryResult& r : results) {
    stats.total_query_seconds += r.stats.runtime_seconds;
    stats.pl_items_fetched += r.stats.pl_items_fetched;
    stats.rows_checked += r.stats.rows_checked;
    stats.rows_sent_to_verification += r.stats.rows_sent_to_verification;
    stats.rows_true_positive += r.stats.rows_true_positive;
    if (r.stats.shards_used > 1) {
      ++stats.intra_parallel_queries;
      stats.intra_shards_total += r.stats.shards_used;
    }
    stats.max_fanout_threads =
        std::max(stats.max_fanout_threads, r.stats.fanout_threads);
    stats.tables_materialized += r.stats.tables_materialized;
    stats.cell_bytes_materialized += r.stats.cell_bytes_materialized;
    latency_us.Record(
        static_cast<uint64_t>(r.stats.runtime_seconds * 1e6));
  }
  stats.latency_p50_s = static_cast<double>(latency_us.Percentile(0.50)) / 1e6;
  stats.latency_p90_s = static_cast<double>(latency_us.Percentile(0.90)) / 1e6;
  stats.latency_p99_s = static_cast<double>(latency_us.Percentile(0.99)) / 1e6;
  stats.latency_max_s = static_cast<double>(latency_us.max()) / 1e6;
  return stats;
}

std::string BatchStats::ToString() const {
  std::ostringstream os;
  os << "queries=" << queries << " threads=" << num_threads
     << " wall=" << wall_seconds << "s (" << QueriesPerSecond()
     << " q/s, cpu " << total_query_seconds << "s)"
     << " latency p50=" << latency_p50_s << "s p90=" << latency_p90_s
     << "s p99=" << latency_p99_s << "s max=" << latency_max_s << "s"
     << " pl_items=" << pl_items_fetched << " rows_checked=" << rows_checked
     << " rows_verified=" << rows_sent_to_verification
     << " tp_rows=" << rows_true_positive;
  if (cache_hits + cache_misses > 0) {
    os << " cache_hits=" << cache_hits << " cache_misses=" << cache_misses;
  }
  if (intra_parallel_queries > 0) {
    os << " intra_parallel=" << intra_parallel_queries
       << " shards_total=" << intra_shards_total
       << " max_fanout=" << max_fanout_threads;
  }
  if (tables_materialized > 0) {
    os << " materialized=" << tables_materialized << " ("
       << cell_bytes_materialized << " bytes)";
  }
  if (corpus_evictions > 0) {
    os << " evictions=" << corpus_evictions << " ("
       << corpus_evicted_bytes << " bytes)";
  }
  return os.str();
}

BatchResult RunDiscoveryBatch(
    size_t num_queries,
    const std::function<DiscoveryResult(size_t)>& run_one,
    const BatchOptions& batch_options) {
  ThreadPool pool(batch_options.num_threads);
  return RunDiscoveryBatch(num_queries, run_one, &pool);
}

BatchResult RunDiscoveryBatch(
    size_t num_queries,
    const std::function<DiscoveryResult(size_t)>& run_one, ThreadPool* pool) {
  BatchResult batch;
  batch.results.resize(num_queries);

  Stopwatch wall;
  for (size_t i = 0; i < num_queries; ++i) {
    DiscoveryResult* slot = &batch.results[i];
    pool->Submit([&run_one, slot, i] { *slot = run_one(i); });
  }
  pool->Wait();

  batch.stats = AggregateBatchStats(batch.results, wall.ElapsedSeconds(),
                                    pool->num_threads());
  return batch;
}

BatchResult DiscoveryEngine::DiscoverBatch(
    const std::vector<BatchQuery>& queries, const DiscoveryOptions& options,
    const BatchOptions& batch_options) const {
  return RunDiscoveryBatch(
      queries.size(),
      [this, &queries, &options](size_t i) {
        const BatchQuery& q = queries[i];
        return search_.Discover(*q.query, q.key_columns, options);
      },
      batch_options);
}

}  // namespace mate
