// MCR — Multi-Column Retrieval (§7.1.1): fetches the posting lists of
// *every* query key column, intersects the (table, row) hits across columns,
// and verifies the surviving rows exactly. Complete (never misses a
// joinable table) but fetches |Q| times more PL items than MATE and applies
// no table pruning — the paper's slowest baseline on large corpora.

#ifndef MATE_BASELINES_MCR_H_
#define MATE_BASELINES_MCR_H_

#include "core/mate.h"

namespace mate {

class McrSearch {
 public:
  McrSearch(const Corpus* corpus, const InvertedIndex* index)
      : corpus_(corpus), index_(index) {}

  /// Top-k discovery by per-column retrieval + intersection. Honors
  /// options.k and options.exclude_tables; the filter switches do not apply
  /// (MCR has no super keys and no sorted-order pruning).
  DiscoveryResult Discover(const Table& query,
                           const std::vector<ColumnId>& key_columns,
                           const DiscoveryOptions& options) const;

 private:
  const Corpus* corpus_;
  const InvertedIndex* index_;
};

}  // namespace mate

#endif  // MATE_BASELINES_MCR_H_
