// JOSIE adaptations (§7.1.1). JOSIE [Zhu et al., SIGMOD'19] is a top-k
// overlap set-similarity search over *columns as token sets*; it finds the
// columns (hence tables) with the largest distinct-value overlap with one
// query column, but knows nothing about rows. The paper adapts it to n-ary
// discovery in two ways, both reproduced here:
//
//   * SCR JOSIE: run JOSIE on the init column to shortlist tables, then
//     verify rows via the SCR index restricted to that shortlist.
//   * MCR JOSIE: run JOSIE once per key column, intersect the table
//     shortlists, and verify the intersection.
//
// Our JosieIndex keeps the algorithmic skeleton (distinct-set semantics,
// posting-list-driven overlap counting, k-th score candidate cut) without
// the original's cost-based early-termination model — see DESIGN.md §2.
// Because the shortlist is bounded, the JOSIE adaptations are *heuristic*:
// they can miss tables whose init-column overlap is small even though their
// multi-column joinability is high (one reason the paper builds MATE).

#ifndef MATE_BASELINES_JOSIE_H_
#define MATE_BASELINES_JOSIE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mate.h"
#include "storage/value_dictionary.h"

namespace mate {

class JosieIndex {
 public:
  struct SetRef {
    TableId table_id;
    ColumnId column_id;
    uint32_t set_size;  // distinct values in the column
  };

  struct ScoredSet {
    uint32_t set_id;
    int64_t overlap;
  };

  /// Builds the value -> column-set index over every corpus column.
  static JosieIndex Build(const Corpus& corpus);

  /// The `n` column sets with the largest distinct-token overlap with
  /// `tokens` (overlap desc, set id asc); sets with zero overlap are never
  /// returned.
  std::vector<ScoredSet> TopSets(const std::vector<std::string>& tokens,
                                 size_t n) const;

  /// Distinct table ids behind the top `n` sets, in score order.
  std::vector<TableId> TopTables(const std::vector<std::string>& tokens,
                                 size_t n) const;

  const SetRef& set(uint32_t id) const { return sets_[id]; }
  size_t NumSets() const { return sets_.size(); }
  size_t MemoryBytes() const;

 private:
  std::vector<SetRef> sets_;
  ValueDictionary dictionary_;
  std::unordered_map<ValueId, std::vector<uint32_t>> postings_;
};

struct JosieOptions {
  int k = 10;
  /// Tables shortlisted per JOSIE probe = overfetch * k (the adaptation has
  /// to over-fetch because single-column overlap only approximates n-ary
  /// joinability).
  size_t overfetch = 5;
};

class ScrJosieSearch {
 public:
  ScrJosieSearch(const Corpus* corpus, const InvertedIndex* index,
                 const JosieIndex* josie)
      : corpus_(corpus), index_(index), josie_(josie) {}

  DiscoveryResult Discover(const Table& query,
                           const std::vector<ColumnId>& key_columns,
                           const JosieOptions& options) const;

 private:
  const Corpus* corpus_;
  const InvertedIndex* index_;
  const JosieIndex* josie_;
};

class McrJosieSearch {
 public:
  McrJosieSearch(const Corpus* corpus, const InvertedIndex* index,
                 const JosieIndex* josie)
      : corpus_(corpus), index_(index), josie_(josie) {}

  DiscoveryResult Discover(const Table& query,
                           const std::vector<ColumnId>& key_columns,
                           const JosieOptions& options) const;

 private:
  const Corpus* corpus_;
  const InvertedIndex* index_;
  const JosieIndex* josie_;
};

}  // namespace mate

#endif  // MATE_BASELINES_JOSIE_H_
