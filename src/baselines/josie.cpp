#include "baselines/josie.h"

#include <algorithm>
#include <unordered_set>

#include "util/stopwatch.h"
#include "util/string_util.h"

namespace mate {

JosieIndex JosieIndex::Build(const Corpus& corpus) {
  JosieIndex index;
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    const Table& table = corpus.table(t);
    for (ColumnId c = 0; c < table.NumColumns(); ++c) {
      std::unordered_set<std::string> distinct;
      for (RowId r = 0; r < table.NumRows(); ++r) {
        if (table.IsRowDeleted(r)) continue;
        std::string norm = NormalizeValue(table.cell(r, c));
        if (!norm.empty()) distinct.insert(std::move(norm));
      }
      if (distinct.empty()) continue;
      uint32_t set_id = static_cast<uint32_t>(index.sets_.size());
      index.sets_.push_back(
          {t, c, static_cast<uint32_t>(distinct.size())});
      for (const std::string& value : distinct) {
        ValueId id = index.dictionary_.GetOrAdd(value);
        index.postings_[id].push_back(set_id);
      }
    }
  }
  return index;
}

std::vector<JosieIndex::ScoredSet> JosieIndex::TopSets(
    const std::vector<std::string>& tokens, size_t n) const {
  // Distinct-token semantics: each query token counts once per set.
  std::unordered_set<std::string_view> distinct(tokens.begin(), tokens.end());
  std::unordered_map<uint32_t, int64_t> overlap;
  for (std::string_view token : distinct) {
    ValueId id = dictionary_.Find(token);
    if (id == kInvalidValueId) continue;
    auto it = postings_.find(id);
    if (it == postings_.end()) continue;
    for (uint32_t set_id : it->second) ++overlap[set_id];
  }
  std::vector<ScoredSet> scored;
  scored.reserve(overlap.size());
  for (const auto& [set_id, count] : overlap) scored.push_back({set_id, count});
  std::sort(scored.begin(), scored.end(),
            [](const ScoredSet& a, const ScoredSet& b) {
              if (a.overlap != b.overlap) return a.overlap > b.overlap;
              return a.set_id < b.set_id;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

std::vector<TableId> JosieIndex::TopTables(
    const std::vector<std::string>& tokens, size_t n) const {
  std::vector<TableId> tables;
  std::unordered_set<TableId> seen;
  // Over-fetch sets: several top sets may belong to one table.
  for (const ScoredSet& s : TopSets(tokens, n * 4)) {
    TableId t = sets_[s.set_id].table_id;
    if (seen.insert(t).second) {
      tables.push_back(t);
      if (tables.size() >= n) break;
    }
  }
  return tables;
}

size_t JosieIndex::MemoryBytes() const {
  size_t bytes = sets_.size() * sizeof(SetRef) + dictionary_.MemoryBytes();
  for (const auto& [id, list] : postings_) {
    (void)id;
    bytes += list.size() * sizeof(uint32_t) + sizeof(ValueId) +
             2 * sizeof(void*);
  }
  return bytes;
}

namespace {

// Distinct normalized values of one query key column (JOSIE probe tokens).
std::vector<std::string> ColumnTokens(const Table& query, ColumnId c) {
  std::unordered_set<std::string> distinct;
  for (RowId r = 0; r < query.NumRows(); ++r) {
    if (query.IsRowDeleted(r)) continue;
    std::string norm = NormalizeValue(query.cell(r, c));
    if (!norm.empty()) distinct.insert(std::move(norm));
  }
  return {distinct.begin(), distinct.end()};
}

// Exact evaluation of a fixed table shortlist through the SCR machinery.
DiscoveryResult EvaluateShortlist(const Corpus* corpus,
                                  const InvertedIndex* index,
                                  const Table& query,
                                  const std::vector<ColumnId>& key_columns,
                                  std::vector<TableId> shortlist, int k) {
  MateSearch engine(corpus, index);
  DiscoveryOptions options;
  options.k = k;
  options.use_row_filter = false;  // JOSIE variants verify exactly
  options.use_table_filters = true;
  options.restrict_tables = std::move(shortlist);
  return engine.Discover(query, key_columns, options);
}

}  // namespace

DiscoveryResult ScrJosieSearch::Discover(
    const Table& query, const std::vector<ColumnId>& key_columns,
    const JosieOptions& options) const {
  Stopwatch timer;
  DiscoveryResult result;
  if (key_columns.empty() || options.k <= 0) {
    result.stats.runtime_seconds = timer.ElapsedSeconds();
    return result;
  }
  // JOSIE probe on the init column.
  size_t init_pos = SelectInitColumn(query, key_columns,
                                     InitColumnStrategy::kMinCardinality,
                                     index_);
  std::vector<std::string> tokens =
      ColumnTokens(query, key_columns[init_pos]);
  std::vector<TableId> shortlist = josie_->TopTables(
      tokens, options.overfetch * static_cast<size_t>(options.k));
  if (shortlist.empty()) {
    result.stats.runtime_seconds = timer.ElapsedSeconds();
    return result;
  }
  result = EvaluateShortlist(corpus_, index_, query, key_columns,
                             std::move(shortlist), options.k);
  result.stats.runtime_seconds = timer.ElapsedSeconds();
  return result;
}

DiscoveryResult McrJosieSearch::Discover(
    const Table& query, const std::vector<ColumnId>& key_columns,
    const JosieOptions& options) const {
  Stopwatch timer;
  DiscoveryResult result;
  if (key_columns.empty() || options.k <= 0) {
    result.stats.runtime_seconds = timer.ElapsedSeconds();
    return result;
  }
  // One JOSIE probe per key column; intersect the table shortlists
  // ("evaluating the tables that appear in all joinable results", §7.1.1).
  const size_t n = options.overfetch * static_cast<size_t>(options.k);
  std::unordered_map<TableId, size_t> hits;
  for (ColumnId c : key_columns) {
    for (TableId t : josie_->TopTables(ColumnTokens(query, c), n)) {
      ++hits[t];
    }
  }
  std::vector<TableId> shortlist;
  for (const auto& [t, count] : hits) {
    if (count == key_columns.size()) shortlist.push_back(t);
  }
  std::sort(shortlist.begin(), shortlist.end());
  if (shortlist.empty()) {
    result.stats.runtime_seconds = timer.ElapsedSeconds();
    return result;
  }
  result = EvaluateShortlist(corpus_, index_, query, key_columns,
                             std::move(shortlist), options.k);
  result.stats.runtime_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace mate
