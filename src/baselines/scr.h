// SCR — Single-Column Retrieval (§7.1.1): the strongest non-super-key
// baseline. It runs the full Algorithm 1 machinery (init-column heuristic,
// both table-filter rules) but cannot filter rows with super keys, so every
// fetched candidate row is verified by exact value comparison.

#ifndef MATE_BASELINES_SCR_H_
#define MATE_BASELINES_SCR_H_

#include "core/mate.h"

namespace mate {

class ScrSearch {
 public:
  ScrSearch(const Corpus* corpus, const InvertedIndex* index)
      : engine_(corpus, index) {}

  /// Top-k discovery without super-key row filtering. `options.use_row_filter`
  /// is ignored (forced off).
  DiscoveryResult Discover(const Table& query,
                           const std::vector<ColumnId>& key_columns,
                           DiscoveryOptions options) const {
    options.use_row_filter = false;
    return engine_.Discover(query, key_columns, options);
  }

 private:
  MateSearch engine_;
};

}  // namespace mate

#endif  // MATE_BASELINES_SCR_H_
