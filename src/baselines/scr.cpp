// ScrSearch is header-only (a thin adapter over MateSearch); this file
// anchors the baselines library's SCR translation unit.

#include "baselines/scr.h"
