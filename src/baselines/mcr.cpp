#include "baselines/mcr.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/stopwatch.h"
#include "util/string_util.h"

namespace mate {

namespace {

uint64_t RowKey(TableId t, RowId r) {
  return (static_cast<uint64_t>(t) << 32) | r;
}

}  // namespace

DiscoveryResult McrSearch::Discover(const Table& query,
                                    const std::vector<ColumnId>& key_columns,
                                    const DiscoveryOptions& options) const {
  Stopwatch timer;
  DiscoveryResult result;
  DiscoveryStats& stats = result.stats;
  const size_t m = key_columns.size();
  if (m == 0 || m > 32 || options.k <= 0) {
    stats.runtime_seconds = timer.ElapsedSeconds();
    return result;
  }

  const std::vector<std::vector<std::string>> combos =
      ExtractKeyCombos(query, key_columns);

  // Any key value (at any position) -> combo ids containing it; used to bind
  // candidate rows to the query combos they must be verified against.
  std::unordered_map<std::string_view, std::vector<uint32_t>> combos_of_value;
  // Distinct values per key position, for the per-column PL fetches.
  std::vector<std::unordered_set<std::string_view>> values_at(m);
  for (uint32_t combo_id = 0; combo_id < combos.size(); ++combo_id) {
    for (size_t i = 0; i < m; ++i) {
      const std::string& v = combos[combo_id][i];
      values_at[i].insert(v);
      std::vector<uint32_t>& list = combos_of_value[v];
      if (list.empty() || list.back() != combo_id) list.push_back(combo_id);
    }
  }

  // Per-column retrieval: accumulate which key positions hit each row.
  std::unordered_set<TableId> excluded(options.exclude_tables.begin(),
                                       options.exclude_tables.end());
  const uint32_t full_mask =
      m == 32 ? 0xFFFFFFFFu : ((uint32_t{1} << m) - 1);
  std::unordered_map<uint64_t, uint32_t> row_masks;
  for (size_t i = 0; i < m; ++i) {
    for (std::string_view v : values_at[i]) {
      const PostingList* pl = index_->Lookup(v);
      if (pl == nullptr) continue;
      stats.pl_items_fetched += pl->size();
      for (const PostingEntry& entry : *pl) {
        if (excluded.count(entry.table_id)) continue;
        row_masks[RowKey(entry.table_id, entry.row_id)] |= uint32_t{1} << i;
      }
    }
  }

  // Intersection: rows hit by every key column, grouped per table.
  std::unordered_map<TableId, std::vector<RowId>> candidate_rows;
  for (const auto& [key, mask] : row_masks) {
    if (mask == full_mask) {
      candidate_rows[static_cast<TableId>(key >> 32)].push_back(
          static_cast<RowId>(key & 0xFFFFFFFFu));
    }
  }
  stats.candidate_tables = candidate_rows.size();

  // Deterministic evaluation order.
  std::vector<TableId> tables;
  tables.reserve(candidate_rows.size());
  for (const auto& [t, rows] : candidate_rows) tables.push_back(t);
  std::sort(tables.begin(), tables.end());

  TopKHeap<TableId> topk(static_cast<size_t>(options.k));
  std::unordered_map<TableId, std::vector<ColumnId>> best_mappings;
  MappingAccumulator acc;
  std::vector<uint32_t> bound;

  for (TableId t : tables) {
    ++stats.tables_evaluated;
    const Table& table = corpus_->table(t);
    std::vector<RowId>& rows = candidate_rows[t];
    std::sort(rows.begin(), rows.end());
    acc.Clear();
    for (RowId r : rows) {
      ++stats.rows_checked;
      ++stats.rows_sent_to_verification;
      // Bind the combos sharing at least one value with this row.
      bound.clear();
      for (ColumnId c = 0; c < table.NumColumns(); ++c) {
        auto it = combos_of_value.find(NormalizeValue(table.cell(r, c)));
        if (it == combos_of_value.end()) continue;
        bound.insert(bound.end(), it->second.begin(), it->second.end());
      }
      std::sort(bound.begin(), bound.end());
      bound.erase(std::unique(bound.begin(), bound.end()), bound.end());

      bool row_matched = false;
      for (uint32_t combo_id : bound) {
        if (VerifyComboInRow(table, r, combos[combo_id], combo_id,
                             kInvalidColumnId, 0, &acc,
                             &stats.value_comparisons)) {
          row_matched = true;
        }
      }
      if (row_matched) ++stats.rows_true_positive;
    }
    const int64_t j = acc.MaxJoinability();
    if (j > 0 && topk.Add(t, j)) best_mappings[t] = acc.BestMapping();
  }

  result.top_k = FinalizeTopK(topk, best_mappings);
  stats.runtime_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace mate
