// Query-set runners: execute one discovery system over a set of generated
// queries and aggregate the metrics the paper reports (runtime, precision
// mean ± std, FP/TP row counts, PL items fetched).

#ifndef MATE_BENCH_UTIL_RUNNER_H_
#define MATE_BENCH_UTIL_RUNNER_H_

#include <string>
#include <vector>

#include "baselines/josie.h"
#include "baselines/mcr.h"
#include "baselines/scr.h"
#include "core/mate.h"
#include "workload/query_gen.h"

namespace mate {

enum class SystemKind { kMate, kScr, kMcr, kScrJosie, kMcrJosie };

std::string_view SystemKindName(SystemKind kind);

struct QuerySetMetrics {
  std::string label;
  size_t queries = 0;
  double total_runtime_s = 0.0;
  double avg_runtime_s = 0.0;
  double avg_precision = 0.0;
  double std_precision = 0.0;
  uint64_t pl_items_fetched = 0;
  uint64_t rows_checked = 0;
  uint64_t rows_sent_to_verification = 0;
  uint64_t tp_rows = 0;
  uint64_t fp_rows = 0;
  double avg_top1_joinability = 0.0;
  /// Sum over queries of the top-k joinability scores (used by agreement
  /// checks between systems).
  int64_t topk_score_sum = 0;
};

/// Runs `kind` over all `queries`; `josie` may be null unless kind is a
/// JOSIE variant.
QuerySetMetrics RunSystem(SystemKind kind, const Corpus& corpus,
                          const InvertedIndex& index, const JosieIndex* josie,
                          const std::vector<QueryCase>& queries, int k,
                          std::string label);

/// Runs MATE with explicit options (hash sweeps, ablations, init-column
/// strategies).
QuerySetMetrics RunMateWithOptions(const Corpus& corpus,
                                   const InvertedIndex& index,
                                   const std::vector<QueryCase>& queries,
                                   const DiscoveryOptions& options,
                                   std::string label);

}  // namespace mate

#endif  // MATE_BENCH_UTIL_RUNNER_H_
