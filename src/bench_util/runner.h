// Query-set runners: execute one discovery system over a set of generated
// queries and aggregate the metrics the paper reports (runtime, precision
// mean ± std, FP/TP row counts, PL items fetched).

#ifndef MATE_BENCH_UTIL_RUNNER_H_
#define MATE_BENCH_UTIL_RUNNER_H_

#include <string>
#include <vector>

#include "baselines/josie.h"
#include "baselines/mcr.h"
#include "baselines/scr.h"
#include "core/discovery_engine.h"
#include "core/mate.h"
#include "workload/query_gen.h"

namespace mate {

enum class SystemKind { kMate, kScr, kMcr, kScrJosie, kMcrJosie };

std::string_view SystemKindName(SystemKind kind);

struct QuerySetMetrics {
  std::string label;
  size_t queries = 0;
  double total_runtime_s = 0.0;
  double avg_runtime_s = 0.0;
  double avg_precision = 0.0;
  double std_precision = 0.0;
  uint64_t pl_items_fetched = 0;
  uint64_t rows_checked = 0;
  uint64_t rows_sent_to_verification = 0;
  uint64_t tp_rows = 0;
  uint64_t fp_rows = 0;
  double avg_top1_joinability = 0.0;
  /// Sum over queries of the top-k joinability scores (used by agreement
  /// checks between systems).
  int64_t topk_score_sum = 0;
  /// Batch-level instrumentation: end-to-end wall time (lower than
  /// total_runtime_s on a multi-threaded run), latency percentiles, thread
  /// count.
  BatchStats batch;
};

/// Runs `kind` over all `queries` through the batch discovery engine;
/// `josie` may be null unless kind is a JOSIE variant. `num_threads`
/// follows the IndexBuilder convention (0 = hardware concurrency); results
/// and counter-based metrics are identical at any thread count.
QuerySetMetrics RunSystem(SystemKind kind, const Corpus& corpus,
                          const InvertedIndex& index, const JosieIndex* josie,
                          const std::vector<QueryCase>& queries, int k,
                          std::string label, unsigned num_threads = 1);

/// Runs MATE with explicit options (hash sweeps, ablations, init-column
/// strategies).
QuerySetMetrics RunMateWithOptions(const Corpus& corpus,
                                   const InvertedIndex& index,
                                   const std::vector<QueryCase>& queries,
                                   const DiscoveryOptions& options,
                                   std::string label,
                                   unsigned num_threads = 1);

}  // namespace mate

#endif  // MATE_BENCH_UTIL_RUNNER_H_
