// Query-set runners: execute one discovery system over a set of generated
// queries and aggregate the metrics the paper reports (runtime, precision
// mean ± std, FP/TP row counts, PL items fetched).
//
// All systems run through a mate::Session: MATE itself goes through the
// validated Session::DiscoverBatch path, the baselines fan out over the
// session's long-lived pool via Session::RunBatch (sharing threads but
// never MATE's result cache). Benches that measure runtime should open
// their session with cache_bytes = 0 so every query pays full cost.

#ifndef MATE_BENCH_UTIL_RUNNER_H_
#define MATE_BENCH_UTIL_RUNNER_H_

#include <string>
#include <vector>

#include "baselines/josie.h"
#include "baselines/mcr.h"
#include "baselines/scr.h"
#include "core/session.h"
#include "workload/query_gen.h"

namespace mate {

enum class SystemKind { kMate, kScr, kMcr, kScrJosie, kMcrJosie };

std::string_view SystemKindName(SystemKind kind);

struct QuerySetMetrics {
  std::string label;
  size_t queries = 0;
  double total_runtime_s = 0.0;
  double avg_runtime_s = 0.0;
  double avg_precision = 0.0;
  double std_precision = 0.0;
  uint64_t pl_items_fetched = 0;
  uint64_t rows_checked = 0;
  uint64_t rows_sent_to_verification = 0;
  uint64_t tp_rows = 0;
  uint64_t fp_rows = 0;
  double avg_top1_joinability = 0.0;
  /// Sum over queries of the top-k joinability scores (used by agreement
  /// checks between systems).
  int64_t topk_score_sum = 0;
  /// Batch-level instrumentation: end-to-end wall time (lower than
  /// total_runtime_s on a multi-threaded run), latency percentiles, thread
  /// count, cache traffic.
  BatchStats batch;
};

/// Runs `kind` over all `queries` on `session`'s pool; `josie` may be null
/// unless kind is a JOSIE variant. Results and counter-based metrics are
/// identical at any thread count. Fails only on invalid query specs.
Result<QuerySetMetrics> RunSystem(SystemKind kind, Session& session,
                                  const JosieIndex* josie,
                                  const std::vector<QueryCase>& queries,
                                  int k, std::string label);

/// Runs MATE with explicit options (hash sweeps, ablations, init-column
/// strategies) through Session::DiscoverBatch.
Result<QuerySetMetrics> RunMateWithOptions(
    Session& session, const std::vector<QueryCase>& queries,
    const DiscoveryOptions& options, std::string label);

/// Bench-binary convenience: unwraps or prints the error and exits(1).
QuerySetMetrics RunOrDie(Result<QuerySetMetrics> result);

/// Ditto for opening a session in a bench binary.
Session OpenOrDie(SessionOptions options);

/// True iff both runs returned the same top-k lists (table ids,
/// joinability scores, and column mappings) for every query — the
/// bit-identical check the determinism demos and the cache bench enforce.
bool SameTopK(const std::vector<DiscoveryResult>& a,
              const std::vector<DiscoveryResult>& b);

}  // namespace mate

#endif  // MATE_BENCH_UTIL_RUNNER_H_
