// ASCII table rendering and flag parsing shared by the paper-reproduction
// bench binaries.

#ifndef MATE_BENCH_UTIL_REPORT_H_
#define MATE_BENCH_UTIL_REPORT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mate {

/// Column-aligned plain-text table (first row rendered as a header).
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  void Print(std::ostream& os) const;
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string FormatDouble(double v, int precision);
/// "1.23s" / "45.6ms" adaptive formatting.
std::string FormatSeconds(double seconds);
/// "12.3 MB" adaptive formatting.
std::string FormatBytes(uint64_t bytes);
/// "0.88 ±0.26" (Table 3 style).
std::string FormatMeanStd(double mean, double std_dev);

/// Common bench flags: --scale=F --seed=N --queries=N --k=N --threads=N
/// --json=PATH.
struct BenchArgs {
  double scale = 1.0;
  uint64_t seed = 42;
  size_t queries = 5;
  int k = 10;
  /// Discovery fan-out threads (0 = hardware concurrency).
  unsigned threads = 1;
  /// When non-empty, the bench also writes its metrics as JSON records to
  /// this path (bench_util/bench_json.h) — the machine-readable side of
  /// the ASCII report, merged into BENCH_*.json by tools/bench_report.py.
  std::string json_path;
};

/// Parses flags (exits with a usage message on unknown flags). `defaults`
/// sets per-bench default scale/queries so every binary finishes quickly
/// out of the box.
BenchArgs ParseBenchArgs(int argc, char** argv, const char* bench_name,
                         BenchArgs defaults = {});

}  // namespace mate

#endif  // MATE_BENCH_UTIL_REPORT_H_
