// Machine-readable bench output: every bench that takes --json=PATH writes
// its metrics through this writer, one flat record per metric, so CI can
// merge all bench outputs into a single BENCH_*.json trajectory file
// (tools/bench_report.py) and diff metric *presence* across commits.
//
// One record:
//
//   {"bench": "cold_start", "scenario": "phased+warm", "metric": "open",
//    "value": 0.0123, "unit": "s", "threads": 4, "shards": 1}
//
// The (bench, scenario, metric, unit) tuple identifies a metric across
// runs; `value` is the measurement and is never compared by CI (hardware
// varies), `threads`/`shards` record the execution shape the bench ran
// with. Keep scenario/metric names stable: renaming one reads as a metric
// disappearing from the trajectory.

#ifndef MATE_BENCH_UTIL_BENCH_JSON_H_
#define MATE_BENCH_UTIL_BENCH_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mate {

/// Collects bench metric records and writes them as a JSON document:
/// {"schema_version": 1, "records": [...]}.
class BenchJsonWriter {
 public:
  /// `bench` names the binary (e.g. "cold_start"); `threads` is the
  /// configured worker count recorded on every record.
  BenchJsonWriter(std::string bench, unsigned threads);

  /// Appends one metric record. `shards` defaults to 1 (serial execution).
  void Add(std::string_view scenario, std::string_view metric, double value,
           std::string_view unit, uint64_t shards = 1);

  /// Appends one serving-load record: like Add, but the record also carries
  /// the tenant count and the open-loop arrival rate (requests/s) the
  /// measurement ran under — bench/serving_tail_latency emits these so the
  /// trajectory records the load shape, not just the latency numbers.
  void AddWithLoad(std::string_view scenario, std::string_view metric,
                   double value, std::string_view unit, uint64_t tenants,
                   double arrival_rate, uint64_t shards = 1);

  /// Serializes the records to `path` (no-op returning true when `path` is
  /// empty, so benches can call it unconditionally with args.json_path).
  /// On an IO failure prints to stderr and returns false.
  bool WriteTo(const std::string& path) const;

  std::string ToJson() const;

 private:
  struct Record {
    std::string scenario;
    std::string metric;
    double value;
    std::string unit;
    uint64_t shards;
    // Serving-load shape (AddWithLoad); absent from the JSON when unset.
    bool has_load = false;
    uint64_t tenants = 0;
    double arrival_rate = 0.0;
  };

  std::string bench_;
  unsigned threads_;
  std::vector<Record> records_;
};

}  // namespace mate

#endif  // MATE_BENCH_UTIL_BENCH_JSON_H_
