#include "bench_util/bench_json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

namespace mate {

namespace {

// Minimal JSON string escape: the names benches use are plain ASCII, but a
// stray quote or backslash must not produce an unparseable file.
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double value) {
  // JSON has no NaN/Inf; a bench that divides by zero must still produce a
  // parseable file (the value is informational, presence is what CI diffs).
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

}  // namespace

BenchJsonWriter::BenchJsonWriter(std::string bench, unsigned threads)
    : bench_(std::move(bench)), threads_(threads) {}

void BenchJsonWriter::Add(std::string_view scenario, std::string_view metric,
                          double value, std::string_view unit,
                          uint64_t shards) {
  records_.push_back(Record{std::string(scenario), std::string(metric), value,
                            std::string(unit), shards});
}

void BenchJsonWriter::AddWithLoad(std::string_view scenario,
                                  std::string_view metric, double value,
                                  std::string_view unit, uint64_t tenants,
                                  double arrival_rate, uint64_t shards) {
  Record record{std::string(scenario), std::string(metric), value,
                std::string(unit), shards};
  record.has_load = true;
  record.tenants = tenants;
  record.arrival_rate = arrival_rate;
  records_.push_back(std::move(record));
}

std::string BenchJsonWriter::ToJson() const {
  std::string out;
  out.append("{\"schema_version\": 1, \"records\": [");
  for (size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    if (i > 0) out.push_back(',');
    out.append("\n  {\"bench\": ");
    AppendJsonString(&out, bench_);
    out.append(", \"scenario\": ");
    AppendJsonString(&out, r.scenario);
    out.append(", \"metric\": ");
    AppendJsonString(&out, r.metric);
    out.append(", \"value\": ");
    AppendJsonNumber(&out, r.value);
    out.append(", \"unit\": ");
    AppendJsonString(&out, r.unit);
    out.append(", \"threads\": " + std::to_string(threads_));
    out.append(", \"shards\": " + std::to_string(r.shards));
    if (r.has_load) {
      out.append(", \"tenants\": " + std::to_string(r.tenants));
      out.append(", \"arrival_rate\": ");
      AppendJsonNumber(&out, r.arrival_rate);
    }
    out.push_back('}');
  }
  out.append("\n]}\n");
  return out;
}

bool BenchJsonWriter::WriteTo(const std::string& path) const {
  if (path.empty()) return true;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << bench_ << ": cannot open --json path " << path << "\n";
    return false;
  }
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) {
    std::cerr << bench_ << ": short write to " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace mate
