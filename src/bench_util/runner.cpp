#include "bench_util/runner.h"

#include <cmath>

namespace mate {

namespace {

void Accumulate(QuerySetMetrics* m, const DiscoveryResult& result,
                std::vector<double>* precisions) {
  const DiscoveryStats& s = result.stats;
  m->total_runtime_s += s.runtime_seconds;
  m->pl_items_fetched += s.pl_items_fetched;
  m->rows_checked += s.rows_checked;
  m->rows_sent_to_verification += s.rows_sent_to_verification;
  m->tp_rows += s.rows_true_positive;
  m->fp_rows += s.FalsePositiveRows();
  precisions->push_back(s.Precision());
  m->avg_top1_joinability += static_cast<double>(result.JoinabilityAt(0));
  for (const TableResult& tr : result.top_k) m->topk_score_sum += tr.joinability;
  ++m->queries;
}

void Finalize(QuerySetMetrics* m, const std::vector<double>& precisions) {
  if (m->queries == 0) return;
  m->avg_runtime_s = m->total_runtime_s / static_cast<double>(m->queries);
  m->avg_top1_joinability /= static_cast<double>(m->queries);
  double mean = 0.0;
  for (double p : precisions) mean += p;
  mean /= static_cast<double>(precisions.size());
  double var = 0.0;
  for (double p : precisions) var += (p - mean) * (p - mean);
  var /= static_cast<double>(precisions.size());
  m->avg_precision = mean;
  m->std_precision = std::sqrt(var);
}

}  // namespace

std::string_view SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kMate: return "Mate";
    case SystemKind::kScr: return "SCR";
    case SystemKind::kMcr: return "MCR";
    case SystemKind::kScrJosie: return "SCR Josie";
    case SystemKind::kMcrJosie: return "MCR Josie";
  }
  return "?";
}

QuerySetMetrics RunSystem(SystemKind kind, const Corpus& corpus,
                          const InvertedIndex& index, const JosieIndex* josie,
                          const std::vector<QueryCase>& queries, int k,
                          std::string label) {
  QuerySetMetrics metrics;
  metrics.label = std::move(label);
  std::vector<double> precisions;

  for (const QueryCase& qc : queries) {
    DiscoveryResult result;
    switch (kind) {
      case SystemKind::kMate: {
        MateSearch engine(&corpus, &index);
        DiscoveryOptions options;
        options.k = k;
        result = engine.Discover(qc.query, qc.key_columns, options);
        break;
      }
      case SystemKind::kScr: {
        ScrSearch engine(&corpus, &index);
        DiscoveryOptions options;
        options.k = k;
        result = engine.Discover(qc.query, qc.key_columns, options);
        break;
      }
      case SystemKind::kMcr: {
        McrSearch engine(&corpus, &index);
        DiscoveryOptions options;
        options.k = k;
        result = engine.Discover(qc.query, qc.key_columns, options);
        break;
      }
      case SystemKind::kScrJosie: {
        ScrJosieSearch engine(&corpus, &index, josie);
        JosieOptions options;
        options.k = k;
        result = engine.Discover(qc.query, qc.key_columns, options);
        break;
      }
      case SystemKind::kMcrJosie: {
        McrJosieSearch engine(&corpus, &index, josie);
        JosieOptions options;
        options.k = k;
        result = engine.Discover(qc.query, qc.key_columns, options);
        break;
      }
    }
    Accumulate(&metrics, result, &precisions);
  }
  Finalize(&metrics, precisions);
  return metrics;
}

QuerySetMetrics RunMateWithOptions(const Corpus& corpus,
                                   const InvertedIndex& index,
                                   const std::vector<QueryCase>& queries,
                                   const DiscoveryOptions& options,
                                   std::string label) {
  QuerySetMetrics metrics;
  metrics.label = std::move(label);
  std::vector<double> precisions;
  MateSearch engine(&corpus, &index);
  for (const QueryCase& qc : queries) {
    DiscoveryResult result =
        engine.Discover(qc.query, qc.key_columns, options);
    Accumulate(&metrics, result, &precisions);
  }
  Finalize(&metrics, precisions);
  return metrics;
}

}  // namespace mate
