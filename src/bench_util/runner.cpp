#include "bench_util/runner.h"

#include <cmath>
#include <functional>

namespace mate {

namespace {

void Accumulate(QuerySetMetrics* m, const DiscoveryResult& result,
                std::vector<double>* precisions) {
  const DiscoveryStats& s = result.stats;
  m->total_runtime_s += s.runtime_seconds;
  m->pl_items_fetched += s.pl_items_fetched;
  m->rows_checked += s.rows_checked;
  m->rows_sent_to_verification += s.rows_sent_to_verification;
  m->tp_rows += s.rows_true_positive;
  m->fp_rows += s.FalsePositiveRows();
  precisions->push_back(s.Precision());
  m->avg_top1_joinability += static_cast<double>(result.JoinabilityAt(0));
  for (const TableResult& tr : result.top_k) m->topk_score_sum += tr.joinability;
  ++m->queries;
}

void Finalize(QuerySetMetrics* m, const std::vector<double>& precisions) {
  if (m->queries == 0) return;
  m->avg_runtime_s = m->total_runtime_s / static_cast<double>(m->queries);
  m->avg_top1_joinability /= static_cast<double>(m->queries);
  double mean = 0.0;
  for (double p : precisions) mean += p;
  mean /= static_cast<double>(precisions.size());
  double var = 0.0;
  for (double p : precisions) var += (p - mean) * (p - mean);
  var /= static_cast<double>(precisions.size());
  m->avg_precision = mean;
  m->std_precision = std::sqrt(var);
}

/// Fans the query set out through the batch engine, then folds the
/// index-ordered results into QuerySetMetrics (deterministic at any thread
/// count).
QuerySetMetrics RunBatched(
    const std::vector<QueryCase>& queries,
    const std::function<DiscoveryResult(size_t)>& run_one, std::string label,
    unsigned num_threads) {
  QuerySetMetrics metrics;
  metrics.label = std::move(label);

  BatchOptions batch_options;
  batch_options.num_threads = num_threads;
  BatchResult batch =
      RunDiscoveryBatch(queries.size(), run_one, batch_options);

  std::vector<double> precisions;
  for (const DiscoveryResult& result : batch.results) {
    Accumulate(&metrics, result, &precisions);
  }
  Finalize(&metrics, precisions);
  metrics.batch = batch.stats;
  return metrics;
}

}  // namespace

std::string_view SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kMate: return "Mate";
    case SystemKind::kScr: return "SCR";
    case SystemKind::kMcr: return "MCR";
    case SystemKind::kScrJosie: return "SCR Josie";
    case SystemKind::kMcrJosie: return "MCR Josie";
  }
  return "?";
}

QuerySetMetrics RunSystem(SystemKind kind, const Corpus& corpus,
                          const InvertedIndex& index, const JosieIndex* josie,
                          const std::vector<QueryCase>& queries, int k,
                          std::string label, unsigned num_threads) {
  DiscoveryOptions options;
  options.k = k;
  JosieOptions josie_options;
  josie_options.k = k;

  std::function<DiscoveryResult(size_t)> run_one;
  switch (kind) {
    case SystemKind::kMate:
      run_one = [&, options](size_t i) {
        MateSearch engine(&corpus, &index);
        return engine.Discover(queries[i].query, queries[i].key_columns,
                               options);
      };
      break;
    case SystemKind::kScr:
      run_one = [&, options](size_t i) {
        ScrSearch engine(&corpus, &index);
        return engine.Discover(queries[i].query, queries[i].key_columns,
                               options);
      };
      break;
    case SystemKind::kMcr:
      run_one = [&, options](size_t i) {
        McrSearch engine(&corpus, &index);
        return engine.Discover(queries[i].query, queries[i].key_columns,
                               options);
      };
      break;
    case SystemKind::kScrJosie:
      run_one = [&, josie_options](size_t i) {
        ScrJosieSearch engine(&corpus, &index, josie);
        return engine.Discover(queries[i].query, queries[i].key_columns,
                               josie_options);
      };
      break;
    case SystemKind::kMcrJosie:
      run_one = [&, josie_options](size_t i) {
        McrJosieSearch engine(&corpus, &index, josie);
        return engine.Discover(queries[i].query, queries[i].key_columns,
                               josie_options);
      };
      break;
  }
  return RunBatched(queries, run_one, std::move(label), num_threads);
}

QuerySetMetrics RunMateWithOptions(const Corpus& corpus,
                                   const InvertedIndex& index,
                                   const std::vector<QueryCase>& queries,
                                   const DiscoveryOptions& options,
                                   std::string label, unsigned num_threads) {
  MateSearch engine(&corpus, &index);
  return RunBatched(
      queries,
      [&](size_t i) {
        return engine.Discover(queries[i].query, queries[i].key_columns,
                               options);
      },
      std::move(label), num_threads);
}

}  // namespace mate
