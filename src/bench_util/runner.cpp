#include "bench_util/runner.h"

#include <cmath>
#include <cstdlib>
#include <functional>
#include <iostream>

namespace mate {

namespace {

void Accumulate(QuerySetMetrics* m, const DiscoveryResult& result,
                std::vector<double>* precisions) {
  const DiscoveryStats& s = result.stats;
  m->total_runtime_s += s.runtime_seconds;
  m->pl_items_fetched += s.pl_items_fetched;
  m->rows_checked += s.rows_checked;
  m->rows_sent_to_verification += s.rows_sent_to_verification;
  m->tp_rows += s.rows_true_positive;
  m->fp_rows += s.FalsePositiveRows();
  precisions->push_back(s.Precision());
  m->avg_top1_joinability += static_cast<double>(result.JoinabilityAt(0));
  for (const TableResult& tr : result.top_k) {
    m->topk_score_sum += tr.joinability;
  }
  ++m->queries;
}

void Finalize(QuerySetMetrics* m, const std::vector<double>& precisions) {
  if (m->queries == 0) return;
  m->avg_runtime_s = m->total_runtime_s / static_cast<double>(m->queries);
  m->avg_top1_joinability /= static_cast<double>(m->queries);
  double mean = 0.0;
  for (double p : precisions) mean += p;
  mean /= static_cast<double>(precisions.size());
  double var = 0.0;
  for (double p : precisions) var += (p - mean) * (p - mean);
  var /= static_cast<double>(precisions.size());
  m->avg_precision = mean;
  m->std_precision = std::sqrt(var);
}

/// Folds the index-ordered batch results into QuerySetMetrics
/// (deterministic at any thread count).
QuerySetMetrics FoldBatch(BatchResult batch, std::string label) {
  QuerySetMetrics metrics;
  metrics.label = std::move(label);
  std::vector<double> precisions;
  for (const DiscoveryResult& result : batch.results) {
    Accumulate(&metrics, result, &precisions);
  }
  Finalize(&metrics, precisions);
  metrics.batch = batch.stats;
  return metrics;
}

std::vector<QuerySpec> ToSpecs(const std::vector<QueryCase>& queries,
                               const DiscoveryOptions& options) {
  std::vector<QuerySpec> specs;
  specs.reserve(queries.size());
  for (const QueryCase& qc : queries) {
    QuerySpec spec;
    spec.table = &qc.query;
    spec.key_columns = qc.key_columns;
    spec.options = options;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

std::string_view SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kMate: return "Mate";
    case SystemKind::kScr: return "SCR";
    case SystemKind::kMcr: return "MCR";
    case SystemKind::kScrJosie: return "SCR Josie";
    case SystemKind::kMcrJosie: return "MCR Josie";
  }
  return "?";
}

Result<QuerySetMetrics> RunSystem(SystemKind kind, Session& session,
                                  const JosieIndex* josie,
                                  const std::vector<QueryCase>& queries,
                                  int k, std::string label) {
  if (kind == SystemKind::kMate) {
    DiscoveryOptions options;
    options.k = k;
    return RunMateWithOptions(session, queries, options, std::move(label));
  }

  const Corpus* corpus = &session.corpus();
  const InvertedIndex* index = &session.index();
  DiscoveryOptions options;
  options.k = k;
  JosieOptions josie_options;
  josie_options.k = k;

  std::function<DiscoveryResult(size_t)> run_one;
  switch (kind) {
    case SystemKind::kMate:
      break;  // handled above
    case SystemKind::kScr:
      run_one = [corpus, index, &queries, options](size_t i) {
        ScrSearch engine(corpus, index);
        return engine.Discover(queries[i].query, queries[i].key_columns,
                               options);
      };
      break;
    case SystemKind::kMcr:
      run_one = [corpus, index, &queries, options](size_t i) {
        McrSearch engine(corpus, index);
        return engine.Discover(queries[i].query, queries[i].key_columns,
                               options);
      };
      break;
    case SystemKind::kScrJosie:
      run_one = [corpus, index, josie, &queries, josie_options](size_t i) {
        ScrJosieSearch engine(corpus, index, josie);
        return engine.Discover(queries[i].query, queries[i].key_columns,
                               josie_options);
      };
      break;
    case SystemKind::kMcrJosie:
      run_one = [corpus, index, josie, &queries, josie_options](size_t i) {
        McrJosieSearch engine(corpus, index, josie);
        return engine.Discover(queries[i].query, queries[i].key_columns,
                               josie_options);
      };
      break;
  }
  return FoldBatch(session.RunBatch(queries.size(), run_one),
                   std::move(label));
}

Result<QuerySetMetrics> RunMateWithOptions(
    Session& session, const std::vector<QueryCase>& queries,
    const DiscoveryOptions& options, std::string label) {
  MATE_ASSIGN_OR_RETURN(BatchResult batch,
                        session.DiscoverBatch(ToSpecs(queries, options)));
  return FoldBatch(std::move(batch), std::move(label));
}

QuerySetMetrics RunOrDie(Result<QuerySetMetrics> result) {
  if (!result.ok()) {
    std::cerr << "query-set run failed: " << result.status().ToString()
              << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

bool SameTopK(const std::vector<DiscoveryResult>& a,
              const std::vector<DiscoveryResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].top_k.size() != b[q].top_k.size()) return false;
    for (size_t i = 0; i < a[q].top_k.size(); ++i) {
      if (a[q].top_k[i].table_id != b[q].top_k[i].table_id ||
          a[q].top_k[i].joinability != b[q].top_k[i].joinability ||
          a[q].top_k[i].best_mapping != b[q].top_k[i].best_mapping) {
        return false;
      }
    }
  }
  return true;
}

Session OpenOrDie(SessionOptions options) {
  auto session = Session::Open(std::move(options));
  if (!session.ok()) {
    std::cerr << "Session::Open failed: " << session.status().ToString()
              << "\n";
    std::exit(1);
  }
  // Benches time queries, not warmup: drain the phased index load and the
  // lazy-corpus warmer (and surface deferred load corruption) before the
  // first measured Discover. cold_start, which measures exactly this
  // warmup, opens its sessions by hand.
  if (Status ready = session->WaitUntilReady(); !ready.ok()) {
    std::cerr << "Session load failed: " << ready.ToString() << "\n";
    std::exit(1);
  }
  if (Status resident = session->WaitCorpusResident(); !resident.ok()) {
    std::cerr << "Corpus load failed: " << resident.ToString() << "\n";
    std::exit(1);
  }
  return std::move(session).value();
}

}  // namespace mate
