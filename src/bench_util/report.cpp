#include "bench_util/report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "util/string_util.h"

namespace mate {

ReportTable::ReportTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void ReportTable::Print(std::ostream& os) const { os << ToString(); }

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "| " << cell << std::string(widths[c] - cell.size(), ' ') << ' ';
    }
    os << "|\n";
  };
  auto emit_rule = [&] {
    for (size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (uint64_t{1} << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1 << 30));
  } else if (bytes >= (uint64_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / (1 << 20));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", b / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatMeanStd(double mean, double std_dev) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f ±%.2f", mean, std_dev);
  return buf;
}

BenchArgs ParseBenchArgs(int argc, char** argv, const char* bench_name,
                         BenchArgs defaults) {
  BenchArgs args = defaults;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      args.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      args.queries = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--k=", 4) == 0) {
      args.k = std::atoi(arg + 4);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      if (!ParseSmallUint(arg + 10, 1024, &args.threads)) {
        std::cerr << bench_name << ": --threads wants an integer in "
                  << "[0, 1024], got '" << (arg + 10) << "'\n";
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      args.json_path = arg + 7;
    } else {
      std::cerr << bench_name
                << ": usage: [--scale=F] [--seed=N] [--queries=N] [--k=N]"
                   " [--threads=N] [--json=PATH]\n";
      std::exit(2);
    }
  }
  if (args.scale <= 0 || args.queries == 0 || args.k <= 0) {
    std::cerr << bench_name << ": invalid flag values\n";
    std::exit(2);
  }
  return args;
}

}  // namespace mate
