#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace mate {

namespace {

// Round-robin stripe assignment: each thread picks a stripe once and keeps
// it, so a fixed pool of workers spreads evenly instead of hashing thread
// ids into collisions.
size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  static thread_local size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

// Shortest-form decimal for exposition values ("0.0001", "2", "1e+06").
std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

void Counter::Increment(uint64_t delta) {
  cells_[ThreadStripe() % kStripes].v.fetch_add(delta,
                                                std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Record(uint64_t value) {
  Cell& cell = cells_[ThreadStripe() % kStripes];
  std::lock_guard<std::mutex> lock(cell.mu);
  cell.h.Record(value);
}

LatencyHistogram Histogram::Snapshot() const {
  LatencyHistogram merged;
  for (const Cell& cell : cells_) {
    std::lock_guard<std::mutex> lock(cell.mu);
    merged.Merge(cell.h);
  }
  return merged;
}

const std::vector<uint64_t>& MetricsRegistry::DefaultLatencyBucketsUs() {
  static const std::vector<uint64_t> kBuckets = {
      100, 1000, 10000, 100000, 1000000, 10000000};
  return kBuckets;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Series* MetricsRegistry::FindOrCreateSeries(
    std::string_view name, std::string_view help, MetricType type,
    MetricLabels* labels) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.type = type;
    family.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(family)).first;
  } else if (it->second.type != type) {
    return nullptr;
  }
  for (Series& series : it->second.series) {
    if (series.labels == *labels) return &series;
  }
  it->second.series.emplace_back();
  Series& series = it->second.series.back();
  series.labels = std::move(*labels);
  return &series;
}

Counter* MetricsRegistry::RegisterCounter(std::string_view name,
                                          std::string_view help,
                                          MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series =
      FindOrCreateSeries(name, help, MetricType::kCounter, &labels);
  if (series == nullptr) return nullptr;
  if (series->counter == nullptr) series->counter.reset(new Counter());
  return series->counter.get();
}

Gauge* MetricsRegistry::RegisterGauge(std::string_view name,
                                      std::string_view help,
                                      MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = FindOrCreateSeries(name, help, MetricType::kGauge, &labels);
  if (series == nullptr) return nullptr;
  if (series->gauge == nullptr) series->gauge.reset(new Gauge());
  return series->gauge.get();
}

Histogram* MetricsRegistry::RegisterHistogram(std::string_view name,
                                              std::string_view help,
                                              double scale,
                                              std::vector<uint64_t> buckets,
                                              MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  const bool fresh = it == families_.end();
  Series* series =
      FindOrCreateSeries(name, help, MetricType::kHistogram, &labels);
  if (series == nullptr) return nullptr;
  if (fresh) {
    Family& family = families_.find(name)->second;
    family.scale = scale;
    family.buckets =
        buckets.empty() ? DefaultLatencyBucketsUs() : std::move(buckets);
  }
  if (series->histogram == nullptr) series->histogram.reset(new Histogram());
  return series->histogram.get();
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

// `{k1="v1",k2="v2"}`, or "" for an unlabeled series. `extra` appends one
// more pair (the histogram `le` bound).
std::string RenderLabels(const MetricLabels& labels,
                         const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ",";
    out += extra->first;
    out += "=\"";
    out += extra->second;
    out += "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      os << "# HELP " << name << " " << family.help << "\n";
    }
    os << "# TYPE " << name << " ";
    switch (family.type) {
      case MetricType::kCounter:
        os << "counter\n";
        break;
      case MetricType::kGauge:
        os << "gauge\n";
        break;
      case MetricType::kHistogram:
        os << "histogram\n";
        break;
    }
    for (const Series& series : family.series) {
      switch (family.type) {
        case MetricType::kCounter:
          os << name << RenderLabels(series.labels, nullptr) << " "
             << series.counter->Value() << "\n";
          break;
        case MetricType::kGauge:
          os << name << RenderLabels(series.labels, nullptr) << " "
             << series.gauge->Value() << "\n";
          break;
        case MetricType::kHistogram: {
          const LatencyHistogram snapshot = series.histogram->Snapshot();
          for (uint64_t bound : family.buckets) {
            const std::pair<std::string, std::string> le = {
                "le",
                FormatNumber(static_cast<double>(bound) * family.scale)};
            os << name << "_bucket" << RenderLabels(series.labels, &le) << " "
               << snapshot.CountAtOrBelow(bound) << "\n";
          }
          const std::pair<std::string, std::string> inf = {"le", "+Inf"};
          os << name << "_bucket" << RenderLabels(series.labels, &inf) << " "
             << snapshot.count() << "\n";
          os << name << "_sum" << RenderLabels(series.labels, nullptr) << " "
             << FormatNumber(snapshot.Sum() * family.scale) << "\n";
          os << name << "_count" << RenderLabels(series.labels, nullptr)
             << " " << snapshot.count() << "\n";
          break;
        }
      }
    }
  }
  return os.str();
}

}  // namespace mate
