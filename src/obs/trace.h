// QueryTrace — a per-query span recorder for phase-level attribution of
// where a Discover call spent its time.
//
// A trace is a flat vector of spans, each carrying a steady-clock start
// offset and duration (microseconds since the trace's epoch), an explicit
// parent id (so the tree survives crossing thread-pool boundaries — no
// thread-local ambient context), and a display track `tid` (shard spans
// render on their own tracks in chrome://tracing). Spans are appended
// under one mutex: tracing is opt-in, and a query records tens to a few
// hundred spans, so contention is irrelevant — what matters is the OFF
// path, which is a single null-pointer check with no allocation
// (tests/obs_test.cpp pins this with an operator-new counter).
//
// Wiring pattern. The pipeline passes a nullable `QueryTrace*` down
// (QuerySpec::trace -> ExecutorOptions::trace); every instrumentation site
// is a ScopedSpan, which is a complete no-op on a null trace. Layers that
// cannot see each other's span ids join through the *attach parent*: the
// server opens its "dispatch" span, calls SetAttachParent(id), and
// Session::Discover roots its "discover" span there — so a server-side
// request trace and the query's pipeline spans form one tree.
//
// Exports: Chrome trace-event JSON (complete "X" events; load in
// chrome://tracing or Perfetto) and a one-line JSON object for the
// server's slow-query log.

#ifndef MATE_OBS_TRACE_H_
#define MATE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mate {

struct TraceSpan {
  uint32_t id = 0;
  /// QueryTrace::kNoParent for roots.
  uint32_t parent = 0;
  std::string name;
  /// Microseconds since the trace epoch.
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  /// Display track: 0 = the query's main line, shard spans use shard + 1.
  uint64_t tid = 0;
  /// Optional pre-rendered JSON object body (`"k":1,"s":"v"` — no braces).
  std::string args_json;
};

class QueryTrace {
 public:
  static constexpr uint32_t kNoParent = 0xFFFFFFFFu;

  /// `epoch_rewind_us` back-dates the trace epoch: work that finished just
  /// before the trace existed (the server's frame read) can then be
  /// recorded at [0, rewind) without overlapping spans that begin "now"
  /// (= rewind), keeping SelfTimesUs's containment accounting sound.
  explicit QueryTrace(std::string_view name = "query",
                      uint64_t epoch_rewind_us = 0);

  /// Process-unique id (monotonic; stamped into exports).
  uint64_t trace_id() const { return trace_id_; }
  const std::string& name() const { return name_; }

  /// Opens a span starting now; close it with EndSpan. Thread-safe.
  uint32_t BeginSpan(std::string_view span_name, uint32_t parent = kNoParent,
                     uint64_t tid = 0);
  /// Opens a span at an explicit epoch offset (pairs with a rewound epoch:
  /// the server's root "request" span starts at 0, before spans recorded
  /// "now"). Close it with EndSpan like any other span.
  uint32_t BeginSpanAt(std::string_view span_name, uint32_t parent,
                       uint64_t start_us, uint64_t tid = 0);
  void EndSpan(uint32_t id);
  void EndSpan(uint32_t id, std::string args_json);

  /// Records an already-measured interval (used where begin/end would
  /// straddle an awkward boundary, e.g. the frame read that precedes the
  /// trace's creation).
  uint32_t AddCompleteSpan(std::string_view span_name, uint32_t parent,
                           uint64_t start_us, uint64_t duration_us,
                           uint64_t tid = 0, std::string args_json = "");

  /// Microseconds since the trace epoch (steady clock).
  uint64_t NowUs() const;

  /// The span id under which the next layer should root its spans; layers
  /// that open a logical child scope set it before calling down.
  void SetAttachParent(uint32_t id) {
    attach_parent_.store(id, std::memory_order_relaxed);
  }
  uint32_t attach_parent() const {
    return attach_parent_.load(std::memory_order_relaxed);
  }

  /// Snapshot of all spans recorded so far (copy; id order = begin order).
  std::vector<TraceSpan> Spans() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]} of "X" complete
  /// events, ts/dur in microseconds.
  std::string ToChromeTraceJson() const;

  /// One JSON object on a single line (the slow-query log format):
  /// {"trace_id":N,"name":"...",<extra_fields>,"spans":[...]}.
  /// `extra_fields` is a pre-rendered fragment like `"tenant":"a",` —
  /// trailing comma included, or empty.
  std::string ToJsonLine(std::string_view extra_fields = "") const;

 private:
  const std::string name_;
  const uint64_t trace_id_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint32_t> attach_parent_{kNoParent};

  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

/// RAII span: records nothing when `trace` is null (the off path — one
/// branch, no allocation). End() closes early; the destructor closes
/// otherwise.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(QueryTrace* trace, std::string_view name,
             uint32_t parent = QueryTrace::kNoParent, uint64_t tid = 0)
      : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->BeginSpan(name, parent, tid);
  }
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void End() {
    if (trace_ != nullptr) {
      trace_->EndSpan(id_);
      trace_ = nullptr;
    }
  }
  /// kNoParent when tracing is off, so children chain harmlessly.
  uint32_t id() const { return id_; }

 private:
  QueryTrace* trace_ = nullptr;
  uint32_t id_ = QueryTrace::kNoParent;
};

/// Self time per span (duration minus the durations of direct children),
/// index-aligned with `spans`. A child longer than its parent (clock skew
/// across threads) clamps at zero.
std::vector<uint64_t> SelfTimesUs(const std::vector<TraceSpan>& spans);

/// Escapes a string for embedding inside a JSON string literal.
std::string JsonEscape(std::string_view s);

}  // namespace mate

#endif  // MATE_OBS_TRACE_H_
