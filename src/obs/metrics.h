// MetricsRegistry — process-wide named counters, gauges, and histograms
// with a Prometheus text exposition renderer.
//
// Design goals, in order:
//
//   * Hot-path cost. A Counter increment is ONE relaxed atomic add into a
//     cache-line-padded cell striped per thread, so the dispatcher and a
//     hundred connection threads bumping the same counter never contend on
//     one line. Gauges are a single atomic store. Histograms stripe a
//     LatencyHistogram (util/latency_histogram.h) per cell behind a small
//     per-cell mutex — Record is a short critical section on an almost
//     always uncontended lock, and Snapshot() merges cells losslessly.
//   * Register once, update forever. Registration returns a stable pointer
//     owned by the registry; re-registering the same (name, labels) pair
//     returns the SAME cell (idempotent, so two subsystems can share a
//     series), while re-registering a name under a different metric type
//     returns nullptr — a programming error surfaced loudly in tests.
//   * Deterministic exposition. RenderPrometheusText() walks families in
//     name order and series in registration order, emitting `# HELP` /
//     `# TYPE` headers and escaping label values per the Prometheus text
//     format (backslash, double quote, newline), so a golden test can pin
//     the page byte-for-byte.
//
// Totals are exact: relaxed atomics lose no increments (TSan-verified in
// tests/obs_test.cpp), and the histogram cells merge without loss.
//
// There is a process-wide MetricsRegistry::Global(), but components that
// want a self-consistent page per instance (MateServer) own their own
// registry — tests and benches then see counts scoped to one server
// lifetime instead of process history.

#ifndef MATE_OBS_METRICS_H_
#define MATE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/latency_histogram.h"

namespace mate {

/// Ordered (name, value) label pairs; values are escaped at render time.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count. Increment is wait-free: one
/// relaxed fetch_add into the calling thread's stripe.
class Counter {
 public:
  void Increment(uint64_t delta = 1);
  /// Exact sum over all stripes.
  uint64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;

  static constexpr size_t kStripes = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kStripes];
};

/// Point-in-time level (queue depth, resident bytes). Set/Add are single
/// relaxed atomic ops.
class Gauge {
 public:
  void Set(int64_t value) { v_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  std::atomic<int64_t> v_{0};
};

/// Distribution of uint64 samples (callers record microseconds), rendered
/// as a Prometheus histogram whose `le` bounds and `_sum` are scaled by
/// `scale` (1e-6 turns microsecond records into a `_seconds` series).
class Histogram {
 public:
  void Record(uint64_t value);
  /// Lossless merge of every stripe.
  LatencyHistogram Snapshot() const;

 private:
  friend class MetricsRegistry;
  Histogram() = default;

  static constexpr size_t kStripes = 4;
  struct alignas(64) Cell {
    mutable std::mutex mu;
    LatencyHistogram h;
  };
  Cell cells_[kStripes];
};

class MetricsRegistry {
 public:
  /// Exposition `le` ladder for microsecond-recorded latency histograms:
  /// 100us .. 10s in decades (rendered in seconds under scale 1e-6).
  static const std::vector<uint64_t>& DefaultLatencyBucketsUs();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry.
  static MetricsRegistry& Global();

  /// Registers (or finds) a series. The pointer is owned by the registry
  /// and stable for its lifetime. Same (name, labels) -> same cell; same
  /// name under a different type -> nullptr.
  Counter* RegisterCounter(std::string_view name, std::string_view help,
                           MetricLabels labels = {});
  Gauge* RegisterGauge(std::string_view name, std::string_view help,
                       MetricLabels labels = {});
  /// `buckets` are inclusive upper bounds in the RECORDED unit; each is
  /// rendered as `le="<bucket * scale>"` (plus an implicit +Inf).
  Histogram* RegisterHistogram(std::string_view name, std::string_view help,
                               double scale = 1.0,
                               std::vector<uint64_t> buckets = {},
                               MetricLabels labels = {});

  /// The Prometheus text exposition page (version 0.0.4 text format).
  std::string RenderPrometheusText() const;

 private:
  enum class MetricType { kCounter, kGauge, kHistogram };

  struct Series {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    double scale = 1.0;
    std::vector<uint64_t> buckets;   // histogram families only
    std::vector<Series> series;      // registration order
  };

  Series* FindOrCreateSeries(std::string_view name, std::string_view help,
                             MetricType type, MetricLabels* labels);

  mutable std::mutex mu_;
  std::map<std::string, Family, std::less<>> families_;
};

/// Escapes a Prometheus label value: backslash, double quote, and newline.
std::string EscapeLabelValue(std::string_view value);

}  // namespace mate

#endif  // MATE_OBS_METRICS_H_
