#include "obs/trace.h"

#include <cstdio>
#include <sstream>

namespace mate {

namespace {

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

QueryTrace::QueryTrace(std::string_view name, uint64_t epoch_rewind_us)
    : name_(name),
      trace_id_(NextTraceId()),
      epoch_(std::chrono::steady_clock::now() -
             std::chrono::microseconds(epoch_rewind_us)) {}

uint64_t QueryTrace::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

uint32_t QueryTrace::BeginSpan(std::string_view span_name, uint32_t parent,
                               uint64_t tid) {
  const uint64_t now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.id = static_cast<uint32_t>(spans_.size());
  span.parent = parent;
  span.name = std::string(span_name);
  span.start_us = now;
  span.tid = tid;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

uint32_t QueryTrace::BeginSpanAt(std::string_view span_name, uint32_t parent,
                                 uint64_t start_us, uint64_t tid) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.id = static_cast<uint32_t>(spans_.size());
  span.parent = parent;
  span.name = std::string(span_name);
  span.start_us = start_us;
  span.tid = tid;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void QueryTrace::EndSpan(uint32_t id) { EndSpan(id, std::string()); }

void QueryTrace::EndSpan(uint32_t id, std::string args_json) {
  const uint64_t now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return;
  TraceSpan& span = spans_[id];
  span.duration_us = now > span.start_us ? now - span.start_us : 0;
  if (!args_json.empty()) span.args_json = std::move(args_json);
}

uint32_t QueryTrace::AddCompleteSpan(std::string_view span_name,
                                     uint32_t parent, uint64_t start_us,
                                     uint64_t duration_us, uint64_t tid,
                                     std::string args_json) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.id = static_cast<uint32_t>(spans_.size());
  span.parent = parent;
  span.name = std::string(span_name);
  span.start_us = start_us;
  span.duration_us = duration_us;
  span.tid = tid;
  span.args_json = std::move(args_json);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

std::vector<TraceSpan> QueryTrace::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendSpanArgs(const TraceSpan& span, std::ostringstream* os) {
  *os << "{\"id\":" << span.id;
  if (span.parent != QueryTrace::kNoParent) {
    *os << ",\"parent\":" << span.parent;
  }
  if (!span.args_json.empty()) *os << "," << span.args_json;
  *os << "}";
}

}  // namespace

std::string QueryTrace::ToChromeTraceJson() const {
  const std::vector<TraceSpan> spans = Spans();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : spans) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(span.name) << "\",\"ph\":\"X\""
       << ",\"ts\":" << span.start_us << ",\"dur\":" << span.duration_us
       << ",\"pid\":" << trace_id_ << ",\"tid\":" << span.tid
       << ",\"args\":";
    AppendSpanArgs(span, &os);
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

std::string QueryTrace::ToJsonLine(std::string_view extra_fields) const {
  const std::vector<TraceSpan> spans = Spans();
  std::ostringstream os;
  os << "{\"trace_id\":" << trace_id_ << ",\"name\":\"" << JsonEscape(name_)
     << "\"," << extra_fields << "\"spans\":[";
  bool first = true;
  for (const TraceSpan& span : spans) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << span.id << ",\"parent\":"
       << (span.parent == kNoParent ? -1 : static_cast<int64_t>(span.parent))
       << ",\"name\":\"" << JsonEscape(span.name)
       << "\",\"start_us\":" << span.start_us
       << ",\"dur_us\":" << span.duration_us << ",\"tid\":" << span.tid;
    if (!span.args_json.empty()) os << "," << span.args_json;
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::vector<uint64_t> SelfTimesUs(const std::vector<TraceSpan>& spans) {
  std::vector<uint64_t> self(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    self[i] = spans[i].duration_us;
  }
  for (const TraceSpan& span : spans) {
    if (span.parent == QueryTrace::kNoParent) continue;
    if (span.parent >= spans.size()) continue;
    uint64_t& parent_self = self[span.parent];
    parent_self =
        parent_self > span.duration_us ? parent_self - span.duration_us : 0;
  }
  return self;
}

}  // namespace mate
