#include "storage/corpus_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/coding.h"

namespace mate {

namespace {
constexpr char kMagic[] = "MATECORP";
constexpr size_t kMagicLen = 8;
constexpr uint32_t kVersion = 1;
}  // namespace

void SerializeCorpus(const Corpus& corpus, std::string* out) {
  out->clear();
  out->append(kMagic, kMagicLen);
  PutFixed32(out, kVersion);
  PutVarint64(out, corpus.NumTables());
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    const Table& table = corpus.table(t);
    PutLengthPrefixed(out, table.name());
    PutVarint64(out, table.NumColumns());
    for (ColumnId c = 0; c < table.NumColumns(); ++c) {
      PutLengthPrefixed(out, table.column_name(c));
    }
    PutVarint64(out, table.NumRows());
    // Deleted-row bitmap, bit r of byte r/8.
    std::string bitmap((table.NumRows() + 7) / 8, '\0');
    for (RowId r = 0; r < table.NumRows(); ++r) {
      if (table.IsRowDeleted(r)) bitmap[r / 8] |= static_cast<char>(1 << (r % 8));
    }
    PutLengthPrefixed(out, bitmap);
    for (ColumnId c = 0; c < table.NumColumns(); ++c) {
      for (RowId r = 0; r < table.NumRows(); ++r) {
        PutLengthPrefixed(out, table.cell(r, c));
      }
    }
  }
}

Result<Corpus> DeserializeCorpus(std::string_view data) {
  if (data.size() < kMagicLen + 4 ||
      data.substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen)) {
    return Status::Corruption("corpus: bad magic");
  }
  data.remove_prefix(kMagicLen);
  uint32_t version = 0;
  if (!GetFixed32(&data, &version) || version != kVersion) {
    return Status::Corruption("corpus: unsupported version");
  }
  uint64_t num_tables = 0;
  if (!GetVarint64(&data, &num_tables)) {
    return Status::Corruption("corpus: bad table count");
  }
  Corpus corpus;
  for (uint64_t t = 0; t < num_tables; ++t) {
    std::string_view name;
    if (!GetLengthPrefixed(&data, &name)) {
      return Status::Corruption("corpus: bad table name");
    }
    Table table{std::string(name)};
    uint64_t num_cols = 0;
    if (!GetVarint64(&data, &num_cols)) {
      return Status::Corruption("corpus: bad column count");
    }
    for (uint64_t c = 0; c < num_cols; ++c) {
      std::string_view col_name;
      if (!GetLengthPrefixed(&data, &col_name)) {
        return Status::Corruption("corpus: bad column name");
      }
      table.AddColumn(std::string(col_name));
    }
    uint64_t num_rows = 0;
    if (!GetVarint64(&data, &num_rows)) {
      return Status::Corruption("corpus: bad row count");
    }
    std::string_view bitmap;
    if (!GetLengthPrefixed(&data, &bitmap) ||
        bitmap.size() != (num_rows + 7) / 8) {
      return Status::Corruption("corpus: bad deleted bitmap");
    }
    // Cells are column-major on disk; gather them row-wise to append.
    std::vector<std::vector<std::string>> cols(num_cols);
    for (uint64_t c = 0; c < num_cols; ++c) {
      cols[c].reserve(num_rows);
      for (uint64_t r = 0; r < num_rows; ++r) {
        std::string_view cell;
        if (!GetLengthPrefixed(&data, &cell)) {
          return Status::Corruption("corpus: truncated cells");
        }
        cols[c].emplace_back(cell);
      }
    }
    for (uint64_t r = 0; r < num_rows; ++r) {
      std::vector<std::string> row;
      row.reserve(num_cols);
      for (uint64_t c = 0; c < num_cols; ++c) row.push_back(std::move(cols[c][r]));
      Result<RowId> row_id = table.AppendRow(std::move(row));
      if (!row_id.ok()) return row_id.status();
      if ((bitmap[r / 8] >> (r % 8)) & 1) {
        MATE_RETURN_IF_ERROR(table.DeleteRow(*row_id));
      }
    }
    corpus.AddTable(std::move(table));
  }
  return corpus;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    if (!out) return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename failed for " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in.good() && !in.eof()) return Status::IOError("read failed: " + path);
  return ss.str();
}

Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  std::string buffer;
  SerializeCorpus(corpus, &buffer);
  return WriteFileAtomic(path, buffer);
}

Result<Corpus> LoadCorpus(const std::string& path) {
  MATE_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  return DeserializeCorpus(data);
}

}  // namespace mate
