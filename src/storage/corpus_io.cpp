#include "storage/corpus_io.h"

#include <bit>
#include <cstdio>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>
#include <utility>
#include <vector>

#include "storage/table_store.h"
#include "util/coding.h"
#include "util/mapped_file.h"
#include "util/parse_cursor.h"

namespace mate {

namespace {

constexpr char kMagic[] = "MATECORP";
constexpr size_t kMagicLen = 8;
constexpr uint32_t kVersionV1 = 1;
// v2: persisted stats + shape directory ahead of a size-prefixed cell
// region, so a lazy open parses no cells.
constexpr uint32_t kVersionV2 = 2;
// v3: v2 plus per-column extents in each directory entry, so the residency
// layer can parse a single touched column of a table.
constexpr uint32_t kVersion = 3;

// Everything ahead of the cells: persisted stats plus the table directory,
// with each shape's cell blob located (absolute offsets) and bounds-checked
// against the size-prefixed cell region.
struct CorpusHeader {
  bool stats_present = false;
  CorpusStats stats;
  std::vector<TableShape> shapes;
};

// Per-byte popcount (the bitmap can run to total-corpus-rows/8 bytes, and
// this runs inside the "header-only" lazy open — a per-bit loop would make
// that open O(total rows)). Padding bits past num_rows are masked off.
size_t CountDeletedRows(std::string_view bitmap, uint64_t num_rows) {
  size_t deleted = 0;
  const size_t full_bytes = static_cast<size_t>(num_rows / 8);
  for (size_t b = 0; b < full_bytes; ++b) {
    deleted += static_cast<size_t>(
        std::popcount(static_cast<unsigned char>(bitmap[b])));
  }
  if (num_rows % 8 != 0) {
    const unsigned char mask =
        static_cast<unsigned char>((1u << (num_rows % 8)) - 1);
    deleted += static_cast<size_t>(std::popcount(
        static_cast<unsigned char>(bitmap[full_bytes] & mask)));
  }
  return deleted;
}

// Magic + version already consumed; leaves the cursor at the first cell
// blob with every shape's extent verified to lie inside the region.
// `per_column_sizes` distinguishes the v3 directory (each entry trails its
// per-column extents) from the v2 one.
Status ParseHeaderV2(ParseCursor* cursor, CorpusHeader* header,
                     bool per_column_sizes) {
  std::string_view* data = &cursor->remaining;

  cursor->section = "stats";
  if (data->empty()) return cursor->Corrupt("truncated stats flag");
  header->stats_present = (*data)[0] != 0;
  data->remove_prefix(1);
  if (!ParseCorpusStats(data, &header->stats)) {
    return cursor->Corrupt("bad corpus stats");
  }

  // Directory entries cost >= 1 byte each, so a corrupt count fails here
  // instead of driving a huge reserve.
  cursor->section = "table directory";
  uint64_t num_tables = 0;
  if (!GetVarint64(data, &num_tables) || num_tables > data->size()) {
    return cursor->Corrupt("bad table count");
  }
  header->shapes.reserve(static_cast<size_t>(num_tables));
  for (uint64_t t = 0; t < num_tables; ++t) {
    TableShape shape;
    std::string_view name;
    if (!GetLengthPrefixed(data, &name)) {
      return cursor->Corrupt("bad name for table " + std::to_string(t));
    }
    shape.name.assign(name);
    uint64_t num_cols = 0;
    if (!GetVarint64(data, &num_cols) || num_cols > data->size()) {
      return cursor->Corrupt("bad column count for table " +
                             std::to_string(t));
    }
    shape.column_names.reserve(static_cast<size_t>(num_cols));
    for (uint64_t c = 0; c < num_cols; ++c) {
      std::string_view col_name;
      if (!GetLengthPrefixed(data, &col_name)) {
        return cursor->Corrupt("bad column name for table " +
                               std::to_string(t));
      }
      shape.column_names.emplace_back(col_name);
    }
    // The bitmap costs num_rows/8 bytes, so this bound rejects absurd row
    // counts before the (num_rows + 7) below can wrap around and let an
    // empty bitmap masquerade as covering 2^64 rows.
    if (!GetVarint64(data, &shape.num_rows) ||
        shape.num_rows / 8 > data->size()) {
      return cursor->Corrupt("bad row count for table " + std::to_string(t));
    }
    std::string_view bitmap;
    if (!GetLengthPrefixed(data, &bitmap) ||
        bitmap.size() != (shape.num_rows + 7) / 8) {
      return cursor->Corrupt("bad deleted bitmap for table " +
                             std::to_string(t));
    }
    shape.deleted_bitmap.assign(bitmap);
    shape.num_deleted_rows = CountDeletedRows(bitmap, shape.num_rows);
    // Bounded by the whole image so the directory sum below cannot be
    // driven past the region check by a pair of wrapping extents.
    if (!GetVarint64(data, &shape.cell_bytes) ||
        shape.cell_bytes > cursor->image_size) {
      return cursor->Corrupt("bad cell size for table " + std::to_string(t));
    }
    // Every cell costs >= 1 byte (its length varint), so a shape whose
    // row x column count exceeds its extent is corrupt — rejecting it here
    // also caps what a failed parse's shape stub can allocate to roughly
    // the blob's own size (no small-file -> huge-table amplification).
    if (num_cols > 0 && shape.num_rows > shape.cell_bytes / num_cols) {
      return cursor->Corrupt(
          "cell region too small for the declared shape of table " +
          std::to_string(t) + " (" + std::to_string(shape.num_rows) +
          " rows x " + std::to_string(num_cols) + " columns in " +
          std::to_string(shape.cell_bytes) + " bytes)");
    }
    if (per_column_sizes) {
      // Per-column extents must tile the table's blob exactly: each is
      // bounded by cell_bytes (so the running sum cannot wrap), and a sum
      // skew is rejected here — a corrupt split must fail at open with the
      // section + offset, never as a wild sub-blob parse later.
      shape.column_bytes.reserve(static_cast<size_t>(num_cols));
      uint64_t column_total = 0;
      for (uint64_t c = 0; c < num_cols; ++c) {
        uint64_t col_bytes = 0;
        if (!GetVarint64(data, &col_bytes) ||
            col_bytes > shape.cell_bytes - column_total) {
          return cursor->Corrupt("bad column cell size for column " +
                                 std::to_string(c) + " of table " +
                                 std::to_string(t));
        }
        column_total += col_bytes;
        shape.column_bytes.push_back(col_bytes);
      }
      if (column_total != shape.cell_bytes) {
        return cursor->Corrupt(
            "column size skew for table " + std::to_string(t) +
            ": columns declare " + std::to_string(column_total) +
            " bytes, cell blob holds " + std::to_string(shape.cell_bytes));
      }
    }
    header->shapes.push_back(std::move(shape));
  }

  // The region prefix makes the extent checkable with zero cell parsing: a
  // short file fails here, at open, not mid-materialization.
  cursor->section = "cell region";
  uint64_t region_bytes = 0;
  if (!GetFixed64(data, &region_bytes)) {
    return cursor->Corrupt("bad cell region size");
  }
  if (region_bytes > data->size()) {
    return cursor->Corrupt(
        "cell region extends past the end of the image (" +
        std::to_string(region_bytes) + " bytes declared, " +
        std::to_string(data->size()) + " available)");
  }
  if (region_bytes < data->size()) {
    return cursor->Corrupt(std::to_string(data->size() - region_bytes) +
                           " trailing bytes after the cell region");
  }
  uint64_t directory_total = 0;
  for (const TableShape& shape : header->shapes) {
    // Overflow-safe: a crafted pair of extents summing to region_bytes
    // mod 2^64 must not pass the skew check and then substr past the end.
    if (shape.cell_bytes >
        std::numeric_limits<uint64_t>::max() - directory_total) {
      return cursor->Corrupt("cell sizes in the directory overflow");
    }
    directory_total += shape.cell_bytes;
  }
  if (directory_total != region_bytes) {
    return cursor->Corrupt(
        "cell region size skew: directory declares " +
        std::to_string(directory_total) + " bytes, region holds " +
        std::to_string(region_bytes));
  }
  uint64_t offset = cursor->offset();
  for (TableShape& shape : header->shapes) {
    shape.cell_offset = offset;
    offset += shape.cell_bytes;
  }
  return Status::OK();
}

Result<Corpus> DeserializeCorpusV1(ParseCursor cursor) {
  std::string_view* data = &cursor.remaining;
  cursor.section = "table";
  uint64_t num_tables = 0;
  if (!GetVarint64(data, &num_tables)) {
    return cursor.Corrupt("bad table count");
  }
  Corpus corpus;
  for (uint64_t t = 0; t < num_tables; ++t) {
    std::string_view name;
    if (!GetLengthPrefixed(data, &name)) {
      return cursor.Corrupt("bad name for table " + std::to_string(t));
    }
    Table table{std::string(name)};
    uint64_t num_cols = 0;
    if (!GetVarint64(data, &num_cols)) {
      return cursor.Corrupt("bad column count for table " +
                            std::to_string(t));
    }
    for (uint64_t c = 0; c < num_cols; ++c) {
      std::string_view col_name;
      if (!GetLengthPrefixed(data, &col_name)) {
        return cursor.Corrupt("bad column name for table " +
                              std::to_string(t));
      }
      table.AddColumn(std::string(col_name));
    }
    uint64_t num_rows = 0;
    // Same wrap guard as the v2 directory: (num_rows + 7) must not
    // overflow into a zero-byte "valid" bitmap.
    if (!GetVarint64(data, &num_rows) || num_rows / 8 > data->size()) {
      return cursor.Corrupt("bad row count for table " + std::to_string(t));
    }
    std::string_view bitmap;
    if (!GetLengthPrefixed(data, &bitmap) ||
        bitmap.size() != (num_rows + 7) / 8) {
      return cursor.Corrupt("bad deleted bitmap for table " +
                            std::to_string(t));
    }
    // Every cell costs >= 1 byte, so a declared shape larger than the
    // bytes left is corrupt — checked before the reserves below so a
    // flipped count cannot drive a huge allocation.
    if (num_cols > 0 && num_rows > data->size() / num_cols) {
      return cursor.Corrupt("cells truncated for the declared shape of "
                            "table " + std::to_string(t));
    }
    // v1 interleaves the (unprefixed) cells with the header: parse them
    // consuming the cursor, column-major, and gather row-wise to append.
    std::vector<std::vector<std::string>> cols(
        static_cast<size_t>(num_cols));
    for (uint64_t c = 0; c < num_cols; ++c) {
      cols[c].reserve(static_cast<size_t>(num_rows));
      for (uint64_t r = 0; r < num_rows; ++r) {
        std::string_view cell;
        if (!GetLengthPrefixed(data, &cell)) {
          return cursor.Corrupt("truncated cell in table " +
                                std::to_string(t));
        }
        cols[c].emplace_back(cell);
      }
    }
    for (uint64_t r = 0; r < num_rows; ++r) {
      std::vector<std::string> row;
      row.reserve(static_cast<size_t>(num_cols));
      for (uint64_t c = 0; c < num_cols; ++c) {
        row.push_back(std::move(cols[c][r]));
      }
      Result<RowId> row_id = table.AppendRow(std::move(row));
      if (!row_id.ok()) return row_id.status();
      if ((bitmap[r / 8] >> (r % 8)) & 1) {
        MATE_RETURN_IF_ERROR(table.DeleteRow(*row_id));
      }
    }
    corpus.AddTable(std::move(table));
  }
  return corpus;
}

Result<Corpus> DeserializeCorpusV2(ParseCursor cursor, CorpusStats* stats,
                                   bool* stats_present,
                                   bool per_column_sizes) {
  CorpusHeader header;
  MATE_RETURN_IF_ERROR(ParseHeaderV2(&cursor, &header, per_column_sizes));
  if (stats != nullptr) *stats = header.stats;
  if (stats_present != nullptr) *stats_present = header.stats_present;
  Corpus corpus;
  const std::string_view image(cursor.base, cursor.image_size);
  for (const TableShape& shape : header.shapes) {
    Table table(shape.name);
    for (const std::string& column : shape.column_names) {
      table.AddColumn(column);
    }
    MATE_RETURN_IF_ERROR(ParseTableCells(
        shape,
        image.substr(static_cast<size_t>(shape.cell_offset),
                     static_cast<size_t>(shape.cell_bytes)),
        cursor.image_size, &table));
    corpus.AddTable(std::move(table));
  }
  return corpus;
}

// Shared entry: checks magic, dispatches on version.
Result<Corpus> DeserializeAny(std::string_view data, CorpusStats* stats,
                              bool* stats_present,
                              MappedFile* lazy_backing) {
  if (stats_present != nullptr) *stats_present = false;
  ParseCursor cursor{data, data.data(), data.size(), "corpus",
                     "header"};
  if (data.size() < kMagicLen + 4 ||
      data.substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen)) {
    return cursor.Corrupt("bad magic");
  }
  cursor.remaining.remove_prefix(kMagicLen);
  uint32_t version = 0;
  if (!GetFixed32(&cursor.remaining, &version)) {
    return cursor.Corrupt("bad version");
  }
  if (version == kVersionV1) {
    // Legacy path: v1 interleaves cells with the headers, so there is
    // nothing to defer — the corpus comes back fully resident.
    return DeserializeCorpusV1(cursor);
  }
  if (version != kVersionV2 && version != kVersion) {
    return cursor.Corrupt("unsupported version " + std::to_string(version) +
                          " (expected " + std::to_string(kVersion) + ")");
  }
  const bool per_column_sizes = version == kVersion;
  if (lazy_backing == nullptr) {
    return DeserializeCorpusV2(cursor, stats, stats_present,
                               per_column_sizes);
  }
  CorpusHeader header;
  MATE_RETURN_IF_ERROR(ParseHeaderV2(&cursor, &header, per_column_sizes));
  if (stats != nullptr) *stats = header.stats;
  if (stats_present != nullptr) *stats_present = header.stats_present;
  return Corpus(
      TableStore::Lazy(std::move(header.shapes), std::move(*lazy_backing)));
}

void SerializeCorpusImpl(const Corpus& corpus, const CorpusStats* stats,
                         std::string* out, bool with_column_sizes) {
  out->clear();
  out->append(kMagic, kMagicLen);
  PutFixed32(out, with_column_sizes ? kVersion : kVersionV2);
  out->push_back(stats != nullptr ? '\x01' : '\x00');
  AppendCorpusStats(out, stats != nullptr ? *stats : CorpusStats{});
  PutVarint64(out, corpus.NumTables());
  // Directory first (a varint-length pre-pass sizes each cell blob), then
  // the size-prefixed region, so the blobs stream straight into `out`.
  uint64_t region_bytes = 0;
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    const Table& table = corpus.table(t);
    PutLengthPrefixed(out, table.name());
    PutVarint64(out, table.NumColumns());
    for (ColumnId c = 0; c < table.NumColumns(); ++c) {
      PutLengthPrefixed(out, table.column_name(c));
    }
    PutVarint64(out, table.NumRows());
    // Deleted-row bitmap, bit r of byte r/8.
    std::string bitmap((table.NumRows() + 7) / 8, '\0');
    for (RowId r = 0; r < table.NumRows(); ++r) {
      if (table.IsRowDeleted(r)) {
        bitmap[r / 8] |= static_cast<char>(1 << (r % 8));
      }
    }
    PutLengthPrefixed(out, bitmap);
    if (with_column_sizes) {
      // cell_bytes is the sum of the per-column extents, so one per-column
      // pass sizes both the blob varint and the v3 extent list.
      std::vector<uint64_t> column_bytes(table.NumColumns());
      uint64_t cell_bytes = 0;
      for (ColumnId c = 0; c < table.NumColumns(); ++c) {
        column_bytes[c] = TableColumnCellBytes(table, c);
        cell_bytes += column_bytes[c];
      }
      PutVarint64(out, cell_bytes);
      for (uint64_t col_bytes : column_bytes) PutVarint64(out, col_bytes);
      region_bytes += cell_bytes;
    } else {
      const uint64_t cell_bytes = TableCellBytes(table);
      PutVarint64(out, cell_bytes);
      region_bytes += cell_bytes;
    }
  }
  PutFixed64(out, region_bytes);
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    AppendTableCells(corpus.table(t), out);
  }
}

}  // namespace

void SerializeCorpus(const Corpus& corpus, std::string* out) {
  SerializeCorpusImpl(corpus, nullptr, out, /*with_column_sizes=*/true);
}

void SerializeCorpus(const Corpus& corpus, const CorpusStats& stats,
                     std::string* out) {
  SerializeCorpusImpl(corpus, &stats, out, /*with_column_sizes=*/true);
}

void SerializeCorpusV2(const Corpus& corpus, const CorpusStats& stats,
                       std::string* out) {
  SerializeCorpusImpl(corpus, &stats, out, /*with_column_sizes=*/false);
}

void SerializeCorpusV1(const Corpus& corpus, std::string* out) {
  out->clear();
  out->append(kMagic, kMagicLen);
  PutFixed32(out, kVersionV1);
  PutVarint64(out, corpus.NumTables());
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    const Table& table = corpus.table(t);
    PutLengthPrefixed(out, table.name());
    PutVarint64(out, table.NumColumns());
    for (ColumnId c = 0; c < table.NumColumns(); ++c) {
      PutLengthPrefixed(out, table.column_name(c));
    }
    PutVarint64(out, table.NumRows());
    std::string bitmap((table.NumRows() + 7) / 8, '\0');
    for (RowId r = 0; r < table.NumRows(); ++r) {
      if (table.IsRowDeleted(r)) {
        bitmap[r / 8] |= static_cast<char>(1 << (r % 8));
      }
    }
    PutLengthPrefixed(out, bitmap);
    AppendTableCells(table, out);
  }
}

Result<Corpus> DeserializeCorpus(std::string_view data, CorpusStats* stats,
                                 bool* stats_present) {
  return DeserializeAny(data, stats, stats_present, /*lazy_backing=*/nullptr);
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    if (!out) return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename failed for " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in.good() && !in.eof()) return Status::IOError("read failed: " + path);
  return ss.str();
}

Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  std::string buffer;
  SerializeCorpus(corpus, &buffer);
  return WriteFileAtomic(path, buffer);
}

Status SaveCorpus(const Corpus& corpus, const CorpusStats& stats,
                  const std::string& path) {
  std::string buffer;
  SerializeCorpus(corpus, stats, &buffer);
  return WriteFileAtomic(path, buffer);
}

Result<Corpus> LoadCorpus(const std::string& path) {
  MATE_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  return DeserializeCorpus(data);
}

Result<Corpus> OpenCorpusLazy(const std::string& path, CorpusStats* stats,
                              bool* stats_present) {
  MATE_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  // DeserializeAny consumes `file` into the lazy store's backing only on
  // the v2 path; the v1 fallback parses eagerly out of the still-owned
  // view, and the mapping dies with `file` on return.
  return DeserializeAny(file.view(), stats, stats_present, &file);
}

}  // namespace mate
