#include "storage/table.h"

#include <unordered_set>

#include "util/string_util.h"

namespace mate {

ColumnId Table::AddColumn(std::string column_name) {
  Column col;
  col.name = std::move(column_name);
  col.cells.resize(num_rows_);
  columns_.push_back(std::move(col));
  return static_cast<ColumnId>(columns_.size() - 1);
}

Status Table::AddColumnWithCells(std::string column_name,
                                 std::vector<std::string> cells) {
  if (cells.size() != num_rows_) {
    return Status::InvalidArgument("cell count does not match row count");
  }
  Column col;
  col.name = std::move(column_name);
  col.cells = std::move(cells);
  columns_.push_back(std::move(col));
  return Status::OK();
}

Status Table::ReplaceColumnCells(ColumnId c, std::vector<std::string> cells) {
  if (c >= columns_.size()) {
    return Status::OutOfRange("no such column");
  }
  if (cells.size() != num_rows_) {
    return Status::InvalidArgument("cell count does not match row count");
  }
  columns_[c].cells = std::move(cells);
  return Status::OK();
}

void Table::AppendEmptyRows(size_t n) {
  for (Column& col : columns_) col.cells.resize(num_rows_ + n);
  deleted_.resize(num_rows_ + n, false);
  num_rows_ += n;
}

Status Table::DropColumn(ColumnId c) {
  if (c >= columns_.size()) {
    return Status::OutOfRange("no such column");
  }
  columns_.erase(columns_.begin() + c);
  return Status::OK();
}

Result<RowId> Table::AppendRow(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    return Status::InvalidArgument("cell count does not match column count");
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].cells.push_back(std::move(cells[c]));
  }
  deleted_.push_back(false);
  return static_cast<RowId>(num_rows_++);
}

Status Table::DeleteRow(RowId r) {
  if (r >= num_rows_) return Status::OutOfRange("no such row");
  if (deleted_[r]) return Status::AlreadyExists("row already deleted");
  deleted_[r] = true;
  ++num_deleted_rows_;
  return Status::OK();
}

Status Table::SetCell(RowId r, ColumnId c, std::string value) {
  if (r >= num_rows_ || c >= columns_.size()) {
    return Status::OutOfRange("no such cell");
  }
  columns_[c].cells[r] = std::move(value);
  return Status::OK();
}

ColumnId Table::FindColumn(std::string_view column_name) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].name == column_name) return static_cast<ColumnId>(c);
  }
  return kInvalidColumnId;
}

std::vector<std::string> Table::RowValues(RowId r) const {
  std::vector<std::string> values;
  values.reserve(columns_.size());
  for (const Column& col : columns_) values.push_back(col.cells[r]);
  return values;
}

size_t Table::ColumnCardinality(ColumnId c) const {
  std::unordered_set<std::string> distinct;
  for (RowId r = 0; r < num_rows_; ++r) {
    if (deleted_[r]) continue;
    distinct.insert(NormalizeValue(columns_[c].cells[r]));
  }
  return distinct.size();
}

size_t Table::PayloadBytes() const {
  size_t bytes = 0;
  for (const Column& col : columns_) {
    for (const std::string& cell : col.cells) bytes += cell.size();
  }
  return bytes;
}

}  // namespace mate
