// A corpus is the data lake: the collection of candidate tables that join
// discovery searches over (§2). It owns the tables and exposes the corpus
// statistics that parameterize XASH (unique-value count for Eq. 5, character
// frequencies for §5.3.2, average column count for the Bloom baseline).
//
// Residency is delegated to a TableStore (storage/table_store.h): a corpus
// adopted or built in memory is fully resident, while one opened lazily from
// a corpus-format-v2 file knows every table's *shape* up front and
// materializes cells per table on the first table(t) access. Callers that
// only need shape — shard planners, validators, result printers — should
// use the table_* accessors, which never trigger materialization.

#ifndef MATE_STORAGE_CORPUS_H_
#define MATE_STORAGE_CORPUS_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/table.h"
#include "storage/table_store.h"
#include "storage/types.h"
#include "util/char_frequency.h"
#include "util/status.h"

namespace mate {

/// Corpus-wide statistics (cf. §7.1's corpus descriptions).
struct CorpusStats {
  uint64_t num_tables = 0;
  uint64_t num_columns = 0;
  uint64_t num_rows = 0;          // live rows
  uint64_t num_cells = 0;         // live cells
  uint64_t num_unique_values = 0; // distinct normalized values
  double avg_columns_per_table = 0.0;
  double avg_rows_per_table = 0.0;
  std::array<uint64_t, kAlphabetSize> char_counts{};

  std::string ToString() const;

  friend bool operator==(const CorpusStats& a, const CorpusStats& b);
};

/// Appends/parses the canonical binary encoding of CorpusStats — shared by
/// the index image (so a loaded index reconstructs its hash) and the corpus
/// v2 header (so a lazy open needs no ComputeStats scan).
void AppendCorpusStats(std::string* out, const CorpusStats& stats);
bool ParseCorpusStats(std::string_view* input, CorpusStats* stats);

class Corpus {
 public:
  Corpus() = default;
  /// Adopts a store (the lazy-open path hands one over).
  explicit Corpus(TableStore store) : store_(std::move(store)) {}

  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  /// Adds a table and returns its id.
  TableId AddTable(Table table) { return store_.Add(std::move(table)); }

  size_t NumTables() const { return store_.NumTables(); }

  /// The table's cells, materializing them on first access for lazily
  /// opened corpora (thread-safe; concurrent callers parse each table
  /// once). Callers that only need shape should prefer the table_*
  /// accessors below.
  const Table& table(TableId t) const { return store_.Get(t); }
  Table* mutable_table(TableId t) { return store_.Mutable(t); }

  /// table(t) + instrumentation: reports what the access actually parsed.
  const Table& MaterializeTable(TableId t, MaterializeOutcome* outcome) const {
    return store_.Get(t, outcome);
  }
  /// The table with at least `columns` materialized (per-column parse over
  /// corpus-format-v3 backings; whole-table fallback otherwise). Cells of
  /// columns never requested read as empty strings — callers must only
  /// touch the columns they asked for.
  const Table& MaterializeColumns(TableId t,
                                  const std::vector<ColumnId>& columns,
                                  MaterializeOutcome* outcome = nullptr) const {
    return store_.GetColumns(t, columns, outcome);
  }

  // ---- shape accessors (never materialize) --------------------------

  const std::string& table_name(TableId t) const {
    return store_.table_name(t);
  }
  size_t table_num_columns(TableId t) const {
    return store_.table_num_columns(t);
  }
  const std::string& table_column_name(TableId t, ColumnId c) const {
    return store_.column_name(t, c);
  }
  size_t table_num_rows(TableId t) const {
    return store_.table_num_rows(t);
  }
  size_t table_num_live_rows(TableId t) const {
    return store_.table_num_live_rows(t);
  }

  // ---- residency ----------------------------------------------------

  /// Materializes table `t` and reports the store's sticky parse status.
  Status EnsureTable(TableId t) const { return store_.EnsureTable(t); }
  /// Materializes every table; OK iff every cell blob parsed.
  Status MaterializeAll() const { return store_.MaterializeAll(); }
  /// Self-contained MaterializeAll callable for a background warmer; stays
  /// valid even if this corpus is moved while it runs.
  std::function<Status()> MakeWarmer() const { return store_.MakeWarmer(); }

  /// Arms the residency byte budget (0 = unlimited). Set before queries.
  void SetBudget(uint64_t bytes) { store_.SetBudget(bytes); }
  /// Evicts least-recently-touched tables down to the budget. Idle points
  /// only (mirrors the mutation contract — Session calls it between
  /// queries).
  void EvictToBudget() const { store_.EvictToBudget(); }
  ResidencyStats residency() const { return store_.residency(); }
  uint64_t table_resident_bytes(TableId t) const {
    return store_.table_resident_bytes(t);
  }
  uint64_t table_cell_bytes(TableId t) const {
    return store_.table_cell_bytes(t);
  }

  bool table_resident(TableId t) const { return store_.IsResident(t); }
  size_t tables_resident() const { return store_.tables_resident(); }
  bool fully_resident() const { return store_.fully_resident(); }
  /// Sticky first materialization error (section + byte offset).
  Status load_status() const { return store_.load_status(); }

  /// Full scan computing the statistics above (normalizes every cell —
  /// materializes the whole corpus).
  CorpusStats ComputeStats() const;

 private:
  TableStore store_;
};

/// Deep equality of one table: name, columns, cells, and tombstones.
bool TablesEqual(const Table& a, const Table& b);

/// Deep equality over shape, cells, and tombstones (materializes both) —
/// the check behind `mate_cli convert-corpus`'s round-trip verification.
bool CorporaEqual(const Corpus& a, const Corpus& b);

}  // namespace mate

#endif  // MATE_STORAGE_CORPUS_H_
