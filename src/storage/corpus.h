// A corpus is the data lake: the collection of candidate tables that join
// discovery searches over (§2). It owns the tables and exposes the corpus
// statistics that parameterize XASH (unique-value count for Eq. 5, character
// frequencies for §5.3.2, average column count for the Bloom baseline).

#ifndef MATE_STORAGE_CORPUS_H_
#define MATE_STORAGE_CORPUS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"
#include "storage/types.h"
#include "util/char_frequency.h"

namespace mate {

/// Corpus-wide statistics (cf. §7.1's corpus descriptions).
struct CorpusStats {
  uint64_t num_tables = 0;
  uint64_t num_columns = 0;
  uint64_t num_rows = 0;          // live rows
  uint64_t num_cells = 0;         // live cells
  uint64_t num_unique_values = 0; // distinct normalized values
  double avg_columns_per_table = 0.0;
  double avg_rows_per_table = 0.0;
  std::array<uint64_t, kAlphabetSize> char_counts{};

  std::string ToString() const;
};

class Corpus {
 public:
  Corpus() = default;

  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  /// Adds a table and returns its id.
  TableId AddTable(Table table);

  size_t NumTables() const { return tables_.size(); }

  const Table& table(TableId t) const { return tables_[t]; }
  Table* mutable_table(TableId t) { return &tables_[t]; }

  /// Full scan computing the statistics above (normalizes every cell).
  CorpusStats ComputeStats() const;

 private:
  std::vector<Table> tables_;
};

}  // namespace mate

#endif  // MATE_STORAGE_CORPUS_H_
