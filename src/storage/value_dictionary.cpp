#include "storage/value_dictionary.h"

namespace mate {

ValueId ValueDictionary::GetOrAdd(std::string_view normalized) {
  auto it = ids_.find(normalized);
  if (it != ids_.end()) return it->second;
  ValueId id = static_cast<ValueId>(by_id_.size());
  auto [inserted, _] = ids_.emplace(std::string(normalized), id);
  by_id_.push_back(&inserted->first);
  return id;
}

ValueId ValueDictionary::Find(std::string_view normalized) const {
  auto it = ids_.find(normalized);
  return it == ids_.end() ? kInvalidValueId : it->second;
}

size_t ValueDictionary::MemoryBytes() const {
  size_t bytes = by_id_.size() * sizeof(const std::string*);
  for (const auto& [value, id] : ids_) {
    (void)id;
    bytes += sizeof(std::string) + value.capacity() + sizeof(ValueId) +
             2 * sizeof(void*);  // rough node overhead
  }
  return bytes;
}

}  // namespace mate
