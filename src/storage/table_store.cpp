#include "storage/table_store.h"

#include <atomic>
#include <mutex>
#include <utility>

#include "util/coding.h"

namespace mate {

namespace {

// Rebuilds a table of `shape` with every cell empty — what a failed blob
// parse leaves behind. Shape-complete (columns, row count, tombstones), so
// downstream cell accesses stay in bounds; the sticky status is what makes
// the failure visible.
Table MakeShapeStub(const TableShape& shape) {
  Table stub(shape.name);
  for (const std::string& column : shape.column_names) stub.AddColumn(column);
  std::vector<std::string> empty_row(shape.column_names.size());
  for (uint64_t r = 0; r < shape.num_rows; ++r) {
    (void)stub.AppendRow(empty_row);
    if ((shape.deleted_bitmap[r / 8] >> (r % 8)) & 1) {
      (void)stub.DeleteRow(static_cast<RowId>(r));
    }
  }
  return stub;
}

}  // namespace

struct TableStore::Impl {
  // Slots [0, num_lazy) are backed by `shapes`; anything beyond was Add'ed
  // resident. The vector is sized once at Lazy() — concurrent materializers
  // write distinct slots and never resize, so element addresses are stable.
  std::vector<Table> tables;
  std::vector<TableShape> shapes;
  std::unique_ptr<std::once_flag[]> once;
  // resident[t] is stored with release order after the slot's parse; shape
  // accessors acquire-load it to decide between the header and the live
  // table (which Mutable may have reshaped).
  std::unique_ptr<std::atomic<uint8_t>[]> resident;
  MappedFile backing;
  size_t num_lazy = 0;
  uint64_t image_size = 0;
  std::atomic<size_t> resident_count{0};
  std::atomic<bool> has_error{false};
  mutable std::mutex mu;  // guards `error` and the backing release
  Status error;

  bool SlotResident(TableId t) const {
    return t >= num_lazy ||
           resident[t].load(std::memory_order_acquire) != 0;
  }

  // The body run under the slot's once-latch: parse (or stub), publish.
  void Materialize(TableId t) {
    const TableShape& shape = shapes[t];
    Table table(shape.name);
    for (const std::string& column : shape.column_names) {
      table.AddColumn(column);
    }
    const std::string_view image = backing.view();
    Status status =
        ParseTableCells(shape,
                        image.substr(static_cast<size_t>(shape.cell_offset),
                                     static_cast<size_t>(shape.cell_bytes)),
                        image_size, &table);
    if (!status.ok()) {
      table = MakeShapeStub(shape);
      std::lock_guard<std::mutex> lock(mu);
      if (!has_error.load(std::memory_order_relaxed)) {
        error = status;
        has_error.store(true, std::memory_order_release);
      }
    }
    tables[t] = std::move(table);
    resident[t].store(1, std::memory_order_release);
    // The thread whose slot completes the set releases the mapping: every
    // other slot's parse has finished (its count preceded ours), so nothing
    // reads the image again.
    if (resident_count.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        num_lazy) {
      std::lock_guard<std::mutex> lock(mu);
      backing.Release();
    }
  }

  void Ensure(TableId t) {
    if (t < num_lazy && resident[t].load(std::memory_order_acquire) == 0) {
      std::call_once(once[t], [this, t] { Materialize(t); });
    }
  }

  Status LoadStatus() const {
    if (!has_error.load(std::memory_order_acquire)) return Status::OK();
    std::lock_guard<std::mutex> lock(mu);
    return error;
  }

  Status MaterializeAll() {
    for (TableId t = 0; t < num_lazy; ++t) Ensure(t);
    return LoadStatus();
  }
};

TableStore::TableStore() : impl_(std::make_shared<Impl>()) {}
TableStore::~TableStore() = default;
TableStore::TableStore(TableStore&&) noexcept = default;
TableStore& TableStore::operator=(TableStore&&) noexcept = default;

TableStore TableStore::Lazy(std::vector<TableShape> shapes,
                            MappedFile backing) {
  TableStore store;
  Impl* impl = store.impl_.get();
  impl->num_lazy = shapes.size();
  impl->image_size = backing.size();
  impl->shapes = std::move(shapes);
  impl->backing = std::move(backing);
  impl->tables.resize(impl->num_lazy);
  impl->once = std::make_unique<std::once_flag[]>(impl->num_lazy);
  impl->resident =
      std::make_unique<std::atomic<uint8_t>[]>(impl->num_lazy);
  for (size_t t = 0; t < impl->num_lazy; ++t) {
    impl->resident[t].store(0, std::memory_order_relaxed);
  }
  if (impl->num_lazy == 0) impl->backing.Release();
  return store;
}

size_t TableStore::NumTables() const { return impl_->tables.size(); }

TableId TableStore::Add(Table table) {
  impl_->tables.push_back(std::move(table));
  return static_cast<TableId>(impl_->tables.size() - 1);
}

const Table& TableStore::Get(TableId t) const {
  impl_->Ensure(t);
  return impl_->tables[t];
}

Status TableStore::EnsureTable(TableId t) const {
  impl_->Ensure(t);
  return impl_->LoadStatus();
}

Status TableStore::MaterializeAll() const { return impl_->MaterializeAll(); }

std::function<Status()> TableStore::MakeWarmer() const {
  std::shared_ptr<Impl> impl = impl_;
  return [impl] { return impl->MaterializeAll(); };
}

Table* TableStore::Mutable(TableId t) {
  impl_->Ensure(t);
  return &impl_->tables[t];
}

const std::string& TableStore::table_name(TableId t) const {
  const Impl* impl = impl_.get();
  if (!impl->SlotResident(t)) return impl->shapes[t].name;
  return impl->tables[t].name();
}

size_t TableStore::table_num_columns(TableId t) const {
  const Impl* impl = impl_.get();
  if (!impl->SlotResident(t)) return impl->shapes[t].column_names.size();
  return impl->tables[t].NumColumns();
}

const std::string& TableStore::column_name(TableId t, ColumnId c) const {
  const Impl* impl = impl_.get();
  if (!impl->SlotResident(t)) return impl->shapes[t].column_names[c];
  return impl->tables[t].column_name(c);
}

size_t TableStore::table_num_rows(TableId t) const {
  const Impl* impl = impl_.get();
  if (!impl->SlotResident(t)) {
    return static_cast<size_t>(impl->shapes[t].num_rows);
  }
  return impl->tables[t].NumRows();
}

size_t TableStore::table_num_live_rows(TableId t) const {
  const Impl* impl = impl_.get();
  if (!impl->SlotResident(t)) {
    return static_cast<size_t>(impl->shapes[t].num_rows -
                               impl->shapes[t].num_deleted_rows);
  }
  return impl->tables[t].NumLiveRows();
}

bool TableStore::IsResident(TableId t) const {
  return impl_->SlotResident(t);
}

size_t TableStore::tables_resident() const {
  const Impl* impl = impl_.get();
  return impl->resident_count.load(std::memory_order_acquire) +
         (impl->tables.size() - impl->num_lazy);
}

bool TableStore::fully_resident() const {
  const Impl* impl = impl_.get();
  return impl->resident_count.load(std::memory_order_acquire) ==
         impl->num_lazy;
}

Status TableStore::load_status() const { return impl_->LoadStatus(); }

Status ParseTableCells(const TableShape& shape, std::string_view blob,
                       uint64_t image_size, Table* out) {
  std::string_view data = blob;
  const auto corrupt = [&](const std::string& what) {
    return Status::Corruption(
        "corpus: " + what + " (cell region, table '" + shape.name +
        "', byte offset " +
        std::to_string(shape.cell_offset + (blob.size() - data.size())) +
        " of " + std::to_string(image_size) + ")");
  };
  const size_t num_cols = shape.column_names.size();
  const uint64_t num_rows = shape.num_rows;
  // Cells are column-major on disk; gather them row-wise to append.
  std::vector<std::vector<std::string>> cols(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    cols[c].reserve(static_cast<size_t>(num_rows));
    for (uint64_t r = 0; r < num_rows; ++r) {
      std::string_view cell;
      if (!GetLengthPrefixed(&data, &cell)) {
        return corrupt("truncated cell");
      }
      cols[c].emplace_back(cell);
    }
  }
  if (!data.empty()) {
    return corrupt(std::to_string(data.size()) +
                   " trailing bytes after the table's cells");
  }
  for (uint64_t r = 0; r < num_rows; ++r) {
    std::vector<std::string> row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) row.push_back(std::move(cols[c][r]));
    Result<RowId> row_id = out->AppendRow(std::move(row));
    if (!row_id.ok()) return row_id.status();
    if ((shape.deleted_bitmap[r / 8] >> (r % 8)) & 1) {
      MATE_RETURN_IF_ERROR(out->DeleteRow(*row_id));
    }
  }
  return Status::OK();
}

void AppendTableCells(const Table& table, std::string* out) {
  for (ColumnId c = 0; c < table.NumColumns(); ++c) {
    for (RowId r = 0; r < table.NumRows(); ++r) {
      PutLengthPrefixed(out, table.cell(r, c));
    }
  }
}

uint64_t TableCellBytes(const Table& table) {
  uint64_t bytes = 0;
  for (ColumnId c = 0; c < table.NumColumns(); ++c) {
    for (RowId r = 0; r < table.NumRows(); ++r) {
      const size_t cell = table.cell(r, c).size();
      bytes += VarintLength(cell) + cell;
    }
  }
  return bytes;
}

}  // namespace mate
