#include "storage/table_store.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

#include "util/coding.h"
#include "util/stopwatch.h"

namespace mate {

namespace {

// Rebuilds a table of `shape` with every cell empty — the skeleton partial
// materialization fills column by column, and what a failed blob parse
// leaves behind. Shape-complete (columns, row count, tombstones), so
// downstream cell accesses stay in bounds; the sticky status is what makes
// a failure visible.
Table MakeShapeStub(const TableShape& shape) {
  Table stub(shape.name);
  for (const std::string& column : shape.column_names) stub.AddColumn(column);
  stub.AppendEmptyRows(static_cast<size_t>(shape.num_rows));
  for (uint64_t b = 0; b < shape.deleted_bitmap.size(); ++b) {
    if (shape.deleted_bitmap[b] == 0) continue;
    for (uint64_t r = b * 8; r < std::min(b * 8 + 8, shape.num_rows); ++r) {
      if ((shape.deleted_bitmap[b] >> (r % 8)) & 1) {
        (void)stub.DeleteRow(static_cast<RowId>(r));
      }
    }
  }
  return stub;
}

}  // namespace

struct TableStore::Impl {
  // Residency state of one lazy slot. `state` is published with release
  // order after the slot's table writes; the fast path and the shape
  // accessors acquire-load it to decide between the header and the live
  // table (which Mutable may have reshaped). Everything non-atomic is
  // guarded by `mu`.
  struct Slot {
    std::mutex mu;
    // cols_done[c] != 0 once column c's cells are parsed (or stubbed).
    std::vector<unsigned char> cols_done;
    bool pinned = false;
    bool was_evicted = false;
    // 0 = cold (shape header only), 1 = partial (shape-complete table,
    // some columns parsed), 2 = fully resident.
    std::atomic<uint8_t> state{0};
    // Directory extent bytes this slot holds resident.
    std::atomic<uint64_t> resident_bytes{0};
    // LRU clock stamp of the last Get/GetColumns touch.
    std::atomic<uint64_t> last_touch{0};
  };

  // Slots [0, num_lazy) are backed by `shapes`; anything beyond was Add'ed
  // resident. The vector is sized once at Lazy() — concurrent materializers
  // write distinct slots and never resize, so element addresses are stable.
  std::vector<Table> tables;
  std::vector<TableShape> shapes;
  std::unique_ptr<Slot[]> slots;
  MappedFile backing;
  size_t num_lazy = 0;
  uint64_t image_size = 0;
  std::atomic<uint64_t> budget{0};
  std::atomic<uint64_t> resident_bytes{0};
  std::atomic<uint64_t> peak_resident_bytes{0};
  std::atomic<uint64_t> bytes_materialized{0};
  std::atomic<uint64_t> bytes_evicted{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> rematerializations{0};
  std::atomic<uint64_t> clock{0};
  std::atomic<size_t> full_count{0};
  std::atomic<size_t> touched_count{0};
  std::atomic<bool> has_error{false};
  mutable std::mutex mu;  // guards `error` and the backing release
  Status error;

  bool SlotResident(TableId t) const {
    return t >= num_lazy ||
           slots[t].state.load(std::memory_order_acquire) != 0;
  }

  void Touch(Slot& slot) {
    slot.last_touch.store(
        clock.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }

  void LatchError(const Status& status) {
    std::lock_guard<std::mutex> lock(mu);
    if (!has_error.load(std::memory_order_relaxed)) {
      error = status;
      has_error.store(true, std::memory_order_release);
    }
  }

  // Accounts `bytes` of newly resident extent and maintains the honest
  // high-water mark (the memory_budget bench's peak gate reads it).
  void AddResidentBytes(Slot& slot, uint64_t bytes) {
    slot.resident_bytes.fetch_add(bytes, std::memory_order_relaxed);
    bytes_materialized.fetch_add(bytes, std::memory_order_relaxed);
    const uint64_t now =
        resident_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    uint64_t peak = peak_resident_bytes.load(std::memory_order_relaxed);
    while (now > peak && !peak_resident_bytes.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  // The thread whose slot completes the set releases the mapping — but
  // only without a budget: an armed budget needs the image alive so
  // evicted tables can re-parse.
  void OnSlotFull(Slot& slot) {
    slot.state.store(2, std::memory_order_release);
    if (full_count.fetch_add(1, std::memory_order_acq_rel) + 1 == num_lazy &&
        budget.load(std::memory_order_relaxed) == 0) {
      std::lock_guard<std::mutex> lock(mu);
      backing.Release();
    }
  }

  // Under slot.mu: ensures the slot holds a shape-complete Table with its
  // cols_done ledger sized (state >= 1). Counts the rematerialization when
  // the slot had been evicted.
  void EnsureSkeletonLocked(TableId t, Slot& slot,
                            MaterializeOutcome* outcome) {
    if (slot.state.load(std::memory_order_relaxed) != 0) return;
    tables[t] = MakeShapeStub(shapes[t]);
    slot.cols_done.assign(shapes[t].column_names.size(), 0);
    if (slot.was_evicted) {
      slot.was_evicted = false;
      rematerializations.fetch_add(1, std::memory_order_relaxed);
      if (outcome != nullptr) outcome->rematerialized = true;
    }
    touched_count.fetch_add(1, std::memory_order_relaxed);
    slot.state.store(1, std::memory_order_release);
  }

  // Under slot.mu: a blob/column parse failed. Latch the sticky status and
  // leave a shape-complete stub with every column marked done (and its
  // full extent accounted), so no caller indexes out of bounds and the
  // slot never re-parses the damage.
  void StubAfterFailureLocked(TableId t, Slot& slot, const Status& status) {
    LatchError(status);
    tables[t] = MakeShapeStub(shapes[t]);
    slot.cols_done.assign(shapes[t].column_names.size(), 1);
    const uint64_t held =
        slot.resident_bytes.load(std::memory_order_relaxed);
    AddResidentBytes(slot, shapes[t].cell_bytes - held);
  }

  // Under slot.mu: parses the not-yet-resident columns in `want` (or every
  // column when `want` is null) of lazy table `t`. Returns true when the
  // slot ended fully resident.
  void MaterializeLocked(TableId t, Slot& slot,
                         const std::vector<ColumnId>* want,
                         MaterializeOutcome* outcome) {
    if (slot.state.load(std::memory_order_relaxed) == 2) return;
    const TableShape& shape = shapes[t];
    // Without per-column extents (a v2 image) the blob is one parse.
    if (shape.column_bytes.empty()) want = nullptr;

    if (want == nullptr &&
        slot.state.load(std::memory_order_relaxed) == 0) {
      // Full-from-cold path: parse the whole blob straight into a fresh
      // table (row appends), skipping the skeleton — the warmer's and the
      // eager path's single pass.
      Table table(shape.name);
      for (const std::string& column : shape.column_names) {
        table.AddColumn(column);
      }
      const std::string_view image = backing.view();
      Status status = ParseTableCells(
          shape,
          image.substr(static_cast<size_t>(shape.cell_offset),
                       static_cast<size_t>(shape.cell_bytes)),
          image_size, &table);
      if (slot.was_evicted) {
        slot.was_evicted = false;
        rematerializations.fetch_add(1, std::memory_order_relaxed);
        if (outcome != nullptr) outcome->rematerialized = true;
      }
      touched_count.fetch_add(1, std::memory_order_relaxed);
      if (status.ok()) {
        tables[t] = std::move(table);
        slot.cols_done.assign(shape.column_names.size(), 1);
        AddResidentBytes(slot, shape.cell_bytes);
      } else {
        StubAfterFailureLocked(t, slot, status);
      }
      if (outcome != nullptr) outcome->bytes_parsed += shape.cell_bytes;
      OnSlotFull(slot);
      return;
    }

    EnsureSkeletonLocked(t, slot, outcome);
    const std::string_view image = backing.view();
    // Column c's slice starts at cell_offset + sum of earlier extents.
    std::vector<uint64_t> starts(shape.column_bytes.size());
    uint64_t offset = shape.cell_offset;
    for (size_t c = 0; c < shape.column_bytes.size(); ++c) {
      starts[c] = offset;
      offset += shape.column_bytes[c];
    }
    const auto fill_column = [&](ColumnId c) {
      if (c >= slot.cols_done.size() || slot.cols_done[c]) return true;
      std::vector<std::string> cells;
      Status status = ParseColumnCells(
          shape, c,
          image.substr(static_cast<size_t>(starts[c]),
                       static_cast<size_t>(shape.column_bytes[c])),
          starts[c], image_size, &cells);
      if (status.ok()) {
        status = tables[t].ReplaceColumnCells(c, std::move(cells));
      }
      if (!status.ok()) {
        StubAfterFailureLocked(t, slot, status);
        return false;
      }
      slot.cols_done[c] = 1;
      AddResidentBytes(slot, shape.column_bytes[c]);
      if (outcome != nullptr) outcome->bytes_parsed += shape.column_bytes[c];
      return true;
    };
    if (want != nullptr) {
      for (ColumnId c : *want) {
        if (!fill_column(c)) break;  // stubbed: every column marked done
      }
    } else {
      for (ColumnId c = 0; c < shape.column_names.size(); ++c) {
        if (!fill_column(c)) break;
      }
    }
    const bool all_done =
        std::all_of(slot.cols_done.begin(), slot.cols_done.end(),
                    [](unsigned char done) { return done != 0; });
    if (all_done) OnSlotFull(slot);
  }

  void EnsureFull(TableId t, MaterializeOutcome* outcome) {
    if (t >= num_lazy) return;
    Slot& slot = slots[t];
    if (slot.state.load(std::memory_order_acquire) != 2) {
      std::lock_guard<std::mutex> lock(slot.mu);
      Stopwatch parse_timer;
      MaterializeLocked(t, slot, nullptr, outcome);
      if (outcome != nullptr) {
        outcome->parse_seconds += parse_timer.ElapsedSeconds();
      }
    }
    Touch(slot);
  }

  void EnsureColumns(TableId t, const std::vector<ColumnId>& columns,
                     MaterializeOutcome* outcome) {
    if (t >= num_lazy) return;
    Slot& slot = slots[t];
    if (slot.state.load(std::memory_order_acquire) != 2) {
      std::lock_guard<std::mutex> lock(slot.mu);
      Stopwatch parse_timer;
      MaterializeLocked(t, slot, &columns, outcome);
      if (outcome != nullptr) {
        outcome->parse_seconds += parse_timer.ElapsedSeconds();
      }
    }
    Touch(slot);
  }

  Status LoadStatus() const {
    if (!has_error.load(std::memory_order_acquire)) return Status::OK();
    std::lock_guard<std::mutex> lock(mu);
    return error;
  }

  Status MaterializeAll() {
    for (TableId t = 0; t < num_lazy; ++t) {
      EnsureFull(t, /*outcome=*/nullptr);
    }
    return LoadStatus();
  }

  // Idle-point contract: no concurrent materializer or reader. The slot
  // locks are still taken so the release-ordered state flip pairs with the
  // next toucher's acquire.
  void EvictToBudget() {
    const uint64_t limit = budget.load(std::memory_order_relaxed);
    if (limit == 0 || backing.view().empty()) return;
    if (resident_bytes.load(std::memory_order_relaxed) <= limit) return;
    // Oldest touch first; table id breaks ties deterministically.
    std::vector<std::pair<uint64_t, TableId>> order;
    for (TableId t = 0; t < num_lazy; ++t) {
      if (slots[t].state.load(std::memory_order_acquire) != 0) {
        order.emplace_back(
            slots[t].last_touch.load(std::memory_order_relaxed), t);
      }
    }
    std::sort(order.begin(), order.end());
    for (const auto& [touch, t] : order) {
      if (resident_bytes.load(std::memory_order_relaxed) <= limit) break;
      Slot& slot = slots[t];
      std::lock_guard<std::mutex> lock(slot.mu);
      if (slot.pinned || slot.state.load(std::memory_order_relaxed) == 0) {
        continue;
      }
      if (slot.state.load(std::memory_order_relaxed) == 2) {
        full_count.fetch_sub(1, std::memory_order_relaxed);
      }
      touched_count.fetch_sub(1, std::memory_order_relaxed);
      const uint64_t held =
          slot.resident_bytes.load(std::memory_order_relaxed);
      resident_bytes.fetch_sub(held, std::memory_order_relaxed);
      bytes_evicted.fetch_add(held, std::memory_order_relaxed);
      evictions.fetch_add(1, std::memory_order_relaxed);
      slot.resident_bytes.store(0, std::memory_order_relaxed);
      slot.cols_done.clear();
      slot.was_evicted = true;
      tables[t] = Table();  // shape keeps serving from shapes[t]
      slot.state.store(0, std::memory_order_release);
    }
  }
};

TableStore::TableStore() : impl_(std::make_shared<Impl>()) {}
TableStore::~TableStore() = default;
TableStore::TableStore(TableStore&&) noexcept = default;
TableStore& TableStore::operator=(TableStore&&) noexcept = default;

TableStore TableStore::Lazy(std::vector<TableShape> shapes,
                            MappedFile backing) {
  TableStore store;
  Impl* impl = store.impl_.get();
  impl->num_lazy = shapes.size();
  impl->image_size = backing.size();
  impl->shapes = std::move(shapes);
  impl->backing = std::move(backing);
  impl->tables.resize(impl->num_lazy);
  impl->slots = std::make_unique<Impl::Slot[]>(impl->num_lazy);
  if (impl->num_lazy == 0) impl->backing.Release();
  return store;
}

size_t TableStore::NumTables() const { return impl_->tables.size(); }

TableId TableStore::Add(Table table) {
  impl_->tables.push_back(std::move(table));
  return static_cast<TableId>(impl_->tables.size() - 1);
}

const Table& TableStore::Get(TableId t, MaterializeOutcome* outcome) const {
  impl_->EnsureFull(t, outcome);
  return impl_->tables[t];
}

const Table& TableStore::GetColumns(TableId t,
                                    const std::vector<ColumnId>& columns,
                                    MaterializeOutcome* outcome) const {
  impl_->EnsureColumns(t, columns, outcome);
  return impl_->tables[t];
}

Status TableStore::EnsureTable(TableId t) const {
  impl_->EnsureFull(t, /*outcome=*/nullptr);
  return impl_->LoadStatus();
}

Status TableStore::MaterializeAll() const { return impl_->MaterializeAll(); }

std::function<Status()> TableStore::MakeWarmer() const {
  std::shared_ptr<Impl> impl = impl_;
  return [impl] { return impl->MaterializeAll(); };
}

Table* TableStore::Mutable(TableId t) {
  impl_->EnsureFull(t, /*outcome=*/nullptr);
  if (t < impl_->num_lazy) {
    std::lock_guard<std::mutex> lock(impl_->slots[t].mu);
    impl_->slots[t].pinned = true;
  }
  return &impl_->tables[t];
}

const std::string& TableStore::table_name(TableId t) const {
  const Impl* impl = impl_.get();
  if (!impl->SlotResident(t)) return impl->shapes[t].name;
  return impl->tables[t].name();
}

size_t TableStore::table_num_columns(TableId t) const {
  const Impl* impl = impl_.get();
  if (!impl->SlotResident(t)) return impl->shapes[t].column_names.size();
  return impl->tables[t].NumColumns();
}

const std::string& TableStore::column_name(TableId t, ColumnId c) const {
  const Impl* impl = impl_.get();
  if (!impl->SlotResident(t)) return impl->shapes[t].column_names[c];
  return impl->tables[t].column_name(c);
}

size_t TableStore::table_num_rows(TableId t) const {
  const Impl* impl = impl_.get();
  if (!impl->SlotResident(t)) {
    return static_cast<size_t>(impl->shapes[t].num_rows);
  }
  return impl->tables[t].NumRows();
}

size_t TableStore::table_num_live_rows(TableId t) const {
  const Impl* impl = impl_.get();
  if (!impl->SlotResident(t)) {
    return static_cast<size_t>(impl->shapes[t].num_rows -
                               impl->shapes[t].num_deleted_rows);
  }
  return impl->tables[t].NumLiveRows();
}

void TableStore::SetBudget(uint64_t bytes) {
  impl_->budget.store(bytes, std::memory_order_relaxed);
}

void TableStore::EvictToBudget() const { impl_->EvictToBudget(); }

ResidencyStats TableStore::residency() const {
  const Impl* impl = impl_.get();
  ResidencyStats stats;
  stats.budget_bytes = impl->budget.load(std::memory_order_relaxed);
  stats.resident_bytes =
      impl->resident_bytes.load(std::memory_order_relaxed);
  stats.peak_resident_bytes =
      impl->peak_resident_bytes.load(std::memory_order_relaxed);
  stats.bytes_materialized =
      impl->bytes_materialized.load(std::memory_order_relaxed);
  stats.bytes_evicted = impl->bytes_evicted.load(std::memory_order_relaxed);
  stats.evictions = impl->evictions.load(std::memory_order_relaxed);
  stats.rematerializations =
      impl->rematerializations.load(std::memory_order_relaxed);
  stats.tables_resident = tables_resident();
  for (TableId t = 0; t < impl->num_lazy; ++t) {
    if (impl->slots[t].state.load(std::memory_order_acquire) == 1) {
      ++stats.partial_tables;
    }
  }
  return stats;
}

uint64_t TableStore::table_resident_bytes(TableId t) const {
  const Impl* impl = impl_.get();
  if (t < impl->num_lazy) {
    return impl->slots[t].resident_bytes.load(std::memory_order_relaxed);
  }
  return TableCellBytes(impl->tables[t]);
}

uint64_t TableStore::table_cell_bytes(TableId t) const {
  const Impl* impl = impl_.get();
  if (t < impl->num_lazy) return impl->shapes[t].cell_bytes;
  return TableCellBytes(impl->tables[t]);
}

bool TableStore::IsResident(TableId t) const {
  return impl_->SlotResident(t);
}

size_t TableStore::tables_resident() const {
  const Impl* impl = impl_.get();
  return impl->touched_count.load(std::memory_order_acquire) +
         (impl->tables.size() - impl->num_lazy);
}

bool TableStore::fully_resident() const {
  const Impl* impl = impl_.get();
  return impl->full_count.load(std::memory_order_acquire) == impl->num_lazy;
}

Status TableStore::load_status() const { return impl_->LoadStatus(); }

Status ParseTableCells(const TableShape& shape, std::string_view blob,
                       uint64_t image_size, Table* out) {
  std::string_view data = blob;
  const auto corrupt = [&](const std::string& what) {
    return Status::Corruption(
        "corpus: " + what + " (cell region, table '" + shape.name +
        "', byte offset " +
        std::to_string(shape.cell_offset + (blob.size() - data.size())) +
        " of " + std::to_string(image_size) + ")");
  };
  const size_t num_cols = shape.column_names.size();
  const uint64_t num_rows = shape.num_rows;
  // Cells are column-major on disk; gather them row-wise to append.
  std::vector<std::vector<std::string>> cols(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    cols[c].reserve(static_cast<size_t>(num_rows));
    for (uint64_t r = 0; r < num_rows; ++r) {
      std::string_view cell;
      if (!GetLengthPrefixed(&data, &cell)) {
        return corrupt("truncated cell");
      }
      cols[c].emplace_back(cell);
    }
  }
  if (!data.empty()) {
    return corrupt(std::to_string(data.size()) +
                   " trailing bytes after the table's cells");
  }
  for (uint64_t r = 0; r < num_rows; ++r) {
    std::vector<std::string> row;
    row.reserve(num_cols);
    for (size_t c = 0; c < num_cols; ++c) row.push_back(std::move(cols[c][r]));
    Result<RowId> row_id = out->AppendRow(std::move(row));
    if (!row_id.ok()) return row_id.status();
    if ((shape.deleted_bitmap[r / 8] >> (r % 8)) & 1) {
      MATE_RETURN_IF_ERROR(out->DeleteRow(*row_id));
    }
  }
  return Status::OK();
}

Status ParseColumnCells(const TableShape& shape, ColumnId column,
                        std::string_view blob, uint64_t blob_offset,
                        uint64_t image_size,
                        std::vector<std::string>* cells) {
  std::string_view data = blob;
  const auto corrupt = [&](const std::string& what) {
    return Status::Corruption(
        "corpus: " + what + " (cell region, table '" + shape.name +
        "', column " + std::to_string(column) + ", byte offset " +
        std::to_string(blob_offset + (blob.size() - data.size())) + " of " +
        std::to_string(image_size) + ")");
  };
  cells->clear();
  cells->reserve(static_cast<size_t>(shape.num_rows));
  for (uint64_t r = 0; r < shape.num_rows; ++r) {
    std::string_view cell;
    if (!GetLengthPrefixed(&data, &cell)) {
      return corrupt("truncated cell");
    }
    cells->emplace_back(cell);
  }
  if (!data.empty()) {
    return corrupt(std::to_string(data.size()) +
                   " trailing bytes after the column's cells");
  }
  return Status::OK();
}

void AppendTableCells(const Table& table, std::string* out) {
  for (ColumnId c = 0; c < table.NumColumns(); ++c) {
    for (RowId r = 0; r < table.NumRows(); ++r) {
      PutLengthPrefixed(out, table.cell(r, c));
    }
  }
}

uint64_t TableCellBytes(const Table& table) {
  uint64_t bytes = 0;
  for (ColumnId c = 0; c < table.NumColumns(); ++c) {
    bytes += TableColumnCellBytes(table, c);
  }
  return bytes;
}

uint64_t TableColumnCellBytes(const Table& table, ColumnId c) {
  uint64_t bytes = 0;
  for (RowId r = 0; r < table.NumRows(); ++r) {
    const size_t cell = table.cell(r, c).size();
    bytes += VarintLength(cell) + cell;
  }
  return bytes;
}

}  // namespace mate
