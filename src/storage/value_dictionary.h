// Interns normalized cell values to dense ValueIds. The inverted index keys
// posting lists by ValueId rather than by string, and the discovery phase
// resolves query values through the same dictionary.

#ifndef MATE_STORAGE_VALUE_DICTIONARY_H_
#define MATE_STORAGE_VALUE_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/types.h"

namespace mate {

class ValueDictionary {
 public:
  ValueDictionary() = default;

  // The by-id table holds pointers into the node-stable map; copying would
  // dangle them, so the dictionary is move-only.
  ValueDictionary(const ValueDictionary&) = delete;
  ValueDictionary& operator=(const ValueDictionary&) = delete;
  ValueDictionary(ValueDictionary&&) = default;
  ValueDictionary& operator=(ValueDictionary&&) = default;

  /// Interns `normalized` (callers must pre-normalize) and returns its id.
  ValueId GetOrAdd(std::string_view normalized);

  /// Id of `normalized`, or kInvalidValueId if never interned.
  ValueId Find(std::string_view normalized) const;

  /// The string for `id`. Precondition: id < size().
  const std::string& ValueOf(ValueId id) const { return *by_id_[id]; }

  size_t size() const { return by_id_.size(); }

  /// Approximate heap footprint, for index sizing stats.
  size_t MemoryBytes() const;

 private:
  // Transparent hashing so Find(string_view) avoids a temporary string.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct StringEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::unordered_map<std::string, ValueId, StringHash, StringEq> ids_;
  std::vector<const std::string*> by_id_;
};

}  // namespace mate

#endif  // MATE_STORAGE_VALUE_DICTIONARY_H_
