#include "storage/corpus.h"

#include <cstring>
#include <sstream>
#include <unordered_set>

#include "util/coding.h"
#include "util/string_util.h"

namespace mate {

namespace {

void PutDouble(std::string* out, double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  PutFixed64(out, bits);
}

bool GetDouble(std::string_view* input, double* d) {
  uint64_t bits = 0;
  if (!GetFixed64(input, &bits)) return false;
  std::memcpy(d, &bits, sizeof(bits));
  return true;
}

}  // namespace

std::string CorpusStats::ToString() const {
  std::ostringstream os;
  os << "tables=" << num_tables << " columns=" << num_columns
     << " rows=" << num_rows << " cells=" << num_cells
     << " unique_values=" << num_unique_values
     << " avg_cols=" << avg_columns_per_table
     << " avg_rows=" << avg_rows_per_table;
  return os.str();
}

bool operator==(const CorpusStats& a, const CorpusStats& b) {
  return a.num_tables == b.num_tables && a.num_columns == b.num_columns &&
         a.num_rows == b.num_rows && a.num_cells == b.num_cells &&
         a.num_unique_values == b.num_unique_values &&
         a.avg_columns_per_table == b.avg_columns_per_table &&
         a.avg_rows_per_table == b.avg_rows_per_table &&
         a.char_counts == b.char_counts;
}

void AppendCorpusStats(std::string* out, const CorpusStats& stats) {
  PutVarint64(out, stats.num_tables);
  PutVarint64(out, stats.num_columns);
  PutVarint64(out, stats.num_rows);
  PutVarint64(out, stats.num_cells);
  PutVarint64(out, stats.num_unique_values);
  PutDouble(out, stats.avg_columns_per_table);
  PutDouble(out, stats.avg_rows_per_table);
  for (uint64_t count : stats.char_counts) PutVarint64(out, count);
}

bool ParseCorpusStats(std::string_view* input, CorpusStats* stats) {
  if (!GetVarint64(input, &stats->num_tables)) return false;
  if (!GetVarint64(input, &stats->num_columns)) return false;
  if (!GetVarint64(input, &stats->num_rows)) return false;
  if (!GetVarint64(input, &stats->num_cells)) return false;
  if (!GetVarint64(input, &stats->num_unique_values)) return false;
  if (!GetDouble(input, &stats->avg_columns_per_table)) return false;
  if (!GetDouble(input, &stats->avg_rows_per_table)) return false;
  for (uint64_t& count : stats->char_counts) {
    if (!GetVarint64(input, &count)) return false;
  }
  return true;
}

CorpusStats Corpus::ComputeStats() const {
  CorpusStats stats;
  std::unordered_set<std::string> uniques;
  stats.num_tables = NumTables();
  for (TableId id = 0; id < NumTables(); ++id) {
    const Table& t = table(id);
    stats.num_columns += t.NumColumns();
    stats.num_rows += t.NumLiveRows();
    for (RowId r = 0; r < t.NumRows(); ++r) {
      if (t.IsRowDeleted(r)) continue;
      for (ColumnId c = 0; c < t.NumColumns(); ++c) {
        std::string norm = NormalizeValue(t.cell(r, c));
        CharFrequencyTable::CountCharacters(norm, &stats.char_counts);
        uniques.insert(std::move(norm));
        ++stats.num_cells;
      }
    }
  }
  stats.num_unique_values = uniques.size();
  if (stats.num_tables > 0) {
    stats.avg_columns_per_table =
        static_cast<double>(stats.num_columns) / stats.num_tables;
    stats.avg_rows_per_table =
        static_cast<double>(stats.num_rows) / stats.num_tables;
  }
  return stats;
}

bool TablesEqual(const Table& a, const Table& b) {
  if (a.name() != b.name() || a.NumColumns() != b.NumColumns() ||
      a.NumRows() != b.NumRows() || a.NumLiveRows() != b.NumLiveRows()) {
    return false;
  }
  for (ColumnId c = 0; c < a.NumColumns(); ++c) {
    if (a.column_name(c) != b.column_name(c)) return false;
  }
  for (RowId r = 0; r < a.NumRows(); ++r) {
    if (a.IsRowDeleted(r) != b.IsRowDeleted(r)) return false;
    for (ColumnId c = 0; c < a.NumColumns(); ++c) {
      if (a.cell(r, c) != b.cell(r, c)) return false;
    }
  }
  return true;
}

bool CorporaEqual(const Corpus& a, const Corpus& b) {
  if (a.NumTables() != b.NumTables()) return false;
  for (TableId t = 0; t < a.NumTables(); ++t) {
    if (!TablesEqual(a.table(t), b.table(t))) return false;
  }
  return true;
}

}  // namespace mate
