#include "storage/corpus.h"

#include <sstream>
#include <unordered_set>

#include "util/string_util.h"

namespace mate {

std::string CorpusStats::ToString() const {
  std::ostringstream os;
  os << "tables=" << num_tables << " columns=" << num_columns
     << " rows=" << num_rows << " cells=" << num_cells
     << " unique_values=" << num_unique_values
     << " avg_cols=" << avg_columns_per_table
     << " avg_rows=" << avg_rows_per_table;
  return os.str();
}

TableId Corpus::AddTable(Table table) {
  tables_.push_back(std::move(table));
  return static_cast<TableId>(tables_.size() - 1);
}

CorpusStats Corpus::ComputeStats() const {
  CorpusStats stats;
  std::unordered_set<std::string> uniques;
  stats.num_tables = tables_.size();
  for (const Table& t : tables_) {
    stats.num_columns += t.NumColumns();
    stats.num_rows += t.NumLiveRows();
    for (RowId r = 0; r < t.NumRows(); ++r) {
      if (t.IsRowDeleted(r)) continue;
      for (ColumnId c = 0; c < t.NumColumns(); ++c) {
        std::string norm = NormalizeValue(t.cell(r, c));
        CharFrequencyTable::CountCharacters(norm, &stats.char_counts);
        uniques.insert(std::move(norm));
        ++stats.num_cells;
      }
    }
  }
  stats.num_unique_values = uniques.size();
  if (stats.num_tables > 0) {
    stats.avg_columns_per_table =
        static_cast<double>(stats.num_columns) / stats.num_tables;
    stats.avg_rows_per_table =
        static_cast<double>(stats.num_rows) / stats.num_tables;
  }
  return stats;
}

}  // namespace mate
