// TableStore — the residency layer under a Corpus. It decouples "the corpus
// exists and has this shape" from "this table's cells are resident":
//
//   * a *resident* store owns fully materialized Tables (the classic
//     in-memory corpus: built from CSVs, adopted, or eagerly deserialized);
//   * a *lazy* store is built from a corpus-format-v2 shape header plus the
//     mmap'd file image: names, column names, row counts, and tombstone
//     bitmaps are known up front, while each table's cells parse on the
//     first Get(t) — thread-safe via a per-table once-latch, so concurrent
//     queries (and the session's background warmer) race safely and parse
//     each table exactly once.
//
// The discovery loop (Algorithm 1, §6) only ever touches the candidate
// tables the index surfaces, so a lake of thousands of tables pays
// materialization cost only for the handful a query evaluates — the same
// access-locality argument storage engines make for lazy page/record
// materialization.
//
// Failure model: a table whose cell blob is corrupt materializes as a
// *shape-complete stub* (declared columns and row count, empty cells, the
// header's tombstones) so no caller indexes out of bounds, and the first
// error is latched into load_status() with the section and byte offset —
// a corrupt table is therefore never silently empty: the sticky status
// names it, and Session surfaces it from every query path.
//
// Thread-safety: Get/EnsureTable/MaterializeAll/shape accessors and the
// warmer may run concurrently. Add/Mutable (and moving the store) require
// the store to be otherwise idle, mirroring Session's mutation contract.

#ifndef MATE_STORAGE_TABLE_STORE_H_
#define MATE_STORAGE_TABLE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/table.h"
#include "storage/types.h"
#include "util/mapped_file.h"
#include "util/status.h"

namespace mate {

/// Everything the corpus-format-v2 table directory records about one table:
/// the full shape and the byte extent of its cell blob in the backing image.
struct TableShape {
  std::string name;
  std::vector<std::string> column_names;
  uint64_t num_rows = 0;
  uint64_t num_deleted_rows = 0;
  /// Tombstones, bit r of byte r/8; (num_rows + 7) / 8 bytes.
  std::string deleted_bitmap;
  /// Absolute byte offset / size of the cell blob in the backing image.
  uint64_t cell_offset = 0;
  uint64_t cell_bytes = 0;
};

class TableStore {
 public:
  /// An empty resident store (Add tables to it).
  TableStore();
  ~TableStore();

  TableStore(TableStore&&) noexcept;
  TableStore& operator=(TableStore&&) noexcept;
  TableStore(const TableStore&) = delete;
  TableStore& operator=(const TableStore&) = delete;

  /// A lazy store over `backing`: the shapes come from a parsed v2 table
  /// directory whose cell extents the parser has already bounds-checked
  /// against the image. Cells materialize per table on first access; the
  /// mapping is released once every table is resident.
  static TableStore Lazy(std::vector<TableShape> shapes, MappedFile backing);

  size_t NumTables() const;

  /// Appends a resident table. Requires the store to be idle.
  TableId Add(Table table);

  // ---- cells (materialize on demand) --------------------------------

  /// The table, materializing its cells on first access (blocking; other
  /// threads asking for the same table wait on the per-table once-latch).
  /// A failed parse yields a shape-complete stub and latches load_status().
  const Table& Get(TableId t) const;

  /// Get + error channel: materializes `t` and returns the store's sticky
  /// status, so callers that can propagate errors see the parse failure
  /// (with section + byte offset) instead of a stub.
  Status EnsureTable(TableId t) const;

  /// Materializes every table (the warmer's body; also what Save uses).
  /// Returns the sticky status — OK iff every cell blob parsed.
  Status MaterializeAll() const;

  /// A self-contained callable running MaterializeAll: it shares ownership
  /// of the store's state, so a background warmer stays valid even if the
  /// store (or its owning Corpus/Session) is moved while it runs.
  std::function<Status()> MakeWarmer() const;

  /// Mutable access materializes first (§5.4 maintenance edits need the
  /// cells). Requires the store to be otherwise idle.
  Table* Mutable(TableId t);

  // ---- shape (never materializes) -----------------------------------

  const std::string& table_name(TableId t) const;
  size_t table_num_columns(TableId t) const;
  const std::string& column_name(TableId t, ColumnId c) const;
  size_t table_num_rows(TableId t) const;
  size_t table_num_live_rows(TableId t) const;

  // ---- residency ----------------------------------------------------

  bool IsResident(TableId t) const;
  size_t tables_resident() const;
  bool fully_resident() const;

  /// Sticky first materialization error (section + byte offset), OK while
  /// every parse so far has succeeded.
  Status load_status() const;

 private:
  struct Impl;
  // Shared with warmers so background materialization survives moves.
  std::shared_ptr<Impl> impl_;
};

/// Parses one table's cell blob (cells column-major, each length-prefixed —
/// the encoding shared by corpus formats v1 and v2) into `out`, which must
/// already carry the shape's name and columns; appends the rows and applies
/// the tombstone bitmap. Errors name the table and the absolute byte offset
/// within the `image_size`-byte image (the blob starts at
/// `shape.cell_offset`).
Status ParseTableCells(const TableShape& shape, std::string_view blob,
                       uint64_t image_size, Table* out);

/// Serializes `table`'s cells in the same blob encoding.
void AppendTableCells(const Table& table, std::string* out);

/// Byte size AppendTableCells would append — the directory's cell_bytes.
uint64_t TableCellBytes(const Table& table);

}  // namespace mate

#endif  // MATE_STORAGE_TABLE_STORE_H_
