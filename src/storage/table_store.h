// TableStore — the residency layer under a Corpus. It decouples "the corpus
// exists and has this shape" from "this table's cells are resident":
//
//   * a *resident* store owns fully materialized Tables (the classic
//     in-memory corpus: built from CSVs, adopted, or eagerly deserialized);
//   * a *lazy* store is built from a corpus-format shape header plus the
//     mmap'd file image: names, column names, row counts, and tombstone
//     bitmaps are known up front, while cells parse on first access —
//     thread-safe via a per-table latch, so concurrent queries (and the
//     session's background warmer) race safely and parse each extent once.
//
// Residency is buffer-manager shaped, not monotone:
//
//   * *Columnar sub-table materialization* — when the backing directory
//     carries per-column extents (corpus format v3), GetColumns(t, cols)
//     parses just the touched columns of a table into a shape-complete
//     Table whose untouched columns stay empty. Single-column-key discovery
//     (the evaluator reads only each PL item's fixed column) rides this to
//     touch a sliver of a giant table instead of the whole blob.
//   * *Byte-budget LRU eviction* — SetBudget(bytes) arms a residency
//     budget (0 = unlimited, today's behavior); EvictToBudget() drops the
//     least-recently-touched unpinned tables until the resident extent
//     bytes fit again. Eviction must only run at idle points (mirroring the
//     mutation/quiesce contract: never under an in-flight query or the
//     warmer — mate::Session calls it between queries). An evicted table
//     re-parses on its next touch under the same per-table latch, so
//     re-touch is bit-identical. With a budget armed the mmap stays alive
//     for re-parses; only the unbudgeted store releases it once every
//     table is resident. Tables handed out via Mutable() are pinned:
//     in-memory edits are never silently lost to an evict + re-parse.
//
// The discovery loop (Algorithm 1, §6) only ever touches the candidate
// tables the index surfaces, so a lake of thousands of tables pays
// materialization cost only for the handful a query evaluates — the same
// access-locality argument storage engines make for lazy page/record
// materialization.
//
// Failure model: a table whose cell blob is corrupt materializes as a
// *shape-complete stub* (declared columns and row count, empty cells, the
// header's tombstones) so no caller indexes out of bounds, and the first
// error is latched into load_status() with the section and byte offset —
// a corrupt table is therefore never silently empty: the sticky status
// names it, and Session surfaces it from every query path.
//
// Thread-safety: Get/GetColumns/EnsureTable/MaterializeAll/shape accessors
// and the warmer may run concurrently. Add/Mutable/EvictToBudget (and
// moving the store) require the store to be otherwise idle, mirroring
// Session's mutation contract.

#ifndef MATE_STORAGE_TABLE_STORE_H_
#define MATE_STORAGE_TABLE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/table.h"
#include "storage/types.h"
#include "util/mapped_file.h"
#include "util/status.h"

namespace mate {

/// Everything the corpus-format table directory records about one table:
/// the full shape and the byte extent of its cell blob in the backing
/// image.
struct TableShape {
  std::string name;
  std::vector<std::string> column_names;
  uint64_t num_rows = 0;
  uint64_t num_deleted_rows = 0;
  /// Tombstones, bit r of byte r/8; (num_rows + 7) / 8 bytes.
  std::string deleted_bitmap;
  /// Absolute byte offset / size of the cell blob in the backing image.
  uint64_t cell_offset = 0;
  uint64_t cell_bytes = 0;
  /// Per-column blob sizes (corpus format v3 directories; they sum to
  /// cell_bytes). Empty for v2 images — columnar sub-table materialization
  /// then falls back to whole-table parses.
  std::vector<uint64_t> column_bytes;
};

/// What one Get/GetColumns call actually did: the on-disk extent bytes it
/// parsed (0 on a residency hit) and whether the table had been evicted
/// before — the evaluator folds these into DiscoveryStats.
struct MaterializeOutcome {
  uint64_t bytes_parsed = 0;
  bool rematerialized = false;
  /// Wall time this call spent inside the cell parsers (0.0 on a residency
  /// hit or when the call waited on another thread's parse — waiting shows
  /// up in bytes_parsed == 0 too). Query tracing splits "materialize" span
  /// time into parse work vs. latch waits with this.
  double parse_seconds = 0.0;
};

/// Residency gauges + cumulative counters for the memory-governance layer
/// (surfaced through `mate_cli stats` and the memory_budget bench). Byte
/// figures are on-disk directory extents, so they are deterministic for a
/// given access pattern.
struct ResidencyStats {
  uint64_t budget_bytes = 0;         // 0 = unlimited
  uint64_t resident_bytes = 0;       // extent bytes currently resident
  uint64_t peak_resident_bytes = 0;  // high-water mark of resident_bytes
  uint64_t bytes_materialized = 0;   // cumulative extent bytes parsed
  uint64_t bytes_evicted = 0;        // cumulative extent bytes evicted
  uint64_t evictions = 0;            // tables evicted
  uint64_t rematerializations = 0;   // tables re-parsed after an eviction
  uint64_t tables_resident = 0;      // partially or fully resident
  uint64_t partial_tables = 0;       // resident with only some columns
};

class TableStore {
 public:
  /// An empty resident store (Add tables to it).
  TableStore();
  ~TableStore();

  TableStore(TableStore&&) noexcept;
  TableStore& operator=(TableStore&&) noexcept;
  TableStore(const TableStore&) = delete;
  TableStore& operator=(const TableStore&) = delete;

  /// A lazy store over `backing`: the shapes come from a parsed table
  /// directory whose cell extents the parser has already bounds-checked
  /// against the image. Cells materialize per table (or per column) on
  /// first access; without a budget the mapping is released once every
  /// table is fully resident.
  static TableStore Lazy(std::vector<TableShape> shapes, MappedFile backing);

  size_t NumTables() const;

  /// Appends a resident table. Requires the store to be idle.
  TableId Add(Table table);

  // ---- cells (materialize on demand) --------------------------------

  /// The table, fully materializing its cells on first access (blocking;
  /// other threads asking for the same table wait on the per-table latch).
  /// A failed parse yields a shape-complete stub and latches load_status().
  const Table& Get(TableId t, MaterializeOutcome* outcome = nullptr) const;

  /// The table with at least `columns` materialized: when the directory
  /// carries per-column extents, only the missing requested columns parse;
  /// cells of columns never requested read as empty strings. Falls back to
  /// a full Get() over v2 images (no per-column extents). Safe to mix with
  /// Get(): a later full access parses exactly the remaining columns.
  const Table& GetColumns(TableId t, const std::vector<ColumnId>& columns,
                          MaterializeOutcome* outcome = nullptr) const;

  /// Get + error channel: fully materializes `t` and returns the store's
  /// sticky status, so callers that can propagate errors see the parse
  /// failure (with section + byte offset) instead of a stub.
  Status EnsureTable(TableId t) const;

  /// Materializes every table (the warmer's body; also what Save uses).
  /// Returns the sticky status — OK iff every cell blob parsed. Ignores
  /// the budget; Session re-evicts afterwards when one is armed.
  Status MaterializeAll() const;

  /// A self-contained callable running MaterializeAll: it shares ownership
  /// of the store's state, so a background warmer stays valid even if the
  /// store (or its owning Corpus/Session) is moved while it runs.
  std::function<Status()> MakeWarmer() const;

  /// Mutable access materializes first (§5.4 maintenance edits need the
  /// cells) and *pins* the table: a pinned table is never evicted, so
  /// edits cannot be lost to a re-parse. Requires the store to be
  /// otherwise idle.
  Table* Mutable(TableId t);

  // ---- shape (never materializes) -----------------------------------

  const std::string& table_name(TableId t) const;
  size_t table_num_columns(TableId t) const;
  const std::string& column_name(TableId t, ColumnId c) const;
  size_t table_num_rows(TableId t) const;
  size_t table_num_live_rows(TableId t) const;

  // ---- residency ----------------------------------------------------

  /// Arms the byte budget (0 = unlimited). Set it before queries run —
  /// an unbudgeted store releases its backing at full residency, after
  /// which eviction has nothing to re-parse from and becomes a no-op.
  void SetBudget(uint64_t bytes);

  /// Drops least-recently-touched unpinned tables until resident extent
  /// bytes fit the budget. No-op when the budget is 0 (or the backing is
  /// gone). MUST only be called at an idle point: no in-flight Get /
  /// GetColumns / warmer (mirrors the mutation contract).
  void EvictToBudget() const;

  ResidencyStats residency() const;

  /// Directory extent bytes of `t` currently resident (0 when cold; the
  /// full cell_bytes when fully materialized). Resident (non-lazy) tables
  /// report their serialized cell size.
  uint64_t table_resident_bytes(TableId t) const;
  /// Total directory extent bytes of `t` (its serialized cell size).
  uint64_t table_cell_bytes(TableId t) const;

  /// True once `t` holds any materialized cells (partial counts).
  bool IsResident(TableId t) const;
  size_t tables_resident() const;
  bool fully_resident() const;

  /// Sticky first materialization error (section + byte offset), OK while
  /// every parse so far has succeeded.
  Status load_status() const;

 private:
  struct Impl;
  // Shared with warmers so background materialization survives moves.
  std::shared_ptr<Impl> impl_;
};

/// Parses one table's cell blob (cells column-major, each length-prefixed —
/// the encoding shared by every corpus format) into `out`, which must
/// already carry the shape's name and columns; appends the rows and applies
/// the tombstone bitmap. Errors name the table and the absolute byte offset
/// within the `image_size`-byte image (the blob starts at
/// `shape.cell_offset`).
Status ParseTableCells(const TableShape& shape, std::string_view blob,
                       uint64_t image_size, Table* out);

/// Parses one column's cells (`shape.num_rows` length-prefixed values) out
/// of its `blob` slice, which starts at absolute offset `blob_offset` in
/// the image. Errors name the table, the column, and the byte offset.
Status ParseColumnCells(const TableShape& shape, ColumnId column,
                        std::string_view blob, uint64_t blob_offset,
                        uint64_t image_size,
                        std::vector<std::string>* cells);

/// Serializes `table`'s cells in the same blob encoding.
void AppendTableCells(const Table& table, std::string* out);

/// Byte size AppendTableCells would append — the directory's cell_bytes.
uint64_t TableCellBytes(const Table& table);

/// Byte size of column `c`'s slice of that blob — the v3 directory's
/// per-column extent.
uint64_t TableColumnCellBytes(const Table& table, ColumnId c);

}  // namespace mate

#endif  // MATE_STORAGE_TABLE_STORE_H_
