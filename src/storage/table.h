// In-memory relational table with string cells — the unit stored in a corpus
// (data lake) and the unit returned by join discovery. Row deletion is
// tombstone-based so row ids stay stable for the inverted index (§5.4).

#ifndef MATE_STORAGE_TABLE_H_
#define MATE_STORAGE_TABLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace mate {

class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t NumColumns() const { return columns_.size(); }
  size_t NumRows() const { return num_rows_; }

  /// Rows not marked deleted.
  size_t NumLiveRows() const { return num_rows_ - num_deleted_rows_; }

  /// Appends an empty-named or named column. Existing rows get empty cells.
  ColumnId AddColumn(std::string column_name);

  /// Appends a column with `column_name` and per-row `cells`; the cell count
  /// must equal NumRows().
  Status AddColumnWithCells(std::string column_name,
                            std::vector<std::string> cells);

  /// Replaces every cell of existing column `c` in one move; the cell count
  /// must equal NumRows(). The residency layer uses this to install a
  /// lazily parsed column into a shape-complete table without touching its
  /// sibling columns.
  Status ReplaceColumnCells(ColumnId c, std::vector<std::string> cells);

  /// Appends `n` rows of empty cells (none tombstoned) — bulk skeleton
  /// construction for shape stubs, O(columns) amortized instead of the
  /// per-row AppendRow loop.
  void AppendEmptyRows(size_t n);

  /// Removes column `c`, shifting later column ids down by one.
  Status DropColumn(ColumnId c);

  /// Appends a row; `cells` must have exactly NumColumns() entries.
  /// Returns the new row id.
  Result<RowId> AppendRow(std::vector<std::string> cells);

  /// Tombstones row `r`; the row id remains allocated and IsRowDeleted(r)
  /// becomes true.
  Status DeleteRow(RowId r);

  bool IsRowDeleted(RowId r) const { return deleted_[r]; }

  /// Raw cell text as ingested.
  const std::string& cell(RowId r, ColumnId c) const {
    return columns_[c].cells[r];
  }

  Status SetCell(RowId r, ColumnId c, std::string value);

  const std::string& column_name(ColumnId c) const {
    return columns_[c].name;
  }

  /// Index of the column named `column_name`, or kInvalidColumnId.
  ColumnId FindColumn(std::string_view column_name) const;

  /// The live cells of row `r` in column order.
  std::vector<std::string> RowValues(RowId r) const;

  /// Number of distinct normalized values in column `c` over live rows —
  /// the cardinality used by the init-column heuristic (§6.1).
  size_t ColumnCardinality(ColumnId c) const;

  /// Total bytes of cell payload (for index sizing stats).
  size_t PayloadBytes() const;

 private:
  struct Column {
    std::string name;
    std::vector<std::string> cells;
  };

  std::string name_;
  std::vector<Column> columns_;
  std::vector<bool> deleted_;
  size_t num_rows_ = 0;
  size_t num_deleted_rows_ = 0;
};

}  // namespace mate

#endif  // MATE_STORAGE_TABLE_H_
