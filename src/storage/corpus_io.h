// Binary corpus persistence. The format is versioned and length-prefixed so
// readers can detect truncation and corruption.
//
// Format v3 is laid out for lazy — and *columnar* — materialization:
// everything a serving process needs to validate shape and answer "which
// tables could matter" sits ahead of the bulky cells, the cell region is
// size-prefixed so its extent is bounds-checked without parsing a single
// cell, and each directory entry carries its per-column extents so the
// residency layer can parse one touched column of a giant table.
//
//   [magic "MATECORP"] [version u32 = 3]
//   stats section:    [stats-present u8] [CorpusStats]
//   table directory:  [num_tables varint]
//     per table: [name lp] [num_cols varint] [col names lp...]
//                [num_rows varint] [deleted bitmap lp] [cell_bytes varint]
//                [per-column cell bytes varint x num_cols, sum = cell_bytes]
//   cell region:      [region total fixed64]
//     per table: cells column-major, each length-prefixed (cell_bytes each)
//
// Format v2 (same layout minus the per-column extents) still loads
// everywhere — lazily too, with columnar materialization degrading to
// whole-table parses. Format v1 (no stats, cells inline with each table
// header) still loads — eagerly — through every reader here; `mate_cli
// convert-corpus` migrates v1/v2 files in place.
//
// Load errors are section- and offset-aware: a truncated or corrupt image
// names the section ("table directory", "cell region", ...) and the byte
// offset where parsing stopped, not just a generic failure.

#ifndef MATE_STORAGE_CORPUS_IO_H_
#define MATE_STORAGE_CORPUS_IO_H_

#include <string>

#include "storage/corpus.h"
#include "util/status.h"

namespace mate {

/// Serializes `corpus` into `out` (replacing its contents) without
/// persisted stats — lazy opens of the result fall back to a ComputeStats
/// scan. Prefer the stats overload when stats are at hand (Session::Save
/// passes its own).
void SerializeCorpus(const Corpus& corpus, std::string* out);

/// Same, embedding `stats` in the v3 header so a lazy open loads them
/// instead of re-scanning the corpus.
void SerializeCorpus(const Corpus& corpus, const CorpusStats& stats,
                     std::string* out);

/// The legacy v1 writer, kept for migration round-trip tests (v1 images
/// exercise the compatibility path in every reader).
void SerializeCorpusV1(const Corpus& corpus, std::string* out);

/// The legacy v2 writer (no per-column extents), kept so the
/// compatibility path — lazy opens included — stays under test.
void SerializeCorpusV2(const Corpus& corpus, const CorpusStats& stats,
                       std::string* out);

/// Parses a corpus serialized by any SerializeCorpus flavor, fully
/// materialized. When non-null, `stats`/`stats_present` receive the v2
/// header's persisted statistics (v1 images report stats_present = false).
Result<Corpus> DeserializeCorpus(std::string_view data,
                                 CorpusStats* stats = nullptr,
                                 bool* stats_present = nullptr);

/// Writes the serialized corpus to `path` (atomically via rename).
Status SaveCorpus(const Corpus& corpus, const std::string& path);
Status SaveCorpus(const Corpus& corpus, const CorpusStats& stats,
                  const std::string& path);

/// Reads a corpus written by SaveCorpus, fully materialized.
Result<Corpus> LoadCorpus(const std::string& path);

/// Opens `path` lazily: mmaps the image, parses only the stats section and
/// table directory (bounds-checking the cell region extent), and returns a
/// corpus whose tables materialize on first access — Session::Open's
/// default corpus path. v1 images fall back to the eager legacy load
/// (fully resident on return). `stats`/`stats_present` as above.
Result<Corpus> OpenCorpusLazy(const std::string& path,
                              CorpusStats* stats = nullptr,
                              bool* stats_present = nullptr);

/// Reads/writes a whole file (shared with index_io).
Status WriteFileAtomic(const std::string& path, std::string_view contents);
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace mate

#endif  // MATE_STORAGE_CORPUS_IO_H_
