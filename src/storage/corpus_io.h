// Binary corpus persistence. The format is versioned and length-prefixed so
// readers can detect truncation and corruption.
//
//   [magic "MATECORP"] [version u32]
//   [num_tables varint]
//   per table: [name lp] [num_cols varint] [col names lp...]
//              [num_rows varint] [deleted bitmap bytes]
//              cells column-major, each length-prefixed

#ifndef MATE_STORAGE_CORPUS_IO_H_
#define MATE_STORAGE_CORPUS_IO_H_

#include <string>

#include "storage/corpus.h"
#include "util/status.h"

namespace mate {

/// Serializes `corpus` into `out` (replacing its contents).
void SerializeCorpus(const Corpus& corpus, std::string* out);

/// Parses a corpus serialized by SerializeCorpus.
Result<Corpus> DeserializeCorpus(std::string_view data);

/// Writes the serialized corpus to `path` (atomically via rename).
Status SaveCorpus(const Corpus& corpus, const std::string& path);

/// Reads a corpus written by SaveCorpus.
Result<Corpus> LoadCorpus(const std::string& path);

/// Reads/writes a whole file (shared with index_io).
Status WriteFileAtomic(const std::string& path, std::string_view contents);
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace mate

#endif  // MATE_STORAGE_CORPUS_IO_H_
