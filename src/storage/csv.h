// Minimal RFC-4180 CSV reader/writer so examples and users can ingest real
// tables (quoted fields, embedded commas/newlines, doubled quotes).

#ifndef MATE_STORAGE_CSV_H_
#define MATE_STORAGE_CSV_H_

#include <string>
#include <string_view>

#include "storage/table.h"
#include "util/status.h"

namespace mate {

/// Parses CSV text into a Table; the first record is the header row.
Result<Table> ParseCsv(std::string_view content, std::string table_name);

/// Loads a CSV file; the table is named after `table_name` (or the path if
/// empty).
Result<Table> LoadCsvFile(const std::string& path, std::string table_name = "");

/// Renders a table (including header) as CSV.
std::string ToCsv(const Table& table);

}  // namespace mate

#endif  // MATE_STORAGE_CSV_H_
