// Identifier types shared by the storage, index, and discovery layers.

#ifndef MATE_STORAGE_TYPES_H_
#define MATE_STORAGE_TYPES_H_

#include <cstdint>
#include <limits>

namespace mate {

using TableId = uint32_t;
using ColumnId = uint32_t;
using RowId = uint32_t;
using ValueId = uint64_t;

inline constexpr TableId kInvalidTableId = std::numeric_limits<TableId>::max();
inline constexpr ColumnId kInvalidColumnId =
    std::numeric_limits<ColumnId>::max();
inline constexpr RowId kInvalidRowId = std::numeric_limits<RowId>::max();
inline constexpr ValueId kInvalidValueId =
    std::numeric_limits<ValueId>::max();

}  // namespace mate

#endif  // MATE_STORAGE_TYPES_H_
