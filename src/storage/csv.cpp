#include "storage/csv.h"

#include <vector>

#include "storage/corpus_io.h"

namespace mate {

namespace {

// Parses one CSV record starting at *pos; appends fields to `fields`.
// Returns false at end of input.
bool ParseRecord(std::string_view content, size_t* pos,
                 std::vector<std::string>* fields, Status* status) {
  fields->clear();
  if (*pos >= content.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  while (*pos < content.size()) {
    char c = content[*pos];
    saw_any = true;
    if (in_quotes) {
      if (c == '"') {
        if (*pos + 1 < content.size() && content[*pos + 1] == '"') {
          field.push_back('"');
          *pos += 2;
        } else {
          in_quotes = false;
          ++*pos;
        }
      } else {
        field.push_back(c);
        ++*pos;
      }
      continue;
    }
    if (c == '"') {
      if (!field.empty()) {
        *status = Status::InvalidArgument("quote inside unquoted field");
        return false;
      }
      in_quotes = true;
      ++*pos;
    } else if (c == ',') {
      fields->push_back(std::move(field));
      field.clear();
      ++*pos;
    } else if (c == '\r' || c == '\n') {
      // consume \r\n or \n
      if (c == '\r' && *pos + 1 < content.size() && content[*pos + 1] == '\n') {
        ++*pos;
      }
      ++*pos;
      fields->push_back(std::move(field));
      return true;
    } else {
      field.push_back(c);
      ++*pos;
    }
  }
  if (in_quotes) {
    *status = Status::InvalidArgument("unterminated quoted field");
    return false;
  }
  if (saw_any) {
    fields->push_back(std::move(field));
    return true;
  }
  return false;
}

void AppendCsvField(std::string* out, const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quotes) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<Table> ParseCsv(std::string_view content, std::string table_name) {
  Table table(std::move(table_name));
  size_t pos = 0;
  std::vector<std::string> fields;
  Status status = Status::OK();
  if (!ParseRecord(content, &pos, &fields, &status)) {
    if (!status.ok()) return status;
    return Status::InvalidArgument("empty CSV input");
  }
  for (std::string& header : fields) table.AddColumn(std::move(header));
  size_t line = 1;
  while (ParseRecord(content, &pos, &fields, &status)) {
    ++line;
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != table.NumColumns()) {
      return Status::InvalidArgument("CSV record " + std::to_string(line) +
                                     " has " + std::to_string(fields.size()) +
                                     " fields, expected " +
                                     std::to_string(table.NumColumns()));
    }
    Result<RowId> row = table.AppendRow(std::move(fields));
    if (!row.ok()) return row.status();
    fields.clear();
  }
  if (!status.ok()) return status;
  return table;
}

Result<Table> LoadCsvFile(const std::string& path, std::string table_name) {
  MATE_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ParseCsv(content, table_name.empty() ? path : std::move(table_name));
}

std::string ToCsv(const Table& table) {
  std::string out;
  for (ColumnId c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out.push_back(',');
    AppendCsvField(&out, table.column_name(c));
  }
  out.push_back('\n');
  for (RowId r = 0; r < table.NumRows(); ++r) {
    if (table.IsRowDeleted(r)) continue;
    for (ColumnId c = 0; c < table.NumColumns(); ++c) {
      if (c > 0) out.push_back(',');
      AppendCsvField(&out, table.cell(r, c));
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace mate
