// Runtime-dispatched SIMD kernels for the discovery hot path. MATE (§6.3)
// spends its inner loop on the super-key masking test — (q & ~row) == 0
// over 1-8 words — and on the BitVector word sweeps behind it; these
// kernels vectorize exactly those sweeps.
//
// Dispatch policy:
//
//   * Three implementations are always *compiled*: a scalar reference,
//     an SSE2 variant, and an AVX2 variant (the x86 variants only on x86;
//     elsewhere every level aliases the scalar table). The best level the
//     host supports is *selected* once, at first use, via cpuid
//     (__builtin_cpu_supports) into one function-pointer table.
//   * `MATE_FORCE_SCALAR` (any non-empty value but "0") in the environment
//     at first use — or ForceScalar(true) / SessionOptions::
//     force_scalar_kernels at any point — pins the scalar reference table,
//     so sanitizer builds, non-x86 targets, and differential tests all run
//     the identical code path the SIMD variants are checked against.
//   * Selection is process-global (the kernels are pure functions of their
//     inputs; every level computes bit-identical results — pinned by
//     tests/simd_test.cpp), and reads are one relaxed atomic load, so the
//     per-call overhead is a pointer chase.
//
// Callers: BitVector's word sweeps (util/bitvector.h), SuperKeyStore's
// single and batched probes (index/superkey_store.h), and through them the
// executor's row loop (core/query_executor.cpp).

#ifndef MATE_UTIL_SIMD_H_
#define MATE_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace mate {
namespace simd {

enum class KernelLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// One resolved set of kernels. All word counts are in 64-bit words; every
/// function tolerates n == 0. The batch probe's `rows` are row ids into a
/// flat slab `base` where row r's words live at base + r * words.
struct KernelTable {
  /// (q & ~row) == 0 over words [0, n) — the §6.3 containment test.
  bool (*covers)(const uint64_t* q, const uint64_t* row, size_t n);
  /// (a & ~b) != 0 for at least one word — the complement of covers.
  bool (*and_not_any)(const uint64_t* a, const uint64_t* b, size_t n);
  /// Bit i of the result is covers(q, base + rows[i] * words, words).
  /// Precondition: count <= 32 (the mask is 32 bits wide).
  uint32_t (*covers_batch)(const uint64_t* q, const uint64_t* base,
                           const uint32_t* rows, size_t words, size_t count);
  /// a[w] |= b[w] over words [0, n).
  void (*or_words)(uint64_t* a, const uint64_t* b, size_t n);
  /// a[w] &= b[w] over words [0, n).
  void (*and_words)(uint64_t* a, const uint64_t* b, size_t n);
  /// Total set bits over words [0, n).
  uint64_t (*popcount)(const uint64_t* a, size_t n);
  /// True iff every word in [0, n) is zero.
  bool (*is_zero)(const uint64_t* a, size_t n);

  KernelLevel level;
  const char* name;  // "scalar" / "sse2" / "avx2"
};

/// The active table: resolved on first call (cpuid + MATE_FORCE_SCALAR),
/// then one relaxed atomic load per call.
const KernelTable& Kernels();

/// The always-compiled scalar reference table (differential tests compare
/// every other level against it).
const KernelTable& ScalarKernels();

/// The table for `level`, degrading to the best *compiled-and-supported*
/// level at or below it (kScalar when the host lacks x86 SIMD entirely).
const KernelTable& TableForLevel(KernelLevel level);

/// Best level this host supports (kScalar off x86).
KernelLevel DetectLevel();

/// Level of the currently active table.
KernelLevel ActiveLevel();

const char* LevelName(KernelLevel level);

/// true pins the scalar reference table; false re-selects DetectLevel().
/// Process-global — it swaps the table every BitVector/SuperKeyStore call
/// dispatches through. Safe to toggle between queries (the levels compute
/// identical results, so even a mid-query toggle only changes speed).
void ForceScalar(bool on);

}  // namespace simd
}  // namespace mate

#endif  // MATE_UTIL_SIMD_H_
