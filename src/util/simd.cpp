#include "util/simd.h"

#include <atomic>
#include <cstdlib>

// x86 SIMD variants are compiled whenever a GNU-flavored compiler targets
// x86: per-function target attributes let one translation unit carry SSE2
// and AVX2 code without raising the global -m baseline, and the dispatcher
// below only *selects* what cpuid reports. Everything else (non-x86, other
// compilers) runs the scalar reference.
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define MATE_SIMD_X86 1
#include <immintrin.h>
#else
#define MATE_SIMD_X86 0
#endif

namespace mate {
namespace simd {

namespace {

// ------------------------------------------------------------ scalar ----
// The reference implementations every other level is differentially tested
// against (tests/simd_test.cpp). Raw-pointer sweeps, no per-word accessor
// calls.

bool CoversScalar(const uint64_t* q, const uint64_t* row, size_t n) {
  for (size_t w = 0; w < n; ++w) {
    if ((q[w] & ~row[w]) != 0) return false;
  }
  return true;
}

bool AndNotAnyScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  return !CoversScalar(a, b, n);
}

uint32_t CoversBatchScalar(const uint64_t* q, const uint64_t* base,
                           const uint32_t* rows, size_t words, size_t count) {
  uint32_t mask = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t* row = base + static_cast<size_t>(rows[i]) * words;
    if (CoversScalar(q, row, words)) mask |= uint32_t{1} << i;
  }
  return mask;
}

void OrWordsScalar(uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t w = 0; w < n; ++w) a[w] |= b[w];
}

void AndWordsScalar(uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t w = 0; w < n; ++w) a[w] &= b[w];
}

uint64_t PopcountScalar(const uint64_t* a, size_t n) {
  uint64_t total = 0;
  for (size_t w = 0; w < n; ++w) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[w]));
  }
  return total;
}

bool IsZeroScalar(const uint64_t* a, size_t n) {
  for (size_t w = 0; w < n; ++w) {
    if (a[w] != 0) return false;
  }
  return true;
}

constexpr KernelTable kScalarTable = {
    CoversScalar,   AndNotAnyScalar, CoversBatchScalar,   OrWordsScalar,
    AndWordsScalar, PopcountScalar,  IsZeroScalar,
    KernelLevel::kScalar, "scalar"};

#if MATE_SIMD_X86

// -------------------------------------------------------------- SSE2 ----
// 128-bit sweeps. SSE2 has no PTEST, so zero checks go through a byte
// compare + movemask.

__attribute__((target("sse2"))) inline bool IsZero128Sse2(__m128i v) {
  const __m128i eq = _mm_cmpeq_epi8(v, _mm_setzero_si128());
  return _mm_movemask_epi8(eq) == 0xFFFF;
}

__attribute__((target("sse2"))) bool CoversSse2(const uint64_t* q,
                                                const uint64_t* row,
                                                size_t n) {
  size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    const __m128i vq =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + w));
    const __m128i vr =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + w));
    // andnot(a, b) = ~a & b: the uncovered query bits of this chunk.
    if (!IsZero128Sse2(_mm_andnot_si128(vr, vq))) return false;
  }
  if (w < n && (q[w] & ~row[w]) != 0) return false;
  return true;
}

__attribute__((target("sse2"))) bool AndNotAnySse2(const uint64_t* a,
                                                   const uint64_t* b,
                                                   size_t n) {
  return !CoversSse2(a, b, n);
}

__attribute__((target("sse2"))) uint32_t CoversBatchSse2(
    const uint64_t* q, const uint64_t* base, const uint32_t* rows,
    size_t words, size_t count) {
  uint32_t mask = 0;
  if (words == 2) {
    // The paper's default 128-bit keys: the query loads once, each row is
    // one load + andnot + zero test.
    const __m128i vq = _mm_loadu_si128(reinterpret_cast<const __m128i*>(q));
    for (size_t i = 0; i < count; ++i) {
      const uint64_t* row = base + static_cast<size_t>(rows[i]) * 2;
      const __m128i vr =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
      if (IsZero128Sse2(_mm_andnot_si128(vr, vq))) mask |= uint32_t{1} << i;
    }
    return mask;
  }
  for (size_t i = 0; i < count; ++i) {
    const uint64_t* row = base + static_cast<size_t>(rows[i]) * words;
    if (CoversSse2(q, row, words)) mask |= uint32_t{1} << i;
  }
  return mask;
}

__attribute__((target("sse2"))) void OrWordsSse2(uint64_t* a,
                                                 const uint64_t* b,
                                                 size_t n) {
  size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<__m128i*>(a + w));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + w));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + w),
                     _mm_or_si128(va, vb));
  }
  if (w < n) a[w] |= b[w];
}

__attribute__((target("sse2"))) void AndWordsSse2(uint64_t* a,
                                                  const uint64_t* b,
                                                  size_t n) {
  size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<__m128i*>(a + w));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + w));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + w),
                     _mm_and_si128(va, vb));
  }
  if (w < n) a[w] &= b[w];
}

__attribute__((target("sse2"))) bool IsZeroSse2(const uint64_t* a, size_t n) {
  size_t w = 0;
  for (; w + 2 <= n; w += 2) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + w));
    if (!IsZero128Sse2(va)) return false;
  }
  return w >= n || a[w] == 0;
}

constexpr KernelTable kSse2Table = {
    CoversSse2,   AndNotAnySse2, CoversBatchSse2,   OrWordsSse2,
    AndWordsSse2, PopcountScalar, IsZeroSse2,
    KernelLevel::kSse2, "sse2"};

// -------------------------------------------------------------- AVX2 ----
// 256-bit sweeps. VPTEST's carry flag gives the containment test directly:
// testc(row, q) sets CF iff (~row & q) == 0 — one instruction per 4-word
// chunk. -mavx2 also implies POPCNT, so the popcount sweep compiles to the
// hardware instruction here (the baseline build's __builtin_popcountll
// expands to bit twiddling).

__attribute__((target("avx2"))) bool CoversAvx2(const uint64_t* q,
                                                const uint64_t* row,
                                                size_t n) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i vq =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + w));
    const __m256i vr =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w));
    if (!_mm256_testc_si256(vr, vq)) return false;
  }
  if (w + 2 <= n) {
    const __m128i vq =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + w));
    const __m128i vr =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + w));
    if (!_mm_testc_si128(vr, vq)) return false;
    w += 2;
  }
  if (w < n && (q[w] & ~row[w]) != 0) return false;
  return true;
}

__attribute__((target("avx2"))) bool AndNotAnyAvx2(const uint64_t* a,
                                                   const uint64_t* b,
                                                   size_t n) {
  return !CoversAvx2(a, b, n);
}

__attribute__((target("avx2"))) uint32_t CoversBatchAvx2(
    const uint64_t* q, const uint64_t* base, const uint32_t* rows,
    size_t words, size_t count) {
  uint32_t mask = 0;
  switch (words) {
    case 2: {
      // Two 128-bit keys per 256-bit op: rows i and i+1 land in the two
      // lanes, andnot finds uncovered query bits, a per-64-bit-lane zero
      // compare + movemask yields both verdicts without flag round-trips.
      const __m256i vq2 = _mm256_broadcastsi128_si256(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q)));
      const __m256i zero = _mm256_setzero_si256();
      size_t i = 0;
      for (; i + 4 <= count; i += 4) {
        const __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
            base + static_cast<size_t>(rows[i]) * 2));
        const __m128i r1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
            base + static_cast<size_t>(rows[i + 1]) * 2));
        const __m128i r2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
            base + static_cast<size_t>(rows[i + 2]) * 2));
        const __m128i r3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
            base + static_cast<size_t>(rows[i + 3]) * 2));
        const __m256i miss01 =
            _mm256_andnot_si256(_mm256_set_m128i(r1, r0), vq2);
        const __m256i miss23 =
            _mm256_andnot_si256(_mm256_set_m128i(r3, r2), vq2);
        // zeros bits 2k..2k+1 = row i+k's words; a row is covered iff both
        // of its words missed nothing.
        const unsigned zeros =
            static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(
                _mm256_cmpeq_epi64(miss01, zero)))) |
            (static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(
                 _mm256_cmpeq_epi64(miss23, zero))))
             << 4);
        const unsigned both = zeros & (zeros >> 1);  // bits 0,2,4,6
        mask |= ((both & 1u) | ((both >> 1) & 2u) | ((both >> 2) & 4u) |
                 ((both >> 3) & 8u))
                << i;
      }
      for (; i + 2 <= count; i += 2) {
        const __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
            base + static_cast<size_t>(rows[i]) * 2));
        const __m128i r1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
            base + static_cast<size_t>(rows[i + 1]) * 2));
        const __m256i miss =
            _mm256_andnot_si256(_mm256_set_m128i(r1, r0), vq2);
        const unsigned zeros =
            static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(miss, zero))));
        const unsigned both = zeros & (zeros >> 1);
        mask |= ((both & 1u) | ((both >> 1) & 2u)) << i;
      }
      if (i < count) {
        const __m128i vr = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
            base + static_cast<size_t>(rows[i]) * 2));
        mask |= static_cast<uint32_t>(
                    _mm_testc_si128(vr, _mm256_castsi256_si128(vq2)))
                << i;
      }
      return mask;
    }
    case 4: {
      const __m256i vq =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q));
      for (size_t i = 0; i < count; ++i) {
        const uint64_t* row = base + static_cast<size_t>(rows[i]) * 4;
        const __m256i vr =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row));
        mask |= static_cast<uint32_t>(_mm256_testc_si256(vr, vq)) << i;
      }
      return mask;
    }
    case 8: {
      const __m256i vq0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q));
      const __m256i vq1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + 4));
      for (size_t i = 0; i < count; ++i) {
        const uint64_t* row = base + static_cast<size_t>(rows[i]) * 8;
        const __m256i vr0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row));
        const __m256i vr1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 4));
        mask |= static_cast<uint32_t>(_mm256_testc_si256(vr0, vq0) &
                                      _mm256_testc_si256(vr1, vq1))
                << i;
      }
      return mask;
    }
    default:
      for (size_t i = 0; i < count; ++i) {
        const uint64_t* row = base + static_cast<size_t>(rows[i]) * words;
        if (CoversAvx2(q, row, words)) mask |= uint32_t{1} << i;
      }
      return mask;
  }
}

__attribute__((target("avx2"))) void OrWordsAvx2(uint64_t* a,
                                                 const uint64_t* b,
                                                 size_t n) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + w),
                        _mm256_or_si256(va, vb));
  }
  for (; w < n; ++w) a[w] |= b[w];
}

__attribute__((target("avx2"))) void AndWordsAvx2(uint64_t* a,
                                                  const uint64_t* b,
                                                  size_t n) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + w),
                        _mm256_and_si256(va, vb));
  }
  for (; w < n; ++w) a[w] &= b[w];
}

__attribute__((target("avx2,popcnt"))) uint64_t PopcountAvx2(
    const uint64_t* a, size_t n) {
  uint64_t total = 0;
  for (size_t w = 0; w < n; ++w) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[w]));
  }
  return total;
}

__attribute__((target("avx2"))) bool IsZeroAvx2(const uint64_t* a, size_t n) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    if (!_mm256_testz_si256(va, va)) return false;
  }
  for (; w < n; ++w) {
    if (a[w] != 0) return false;
  }
  return true;
}

constexpr KernelTable kAvx2Table = {
    CoversAvx2,   AndNotAnyAvx2, CoversBatchAvx2,   OrWordsAvx2,
    AndWordsAvx2, PopcountAvx2,  IsZeroAvx2,
    KernelLevel::kAvx2, "avx2"};

#endif  // MATE_SIMD_X86

// --------------------------------------------------------- dispatcher ----

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* ResolveActive() {
  KernelLevel level = DetectLevel();
  const char* env = std::getenv("MATE_FORCE_SCALAR");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    level = KernelLevel::kScalar;
  }
  const KernelTable* resolved = &TableForLevel(level);
  // First resolver wins; a concurrent ForceScalar store is never clobbered.
  const KernelTable* expected = nullptr;
  g_active.compare_exchange_strong(expected, resolved,
                                   std::memory_order_acq_rel);
  return g_active.load(std::memory_order_relaxed);
}

}  // namespace

const KernelTable& ScalarKernels() { return kScalarTable; }

const KernelTable& TableForLevel(KernelLevel level) {
#if MATE_SIMD_X86
  const KernelLevel best = DetectLevel();
  if (level >= KernelLevel::kAvx2 && best >= KernelLevel::kAvx2) {
    return kAvx2Table;
  }
  if (level >= KernelLevel::kSse2 && best >= KernelLevel::kSse2) {
    return kSse2Table;
  }
#else
  (void)level;
#endif
  return kScalarTable;
}

KernelLevel DetectLevel() {
#if MATE_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return KernelLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return KernelLevel::kSse2;
#endif
  return KernelLevel::kScalar;
}

const KernelTable& Kernels() {
  const KernelTable* table = g_active.load(std::memory_order_relaxed);
  if (table != nullptr) return *table;
  return *ResolveActive();
}

KernelLevel ActiveLevel() { return Kernels().level; }

const char* LevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kSse2:
      return "sse2";
    case KernelLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

void ForceScalar(bool on) {
  g_active.store(on ? &kScalarTable : &TableForLevel(DetectLevel()),
                 std::memory_order_release);
}

}  // namespace simd
}  // namespace mate
