// String helpers shared across the storage, hash, and workload layers.
// NormalizeValue defines the canonical cell-value form used both at indexing
// time and at query time, so equi-join semantics are consistent everywhere.

#ifndef MATE_UTIL_STRING_UTIL_H_
#define MATE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mate {

/// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Canonical form of a cell value for indexing and joining: trimmed and
/// ASCII-lowercased (the paper's corpora are case-folded the same way).
std::string NormalizeValue(std::string_view raw);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` consists only of ASCII digits (and is non-empty).
bool IsAllDigits(std::string_view s);

/// Strict parse of a small non-negative integer flag: digits only, no sign,
/// value <= `max`. Returns false (leaving *out untouched) on garbage,
/// overflow, or out-of-range input — never throws. Shared by the CLI and
/// bench flag parsers so validation policy cannot drift between them.
bool ParseSmallUint(std::string_view s, unsigned max, unsigned* out);

/// True iff NormalizeValue(raw) == normalized, computed without allocating.
/// `normalized` must already be in canonical form. This is the exact-match
/// predicate of the joinability verification hot path.
bool NormalizedEquals(std::string_view normalized, std::string_view raw);

/// Printable "a|b|c" rendering of a composite key, used in examples/benches.
std::string FormatKeyCombo(const std::vector<std::string>& values);

}  // namespace mate

#endif  // MATE_UTIL_STRING_UTIL_H_
