// HDR-style latency histogram: fixed-size log-bucketed counters with
// bounded relative error, built for open-loop load generators and serving
// stats where per-sample storage (and a sort per percentile query) would
// distort the measurement. Values are plain uint64 (the callers record
// microseconds); values below kUnitBuckets are exact, larger values land in
// power-of-two octaves split into kSubBucketsPerOctave linear sub-buckets,
// so Percentile() over-reports by at most 1/kSubBucketsPerOctave (~6.3%).
//
// Record is cheap (a few shifts plus one increment) and the whole state is
// a flat array, so per-thread histograms Merge() losslessly — the pattern
// the tail-latency bench uses: one histogram per client connection, merged
// after the run. Not internally synchronized.

#ifndef MATE_UTIL_LATENCY_HISTOGRAM_H_
#define MATE_UTIL_LATENCY_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace mate {

class LatencyHistogram {
 public:
  /// Values in [0, kUnitBuckets) are recorded exactly.
  static constexpr uint64_t kUnitBuckets = 32;
  /// Linear sub-buckets per power-of-two octave above the exact range.
  static constexpr uint64_t kSubBucketsPerOctave = 16;

  LatencyHistogram() = default;

  /// Records one sample. Never fails: the top octave's sub-buckets cover
  /// the full uint64 range.
  void Record(uint64_t value);

  /// Adds every sample of `other` into this histogram (lossless: the two
  /// histograms share the same fixed bucket layout).
  void Merge(const LatencyHistogram& other);

  /// Nearest-rank percentile (the PercentileSorted definition in
  /// util/math_util.h): the bucket holding the sample of rank
  /// clamp(ceil(p * count), 1, count), reported as that bucket's inclusive
  /// upper bound clamped to max() — exact below kUnitBuckets, otherwise an
  /// over-estimate by at most one sub-bucket width (and never above the
  /// largest recorded value). Returns 0 on an empty histogram; `p` is
  /// clamped to [0, 1].
  uint64_t Percentile(double p) const;

  /// Cumulative count of samples whose *bucket* upper bound is <= `value`
  /// — the Prometheus `le` bucket count for this histogram's layout. Exact
  /// below kUnitBuckets; above, a sample within 1/kSubBucketsPerOctave of
  /// `value` may be attributed to the next boundary up (the same bounded
  /// skew Percentile() carries).
  uint64_t CountAtOrBelow(uint64_t value) const;

  uint64_t count() const { return count_; }
  /// Smallest / largest raw value recorded (0 when empty).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  /// Exact mean of the raw values (0.0 when empty).
  double Mean() const;
  /// Exact sum of the raw values (0.0 when empty).
  double Sum() const { return sum_; }

  /// "count=N min=A p50=B p90=C p99=D p99.9=E max=F" — the serving stats
  /// line. Values are rendered as plain integers in the recorded unit.
  std::string ToString() const;

 private:
  // Bucket 0..31 are exact; octave m in [5, 63] contributes 16 sub-buckets.
  static constexpr size_t kNumBuckets =
      kUnitBuckets + (64 - 5) * kSubBucketsPerOctave;

  static size_t BucketIndex(uint64_t value);
  /// Inclusive upper bound of bucket `index`.
  static uint64_t BucketUpperBound(size_t index);

  std::array<uint64_t, kNumBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace mate

#endif  // MATE_UTIL_LATENCY_HISTOGRAM_H_
