// Work-stealing thread pool for fan-out over independent tasks (batch
// discovery, parallel index passes). Each worker owns a deque; Submit
// round-robins tasks across workers, and an idle worker steals from the
// front of a sibling's deque. Tasks here are coarse (one discovery query,
// one table's hashing pass), so per-deque mutexes — not lock-free deques —
// are plenty.
//
// Follows the `num_threads` convention of IndexBuildOptions: 0 means
// hardware concurrency, 1 means a degenerate pool whose Submit runs the
// task inline on the calling thread (fully serial, no worker threads).

#ifndef MATE_UTIL_THREAD_POOL_H_
#define MATE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mate {

/// One-shot countdown latch: Wait blocks until CountDown has been called
/// `count` times. Session's phased open arms one with count 1 — the loader
/// task counts it down when postings and super keys are resident, and every
/// query path waits on it before touching the index. Writes made before
/// CountDown are visible to threads returning from Wait/TryWait. Unlike
/// std::latch, TryWait is a reliable non-blocking probe (no spurious
/// failures), which readiness status lines rely on.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  /// Decrements the count (saturating at zero); wakes waiters at zero.
  void CountDown();

  /// Blocks until the count reaches zero.
  void Wait() const;

  /// True iff the count has reached zero; never blocks.
  bool TryWait() const;

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  size_t count_;
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency; 1 = inline
  /// execution, no threads). Workers live until destruction.
  explicit ThreadPool(unsigned num_threads);

  /// Drains remaining tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. Tasks must not throw. With one thread, runs `task`
  /// before returning.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Worker count after the 0 -> hardware-concurrency resolution; >= 1.
  unsigned num_threads() const { return num_threads_; }

  /// Convenience: runs `fn(i)` for i in [0, n) across `num_threads` workers
  /// (same 0/1 convention) and waits for completion.
  static void ParallelFor(unsigned num_threads, size_t n,
                          const std::function<void(size_t)>& fn);

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(unsigned self);
  /// Pops from own back, else steals from a sibling's front.
  bool TryPop(unsigned self, std::function<void()>* task);

  unsigned num_threads_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Guards queued_/stop_ for sleeping workers and finished-counting for
  // Wait(); coarse, but tasks are millisecond-scale so it never contends.
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers sleep here
  std::condition_variable done_cv_;   // Wait() sleeps here
  size_t queued_ = 0;     // submitted, not yet popped
  size_t in_flight_ = 0;  // submitted, not yet finished
  size_t next_queue_ = 0;
  bool stop_ = false;
};

}  // namespace mate

#endif  // MATE_UTIL_THREAD_POOL_H_
