// Deterministic random number generation. Every workload generator and bench
// seeds an Rng explicitly so that experiment outputs are reproducible.

#ifndef MATE_UTIL_RNG_H_
#define MATE_UTIL_RNG_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace mate {

/// SplitMix64 single-step mixer; used both as a seed expander and as the
/// cheap integer mixer inside hash adapters.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// A seeded PRNG with convenience draws. Thin wrapper over mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(SplitMix64(seed)) {}

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Raw 64 random bits.
  uint64_t NextUint64() { return engine_(); }

  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// A reference to an element chosen uniformly. Precondition: !v.empty().
  template <typename T>
  const T& PickOne(const std::vector<T>& v) {
    assert(!v.empty());
    return v[Uniform(v.size())];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mate

#endif  // MATE_UTIL_RNG_H_
