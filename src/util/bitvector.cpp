#include "util/bitvector.h"

#include <algorithm>

#include "util/coding.h"

namespace mate {

namespace {

// Extracts `len` bits starting at `start` into a word array aligned at bit 0.
void ExtractRange(const BitVector& v, size_t start, size_t len,
                  std::array<uint64_t, BitVector::kMaxWords>* out) {
  out->fill(0);
  for (size_t i = 0; i < len; ++i) {
    if (v.TestBit(start + i)) {
      (*out)[i / 64] |= uint64_t{1} << (i % 64);
    }
  }
}

}  // namespace

void BitVector::RotateRangeLeft(size_t start, size_t len, size_t k) {
  assert(start + len <= num_bits_);
  if (len == 0) return;
  k %= len;
  if (k == 0) return;

  // The range is small (at most 512 bits) and rotation happens once per
  // hashed value, so a bit-at-a-time extract/write keeps this obviously
  // correct; the hot path (IsSubsetOf) never rotates.
  std::array<uint64_t, kMaxWords> src;
  ExtractRange(*this, start, len, &src);
  for (size_t i = 0; i < len; ++i) {
    size_t from = (i + k) % len;
    bool bit = (src[from / 64] >> (from % 64)) & 1;
    if (bit) {
      SetBit(start + i);
    } else {
      ClearBit(start + i);
    }
  }
}

std::string BitVector::ToBinaryString() const {
  std::string out;
  out.reserve(num_bits_);
  for (size_t i = 0; i < num_bits_; ++i) out.push_back(TestBit(i) ? '1' : '0');
  return out;
}

std::string BitVector::ToHexString() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(num_words_ * 16);
  for (size_t w = 0; w < num_words_; ++w) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(kHex[(words_[w] >> shift) & 0xF]);
    }
  }
  return out;
}

Result<BitVector> BitVector::FromBinaryString(std::string_view bits) {
  if (bits.size() > kMaxBits) {
    return Status::InvalidArgument("bit string longer than kMaxBits");
  }
  BitVector v(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      v.SetBit(i);
    } else if (bits[i] != '0') {
      return Status::InvalidArgument("bit string may contain only 0 and 1");
    }
  }
  return v;
}

void BitVector::AppendToString(std::string* out) const {
  PutVarint64(out, num_bits_);
  for (size_t w = 0; w < num_words_; ++w) PutFixed64(out, words_[w]);
}

Result<BitVector> BitVector::ParseFrom(std::string_view* input) {
  uint64_t num_bits = 0;
  if (!GetVarint64(input, &num_bits)) {
    return Status::Corruption("BitVector: bad width varint");
  }
  if (num_bits > kMaxBits) {
    return Status::Corruption("BitVector: width exceeds kMaxBits");
  }
  BitVector v(static_cast<size_t>(num_bits));
  for (size_t w = 0; w < v.num_words(); ++w) {
    uint64_t word = 0;
    if (!GetFixed64(input, &word)) {
      return Status::Corruption("BitVector: truncated words");
    }
    v.words_[w] = word;
  }
  v.MaskTail();
  return v;
}

}  // namespace mate
