// Combinatorics used by the XASH parameterization (Equations 5 and 6) and by
// the joinability analysis (Equation 3).

#ifndef MATE_UTIL_MATH_UTIL_H_
#define MATE_UTIL_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>

namespace mate {

/// ln C(n, k); 0 when k == 0 or k == n, -inf when k > n.
double LogBinomial(size_t n, size_t k);

/// Equation 5: the minimum number of 1-bits alpha such that
/// C(hash_bits, alpha) > unique_values. For 128 bits and 700M uniques this
/// is 6, matching §5.3.1. Returns at least 2 (one length bit plus one
/// character bit) and at most hash_bits.
int OptimalOnesCount(size_t hash_bits, uint64_t unique_values);

/// Equation 6: the largest beta with alphabet_size * beta < hash_bits
/// (128 -> 3, 256 -> 6, 512 -> 13 for the 37-symbol alphabet).
size_t XashBeta(size_t hash_bits, size_t alphabet_size = 37);

/// Equation 3: number of size-k ordered column mappings out of n columns,
/// n!/(n-k)!, saturating at UINT64_MAX.
uint64_t PermutationCount(size_t n, size_t k);

}  // namespace mate

#endif  // MATE_UTIL_MATH_UTIL_H_
