// Combinatorics used by the XASH parameterization (Equations 5 and 6) and by
// the joinability analysis (Equation 3), plus the percentile definition the
// batch-latency stats use.

#ifndef MATE_UTIL_MATH_UTIL_H_
#define MATE_UTIL_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mate {

/// ln C(n, k); 0 when k == 0 or k == n, -inf when k > n.
double LogBinomial(size_t n, size_t k);

/// Equation 5: the minimum number of 1-bits alpha such that
/// C(hash_bits, alpha) > unique_values. For 128 bits and 700M uniques this
/// is 6, matching §5.3.1. Returns at least 2 (one length bit plus one
/// character bit) and at most hash_bits.
int OptimalOnesCount(size_t hash_bits, uint64_t unique_values);

/// Equation 6: the largest beta with alphabet_size * beta < hash_bits
/// (128 -> 3, 256 -> 6, 512 -> 13 for the 37-symbol alphabet).
size_t XashBeta(size_t hash_bits, size_t alphabet_size = 37);

/// Equation 3: number of size-k ordered column mappings out of n columns,
/// n!/(n-k)!, saturating at UINT64_MAX.
uint64_t PermutationCount(size_t n, size_t k);

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// element whose rank r (1-based) satisfies r >= p * n, i.e.
/// sorted[clamp(ceil(p * n), 1, n) - 1]. Always returns an actual sample
/// value — no interpolation — so tiny batches have defined behavior:
///   n == 0 -> 0.0 (no data);
///   n == 1 -> the sample, for every p;
///   n == 2 -> p <= 0.5 picks sorted[0], p > 0.5 picks sorted[1].
/// `p` is clamped to [0, 1]; p == 0 picks the minimum, p == 1 the maximum.
double PercentileSorted(const std::vector<double>& sorted, double p);

}  // namespace mate

#endif  // MATE_UTIL_MATH_UTIL_H_
