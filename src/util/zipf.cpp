#include "util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mate {

ZipfDistribution::ZipfDistribution(size_t n, double s) : n_(n), s_(s) {
  assert(n > 0);
  assert(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (size_t k = 0; k < n; ++k) cdf_[k] /= total;
  cdf_[n - 1] = 1.0;  // guard against rounding
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(size_t rank) const {
  assert(rank < n_);
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace mate
