// Bounded top-k collector keyed by a score (higher is better). Ties break
// toward the smaller id so that discovery results are deterministic across
// systems and runs. This is the TOPK heap of Algorithm 1.

#ifndef MATE_UTIL_TOPK_HEAP_H_
#define MATE_UTIL_TOPK_HEAP_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace mate {

template <typename Id>
class TopKHeap {
 public:
  struct Entry {
    Id id;
    int64_t score;
  };

  explicit TopKHeap(size_t k) : k_(k) { assert(k > 0); }

  /// Offers (id, score); keeps it iff it beats the current k-th entry.
  /// Returns true if the entry was kept.
  bool Add(Id id, int64_t score) {
    if (entries_.size() < k_) {
      entries_.push_back({id, score});
      std::push_heap(entries_.begin(), entries_.end(), WorseOnTop);
      return true;
    }
    if (!Beats({id, score}, entries_.front())) return false;
    std::pop_heap(entries_.begin(), entries_.end(), WorseOnTop);
    entries_.back() = {id, score};
    std::push_heap(entries_.begin(), entries_.end(), WorseOnTop);
    return true;
  }

  bool Full() const { return entries_.size() >= k_; }
  size_t size() const { return entries_.size(); }
  size_t k() const { return k_; }

  /// Joinability of the worst kept table (the paper's j_k). The table-filter
  /// rules of §6.2 only apply once the heap is full; callers must check
  /// Full() first.
  int64_t KthScore() const {
    assert(Full());
    return entries_.front().score;
  }

  /// Entries ordered best-first (score desc, id asc).
  std::vector<Entry> SortedDesc() const {
    std::vector<Entry> sorted = entries_;
    std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.id < b.id;
    });
    return sorted;
  }

 private:
  // True iff `a` ranks strictly better than `b`.
  static bool Beats(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  }

  // Heap comparator keeping the *worst* entry on top.
  static bool WorseOnTop(const Entry& a, const Entry& b) {
    return Beats(a, b);
  }

  size_t k_;
  std::vector<Entry> entries_;
};

}  // namespace mate

#endif  // MATE_UTIL_TOPK_HEAP_H_
