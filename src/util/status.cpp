#include "util/status.h"

namespace mate {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace mate
