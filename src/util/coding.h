// Little-endian fixed-width and varint encoding (RocksDB-style coding.h),
// used by the corpus and index serialization layers.

#ifndef MATE_UTIL_CODING_H_
#define MATE_UTIL_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace mate {

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

/// Appends an LEB128 varint (1-5 bytes for 32-bit, 1-10 for 64-bit).
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Appends varint32 length followed by the bytes.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Each Get* consumes bytes from the front of `*input` on success and
/// returns false (leaving `*input` unspecified) on underflow/overflow.
bool GetFixed32(std::string_view* input, uint32_t* value);
bool GetFixed64(std::string_view* input, uint64_t* value);
bool GetVarint32(std::string_view* input, uint32_t* value);
bool GetVarint64(std::string_view* input, uint64_t* value);
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

/// Number of bytes PutVarint64 would append.
size_t VarintLength(uint64_t value);

}  // namespace mate

#endif  // MATE_UTIL_CODING_H_
