#include "util/char_frequency.h"

#include <algorithm>
#include <cctype>
#include <numeric>

namespace mate {

int NormalizeChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  if (u >= 'a' && u <= 'z') return u - 'a';
  if (u >= 'A' && u <= 'Z') return u - 'A';
  if (u >= '0' && u <= '9') return 26 + (u - '0');
  return kOtherCharId;
}

char AlphabetSymbol(int id) {
  if (id >= 0 && id < 26) return static_cast<char>('a' + id);
  if (id >= 26 && id < 36) return static_cast<char>('0' + (id - 26));
  return '*';
}

CharFrequencyTable::CharFrequencyTable(
    const std::array<double, kAlphabetSize>& freq)
    : freq_(freq) {
  std::array<int, kAlphabetSize> order;
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (freq_[a] != freq_[b]) return freq_[a] > freq_[b];
    return a < b;
  });
  for (int pos = 0; pos < kAlphabetSize; ++pos) rank_[order[pos]] = pos;
}

const CharFrequencyTable& CharFrequencyTable::English() {
  // Letter percentages from standard English frequency tables; digits and
  // the catch-all bucket get flat mid-range mass typical of web tables.
  static const CharFrequencyTable* kTable = [] {
    std::array<double, kAlphabetSize> f{};
    constexpr double kLetters[26] = {
        8.17,  /* a */ 1.49, /* b */ 2.78, /* c */ 4.25,  /* d */
        12.70, /* e */ 2.23, /* f */ 2.02, /* g */ 6.09,  /* h */
        6.97,  /* i */ 0.15, /* j */ 0.77, /* k */ 4.03,  /* l */
        2.41,  /* m */ 6.75, /* n */ 7.51, /* o */ 1.93,  /* p */
        0.10,  /* q */ 5.99, /* r */ 6.33, /* s */ 9.06,  /* t */
        2.76,  /* u */ 0.98, /* v */ 2.36, /* w */ 0.15,  /* x */
        1.97,  /* y */ 0.07 /* z */};
    for (int i = 0; i < 26; ++i) f[i] = kLetters[i];
    for (int d = 0; d < 10; ++d) f[26 + d] = 1.20;  // digits
    f[kOtherCharId] = 2.50;                         // space & punctuation
    return new CharFrequencyTable(f);
  }();
  return *kTable;
}

CharFrequencyTable CharFrequencyTable::FromCounts(
    const std::array<uint64_t, kAlphabetSize>& counts) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  std::array<double, kAlphabetSize> f{};
  constexpr double kEpsilon = 1e-9;
  for (int i = 0; i < kAlphabetSize; ++i) {
    f[i] = total == 0
               ? kEpsilon
               : std::max(kEpsilon, static_cast<double>(counts[i]) /
                                        static_cast<double>(total));
  }
  return CharFrequencyTable(f);
}

void CharFrequencyTable::CountCharacters(
    std::string_view value, std::array<uint64_t, kAlphabetSize>* counts) {
  for (char c : value) ++(*counts)[NormalizeChar(c)];
}

}  // namespace mate
