// Read-only whole-file mapping with a read-copy fallback. The phased index
// loader maps its file so a cold start faults pages in lazily while the
// parser streams through them, instead of paying an upfront full-file copy
// into a heap buffer (the old ReadFileToString path). Inputs that cannot be
// mapped — non-regular files such as pipes or /proc entries, zero-length
// files, platforms without mmap — transparently fall back to an owned copy
// read through the same handle.

#ifndef MATE_UTIL_MAPPED_FILE_H_
#define MATE_UTIL_MAPPED_FILE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace mate {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only, advising the kernel of sequential access, or
  /// reads it into an owned buffer when mapping is impossible. IOError when
  /// the file cannot be opened or read.
  static Result<MappedFile> Open(const std::string& path);

  /// The file contents; valid until this object is destroyed or moved from.
  std::string_view view() const {
    return is_mapped() ? std::string_view(static_cast<const char*>(addr_),
                                          length_)
                       : std::string_view(fallback_);
  }

  /// True when backed by an mmap (pages fault lazily) rather than the
  /// read-copy fallback.
  bool is_mapped() const { return addr_ != nullptr; }

  size_t size() const { return view().size(); }

  /// Releases the mapping (or the fallback buffer) early; view() becomes
  /// empty. The phased loader calls this once streaming is done so the
  /// address space does not stay pinned for the session's lifetime.
  void Release();

 private:
  void* addr_ = nullptr;
  size_t length_ = 0;
  std::string fallback_;
};

}  // namespace mate

#endif  // MATE_UTIL_MAPPED_FILE_H_
