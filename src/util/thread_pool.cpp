#include "util/thread_pool.h"

namespace mate {

void Latch::CountDown() {
  bool release;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0) --count_;
    release = count_ == 0;
  }
  if (release) cv_.notify_all();
}

void Latch::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return count_ == 0; });
}

bool Latch::TryWait() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0;
}

ThreadPool::ThreadPool(unsigned num_threads) : num_threads_(num_threads) {
  if (num_threads_ == 0) num_threads_ = std::thread::hardware_concurrency();
  if (num_threads_ == 0) num_threads_ = 1;
  if (num_threads_ == 1) return;  // inline mode: no queues, no workers
  queues_.reserve(num_threads_);
  for (unsigned i = 0; i < num_threads_; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads_);
  for (unsigned i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {  // single-threaded: run inline, stay deterministic
    task();
    return;
  }
  {
    // The deque push happens inside the mu_ section so a worker that
    // observes queued_ > 0 is guaranteed to find the task — no wakeup can
    // land in a push-still-pending window and busy-spin. Lock order is
    // always mu_ -> queue.mu; TryPop takes queue locks without mu_ held.
    std::lock_guard<std::mutex> lock(mu_);
    size_t target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++queued_;
    ++in_flight_;
    std::lock_guard<std::mutex> queue_lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::TryPop(unsigned self, std::function<void()>* task) {
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal oldest-first from siblings, scanning from the next worker over so
  // victims differ across thieves.
  for (unsigned off = 1; off < num_threads_; ++off) {
    WorkerQueue& victim = *queues_[(self + off) % num_threads_];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(unsigned self) {
  for (;;) {
    std::function<void()> task;
    if (TryPop(self, &task)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        --queued_;
      }
      task();
      bool drained;
      {
        std::lock_guard<std::mutex> lock(mu_);
        drained = --in_flight_ == 0;
      }
      if (drained) done_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

void ThreadPool::ParallelFor(unsigned num_threads, size_t n,
                             const std::function<void(size_t)>& fn) {
  ThreadPool pool(num_threads);
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace mate
