#include "util/string_util.h"

#include <cctype>
#include <cstdint>

namespace mate {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string NormalizeValue(std::string_view raw) { return ToLower(Trim(raw)); }

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool ParseSmallUint(std::string_view s, unsigned max, unsigned* out) {
  // Digit-count bound keeps the accumulator below 10^10 < 2^34, so the
  // uint64 arithmetic cannot wrap before the range check.
  if (!IsAllDigits(s) || s.size() > 10) return false;
  uint64_t value = 0;
  for (char c : s) value = value * 10 + static_cast<uint64_t>(c - '0');
  if (value > max) return false;
  *out = static_cast<unsigned>(value);
  return true;
}

bool NormalizedEquals(std::string_view normalized, std::string_view raw) {
  std::string_view trimmed = Trim(raw);
  if (trimmed.size() != normalized.size()) return false;
  for (size_t i = 0; i < trimmed.size(); ++i) {
    char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(trimmed[i])));
    if (c != normalized[i]) return false;
  }
  return true;
}

std::string FormatKeyCombo(const std::vector<std::string>& values) {
  return Join(values, "|");
}

}  // namespace mate
