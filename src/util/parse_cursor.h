// Parse position over one serialized image, shared by the corpus and index
// loaders. Every corruption error names the format, the section being
// parsed, and the byte offset where parsing stopped, so a failure in a
// multi-GB file is actionable instead of "bad file".

#ifndef MATE_UTIL_PARSE_CURSOR_H_
#define MATE_UTIL_PARSE_CURSOR_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace mate {

struct ParseCursor {
  std::string_view remaining;
  const char* base = nullptr;
  size_t image_size = 0;
  /// Format tag for messages, e.g. "index" or "corpus".
  const char* format = "image";
  const char* section = "header";

  size_t offset() const {
    return base == nullptr ? 0
                           : static_cast<size_t>(remaining.data() - base);
  }
  Status Corrupt(const std::string& what) const {
    return Status::Corruption(
        std::string(format) + ": " + what + " (" + section +
        " section, byte offset " + std::to_string(offset()) + " of " +
        std::to_string(image_size) + ")");
  }
};

}  // namespace mate

#endif  // MATE_UTIL_PARSE_CURSOR_H_
