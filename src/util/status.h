// Status / Result error handling in the Arrow/RocksDB idiom: database code
// paths never throw; fallible operations return a Status (or a Result<T>
// carrying either a value or a Status).

#ifndef MATE_UTIL_STATUS_H_
#define MATE_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace mate {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kCorruption,
  kNotSupported,
  kInternal,
  /// A serving front-end refused the request because its admission queue is
  /// full or it is draining for shutdown — the client should back off and
  /// retry, nothing is wrong with the request itself.
  kOverloaded,
};

/// Returns the canonical lowercase name of a status code, e.g. "not found".
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error outcome. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Holds either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (failure). An OK status is a logic error
  /// and is converted to an Internal error to keep the invariant.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOkStatus = Status::OK();
    return ok() ? kOkStatus : std::get<Status>(repr_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok(), otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

// Propagates a non-OK Status to the caller.
#define MATE_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::mate::Status _mate_status = (expr);         \
    if (!_mate_status.ok()) return _mate_status;  \
  } while (false)

#define MATE_CONCAT_IMPL(a, b) a##b
#define MATE_CONCAT(a, b) MATE_CONCAT_IMPL(a, b)

// Evaluates a Result<T> expression; on success binds the value to `lhs`,
// otherwise returns the error Status to the caller.
#define MATE_ASSIGN_OR_RETURN(lhs, expr)                           \
  MATE_ASSIGN_OR_RETURN_IMPL(MATE_CONCAT(_mate_result_, __LINE__), \
                             lhs, expr)

#define MATE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

}  // namespace mate

#endif  // MATE_UTIL_STATUS_H_
