#include "util/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mate {

double LogBinomial(size_t n, size_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

int OptimalOnesCount(size_t hash_bits, uint64_t unique_values) {
  const double log_uniques =
      std::log(static_cast<double>(unique_values > 0 ? unique_values : 1));
  for (size_t alpha = 2; alpha <= hash_bits; ++alpha) {
    if (LogBinomial(hash_bits, alpha) > log_uniques) {
      return static_cast<int>(alpha);
    }
  }
  return static_cast<int>(hash_bits);
}

size_t XashBeta(size_t hash_bits, size_t alphabet_size) {
  if (alphabet_size == 0 || hash_bits <= alphabet_size) return 1;
  size_t beta = (hash_bits - 1) / alphabet_size;
  return beta == 0 ? 1 : beta;
}

double PercentileSorted(const std::vector<double>& sorted, double p) {
  const size_t n = sorted.size();
  if (n == 0) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  size_t rank = static_cast<size_t>(std::ceil(p * static_cast<double>(n)));
  rank = std::min(n, std::max<size_t>(1, rank));
  return sorted[rank - 1];
}

uint64_t PermutationCount(size_t n, size_t k) {
  if (k > n) return 0;
  uint64_t result = 1;
  for (size_t i = 0; i < k; ++i) {
    uint64_t factor = static_cast<uint64_t>(n - i);
    if (result > std::numeric_limits<uint64_t>::max() / factor) {
      return std::numeric_limits<uint64_t>::max();
    }
    result *= factor;
  }
  return result;
}

}  // namespace mate
