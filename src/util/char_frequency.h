// The 37-symbol alphabet of §5.3.2 (a-z, 0-9, plus one bucket for every
// other character) and character-frequency tables used by XASH to pick the
// least frequent characters of a value.

#ifndef MATE_UTIL_CHAR_FREQUENCY_H_
#define MATE_UTIL_CHAR_FREQUENCY_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace mate {

/// Number of character segments in the XASH layout (§5.3.2).
inline constexpr int kAlphabetSize = 37;

/// Id of the bucket that absorbs spaces, punctuation, and non-ASCII bytes.
inline constexpr int kOtherCharId = 36;

/// Maps a byte to its alphabet id: 'a'-'z' (case-folded) -> 0..25,
/// '0'-'9' -> 26..35, everything else -> kOtherCharId.
int NormalizeChar(char c);

/// Representative printable symbol for an alphabet id ('*' for the bucket).
char AlphabetSymbol(int id);

/// Relative character frequencies over the 37-symbol alphabet. XASH prefers
/// *rarer* characters (§5.3.2 lemma: least frequent characters lead to fewer
/// collisions); ties break on smaller alphabet id, which realizes the
/// paper's lexicographic tie-break.
class CharFrequencyTable {
 public:
  /// Built-in table based on English letter/digram statistics; the default
  /// when no corpus statistics are available.
  static const CharFrequencyTable& English();

  /// Table estimated from observed character counts (e.g. a corpus scan).
  /// Zero-count symbols get a small epsilon so ranks stay total.
  static CharFrequencyTable FromCounts(
      const std::array<uint64_t, kAlphabetSize>& counts);

  /// Accumulates the characters of `value` into `counts` (normalized ids).
  static void CountCharacters(std::string_view value,
                              std::array<uint64_t, kAlphabetSize>* counts);

  double frequency(int id) const { return freq_[id]; }

  /// 0 = most frequent symbol, kAlphabetSize-1 = rarest.
  int rank(int id) const { return rank_[id]; }

  /// True iff symbol `a` should be selected before `b` when hunting for rare
  /// characters (strictly rarer, or equally rare with smaller id).
  bool Rarer(int a, int b) const {
    if (freq_[a] != freq_[b]) return freq_[a] < freq_[b];
    return a < b;
  }

 private:
  explicit CharFrequencyTable(const std::array<double, kAlphabetSize>& freq);

  std::array<double, kAlphabetSize> freq_;
  std::array<int, kAlphabetSize> rank_;
};

}  // namespace mate

#endif  // MATE_UTIL_CHAR_FREQUENCY_H_
