#include "util/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace mate {

namespace {

// Octave of a value >= kUnitBuckets: the position of its most significant
// bit, in [5, 63].
int Octave(uint64_t value) { return 63 - std::countl_zero(value); }

// log2(kSubBucketsPerOctave) and log2(kUnitBuckets), spelled as shifts.
constexpr int kSubBucketBits = 4;  // 16 sub-buckets
constexpr int kUnitBits = 5;       // 32 exact buckets

}  // namespace

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kUnitBuckets) return static_cast<size_t>(value);
  const int m = Octave(value);
  // Sub-bucket width in octave m is 2^(m - kSubBucketBits):
  // value >> (m - kSubBucketBits) lands in [16, 32).
  const uint64_t sub =
      (value >> (m - kSubBucketBits)) - kSubBucketsPerOctave;
  return kUnitBuckets +
         static_cast<size_t>(m - kUnitBits) * kSubBucketsPerOctave +
         static_cast<size_t>(sub);
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) {
  if (index < kUnitBuckets) return index;
  const size_t rel = index - kUnitBuckets;
  const int m = kUnitBits + static_cast<int>(rel / kSubBucketsPerOctave);
  const uint64_t sub = rel % kSubBucketsPerOctave;
  const uint64_t low = (kSubBucketsPerOctave + sub) << (m - kSubBucketBits);
  return low + ((uint64_t{1} << (m - kSubBucketBits)) - 1);
}

void LatencyHistogram::Record(uint64_t value) {
  ++counts_[BucketIndex(value)];
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Nearest rank, matching PercentileSorted: smallest sample whose 1-based
  // rank r satisfies r >= p * count.
  const uint64_t rank = std::clamp<uint64_t>(
      static_cast<uint64_t>(std::ceil(p * static_cast<double>(count_))),
      1, count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += counts_[i];
    // Clamp to the true maximum: the top occupied bucket's upper bound can
    // exceed every recorded value (it is a representative, not a sample).
    if (seen >= rank) return std::min(BucketUpperBound(i), max_);
  }
  return max_;  // unreachable: seen == count_ after the loop
}

uint64_t LatencyHistogram::CountAtOrBelow(uint64_t value) const {
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets && BucketUpperBound(i) <= value; ++i) {
    seen += counts_[i];
  }
  return seen;
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::string LatencyHistogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " min=" << min() << " p50=" << Percentile(0.50)
     << " p90=" << Percentile(0.90) << " p99=" << Percentile(0.99)
     << " p99.9=" << Percentile(0.999) << " max=" << max_;
  return os.str();
}

}  // namespace mate
