// Zipfian sampling over ranks 0..n-1: P(rank k) proportional to 1/(k+1)^s.
// Web-table value reuse is heavy-tailed (§7.5.4: "the number of PL items per
// cell value follows the power-law distribution"), so workload generators
// draw vocabulary ranks from this distribution.

#ifndef MATE_UTIL_ZIPF_H_
#define MATE_UTIL_ZIPF_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace mate {

class ZipfDistribution {
 public:
  /// Precondition: n > 0, s >= 0 (s == 0 degenerates to uniform).
  ZipfDistribution(size_t n, double s);

  /// Draws a rank in [0, n); rank 0 is the most frequent.
  size_t Sample(Rng* rng) const;

  size_t n() const { return n_; }
  double s() const { return s_; }

  /// Probability mass of `rank`.
  double Pmf(size_t rank) const;

 private:
  size_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace mate

#endif  // MATE_UTIL_ZIPF_H_
