// Fixed-width bit array used for XASH signatures and super keys (§5 of the
// paper). Bit index 0 is the paper's "left-most" bit; XASH places the length
// segment there so that the word-ascending subset check realizes the paper's
// length short-circuit for free.
//
// Storage is inline (no heap): at most kMaxBits bits. Widths need not be a
// multiple of 64; bits beyond num_bits() are kept at zero as an invariant.

#ifndef MATE_UTIL_BITVECTOR_H_
#define MATE_UTIL_BITVECTOR_H_

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/simd.h"
#include "util/status.h"

namespace mate {

class BitVector {
 public:
  static constexpr size_t kMaxBits = 512;
  static constexpr size_t kWordBits = 64;
  static constexpr size_t kMaxWords = kMaxBits / kWordBits;

  /// An empty (0-bit) vector; Resize() before use.
  BitVector() = default;

  /// A zeroed vector of `num_bits` bits. Precondition: num_bits <= kMaxBits.
  explicit BitVector(size_t num_bits) { Resize(num_bits); }

  /// Resets to `num_bits` zeroed bits.
  void Resize(size_t num_bits) {
    assert(num_bits <= kMaxBits);
    num_bits_ = num_bits;
    num_words_ = (num_bits + kWordBits - 1) / kWordBits;
    words_.fill(0);
  }

  /// Sets all bits to zero, keeping the width.
  void Clear() { words_.fill(0); }

  size_t num_bits() const { return num_bits_; }
  size_t num_words() const { return num_words_; }
  bool empty() const { return num_bits_ == 0; }

  void SetBit(size_t i) {
    assert(i < num_bits_);
    words_[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
  }

  void ClearBit(size_t i) {
    assert(i < num_bits_);
    words_[i / kWordBits] &= ~(uint64_t{1} << (i % kWordBits));
  }

  bool TestBit(size_t i) const {
    assert(i < num_bits_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
  }

  /// this |= other. Precondition: same width.
  void OrWith(const BitVector& other) {
    assert(num_bits_ == other.num_bits_);
    simd::Kernels().or_words(words_.data(), other.words_.data(), num_words_);
  }

  /// this &= other. Precondition: same width.
  void AndWith(const BitVector& other) {
    assert(num_bits_ == other.num_bits_);
    simd::Kernels().and_words(words_.data(), other.words_.data(), num_words_);
  }

  /// this ^= other. Precondition: same width.
  void XorWith(const BitVector& other) {
    assert(num_bits_ == other.num_bits_);
    for (size_t w = 0; w < num_words_; ++w) words_[w] ^= other.words_[w];
  }

  /// True iff every 1-bit of *this is also set in `other` — the super-key
  /// masking test of §6.3 ((q | sk) == sk). The dispatched kernel walks
  /// words from word 0 (the paper's left-most segment) upward and exits on
  /// the first chunk with a miss, so the XASH length short-circuit holds
  /// at every SIMD level.
  bool IsSubsetOf(const BitVector& other) const {
    assert(num_bits_ == other.num_bits_);
    return simd::Kernels().covers(words_.data(), other.words_.data(),
                                  num_words_);
  }

  /// True iff no bit is set.
  bool IsZero() const {
    return simd::Kernels().is_zero(words_.data(), num_words_);
  }

  /// Number of set bits.
  size_t CountOnes() const {
    return static_cast<size_t>(
        simd::Kernels().popcount(words_.data(), num_words_));
  }

  /// Rotates the bit range [start, start+len) left by `k` positions, in the
  /// paper's orientation (bit `start` is the left edge): the bit previously
  /// at offset (i + k) mod len moves to offset i. Matches the §5.3.5
  /// example: rotating "01100101" left by 3 yields "00101011". Bits outside
  /// the range are untouched.
  void RotateRangeLeft(size_t start, size_t len, size_t k);

  /// Raw word access (word 0 holds bits [0, 64)).
  uint64_t word(size_t w) const {
    assert(w < num_words_);
    return words_[w];
  }
  void set_word(size_t w, uint64_t value) {
    assert(w < num_words_);
    words_[w] = value;
    MaskTail();
  }
  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }

  bool operator==(const BitVector& other) const {
    if (num_bits_ != other.num_bits_) return false;
    for (size_t w = 0; w < num_words_; ++w) {
      if (words_[w] != other.words_[w]) return false;
    }
    return true;
  }
  bool operator!=(const BitVector& other) const { return !(*this == other); }

  /// Binary string, left-most bit (index 0) first, e.g. "01100101".
  std::string ToBinaryString() const;

  /// Lowercase hex of the words in little-endian word order.
  std::string ToHexString() const;

  /// Parses a binary string as produced by ToBinaryString().
  static Result<BitVector> FromBinaryString(std::string_view bits);

  /// Appends width + words to `out` (for index persistence).
  void AppendToString(std::string* out) const;

  /// Parses a vector serialized by AppendToString, advancing `input`.
  static Result<BitVector> ParseFrom(std::string_view* input);

 private:
  // Zeroes any storage bits at positions >= num_bits_.
  void MaskTail() {
    size_t tail = num_bits_ % kWordBits;
    if (tail != 0 && num_words_ > 0) {
      words_[num_words_ - 1] &= (uint64_t{1} << tail) - 1;
    }
  }

  size_t num_bits_ = 0;
  size_t num_words_ = 0;
  std::array<uint64_t, kMaxWords> words_ = {};
};

}  // namespace mate

#endif  // MATE_UTIL_BITVECTOR_H_
