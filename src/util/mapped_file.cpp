#include "util/mapped_file.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define MATE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#else
#define MATE_HAS_MMAP 0
#include <fstream>
#include <sstream>
#endif

namespace mate {

MappedFile::~MappedFile() { Release(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      length_(std::exchange(other.length_, 0)),
      fallback_(std::move(other.fallback_)) {
  other.fallback_.clear();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Release();
    addr_ = std::exchange(other.addr_, nullptr);
    length_ = std::exchange(other.length_, 0);
    fallback_ = std::move(other.fallback_);
    other.fallback_.clear();
  }
  return *this;
}

void MappedFile::Release() {
#if MATE_HAS_MMAP
  if (addr_ != nullptr) ::munmap(addr_, length_);
#endif
  addr_ = nullptr;
  length_ = 0;
  fallback_.clear();
  fallback_.shrink_to_fit();
}

#if MATE_HAS_MMAP

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);

  MappedFile file;
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  if (S_ISREG(st.st_mode) && st.st_size > 0) {
    const size_t length = static_cast<size_t>(st.st_size);
    void* addr = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr != MAP_FAILED) {
      ::close(fd);
#ifdef MADV_SEQUENTIAL
      // The loader streams front to back; ask for aggressive readahead.
      ::madvise(addr, length, MADV_SEQUENTIAL);
#endif
      file.addr_ = addr;
      file.length_ = length;
      return file;
    }
  }

  // Read-copy fallback: FIFOs, device/proc files, zero-size files, or an
  // mmap refusal. The descriptor is already open, so read it directly.
  std::string buffer;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("read failed: " + path);
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  file.fallback_ = std::move(buffer);
  return file;
}

#else  // !MATE_HAS_MMAP

Result<MappedFile> MappedFile::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in.good() && !in.eof()) return Status::IOError("read failed: " + path);
  MappedFile file;
  file.fallback_ = std::move(ss).str();
  return file;
}

#endif  // MATE_HAS_MMAP

}  // namespace mate
