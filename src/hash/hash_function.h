// RowHashFunction: the interface every super-key hash implements (§5.1).
// A hash maps one normalized cell value to a fixed-width bit signature; the
// super key of a row is the bitwise OR of the signatures of its cells, and a
// composite key K is *possibly present* in a row iff OR of K's signatures is
// a subset of the row's super key (never a false negative, §6.3).

#ifndef MATE_HASH_HASH_FUNCTION_H_
#define MATE_HASH_HASH_FUNCTION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitvector.h"

namespace mate {

class RowHashFunction {
 public:
  virtual ~RowHashFunction() = default;

  /// Width of signatures and super keys produced by this function.
  size_t hash_bits() const { return hash_bits_; }

  /// Short display name used in bench tables ("Xash", "BF", "MD5", ...).
  virtual std::string Name() const = 0;

  /// ORs the signature of `normalized_value` into `*sig`.
  /// Precondition: sig->num_bits() == hash_bits().
  virtual void AddValue(std::string_view normalized_value,
                        BitVector* sig) const = 0;

  /// Signature of a single value.
  BitVector HashValue(std::string_view normalized_value) const;

  /// Super key of a value set: OR-aggregation of all signatures (§5.1).
  BitVector MakeSuperKey(const std::vector<std::string>& values) const;

 protected:
  explicit RowHashFunction(size_t hash_bits) : hash_bits_(hash_bits) {}

  size_t hash_bits_;
};

}  // namespace mate

#endif  // MATE_HASH_HASH_FUNCTION_H_
