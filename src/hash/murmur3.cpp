#include "hash/murmur3.h"

#include <cstring>

namespace mate {

namespace {

uint32_t RotateLeft32(uint32_t x, int r) { return (x << r) | (x >> (32 - r)); }
uint64_t RotateLeft64(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

uint32_t FMix32(uint32_t h) {
  h ^= h >> 16;
  h *= 0x85EBCA6Bu;
  h ^= h >> 13;
  h *= 0xC2B2AE35u;
  h ^= h >> 16;
  return h;
}

uint64_t FMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;  // little-endian host assumed (x86/ARM64)
}

uint64_t Load64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

uint32_t Murmur3_32(std::string_view data, uint32_t seed) {
  constexpr uint32_t c1 = 0xCC9E2D51u;
  constexpr uint32_t c2 = 0x1B873593u;
  const size_t nblocks = data.size() / 4;
  uint32_t h1 = seed;

  for (size_t i = 0; i < nblocks; ++i) {
    uint32_t k1 = Load32(data.data() + 4 * i);
    k1 *= c1;
    k1 = RotateLeft32(k1, 15);
    k1 *= c2;
    h1 ^= k1;
    h1 = RotateLeft32(h1, 13);
    h1 = h1 * 5 + 0xE6546B64u;
  }

  const char* tail = data.data() + 4 * nblocks;
  uint32_t k1 = 0;
  switch (data.size() & 3) {
    case 3:
      k1 ^= static_cast<uint32_t>(static_cast<unsigned char>(tail[2])) << 16;
      [[fallthrough]];
    case 2:
      k1 ^= static_cast<uint32_t>(static_cast<unsigned char>(tail[1])) << 8;
      [[fallthrough]];
    case 1:
      k1 ^= static_cast<uint32_t>(static_cast<unsigned char>(tail[0]));
      k1 *= c1;
      k1 = RotateLeft32(k1, 15);
      k1 *= c2;
      h1 ^= k1;
  }

  h1 ^= static_cast<uint32_t>(data.size());
  return FMix32(h1);
}

std::pair<uint64_t, uint64_t> Murmur3_128(std::string_view data,
                                          uint64_t seed) {
  constexpr uint64_t c1 = 0x87C37B91114253D5ULL;
  constexpr uint64_t c2 = 0x4CF5AD432745937FULL;
  const size_t nblocks = data.size() / 16;
  uint64_t h1 = seed;
  uint64_t h2 = seed;

  for (size_t i = 0; i < nblocks; ++i) {
    uint64_t k1 = Load64(data.data() + 16 * i);
    uint64_t k2 = Load64(data.data() + 16 * i + 8);
    k1 *= c1;
    k1 = RotateLeft64(k1, 31);
    k1 *= c2;
    h1 ^= k1;
    h1 = RotateLeft64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52DCE729u;
    k2 *= c2;
    k2 = RotateLeft64(k2, 33);
    k2 *= c1;
    h2 ^= k2;
    h2 = RotateLeft64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495AB5u;
  }

  const unsigned char* tail = reinterpret_cast<const unsigned char*>(
      data.data() + 16 * nblocks);
  uint64_t k1 = 0;
  uint64_t k2 = 0;
  switch (data.size() & 15) {
    case 15: k2 ^= static_cast<uint64_t>(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<uint64_t>(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<uint64_t>(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<uint64_t>(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<uint64_t>(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<uint64_t>(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= static_cast<uint64_t>(tail[8]);
      k2 *= c2;
      k2 = RotateLeft64(k2, 33);
      k2 *= c1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= static_cast<uint64_t>(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= static_cast<uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= static_cast<uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= static_cast<uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= static_cast<uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= static_cast<uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<uint64_t>(tail[0]);
      k1 *= c1;
      k1 = RotateLeft64(k1, 31);
      k1 *= c2;
      h1 ^= k1;
  }

  h1 ^= static_cast<uint64_t>(data.size());
  h2 ^= static_cast<uint64_t>(data.size());
  h1 += h2;
  h2 += h1;
  h1 = FMix64(h1);
  h2 = FMix64(h2);
  h1 += h2;
  h2 += h1;
  return {h1, h2};
}

uint64_t Murmur3_64(std::string_view data, uint64_t seed) {
  return Murmur3_128(data, seed).first;
}

void MurmurRowHash::AddValue(std::string_view normalized_value,
                             BitVector* sig) const {
  auto [lo, hi] = Murmur3_128(normalized_value, /*seed=*/0);
  for (size_t w = 0; w < sig->num_words(); ++w) {
    uint64_t word;
    if (w == 0) {
      word = lo;
    } else if (w == 1) {
      word = hi;
    } else {
      word = Murmur3_64(normalized_value, /*seed=*/w);
    }
    sig->set_word(w, sig->word(w) | word);
  }
}

}  // namespace mate
