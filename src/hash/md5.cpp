#include "hash/md5.h"

#include <cmath>
#include <cstring>

#include "util/rng.h"

namespace mate {

namespace {

// Per-round left-rotation amounts (RFC 1321 §3.4).
constexpr uint32_t kShifts[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(|sin(i+1)| * 2^32), computed once.
const std::array<uint32_t, 64>& SineTable() {
  static const std::array<uint32_t, 64> kTable = [] {
    std::array<uint32_t, 64> t{};
    for (int i = 0; i < 64; ++i) {
      t[i] = static_cast<uint32_t>(
          std::floor(std::fabs(std::sin(static_cast<double>(i) + 1.0)) *
                     4294967296.0));
    }
    return t;
  }();
  return kTable;
}

uint32_t RotateLeft32(uint32_t x, uint32_t n) {
  return (x << n) | (x >> (32 - n));
}

void ProcessBlock(const uint8_t* block, uint32_t state[4]) {
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<uint32_t>(block[4 * i]) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 8) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 3]) << 24);
  }
  uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  const auto& k = SineTable();
  for (int i = 0; i < 64; ++i) {
    uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    uint32_t temp = d;
    d = c;
    c = b;
    b = b + RotateLeft32(a + f + k[i] + m[g], kShifts[i]);
    a = temp;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
}

}  // namespace

Md5Digest Md5(std::string_view data) {
  uint32_t state[4] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u};

  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(data.data());
  size_t full_blocks = data.size() / 64;
  for (size_t i = 0; i < full_blocks; ++i) ProcessBlock(bytes + 64 * i, state);

  // Padding: 0x80, zeros, then the 64-bit little-endian bit length.
  uint8_t tail[128] = {};
  size_t rem = data.size() % 64;
  std::memcpy(tail, bytes + 64 * full_blocks, rem);
  tail[rem] = 0x80;
  size_t tail_len = (rem < 56) ? 64 : 128;
  uint64_t bit_len = static_cast<uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 8 + i] = static_cast<uint8_t>((bit_len >> (8 * i)) & 0xFF);
  }
  ProcessBlock(tail, state);
  if (tail_len == 128) ProcessBlock(tail + 64, state);

  Md5Digest digest;
  for (int i = 0; i < 4; ++i) {
    digest.bytes[4 * i] = static_cast<uint8_t>(state[i] & 0xFF);
    digest.bytes[4 * i + 1] = static_cast<uint8_t>((state[i] >> 8) & 0xFF);
    digest.bytes[4 * i + 2] = static_cast<uint8_t>((state[i] >> 16) & 0xFF);
    digest.bytes[4 * i + 3] = static_cast<uint8_t>((state[i] >> 24) & 0xFF);
  }
  return digest;
}

std::string Md5Digest::ToHexString() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

uint64_t Md5Digest::low64() const {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  return v;
}

uint64_t Md5Digest::high64() const {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(bytes[8 + i]) << (8 * i);
  }
  return v;
}

void Md5RowHash::AddValue(std::string_view normalized_value,
                          BitVector* sig) const {
  Md5Digest digest = Md5(normalized_value);
  size_t words = sig->num_words();
  uint64_t lo = digest.low64();
  uint64_t hi = digest.high64();
  for (size_t w = 0; w < words; ++w) {
    uint64_t word;
    if (w == 0) {
      word = lo;
    } else if (w == 1) {
      word = hi;
    } else {
      // Widths beyond the native 128 bits: extend by mixing the digest with
      // the word index.
      word = SplitMix64(lo ^ (hi + 0x9E3779B97F4A7C15ULL * w));
    }
    sig->set_word(w, sig->word(w) | word);
  }
}

}  // namespace mate
