// Factory for every super-key hash family the paper benchmarks, so benches
// and tests can sweep families × hash sizes uniformly.

#ifndef MATE_HASH_HASH_REGISTRY_H_
#define MATE_HASH_HASH_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hash/hash_function.h"
#include "storage/corpus.h"
#include "util/status.h"

namespace mate {

enum class HashFamily {
  kXash,
  kBloom,
  kLessHashingBloom,
  kHashTable,
  kMd5,
  kMurmur,
  kCity,
  kSimHash,
};

/// Display name used in bench tables ("Xash", "BF", "LHBF", "HT", ...).
std::string_view HashFamilyName(HashFamily family);

/// Parses a display name; case-sensitive.
Result<HashFamily> ParseHashFamily(std::string_view name);

/// All families, in the column order of Table 2.
const std::vector<HashFamily>& AllHashFamilies();

/// Builds a hash of `family` at `hash_bits` width. When `stats` is non-null
/// it parameterizes XASH (Eq. 5 alpha, measured character frequencies) and
/// the Bloom variants (H from the average column count); otherwise the
/// paper's DWTC defaults apply.
std::unique_ptr<RowHashFunction> MakeRowHash(HashFamily family,
                                             size_t hash_bits,
                                             const CorpusStats* stats);

}  // namespace mate

#endif  // MATE_HASH_HASH_REGISTRY_H_
