#include "hash/hash_registry.h"

#include "hash/bloom.h"
#include "hash/city_like.h"
#include "hash/md5.h"
#include "hash/murmur3.h"
#include "hash/simhash.h"
#include "hash/xash.h"

namespace mate {

std::string_view HashFamilyName(HashFamily family) {
  switch (family) {
    case HashFamily::kXash: return "Xash";
    case HashFamily::kBloom: return "BF";
    case HashFamily::kLessHashingBloom: return "LHBF";
    case HashFamily::kHashTable: return "HT";
    case HashFamily::kMd5: return "MD5";
    case HashFamily::kMurmur: return "Murmur";
    case HashFamily::kCity: return "City";
    case HashFamily::kSimHash: return "SimHash";
  }
  return "?";
}

Result<HashFamily> ParseHashFamily(std::string_view name) {
  for (HashFamily family : AllHashFamilies()) {
    if (HashFamilyName(family) == name) return family;
  }
  return Status::NotFound("unknown hash family: " + std::string(name));
}

const std::vector<HashFamily>& AllHashFamilies() {
  static const std::vector<HashFamily> kAll = {
      HashFamily::kMd5,       HashFamily::kMurmur,
      HashFamily::kCity,      HashFamily::kSimHash,
      HashFamily::kHashTable, HashFamily::kBloom,
      HashFamily::kLessHashingBloom, HashFamily::kXash};
  return kAll;
}

std::unique_ptr<RowHashFunction> MakeRowHash(HashFamily family,
                                             size_t hash_bits,
                                             const CorpusStats* stats) {
  const double avg_cols =
      (stats != nullptr && stats->avg_columns_per_table > 0)
          ? stats->avg_columns_per_table
          : 5.0;  // the paper's webtable default V
  switch (family) {
    case HashFamily::kXash: {
      if (stats != nullptr) return Xash::FromCorpusStats(hash_bits, *stats);
      XashOptions opts;
      opts.hash_bits = hash_bits;
      return std::make_unique<Xash>(opts);
    }
    case HashFamily::kBloom:
      return std::make_unique<BloomRowHash>(
          hash_bits, OptimalBloomHashCount(hash_bits, avg_cols));
    case HashFamily::kLessHashingBloom:
      return std::make_unique<LessHashingBloomRowHash>(
          hash_bits, OptimalBloomHashCount(hash_bits, avg_cols));
    case HashFamily::kHashTable:
      return std::make_unique<HashTableRowHash>(hash_bits);
    case HashFamily::kMd5:
      return std::make_unique<Md5RowHash>(hash_bits);
    case HashFamily::kMurmur:
      return std::make_unique<MurmurRowHash>(hash_bits);
    case HashFamily::kCity:
      return std::make_unique<CityRowHash>(hash_bits);
    case HashFamily::kSimHash:
      return std::make_unique<SimHashRowHash>(hash_bits);
  }
  return nullptr;
}

}  // namespace mate
