// SimHash (Charikar similarity hashing) over character bigrams, a Table 2/3
// baseline. Each feature votes +1/-1 per output bit; the sign of the total
// decides the bit, so similar strings get similar signatures — and, like the
// other digest baselines, roughly half of all bits are set.

#ifndef MATE_HASH_SIMHASH_H_
#define MATE_HASH_SIMHASH_H_

#include <cstdint>
#include <string_view>

#include "hash/hash_function.h"

namespace mate {

class SimHashRowHash : public RowHashFunction {
 public:
  explicit SimHashRowHash(size_t hash_bits) : RowHashFunction(hash_bits) {}

  std::string Name() const override { return "SimHash"; }
  void AddValue(std::string_view normalized_value,
                BitVector* sig) const override;
};

}  // namespace mate

#endif  // MATE_HASH_SIMHASH_H_
