#include "hash/city_like.h"

#include <cstring>

#include "util/rng.h"

namespace mate {

namespace {

constexpr uint64_t kMul0 = 0xC3A5C85C97CB3127ULL;
constexpr uint64_t kMul1 = 0xB492B66FBE98F273ULL;
constexpr uint64_t kMul2 = 0x9AE16A3B2F90404FULL;

uint64_t Load64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

uint64_t LoadTail(const char* p, size_t len) {
  // Up to 8 bytes, little-endian, zero-padded.
  uint64_t v = 0;
  for (size_t i = 0; i < len; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t RotateRight64(uint64_t x, int r) {
  return (x >> r) | (x << (64 - r));
}

// Strong 2-to-1 mixer in the City finalizer style.
uint64_t HashLen16(uint64_t u, uint64_t v) {
  uint64_t a = (u ^ v) * kMul0;
  a ^= a >> 47;
  uint64_t b = (v ^ a) * kMul1;
  b ^= b >> 47;
  return b * kMul2;
}

}  // namespace

uint64_t CityLikeHash64(std::string_view data) {
  const char* p = data.data();
  const size_t len = data.size();
  uint64_t h = kMul2 + len * 9;
  size_t i = 0;
  while (i + 8 <= len) {
    h = HashLen16(h, Load64(p + i) + kMul1 * (i + 1));
    i += 8;
  }
  if (i < len) {
    h = HashLen16(h, LoadTail(p + i, len - i) + kMul0 * (len - i));
  }
  return SplitMix64(h);
}

std::pair<uint64_t, uint64_t> CityLikeHash128(std::string_view data) {
  uint64_t lo = CityLikeHash64(data);
  // Second lane: same walk with rotated lanes and different multipliers so
  // the two words are effectively independent.
  const char* p = data.data();
  const size_t len = data.size();
  uint64_t h = kMul0 ^ (len * kMul1);
  size_t i = 0;
  while (i + 8 <= len) {
    h = HashLen16(RotateRight64(h, 29), Load64(p + i) * kMul2 + (i + 3));
    i += 8;
  }
  if (i < len) {
    h = HashLen16(RotateRight64(h, 29), LoadTail(p + i, len - i) + kMul2);
  }
  return {lo, SplitMix64(h ^ lo)};
}

void CityRowHash::AddValue(std::string_view normalized_value,
                           BitVector* sig) const {
  auto [lo, hi] = CityLikeHash128(normalized_value);
  for (size_t w = 0; w < sig->num_words(); ++w) {
    uint64_t word;
    if (w == 0) {
      word = lo;
    } else if (w == 1) {
      word = hi;
    } else {
      word = SplitMix64(lo + 0x9E3779B97F4A7C15ULL * w) ^ hi;
    }
    sig->set_word(w, sig->word(w) | word);
  }
}

}  // namespace mate
