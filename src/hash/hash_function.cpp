#include "hash/hash_function.h"

namespace mate {

BitVector RowHashFunction::HashValue(std::string_view normalized_value) const {
  BitVector sig(hash_bits_);
  AddValue(normalized_value, &sig);
  return sig;
}

BitVector RowHashFunction::MakeSuperKey(
    const std::vector<std::string>& values) const {
  BitVector key(hash_bits_);
  for (const std::string& v : values) AddValue(v, &key);
  return key;
}

}  // namespace mate
