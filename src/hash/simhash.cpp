#include "hash/simhash.h"

#include <array>
#include <vector>

#include "hash/murmur3.h"

namespace mate {

void SimHashRowHash::AddValue(std::string_view normalized_value,
                              BitVector* sig) const {
  const size_t bits = hash_bits_;
  std::vector<int32_t> votes(bits, 0);

  // Features: the value's character bigrams (with sentinel padding so
  // 1-character values still produce two features) plus the whole value.
  auto vote_feature = [&](std::string_view feature) {
    for (size_t block = 0; block * 64 < bits; ++block) {
      uint64_t h = Murmur3_64(feature, /*seed=*/block);
      size_t upper = std::min<size_t>(64, bits - block * 64);
      for (size_t b = 0; b < upper; ++b) {
        votes[block * 64 + b] += ((h >> b) & 1) ? 1 : -1;
      }
    }
  };

  std::string padded;
  padded.reserve(normalized_value.size() + 2);
  padded.push_back('\x01');
  padded.append(normalized_value);
  padded.push_back('\x02');
  for (size_t i = 0; i + 1 < padded.size(); ++i) {
    vote_feature(std::string_view(padded).substr(i, 2));
  }
  vote_feature(normalized_value);

  for (size_t b = 0; b < bits; ++b) {
    if (votes[b] > 0) sig->SetBit(b);
  }
}

}  // namespace mate
