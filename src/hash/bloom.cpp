#include "hash/bloom.h"

#include <cmath>

#include "hash/murmur3.h"

namespace mate {

int OptimalBloomHashCount(size_t hash_bits, double avg_values_per_key) {
  if (avg_values_per_key <= 0) return 1;
  double h = static_cast<double>(hash_bits) / avg_values_per_key *
             std::log(2.0);
  int rounded = static_cast<int>(std::lround(h));
  return rounded < 1 ? 1 : rounded;
}

BloomRowHash::BloomRowHash(size_t hash_bits, int num_hashes)
    : RowHashFunction(hash_bits),
      num_hashes_(num_hashes > 0
                      ? num_hashes
                      : OptimalBloomHashCount(hash_bits, /*V=*/5.0)) {}

void BloomRowHash::AddValue(std::string_view normalized_value,
                            BitVector* sig) const {
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t h = Murmur3_64(normalized_value, static_cast<uint64_t>(i));
    sig->SetBit(h % hash_bits_);
  }
}

LessHashingBloomRowHash::LessHashingBloomRowHash(size_t hash_bits,
                                                 int num_hashes)
    : RowHashFunction(hash_bits),
      num_hashes_(num_hashes > 0
                      ? num_hashes
                      : OptimalBloomHashCount(hash_bits, /*V=*/5.0)) {}

void LessHashingBloomRowHash::AddValue(std::string_view normalized_value,
                                       BitVector* sig) const {
  auto [h1, h2] = Murmur3_128(normalized_value, /*seed=*/0x1757);
  // h2 must be non-zero mod |a| or every probe collapses onto h1.
  if (h2 % hash_bits_ == 0) h2 += 1;
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t g = h1 + static_cast<uint64_t>(i) * h2;
    sig->SetBit(g % hash_bits_);
  }
}

void HashTableRowHash::AddValue(std::string_view normalized_value,
                                BitVector* sig) const {
  sig->SetBit(Murmur3_64(normalized_value, /*seed=*/0x417) % hash_bits_);
}

}  // namespace mate
