// City-style 64/128-bit string hash. The paper benchmarks Google's CityHash
// as one of its "standard hash function" baselines; since CityHash is not
// available offline, this is a from-scratch hash in the same construction
// style (length-dependent block mixing with strong 64-bit finalizers). The
// baseline only requires a well-mixed uniform digest — see DESIGN.md §2 for
// the substitution note.

#ifndef MATE_HASH_CITY_LIKE_H_
#define MATE_HASH_CITY_LIKE_H_

#include <cstdint>
#include <string_view>
#include <utility>

#include "hash/hash_function.h"

namespace mate {

/// 64-bit city-style digest.
uint64_t CityLikeHash64(std::string_view data);

/// 128-bit city-style digest as a (low, high) pair.
std::pair<uint64_t, uint64_t> CityLikeHash128(std::string_view data);

/// Raw-digest super-key baseline ("City" in Table 2).
class CityRowHash : public RowHashFunction {
 public:
  explicit CityRowHash(size_t hash_bits) : RowHashFunction(hash_bits) {}

  std::string Name() const override { return "City"; }
  void AddValue(std::string_view normalized_value,
                BitVector* sig) const override;
};

}  // namespace mate

#endif  // MATE_HASH_CITY_LIKE_H_
