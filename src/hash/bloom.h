// Filter-style super-key baselines of §7.1.2:
//   BF   — standard Bloom filter with H independent Murmur3 hash functions,
//          H sized from the corpus's average column count V (H = |a|/V·ln2).
//   LHBF — "Less Hashing, Same Performance" Bloom filter (Kirsch &
//          Mitzenmacher): H probe positions derived from two base hashes,
//          g_i(x) = h1(x) + i·h2(x).
//   HT   — degenerate hash table: a single hash function, one bit per value.

#ifndef MATE_HASH_BLOOM_H_
#define MATE_HASH_BLOOM_H_

#include <cstdint>
#include <string_view>

#include "hash/hash_function.h"

namespace mate {

/// The paper's Bloom sizing rule (§7.1.2): H = (|a| / V) · ln 2, at least 1,
/// where V is the expected number of values OR-ed into one super key (the
/// corpus's average column count).
int OptimalBloomHashCount(size_t hash_bits, double avg_values_per_key);

class BloomRowHash : public RowHashFunction {
 public:
  /// `num_hashes` <= 0 selects OptimalBloomHashCount for V = 5 columns.
  BloomRowHash(size_t hash_bits, int num_hashes);

  std::string Name() const override { return "BF"; }
  int num_hashes() const { return num_hashes_; }
  void AddValue(std::string_view normalized_value,
                BitVector* sig) const override;

 private:
  int num_hashes_;
};

class LessHashingBloomRowHash : public RowHashFunction {
 public:
  LessHashingBloomRowHash(size_t hash_bits, int num_hashes);

  std::string Name() const override { return "LHBF"; }
  int num_hashes() const { return num_hashes_; }
  void AddValue(std::string_view normalized_value,
                BitVector* sig) const override;

 private:
  int num_hashes_;
};

class HashTableRowHash : public RowHashFunction {
 public:
  explicit HashTableRowHash(size_t hash_bits) : RowHashFunction(hash_bits) {}

  std::string Name() const override { return "HT"; }
  void AddValue(std::string_view normalized_value,
                BitVector* sig) const override;
};

}  // namespace mate

#endif  // MATE_HASH_BLOOM_H_
