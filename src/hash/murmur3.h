// MurmurHash3 (x86_32 and x64_128 variants), implemented from scratch.
// Murmur3 is both a Table 2/3 baseline in its own right and the base hash
// family inside the Bloom-filter and LHBF super keys (§7.1.2).

#ifndef MATE_HASH_MURMUR3_H_
#define MATE_HASH_MURMUR3_H_

#include <cstdint>
#include <string_view>
#include <utility>

#include "hash/hash_function.h"

namespace mate {

/// 32-bit MurmurHash3 (x86_32).
uint32_t Murmur3_32(std::string_view data, uint32_t seed);

/// 128-bit MurmurHash3 (x64_128) as a (low, high) pair.
std::pair<uint64_t, uint64_t> Murmur3_128(std::string_view data,
                                          uint64_t seed);

/// Convenience 64-bit variant: low word of the 128-bit digest.
uint64_t Murmur3_64(std::string_view data, uint64_t seed);

/// Raw-digest super-key baseline ("Murmur" in Table 2).
class MurmurRowHash : public RowHashFunction {
 public:
  explicit MurmurRowHash(size_t hash_bits) : RowHashFunction(hash_bits) {}

  std::string Name() const override { return "Murmur"; }
  void AddValue(std::string_view normalized_value,
                BitVector* sig) const override;
};

}  // namespace mate

#endif  // MATE_HASH_MURMUR3_H_
