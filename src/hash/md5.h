// MD5 (RFC 1321), implemented from scratch. Used as the "standard
// cryptographic digest" baseline of Table 2/3. The round constants are
// derived at first use from their definition K[i] = floor(|sin(i+1)| * 2^32)
// rather than being hardcoded.

#ifndef MATE_HASH_MD5_H_
#define MATE_HASH_MD5_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "hash/hash_function.h"

namespace mate {

struct Md5Digest {
  std::array<uint8_t, 16> bytes{};

  std::string ToHexString() const;
  uint64_t low64() const;
  uint64_t high64() const;
};

/// Computes the MD5 digest of `data`.
Md5Digest Md5(std::string_view data);

/// Super-key hash that uses the raw MD5 digest bits as the signature
/// (extended with seeded re-hashes for widths beyond 128 bits). Roughly half
/// the bits are 1, which is exactly why the paper finds digest-style hashes
/// poor super keys.
class Md5RowHash : public RowHashFunction {
 public:
  explicit Md5RowHash(size_t hash_bits) : RowHashFunction(hash_bits) {}

  std::string Name() const override { return "MD5"; }
  void AddValue(std::string_view normalized_value,
                BitVector* sig) const override;
};

}  // namespace mate

#endif  // MATE_HASH_MD5_H_
