#include "hash/xash.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "util/math_util.h"

namespace mate {

Xash::Xash(const XashOptions& options)
    : RowHashFunction(options.hash_bits),
      options_(options),
      frequencies_(options.frequencies != nullptr
                       ? options.frequencies
                       : &CharFrequencyTable::English()) {
  assert(options.hash_bits >= 64 && options.hash_bits <= BitVector::kMaxBits);
  beta_ = XashBeta(options.hash_bits, kAlphabetSize);
  length_bits_ = options.hash_bits - kAlphabetSize * beta_;
  assert(length_bits_ >= 1);
  alpha_ = options.alpha > 0
               ? options.alpha
               : std::max(options.min_alpha,
                          OptimalOnesCount(options.hash_bits,
                                           options.corpus_unique_values));
}

std::unique_ptr<Xash> Xash::FromCorpusStats(size_t hash_bits,
                                            const CorpusStats& stats) {
  XashOptions opts;
  opts.hash_bits = hash_bits;
  opts.corpus_unique_values =
      stats.num_unique_values > 0 ? stats.num_unique_values : 1;
  auto owned = std::make_shared<CharFrequencyTable>(
      CharFrequencyTable::FromCounts(stats.char_counts));
  opts.frequencies = owned.get();
  auto xash = std::make_unique<Xash>(opts);
  xash->owned_frequencies_ = std::move(owned);
  return xash;
}

void Xash::AddValue(std::string_view v, BitVector* sig) const {
  assert(sig->num_bits() == hash_bits_);
  const size_t len = v.size();

  if (options_.use_length) {
    sig->SetBit(len % length_bits_);
  }
  if (!options_.use_chars || len == 0) return;

  // Character bits accumulate in a scratch signature first: the final
  // rotation applies to *this value's* bits only, never to bits already
  // OR-ed into `sig` by other row values.
  BitVector scratch(hash_bits_);

  // Distinct characters with occurrence count and position sum (1-based), to
  // compute the average location lambda (§5.3.3).
  struct CharInfo {
    int id;
    uint32_t count;
    uint64_t position_sum;
    uint32_t first_pos;  // order of first appearance, for the no-rare mode
  };
  std::array<int, kAlphabetSize> slot;
  slot.fill(-1);
  std::array<CharInfo, kAlphabetSize> infos;
  int distinct = 0;
  for (size_t i = 0; i < len; ++i) {
    int id = NormalizeChar(v[i]);
    if (slot[id] < 0) {
      slot[id] = distinct;
      infos[distinct] = {id, 1, i + 1, static_cast<uint32_t>(i)};
      ++distinct;
    } else {
      CharInfo& info = infos[slot[id]];
      ++info.count;
      info.position_sum += i + 1;
    }
  }

  // Order of selection: least frequent first (paper lemma), ties on smaller
  // alphabet id; or first-appearance order in the ablation mode.
  std::array<int, kAlphabetSize> order;
  for (int i = 0; i < distinct; ++i) order[i] = i;
  if (options_.use_rare_chars) {
    std::sort(order.begin(), order.begin() + distinct, [&](int a, int b) {
      return frequencies_->Rarer(infos[a].id, infos[b].id);
    });
  } else {
    std::sort(order.begin(), order.begin() + distinct, [&](int a, int b) {
      return infos[a].first_pos < infos[b].first_pos;
    });
  }

  const int chars_to_encode =
      std::min<int>(distinct, std::max(1, alpha_ - (options_.use_length ? 1 : 0)));
  const size_t region_begin = char_region_begin();
  for (int i = 0; i < chars_to_encode; ++i) {
    const CharInfo& info = infos[order[i]];
    size_t offset = 0;
    if (options_.use_location && beta_ > 1) {
      // x = ceil(lambda * beta / len), clamped to [1, beta].
      double lambda = static_cast<double>(info.position_sum) / info.count;
      size_t x = static_cast<size_t>(
          std::ceil(lambda * static_cast<double>(beta_) /
                    static_cast<double>(len)));
      if (x < 1) x = 1;
      if (x > beta_) x = beta_;
      offset = x - 1;
    }
    scratch.SetBit(region_begin + static_cast<size_t>(info.id) * beta_ +
                   offset);
  }

  if (options_.use_rotation) {
    scratch.RotateRangeLeft(region_begin, char_region_bits(), len);
  }
  sig->OrWith(scratch);
}

}  // namespace mate
