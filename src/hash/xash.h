// XASH (§5.2–5.3): the existence hash behind MATE's super key. A value's
// signature sets at most alpha bits:
//
//   [ length segment |a_l| bits ][ 37 character segments of beta bits each ]
//    bit 0 ("left-most")                                      bit |a|-1
//
//   * 1 bit at (len mod |a_l|) in the length segment (§5.3.4). Placing the
//     length segment left-most lets the word-ascending subset check bail out
//     before touching character bits (the paper's short-circuit).
//   * alpha-1 bits for the value's least frequent characters (§5.3.2): the
//     segment of character c gets one bit whose offset encodes the
//     character's average position within the value (§5.3.3,
//     x = ceil(lambda*beta/len)).
//   * Finally the character region is rotated left by len bits (§5.3.5), so
//     values that share rare characters but differ in length cannot mask
//     each other.
//
// alpha solves Eq. 5 for the corpus's unique-value count; beta solves Eq. 6
// (128 bits -> beta=3, |a_l|=17; 512 -> beta=13, |a_l|=31). Every feature can
// be disabled individually to reproduce the Figure 5 ablation.

#ifndef MATE_HASH_XASH_H_
#define MATE_HASH_XASH_H_

#include <memory>
#include <string>
#include <string_view>

#include "hash/hash_function.h"
#include "storage/corpus.h"
#include "util/char_frequency.h"

namespace mate {

struct XashOptions {
  size_t hash_bits = 128;

  /// Target 1-bits per value (the paper's alpha). 0 derives it from
  /// `corpus_unique_values` via Eq. 5, floored at `min_alpha`.
  int alpha = 0;

  /// Unique values in the corpus, used when alpha == 0. Defaults to the
  /// paper's DWTC figure (so the default alpha is 6, as in §5.3.1).
  uint64_t corpus_unique_values = 700'000'000ULL;

  /// Floor for the Eq. 5 derivation. Eq. 5 only guarantees signature
  /// uniqueness; on small (scaled-down) corpora it yields a degenerate
  /// alpha of 2 (a single character), far below the paper's deployed
  /// configuration of 6. The floor keeps scaled experiments in the paper's
  /// operating regime; set to 2 to get the raw Eq. 5 value.
  int min_alpha = 6;

  /// Feature switches for the Figure 5 ablation.
  bool use_length = true;    // length-segment bit
  bool use_chars = true;     // character-segment bits
  bool use_location = true;  // position-aware offset within a segment
  bool use_rotation = true;  // rotate character region by value length

  /// Select least frequent characters (the paper's rule). When false, the
  /// first distinct characters of the value are used instead (an extra
  /// ablation axis beyond Figure 5).
  bool use_rare_chars = true;

  /// Character-frequency table; defaults to English statistics. Use
  /// Xash::FromCorpusStats to plug in measured corpus frequencies.
  const CharFrequencyTable* frequencies = nullptr;
};

class Xash : public RowHashFunction {
 public:
  explicit Xash(const XashOptions& options);

  /// Xash parameterized by a corpus scan: alpha from the unique-value count
  /// (Eq. 5) and character ranks from the measured frequencies.
  static std::unique_ptr<Xash> FromCorpusStats(size_t hash_bits,
                                               const CorpusStats& stats);

  std::string Name() const override { return "Xash"; }
  void AddValue(std::string_view normalized_value,
                BitVector* sig) const override;

  /// Resolved layout parameters.
  int alpha() const { return alpha_; }
  size_t beta() const { return beta_; }
  size_t length_segment_bits() const { return length_bits_; }
  size_t char_region_begin() const { return length_bits_; }
  size_t char_region_bits() const { return kAlphabetSize * beta_; }

  const XashOptions& options() const { return options_; }

 private:
  XashOptions options_;
  const CharFrequencyTable* frequencies_;
  // Keeps a corpus-derived frequency table alive when FromCorpusStats built
  // it; null when the caller owns the table.
  std::shared_ptr<const CharFrequencyTable> owned_frequencies_;
  int alpha_;          // total 1-bits per value (length bit included)
  size_t beta_;        // bits per character segment (Eq. 6)
  size_t length_bits_; // |a_l| = |a| - 37*beta
};

}  // namespace mate

#endif  // MATE_HASH_XASH_H_
