#include "workload/generator.h"

#include <cmath>

#include "util/zipf.h"

namespace mate {

namespace {

size_t SampleColumns(Rng* rng, const CorpusSpec& spec) {
  const size_t span = spec.max_columns - spec.min_columns;
  if (spec.column_tail_exponent <= 0.0) {
    return spec.min_columns + rng->Uniform(span + 1);
  }
  double u = std::pow(rng->NextDouble(), spec.column_tail_exponent);
  size_t extra = static_cast<size_t>(
      std::floor(u * static_cast<double>(span + 1)));
  if (extra > span) extra = span;
  return spec.min_columns + extra;
}

}  // namespace

Corpus GenerateCorpus(const CorpusSpec& spec, const Vocabulary& vocab) {
  Rng rng(spec.seed);
  ZipfDistribution zipf(vocab.size(), spec.zipf_s);
  Corpus corpus;
  for (size_t t = 0; t < spec.num_tables; ++t) {
    Table table("table_" + std::to_string(t));
    size_t cols = SampleColumns(&rng, spec);
    size_t rows = spec.min_rows + rng.Uniform(spec.max_rows - spec.min_rows + 1);
    for (size_t c = 0; c < cols; ++c) {
      table.AddColumn("col_" + std::to_string(c));
    }
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> cells;
      cells.reserve(cols);
      for (size_t c = 0; c < cols; ++c) {
        cells.push_back(vocab.word(zipf.Sample(&rng)));
      }
      (void)table.AppendRow(std::move(cells));
    }
    corpus.AddTable(std::move(table));
  }
  return corpus;
}

}  // namespace mate
