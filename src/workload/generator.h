// Synthetic corpus generation: tables whose cells are Zipf-sampled from a
// shared vocabulary. Shapes (table counts, widths, heights) are chosen per
// scenario to mirror the §7.1 corpora; see scenarios.h.

#ifndef MATE_WORKLOAD_GENERATOR_H_
#define MATE_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "storage/corpus.h"
#include "workload/vocabulary.h"

namespace mate {

struct CorpusSpec {
  size_t num_tables = 1000;
  size_t min_columns = 3;
  size_t max_columns = 8;
  size_t min_rows = 5;
  size_t max_rows = 30;
  /// Zipf skew of value reuse; ~1.05 gives the heavy-tailed posting lists
  /// real web tables show.
  double zipf_s = 1.05;
  /// Table-width skew. 0 samples widths uniformly in [min, max]; larger
  /// values concentrate mass near min_columns with a fat tail of wide
  /// tables (width = min + (max-min)*u^exponent). Real corpora have this
  /// tail, and it is what makes average-tuned Bloom super keys collapse on
  /// wide tables (§7.3) while XASH degrades gracefully.
  double column_tail_exponent = 0.0;
  uint64_t seed = 42;
};

/// Generates a corpus drawing cells from `vocab`; deterministic in
/// spec.seed.
Corpus GenerateCorpus(const CorpusSpec& spec, const Vocabulary& vocab);

}  // namespace mate

#endif  // MATE_WORKLOAD_GENERATOR_H_
