// The paper's evaluation workloads (§7.1, Table 1), rebuilt as synthetic
// analogues: a web-table-like corpus (DWTC stand-in), an open-data-like
// corpus (govdata stand-in), the School corpus of few-but-huge tables, and
// Kaggle-style high-cardinality queries. Every maker is deterministic in
// (scale, seed). See DESIGN.md §2 for the substitution rationale.

#ifndef MATE_WORKLOAD_SCENARIOS_H_
#define MATE_WORKLOAD_SCENARIOS_H_

#include <string>
#include <utility>
#include <vector>

#include "storage/corpus.h"
#include "workload/query_gen.h"

namespace mate {

struct WorkloadConfig {
  /// Scales corpus table counts and query cardinalities together. 1.0 is
  /// sized so a full bench binary finishes in tens of seconds on a laptop.
  double scale = 1.0;
  size_t queries_per_set = 5;
  uint64_t seed = 42;
};

struct Workload {
  std::string corpus_name;
  Corpus corpus;
  /// Query sets in paper order, e.g. ("WT (10)", cases...).
  std::vector<std::pair<std::string, std::vector<QueryCase>>> query_sets;
};

/// DWTC stand-in: many small narrow tables; sets WT (10), WT (100),
/// WT (1000).
Workload MakeWebTablesWorkload(const WorkloadConfig& config);

/// German-open-data stand-in: fewer, wider, taller tables; sets OD (100),
/// OD (1000), OD (10000).
Workload MakeOpenDataWorkload(const WorkloadConfig& config);

/// School corpus stand-in (§7.1: 335 tables, ~27 columns, ~30k rows): one
/// "School" set of large queries against few huge tables.
Workload MakeSchoolWorkload(const WorkloadConfig& config);

/// Kaggle stand-in: high-cardinality ML-style query tables against the
/// web-table corpus; one "Kaggle" set.
Workload MakeKaggleWorkload(const WorkloadConfig& config);

/// Figure 6 workload: an open-data-like corpus whose plantable tables are
/// wide enough for 10-column composite keys, plus one query set per key
/// size in `key_sizes`.
Workload MakeKeySizeWorkload(const WorkloadConfig& config,
                             const std::vector<size_t>& key_sizes);

}  // namespace mate

#endif  // MATE_WORKLOAD_SCENARIOS_H_
