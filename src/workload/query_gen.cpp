#include "workload/query_gen.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/string_util.h"
#include "util/zipf.h"

namespace mate {

namespace {

// Real composite keys mix columns of very different cardinalities (a
// country column repeats heavily; an address column barely repeats). Each
// key position draws from its own pool of vocabulary ranks whose size is
// log-uniform in [rows/16, 2*rows] — this is what gives the §7.5.4
// init-column strategies something to choose between.
std::vector<std::vector<size_t>> SampleKeyPools(Rng* rng,
                                                const ZipfDistribution& zipf,
                                                size_t vocab_size,
                                                size_t rows,
                                                size_t key_size) {
  std::vector<std::vector<size_t>> pools(key_size);
  for (size_t i = 0; i < key_size; ++i) {
    double lo = std::log(std::max<double>(4.0, static_cast<double>(rows) / 16));
    double hi = std::log(std::max<double>(8.0, 2.0 * static_cast<double>(rows)));
    size_t pool_size = static_cast<size_t>(
        std::exp(lo + rng->NextDouble() * (hi - lo)));
    // §7.5.4 observes that PL length per value is power-law distributed:
    // "most of the values lead to a similar number of PL items (average
    // 12)" with a small head of huge lists. Query values therefore come
    // mostly from the *populated mid-range* of the vocabulary (ranks the
    // Zipf corpus actually reuses a handful of times), plus a few Zipf-head
    // outliers — the outliers are what the worst init column trips over.
    const size_t mid_range = std::max<size_t>(8, vocab_size / 8);
    pools[i].reserve(pool_size);
    for (size_t j = 0; j < pool_size; ++j) {
      pools[i].push_back(rng->Bernoulli(0.03) ? zipf.Sample(rng)
                                              : rng->Uniform(mid_range));
    }
  }
  return pools;
}

// Distinct key combos for one query, each position sampled from its pool.
std::vector<std::vector<std::string>> SampleCombos(
    Rng* rng, const Vocabulary& vocab,
    const std::vector<std::vector<size_t>>& pools, size_t count,
    size_t key_size) {
  std::vector<std::vector<std::string>> combos;
  std::unordered_set<std::string> seen;
  size_t attempts = 0;
  while (combos.size() < count && attempts < count * 20) {
    ++attempts;
    std::vector<std::string> combo;
    combo.reserve(key_size);
    std::string joined;
    for (size_t i = 0; i < key_size; ++i) {
      combo.push_back(vocab.word(rng->PickOne(pools[i])));
      joined += combo.back();
      joined.push_back('\x1F');
    }
    if (seen.insert(joined).second) combos.push_back(std::move(combo));
  }
  return combos;
}

}  // namespace

std::vector<QueryCase> GenerateQueries(Corpus* corpus,
                                       const Vocabulary& vocab,
                                       const QuerySetSpec& spec) {
  Rng rng(spec.seed);
  ZipfDistribution key_zipf(vocab.size(), spec.key_zipf_s);
  ZipfDistribution payload_zipf(vocab.size(), 1.0);
  std::vector<QueryCase> cases;
  cases.reserve(spec.num_queries);

  // Corpus tables wide enough to host a planted mapping.
  std::vector<TableId> plantable;
  for (TableId t = 0; t < corpus->NumTables(); ++t) {
    if (corpus->table_num_columns(t) >= spec.key_size) {
      plantable.push_back(t);
    }
  }

  for (size_t q = 0; q < spec.num_queries; ++q) {
    QueryCase qc;
    qc.query.set_name("query_" + std::to_string(q));

    // Key columns at random distinct positions.
    std::vector<ColumnId> positions(spec.query_columns);
    for (size_t c = 0; c < spec.query_columns; ++c) {
      positions[c] = static_cast<ColumnId>(c);
    }
    rng.Shuffle(&positions);
    qc.key_columns.assign(positions.begin(), positions.begin() + spec.key_size);
    std::sort(qc.key_columns.begin(), qc.key_columns.end());

    for (size_t c = 0; c < spec.query_columns; ++c) {
      qc.query.AddColumn("q_col_" + std::to_string(c));
    }

    const size_t rows =
        std::max<size_t>(2, spec.query_rows / 3 +
                                rng.Uniform(spec.query_rows -
                                            spec.query_rows / 3 + 1));
    std::vector<std::vector<size_t>> pools =
        SampleKeyPools(&rng, key_zipf, vocab.size(), rows, spec.key_size);
    std::vector<std::vector<std::string>> combos =
        SampleCombos(&rng, vocab, pools, rows, spec.key_size);

    // Build the query rows: key values at key positions, Zipf payload
    // elsewhere.
    for (const auto& combo : combos) {
      std::vector<std::string> cells(spec.query_columns);
      for (size_t i = 0; i < spec.key_size; ++i) {
        cells[qc.key_columns[i]] = combo[i];
      }
      for (size_t c = 0; c < spec.query_columns; ++c) {
        if (cells[c].empty()) {
          cells[c] = vocab.word(payload_zipf.Sample(&rng));
        }
      }
      (void)qc.query.AppendRow(std::move(cells));
    }

    // Plant decaying fractions of the combos into target tables.
    if (!plantable.empty() && !combos.empty()) {
      const size_t num_targets = std::min(spec.planted_tables,
                                          plantable.size());
      std::unordered_set<TableId> used_targets;
      for (size_t i = 0; i < num_targets; ++i) {
        TableId target = plantable[rng.Uniform(plantable.size())];
        if (!used_targets.insert(target).second) continue;
        Table* table = corpus->mutable_table(target);

        // One consistent mapping per (query, target): key position ->
        // distinct target column.
        std::vector<ColumnId> cols(table->NumColumns());
        for (size_t c = 0; c < cols.size(); ++c) {
          cols[c] = static_cast<ColumnId>(c);
        }
        rng.Shuffle(&cols);
        std::vector<ColumnId> mapping(cols.begin(),
                                      cols.begin() + spec.key_size);

        double fraction = spec.plant_fraction *
                          (1.0 - static_cast<double>(i) /
                                     (2.0 * static_cast<double>(num_targets)));
        size_t plant_count = std::max<size_t>(
            1, static_cast<size_t>(fraction *
                                   static_cast<double>(combos.size())));
        plant_count = std::min(plant_count, combos.size());

        for (size_t p = 0; p < plant_count; ++p) {
          std::vector<std::string> cells(table->NumColumns());
          for (size_t c = 0; c < cells.size(); ++c) {
            cells[c] = vocab.word(payload_zipf.Sample(&rng));
          }
          for (size_t kpos = 0; kpos < spec.key_size; ++kpos) {
            cells[mapping[kpos]] = combos[p][kpos];
          }
          (void)table->AppendRow(std::move(cells));
        }
        qc.planted.emplace_back(target, plant_count);
      }
      std::sort(qc.planted.begin(), qc.planted.end(),
                [](const auto& a, const auto& b) {
                  return a.second > b.second;
                });
    }
    cases.push_back(std::move(qc));
  }
  return cases;
}

}  // namespace mate
