// Query-table generation with *planted* joins: each query gets a composite
// key whose value combinations are copied, under a consistent column
// mapping, into a chosen set of corpus tables. Planting gives every query a
// known lower bound on the joinability of its target tables, while Zipf
// reuse of individual values creates exactly the single-value false-positive
// pressure MATE's row filter exists to kill.

#ifndef MATE_WORKLOAD_QUERY_GEN_H_
#define MATE_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/corpus.h"
#include "workload/vocabulary.h"

namespace mate {

struct QueryCase {
  Table query;
  std::vector<ColumnId> key_columns;

  /// Tables that received planted rows, with the number of distinct combos
  /// planted (a lower bound on their true joinability).
  std::vector<std::pair<TableId, size_t>> planted;
};

struct QuerySetSpec {
  size_t num_queries = 10;
  /// Rows per query table (the paper's "cardinality" knob: WT(10) ~ 10,
  /// OD(10k) ~ 10000). Actual row counts are sampled in
  /// [query_rows/3, query_rows].
  size_t query_rows = 100;
  size_t query_columns = 5;  // total columns (key + payload)
  size_t key_size = 2;       // |Q|

  size_t planted_tables = 12;
  /// Fraction of query combos planted into the best target table; later
  /// targets decay linearly so the top-k ranking has spread.
  double plant_fraction = 0.5;

  /// Zipf skew for sampling key values from the vocabulary (lighter than
  /// the corpus's so keys are not dominated by stopword-like tokens).
  double key_zipf_s = 0.7;

  uint64_t seed = 1;
};

/// Generates queries and plants their keys into `corpus` (mutating it).
/// Must run before the corpus is indexed. Deterministic in spec.seed.
std::vector<QueryCase> GenerateQueries(Corpus* corpus,
                                       const Vocabulary& vocab,
                                       const QuerySetSpec& spec);

}  // namespace mate

#endif  // MATE_WORKLOAD_QUERY_GEN_H_
