// Synthetic vocabularies with web-table-like character statistics. Cell
// values are drawn from these via Zipf ranks so that posting-list lengths
// are heavy-tailed, as §7.5.4 observes for real corpora.

#ifndef MATE_WORKLOAD_VOCABULARY_H_
#define MATE_WORKLOAD_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace mate {

class Vocabulary {
 public:
  enum class Style {
    kWords,     // English-like letter strings
    kMixed,     // words + numeric codes + dates (web-table flavor)
    kEntities,  // person/city/country-like phrases (Kaggle flavor)
  };

  /// Generates `size` distinct tokens; deterministic in `seed`.
  static Vocabulary Generate(size_t size, Style style, uint64_t seed);

  const std::string& word(size_t rank) const { return words_[rank]; }
  size_t size() const { return words_.size(); }

 private:
  std::vector<std::string> words_;
};

/// One English-like word of length in [min_len, max_len], letters sampled
/// from English frequencies.
std::string GenerateWord(Rng* rng, size_t min_len, size_t max_len);

}  // namespace mate

#endif  // MATE_WORKLOAD_VOCABULARY_H_
