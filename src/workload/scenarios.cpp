#include "workload/scenarios.h"

#include <algorithm>
#include <cmath>

#include "workload/generator.h"

namespace mate {

namespace {

size_t Scaled(size_t base, double scale, size_t floor_value) {
  return std::max<size_t>(
      floor_value,
      static_cast<size_t>(std::llround(static_cast<double>(base) * scale)));
}

}  // namespace

Workload MakeWebTablesWorkload(const WorkloadConfig& config) {
  Workload w;
  w.corpus_name = "WT";
  Vocabulary vocab = Vocabulary::Generate(Scaled(40000, config.scale, 4000),
                                          Vocabulary::Style::kMixed,
                                          config.seed ^ 0x5741ULL);
  CorpusSpec corpus_spec;
  corpus_spec.num_tables = Scaled(6000, config.scale, 200);
  // DWTC-like widths: most tables are 2-8 columns, with a fat tail of wide
  // entity tables that average-tuned Bloom filters mis-size for.
  corpus_spec.min_columns = 2;
  corpus_spec.max_columns = 30;
  corpus_spec.column_tail_exponent = 4.0;
  corpus_spec.min_rows = 4;
  corpus_spec.max_rows = 25;
  corpus_spec.seed = config.seed;
  w.corpus = GenerateCorpus(corpus_spec, vocab);

  const size_t cardinalities[3] = {10, 100, 1000};
  const char* names[3] = {"WT (10)", "WT (100)", "WT (1000)"};
  for (int i = 0; i < 3; ++i) {
    QuerySetSpec spec;
    spec.num_queries = config.queries_per_set;
    spec.query_rows = Scaled(cardinalities[i], config.scale, 6);
    spec.query_columns = 5;
    spec.key_size = 2;
    spec.planted_tables = 12;
    spec.plant_fraction = 0.5;
    spec.seed = config.seed + 100 + static_cast<uint64_t>(i);
    w.query_sets.emplace_back(names[i],
                              GenerateQueries(&w.corpus, vocab, spec));
  }
  return w;
}

Workload MakeOpenDataWorkload(const WorkloadConfig& config) {
  Workload w;
  w.corpus_name = "OD";
  // Vocabulary scaled so cells/uniques stays near real open data's ratio
  // (~3-20x reuse), keeping posting lists short on average.
  Vocabulary vocab = Vocabulary::Generate(Scaled(150000, config.scale, 8000),
                                          Vocabulary::Style::kMixed,
                                          config.seed ^ 0x4F44ULL);
  CorpusSpec corpus_spec;
  corpus_spec.num_tables = Scaled(800, config.scale, 60);
  // Open-data widths: ~26 columns on average with a tail of very wide
  // statistical tables.
  corpus_spec.min_columns = 4;
  corpus_spec.max_columns = 60;
  corpus_spec.column_tail_exponent = 1.4;
  corpus_spec.min_rows = 30;
  corpus_spec.max_rows = 250;
  corpus_spec.seed = config.seed + 1;
  w.corpus = GenerateCorpus(corpus_spec, vocab);

  const size_t cardinalities[3] = {100, 1000, 10000};
  const char* names[3] = {"OD (100)", "OD (1000)", "OD (10000)"};
  for (int i = 0; i < 3; ++i) {
    QuerySetSpec spec;
    spec.num_queries = config.queries_per_set;
    spec.query_rows = Scaled(cardinalities[i], config.scale, 8);
    spec.query_columns = 8;
    spec.key_size = 2;
    spec.planted_tables = 10;
    spec.plant_fraction = 0.6;
    spec.seed = config.seed + 200 + static_cast<uint64_t>(i);
    w.query_sets.emplace_back(names[i],
                              GenerateQueries(&w.corpus, vocab, spec));
  }
  return w;
}

Workload MakeSchoolWorkload(const WorkloadConfig& config) {
  Workload w;
  w.corpus_name = "School";
  Vocabulary vocab = Vocabulary::Generate(Scaled(90000, config.scale, 6000),
                                          Vocabulary::Style::kMixed,
                                          config.seed ^ 0x5343ULL);
  CorpusSpec corpus_spec;
  corpus_spec.num_tables = Scaled(50, config.scale, 10);
  corpus_spec.min_columns = 22;
  corpus_spec.max_columns = 30;
  corpus_spec.min_rows = Scaled(800, config.scale, 100);
  corpus_spec.max_rows = Scaled(2000, config.scale, 200);
  corpus_spec.seed = config.seed + 2;
  w.corpus = GenerateCorpus(corpus_spec, vocab);

  QuerySetSpec spec;
  spec.num_queries = std::max<size_t>(2, config.queries_per_set / 2);
  spec.query_rows = Scaled(2500, config.scale, 50);
  spec.query_columns = 6;
  spec.key_size = 2;
  spec.planted_tables = 8;
  spec.plant_fraction = 0.35;
  spec.seed = config.seed + 300;
  w.query_sets.emplace_back("School", GenerateQueries(&w.corpus, vocab, spec));
  return w;
}

Workload MakeKaggleWorkload(const WorkloadConfig& config) {
  Workload w;
  w.corpus_name = "Kaggle/WT";
  Vocabulary vocab = Vocabulary::Generate(Scaled(40000, config.scale, 4000),
                                          Vocabulary::Style::kMixed,
                                          config.seed ^ 0x4B41ULL);
  CorpusSpec corpus_spec;
  corpus_spec.num_tables = Scaled(6000, config.scale, 200);
  corpus_spec.min_columns = 2;
  corpus_spec.max_columns = 30;
  corpus_spec.column_tail_exponent = 4.0;
  corpus_spec.min_rows = 4;
  corpus_spec.max_rows = 25;
  corpus_spec.seed = config.seed + 3;
  w.corpus = GenerateCorpus(corpus_spec, vocab);

  QuerySetSpec spec;
  spec.num_queries = std::max<size_t>(2, config.queries_per_set / 2);
  spec.query_rows = Scaled(3000, config.scale, 60);
  spec.query_columns = 10;
  spec.key_size = 2;
  spec.planted_tables = 12;
  spec.plant_fraction = 0.4;
  spec.key_zipf_s = 0.5;  // ML feature tables: flatter key distribution
  spec.seed = config.seed + 400;
  w.query_sets.emplace_back("Kaggle", GenerateQueries(&w.corpus, vocab, spec));
  return w;
}

Workload MakeKeySizeWorkload(const WorkloadConfig& config,
                             const std::vector<size_t>& key_sizes) {
  Workload w;
  w.corpus_name = "OD/keysize";
  Vocabulary vocab = Vocabulary::Generate(Scaled(80000, config.scale, 6000),
                                          Vocabulary::Style::kMixed,
                                          config.seed ^ 0x4B53ULL);
  CorpusSpec corpus_spec;
  corpus_spec.num_tables = Scaled(600, config.scale, 50);
  // §7.5.3 uses a dataset with 33 columns, 10 of which can form the key.
  corpus_spec.min_columns = 12;
  corpus_spec.max_columns = 33;
  corpus_spec.min_rows = 30;
  corpus_spec.max_rows = 200;
  corpus_spec.seed = config.seed + 4;
  w.corpus = GenerateCorpus(corpus_spec, vocab);

  for (size_t m : key_sizes) {
    QuerySetSpec spec;
    spec.num_queries = config.queries_per_set;
    spec.query_rows = Scaled(400, config.scale, 20);
    spec.query_columns = std::max<size_t>(12, m + 2);
    spec.key_size = m;
    spec.planted_tables = 8;
    spec.plant_fraction = 0.5;
    spec.seed = config.seed + 500 + static_cast<uint64_t>(m);
    w.query_sets.emplace_back("|Q|=" + std::to_string(m),
                              GenerateQueries(&w.corpus, vocab, spec));
  }
  return w;
}

}  // namespace mate
