#include "workload/vocabulary.h"

#include <array>
#include <unordered_set>

#include "util/char_frequency.h"

namespace mate {

namespace {

// Cumulative distribution over the 26 letters from the English table.
const std::array<double, 26>& LetterCdf() {
  static const std::array<double, 26> kCdf = [] {
    const CharFrequencyTable& table = CharFrequencyTable::English();
    std::array<double, 26> cdf{};
    double total = 0.0;
    for (int i = 0; i < 26; ++i) total += table.frequency(i);
    double acc = 0.0;
    for (int i = 0; i < 26; ++i) {
      acc += table.frequency(i) / total;
      cdf[i] = acc;
    }
    cdf[25] = 1.0;
    return cdf;
  }();
  return kCdf;
}

char SampleLetter(Rng* rng) {
  double u = rng->NextDouble();
  const auto& cdf = LetterCdf();
  for (int i = 0; i < 26; ++i) {
    if (u <= cdf[i]) return static_cast<char>('a' + i);
  }
  return 'z';
}

std::string GenerateNumericCode(Rng* rng) {
  size_t len = 1 + rng->Uniform(8);
  std::string code;
  code.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    code.push_back(static_cast<char>('0' + rng->Uniform(10)));
  }
  return code;
}

std::string GenerateDate(Rng* rng) {
  int year = 1990 + static_cast<int>(rng->Uniform(35));
  int month = 1 + static_cast<int>(rng->Uniform(12));
  int day = 1 + static_cast<int>(rng->Uniform(28));
  // Large enough for the worst-case int rendering, so -Wformat-truncation
  // can prove no truncation regardless of what it infers about the ranges.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

std::string GeneratePhrase(Rng* rng, size_t words) {
  std::string phrase;
  for (size_t w = 0; w < words; ++w) {
    if (w > 0) phrase.push_back(' ');
    phrase.append(GenerateWord(rng, 3, 9));
  }
  return phrase;
}

}  // namespace

std::string GenerateWord(Rng* rng, size_t min_len, size_t max_len) {
  size_t len = min_len + rng->Uniform(max_len - min_len + 1);
  std::string word;
  word.reserve(len);
  for (size_t i = 0; i < len; ++i) word.push_back(SampleLetter(rng));
  return word;
}

Vocabulary Vocabulary::Generate(size_t size, Style style, uint64_t seed) {
  Rng rng(seed);
  Vocabulary vocab;
  vocab.words_.reserve(size);
  std::unordered_set<std::string> seen;
  while (vocab.words_.size() < size) {
    std::string token;
    switch (style) {
      case Style::kWords:
        token = GenerateWord(&rng, 2, 12);
        break;
      case Style::kMixed: {
        uint64_t pick = rng.Uniform(10);
        if (pick < 6) {
          token = GenerateWord(&rng, 2, 12);
        } else if (pick < 8) {
          token = GenerateNumericCode(&rng);
        } else if (pick < 9) {
          token = GenerateDate(&rng);
        } else {
          token = GeneratePhrase(&rng, 2);
        }
        break;
      }
      case Style::kEntities:
        token = GeneratePhrase(&rng, 1 + rng.Uniform(3));
        break;
    }
    if (seen.insert(token).second) vocab.words_.push_back(std::move(token));
  }
  return vocab;
}

}  // namespace mate
