// The MATE index (§5): the classic single-attribute inverted index
// (value -> posting list of (table, column, row)) extended with one super
// key per table row. Supports the full §5.4 maintenance surface: table/row
// inserts, column adds, cell updates, and deletes.
//
// The index stores only normalized values; callers normalize with
// NormalizeValue before probing (query-side helpers do this already).

#ifndef MATE_INDEX_INVERTED_INDEX_H_
#define MATE_INDEX_INVERTED_INDEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hash/hash_function.h"
#include "index/posting.h"
#include "index/superkey_store.h"
#include "storage/corpus.h"
#include "storage/value_dictionary.h"

namespace mate {

class InvertedIndex {
 public:
  /// An index with a given super-key hash. Use BuildIndex (index_builder.h)
  /// to construct and populate one from a corpus.
  explicit InvertedIndex(std::unique_ptr<RowHashFunction> hash);

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Posting list of a normalized value, or nullptr if absent.
  const PostingList* Lookup(std::string_view normalized) const;

  const SuperKeyStore& superkeys() const { return superkeys_; }
  const RowHashFunction& hash() const { return *hash_; }
  size_t hash_bits() const { return hash_->hash_bits(); }

  const ValueDictionary& dictionary() const { return dictionary_; }

  /// Total posting entries across all lists.
  size_t NumPostingEntries() const { return num_posting_entries_; }
  /// Distinct values with a posting list (the loader streams exactly this
  /// many lists in phase 2; stats/bench reporting).
  size_t NumPostingLists() const { return postings_.size(); }

  /// Approximate bytes: postings + dictionary + super keys.
  size_t MemoryBytes() const;
  size_t PostingBytes() const {
    return num_posting_entries_ * sizeof(PostingEntry);
  }
  size_t SuperKeyBytes() const { return superkeys_.MemoryBytes(); }

  /// Swaps in a different super-key hash and recomputes every row's super
  /// key (optionally with `num_threads` workers — tables are disjoint, so
  /// re-keying parallelizes perfectly). Posting lists and dictionary are
  /// hash-independent and untouched. This is how the Table 2/3 hash sweeps
  /// re-key one index instead of rebuilding it per hash function.
  Status ResetHash(const Corpus& corpus,
                   std::unique_ptr<RowHashFunction> new_hash,
                   unsigned num_threads = 1);

  /// Recomputes every row's super key with the current hash (the parallel
  /// hashing pass behind ResetHash and the parallel index build).
  /// `num_threads` 0 = hardware concurrency.
  Status RebuildSuperKeys(const Corpus& corpus, unsigned num_threads = 1);

  /// Recomputes the super keys of tables [begin, end) from the corpus.
  /// Thread-safe for disjoint table ranges once the store is pre-sized.
  void RehashTableRange(const Corpus& corpus, TableId begin, TableId end);

  /// Adds the posting entries of table `t` without touching super keys
  /// (builder fast path; pair with RebuildSuperKeys).
  Status InsertTablePostingsOnly(const Corpus& corpus, TableId t);

  // ---- §5.4 index maintenance ---------------------------------------
  // All methods take the corpus in its *post-edit* state unless noted.

  /// Indexes a table just added to the corpus.
  Status InsertTable(const Corpus& corpus, TableId t);

  /// Indexes a row just appended to table `t`.
  Status InsertRow(const Corpus& corpus, TableId t, RowId r);

  /// Indexes a column just appended to table `t` (id = last column): adds
  /// its PL items and ORs its signatures into the existing row super keys.
  Status AddAppendedColumn(const Corpus& corpus, TableId t);

  /// Re-indexes cell (t, r, c) whose previous normalized value was
  /// `old_normalized`; rehashes the row's super key from scratch.
  Status UpdateCell(const Corpus& corpus, TableId t, RowId r, ColumnId c,
                    std::string_view old_normalized);

  /// Removes the PL items of row (t, r) and zeroes its super key. The
  /// corpus row may be tombstoned before or after this call (tombstones
  /// keep cells readable).
  Status DeleteRow(const Corpus& corpus, TableId t, RowId r);

  /// Removes all PL items of table `t`.
  Status DeleteTable(const Corpus& corpus, TableId t);

  /// Handles a column drop: `removed_cells` holds the dropped column's cell
  /// text per row, `dropped` its old column id; the corpus table has already
  /// been edited. Later columns' PL items are re-keyed and every row's super
  /// key is rehashed (§5.4: a column delete triggers a table-local rehash).
  Status DropColumn(const Corpus& corpus, TableId t, ColumnId dropped,
                    const std::vector<std::string>& removed_cells);

  // ---- internals shared with the builder/loader ----------------------

  /// Adds one posting entry (kept sorted) for an already-normalized value.
  void AddPosting(std::string_view normalized, PostingEntry entry);

  SuperKeyStore* mutable_superkeys() { return &superkeys_; }

  /// Iterates all (value_id, posting list) pairs; order unspecified.
  template <typename Fn>
  void ForEachPostingList(Fn&& fn) const {
    for (const auto& [value_id, list] : postings_) fn(value_id, list);
  }

 private:
  // Removes entry from the PL of `normalized` (no-op if absent).
  void RemovePosting(std::string_view normalized, const PostingEntry& entry);

  // Recomputes the super key of (t, r) from the corpus row.
  void RehashRow(const Corpus& corpus, TableId t, RowId r);

  std::unique_ptr<RowHashFunction> hash_;
  ValueDictionary dictionary_;
  std::unordered_map<ValueId, PostingList> postings_;
  SuperKeyStore superkeys_;
  size_t num_posting_entries_ = 0;

  friend class IndexLoader;
};

}  // namespace mate

#endif  // MATE_INDEX_INVERTED_INDEX_H_
