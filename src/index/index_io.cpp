#include "index/index_io.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

#include "storage/corpus_io.h"
#include "util/coding.h"
#include "util/mapped_file.h"
#include "util/parse_cursor.h"

namespace mate {

namespace {
constexpr char kMagic[] = "MATEINDX";
constexpr size_t kMagicLen = 8;
// v2: shape section ahead of the dictionary, size-prefixed posting region.
constexpr uint32_t kVersion = 2;

}  // namespace

// Phase-1/2 state shared between Begin and Finish. The whole image stays
// reachable through `file` (mmap'd when possible) so phase 2 can stream the
// bulky sections without an upfront copy.
struct PhasedIndexLoad::Impl {
  MappedFile file;
  ParseCursor cursor;
  HashFamily family = HashFamily::kXash;
  CorpusStats stats;
  std::vector<uint64_t> rows_per_table;
  uint64_t dict_size = 0;
  uint64_t num_lists = 0;
  std::string_view posting_region;
  std::string_view superkey_region;
  std::unique_ptr<InvertedIndex> owned;
  InvertedIndex* target = nullptr;
  bool finished = false;
};

// Friend of InvertedIndex: fills internals on load.
class IndexLoader {
 public:
  // Header, stats, shape, dictionary; bounds-checks the posting region.
  static Status ParsePhase1(PhasedIndexLoad::Impl* impl) {
    ParseCursor& cursor = impl->cursor;
    std::string_view* data = &cursor.remaining;
    cursor.section = "header";
    if (data->size() < kMagicLen + 4 ||
        data->substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen)) {
      return cursor.Corrupt("bad magic");
    }
    data->remove_prefix(kMagicLen);
    uint32_t version = 0;
    if (!GetFixed32(data, &version)) return cursor.Corrupt("bad version");
    if (version != kVersion) {
      return cursor.Corrupt("unsupported version " + std::to_string(version) +
                            " (expected " + std::to_string(kVersion) + ")");
    }
    std::string_view family_name;
    if (!GetLengthPrefixed(data, &family_name)) {
      return cursor.Corrupt("bad hash family");
    }
    uint64_t hash_bits = 0;
    if (!GetVarint64(data, &hash_bits)) {
      return cursor.Corrupt("bad hash width");
    }
    if (data->empty()) return cursor.Corrupt("truncated stats flag");
    const uint8_t used_stats = static_cast<uint8_t>((*data)[0]);
    data->remove_prefix(1);
    // Shared CorpusStats codec (storage/corpus.h) — the corpus v2 header
    // persists the same block.
    if (!ParseCorpusStats(data, &impl->stats)) {
      return cursor.Corrupt("bad corpus stats");
    }

    MATE_ASSIGN_OR_RETURN(impl->family, ParseHashFamily(family_name));
    std::unique_ptr<RowHashFunction> hash =
        MakeRowHash(impl->family, static_cast<size_t>(hash_bits),
                    used_stats ? &impl->stats : nullptr);
    if (hash == nullptr) return cursor.Corrupt("bad hash configuration");
    impl->owned = std::make_unique<InvertedIndex>(std::move(hash));
    impl->target = impl->owned.get();

    // Shape: per-table row counts, ahead of the bulky sections so loading
    // can cross-validate against a corpus before postings exist in memory.
    // Counts are bounds-checked against the bytes left (>= 1 byte each) so
    // a corrupt value fails the parse instead of driving a huge allocation.
    cursor.section = "shape";
    uint64_t num_tables = 0;
    if (!GetVarint64(data, &num_tables) || num_tables > data->size()) {
      return cursor.Corrupt("bad table count");
    }
    impl->rows_per_table.reserve(static_cast<size_t>(num_tables));
    for (uint64_t t = 0; t < num_tables; ++t) {
      uint64_t rows = 0;
      if (!GetVarint64(data, &rows)) {
        return cursor.Corrupt("truncated row counts");
      }
      impl->rows_per_table.push_back(rows);
    }

    // Dictionary, in id order.
    cursor.section = "dictionary";
    if (!GetVarint64(data, &impl->dict_size) ||
        impl->dict_size > data->size()) {
      return cursor.Corrupt("bad dictionary size");
    }
    for (uint64_t i = 0; i < impl->dict_size; ++i) {
      std::string_view value;
      if (!GetLengthPrefixed(data, &value)) {
        return cursor.Corrupt("truncated dictionary");
      }
      ValueId id = impl->target->dictionary_.GetOrAdd(value);
      if (id != i) return cursor.Corrupt("dictionary id skew");
    }

    // Posting region header: list count + byte extent, so the contiguous
    // region can be bounds-checked (and the super keys located) without
    // parsing a single list.
    cursor.section = "postings";
    if (!GetVarint64(data, &impl->num_lists)) {
      return cursor.Corrupt("bad posting list count");
    }
    uint64_t posting_bytes = 0;
    if (!GetVarint64(data, &posting_bytes)) {
      return cursor.Corrupt("bad posting region size");
    }
    if (posting_bytes > data->size()) {
      return cursor.Corrupt("posting region extends past the end of the "
                            "image (" +
                            std::to_string(posting_bytes) +
                            " bytes declared, " +
                            std::to_string(data->size()) + " available)");
    }
    // Every list costs >= 2 bytes (value id + length varints), so a
    // corrupt count fails here instead of driving a huge map reserve.
    if (impl->num_lists > posting_bytes / 2 &&
        !(impl->num_lists == 0 && posting_bytes == 0)) {
      return cursor.Corrupt("posting list count exceeds the region size");
    }
    impl->posting_region = data->substr(0, posting_bytes);
    impl->superkey_region = data->substr(posting_bytes);
    return Status::OK();
  }

  // Posting lists + super keys, streamed from the (usually mmap'd) image.
  static Status ParsePhase2(PhasedIndexLoad::Impl* impl) {
    InvertedIndex* index = impl->target;
    ParseCursor cursor{impl->posting_region, impl->cursor.base,
                       impl->cursor.image_size, "index", "postings"};
    std::string_view* data = &cursor.remaining;
    index->postings_.reserve(static_cast<size_t>(impl->num_lists));
    for (uint64_t i = 0; i < impl->num_lists; ++i) {
      uint64_t value_id = 0, list_len = 0;
      if (!GetVarint64(data, &value_id) || !GetVarint64(data, &list_len)) {
        return cursor.Corrupt("bad posting list header");
      }
      if (value_id >= impl->dict_size) {
        return cursor.Corrupt("posting for unknown value " +
                              std::to_string(value_id));
      }
      // Every entry costs >= 3 bytes (three varints); reject before
      // reserving so a flipped-byte length cannot drive a reserve an
      // order of magnitude past the region size.
      if (list_len > data->size() / 3) {
        return cursor.Corrupt("bad posting list length " +
                              std::to_string(list_len));
      }
      PostingList list;
      list.reserve(static_cast<size_t>(list_len));
      for (uint64_t e = 0; e < list_len; ++e) {
        uint32_t t = 0, c = 0, r = 0;
        if (!GetVarint32(data, &t) || !GetVarint32(data, &c) ||
            !GetVarint32(data, &r)) {
          return cursor.Corrupt("truncated posting entry");
        }
        list.push_back(PostingEntry{t, c, r});
      }
      index->num_posting_entries_ += list.size();
      index->postings_.emplace(static_cast<ValueId>(value_id),
                               std::move(list));
    }
    if (!data->empty()) {
      return cursor.Corrupt("posting region size skew: " +
                            std::to_string(data->size()) + " bytes left over");
    }

    // Super keys.
    cursor = ParseCursor{impl->superkey_region, impl->cursor.base,
                         impl->cursor.image_size, "index", "super-key"};
    const size_t section_start = cursor.offset();
    data = &cursor.remaining;
    auto store = SuperKeyStore::ParseFrom(data);
    if (!store.ok()) {
      // ParseFrom leaves the cursor unspecified on failure; report the
      // section start instead of a bogus mid-parse offset.
      return Status::Corruption(
          "index: " + store.status().message() +
          " (super-key section starting at byte offset " +
          std::to_string(section_start) + " of " +
          std::to_string(cursor.image_size) + ")");
    }
    if (store->hash_bits() != index->hash_bits()) {
      return cursor.Corrupt("super key width mismatch");
    }
    // The shape header is what phase 1 validated the corpus against; skew
    // between it and the streamed store must fail the readiness check —
    // never produce a silently wrong index.
    if (store->num_tables() != impl->rows_per_table.size()) {
      return cursor.Corrupt(
          "super key store covers " + std::to_string(store->num_tables()) +
          " tables but the shape header declares " +
          std::to_string(impl->rows_per_table.size()));
    }
    for (size_t t = 0; t < impl->rows_per_table.size(); ++t) {
      if (store->NumRows(t) != impl->rows_per_table[t]) {
        return cursor.Corrupt(
            "super key table " + std::to_string(t) + " has " +
            std::to_string(store->NumRows(t)) +
            " rows but the shape header declares " +
            std::to_string(impl->rows_per_table[t]));
      }
    }
    if (!data->empty()) {
      return cursor.Corrupt(std::to_string(data->size()) +
                            " trailing bytes after the super keys");
    }
    index->superkeys_ = std::move(*store);
    return Status::OK();
  }

  // Blocking both-phase parse over a borrowed buffer (DeserializeIndex).
  static Result<std::unique_ptr<InvertedIndex>> LoadAll(std::string_view data,
                                                        HashFamily* family,
                                                        CorpusStats* stats) {
    PhasedIndexLoad::Impl impl;
    impl.cursor =
        ParseCursor{data, data.data(), data.size(), "index", "header"};
    MATE_RETURN_IF_ERROR(ParsePhase1(&impl));
    if (family != nullptr) *family = impl.family;
    if (stats != nullptr) *stats = impl.stats;
    MATE_RETURN_IF_ERROR(ParsePhase2(&impl));
    return std::move(impl.owned);
  }
};

PhasedIndexLoad::PhasedIndexLoad() : impl_(std::make_unique<Impl>()) {}
PhasedIndexLoad::~PhasedIndexLoad() = default;
PhasedIndexLoad::PhasedIndexLoad(PhasedIndexLoad&&) noexcept = default;
PhasedIndexLoad& PhasedIndexLoad::operator=(PhasedIndexLoad&&) noexcept =
    default;

Result<PhasedIndexLoad> PhasedIndexLoad::Begin(const std::string& path) {
  PhasedIndexLoad load;
  MATE_ASSIGN_OR_RETURN(load.impl_->file, MappedFile::Open(path));
  const std::string_view image = load.impl_->file.view();
  load.impl_->cursor = ParseCursor{image, image.data(), image.size(),
                                   "index", "header"};
  MATE_RETURN_IF_ERROR(IndexLoader::ParsePhase1(load.impl_.get()));
  return load;
}

HashFamily PhasedIndexLoad::hash_family() const { return impl_->family; }
const CorpusStats& PhasedIndexLoad::corpus_stats() const {
  return impl_->stats;
}
const std::vector<uint64_t>& PhasedIndexLoad::rows_per_table() const {
  return impl_->rows_per_table;
}
size_t PhasedIndexLoad::posting_region_bytes() const {
  return impl_->posting_region.size();
}
bool PhasedIndexLoad::is_mapped() const { return impl_->file.is_mapped(); }

std::unique_ptr<InvertedIndex> PhasedIndexLoad::TakeIndex() {
  return std::move(impl_->owned);
}

Status PhasedIndexLoad::Finish() {
  Impl* impl = impl_.get();
  if (impl->finished) {
    return Status::Internal("PhasedIndexLoad::Finish called twice");
  }
  impl->finished = true;
  const Status status = IndexLoader::ParsePhase2(impl);
  // The parsed structures own everything now; unpin the image.
  impl->posting_region = {};
  impl->superkey_region = {};
  impl->cursor = ParseCursor{};
  impl->file.Release();
  return status;
}

void SerializeIndex(const InvertedIndex& index, HashFamily family,
                    const CorpusStats& stats, std::string* out) {
  out->clear();
  out->append(kMagic, kMagicLen);
  PutFixed32(out, kVersion);
  PutLengthPrefixed(out, HashFamilyName(family));
  PutVarint64(out, index.hash_bits());
  // Heuristic: stats were "used" iff they are non-empty.
  out->push_back(stats.num_cells > 0 ? '\x01' : '\x00');
  AppendCorpusStats(out, stats);

  // Shape section (v2): per-table super-key row counts.
  const std::vector<uint64_t> rows_per_table = index.superkeys().RowCounts();
  PutVarint64(out, rows_per_table.size());
  for (uint64_t rows : rows_per_table) PutVarint64(out, rows);

  const ValueDictionary& dict = index.dictionary();
  PutVarint64(out, dict.size());
  for (ValueId id = 0; id < dict.size(); ++id) {
    PutLengthPrefixed(out, dict.ValueOf(id));
  }

  // Posting lists in value-id order for deterministic bytes. The region is
  // size-prefixed; a cheap varint-length pre-pass computes the prefix so
  // the lists stream straight into `out` without a second full-size buffer.
  std::vector<std::pair<ValueId, const PostingList*>> lists;
  index.ForEachPostingList([&](ValueId id, const PostingList& list) {
    lists.emplace_back(id, &list);
  });
  std::sort(lists.begin(), lists.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  uint64_t region_bytes = 0;
  for (const auto& [id, list] : lists) {
    region_bytes += VarintLength(id) + VarintLength(list->size());
    for (const PostingEntry& entry : *list) {
      region_bytes += VarintLength(entry.table_id) +
                      VarintLength(entry.column_id) +
                      VarintLength(entry.row_id);
    }
  }
  PutVarint64(out, lists.size());
  PutVarint64(out, region_bytes);
  const size_t region_start = out->size();
  for (const auto& [id, list] : lists) {
    PutVarint64(out, id);
    PutVarint64(out, list->size());
    for (const PostingEntry& entry : *list) {
      PutVarint32(out, entry.table_id);
      PutVarint32(out, entry.column_id);
      PutVarint32(out, entry.row_id);
    }
  }
  assert(out->size() - region_start == region_bytes);
  (void)region_start;

  index.superkeys().AppendToString(out);
}

Result<std::unique_ptr<InvertedIndex>> DeserializeIndex(
    std::string_view data, HashFamily* family, CorpusStats* stats) {
  return IndexLoader::LoadAll(data, family, stats);
}

Status SaveIndex(const InvertedIndex& index, HashFamily family,
                 const CorpusStats& stats, const std::string& path) {
  std::string buffer;
  SerializeIndex(index, family, stats, &buffer);
  return WriteFileAtomic(path, buffer);
}

Result<std::unique_ptr<InvertedIndex>> LoadIndex(const std::string& path,
                                                 HashFamily* family,
                                                 CorpusStats* stats) {
  MATE_ASSIGN_OR_RETURN(PhasedIndexLoad load, PhasedIndexLoad::Begin(path));
  if (family != nullptr) *family = load.hash_family();
  if (stats != nullptr) *stats = load.corpus_stats();
  std::unique_ptr<InvertedIndex> index = load.TakeIndex();
  MATE_RETURN_IF_ERROR(load.Finish());
  return index;
}

}  // namespace mate
