#include "index/index_io.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "storage/corpus_io.h"
#include "util/coding.h"

namespace mate {

namespace {
constexpr char kMagic[] = "MATEINDX";
constexpr size_t kMagicLen = 8;
constexpr uint32_t kVersion = 1;

void PutDouble(std::string* out, double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  PutFixed64(out, bits);
}

bool GetDouble(std::string_view* input, double* d) {
  uint64_t bits = 0;
  if (!GetFixed64(input, &bits)) return false;
  std::memcpy(d, &bits, sizeof(bits));
  return true;
}

void PutStats(std::string* out, const CorpusStats& stats) {
  PutVarint64(out, stats.num_tables);
  PutVarint64(out, stats.num_columns);
  PutVarint64(out, stats.num_rows);
  PutVarint64(out, stats.num_cells);
  PutVarint64(out, stats.num_unique_values);
  PutDouble(out, stats.avg_columns_per_table);
  PutDouble(out, stats.avg_rows_per_table);
  for (uint64_t count : stats.char_counts) PutVarint64(out, count);
}

bool GetStats(std::string_view* input, CorpusStats* stats) {
  if (!GetVarint64(input, &stats->num_tables)) return false;
  if (!GetVarint64(input, &stats->num_columns)) return false;
  if (!GetVarint64(input, &stats->num_rows)) return false;
  if (!GetVarint64(input, &stats->num_cells)) return false;
  if (!GetVarint64(input, &stats->num_unique_values)) return false;
  if (!GetDouble(input, &stats->avg_columns_per_table)) return false;
  if (!GetDouble(input, &stats->avg_rows_per_table)) return false;
  for (uint64_t& count : stats->char_counts) {
    if (!GetVarint64(input, &count)) return false;
  }
  return true;
}

}  // namespace

// Friend of InvertedIndex: fills internals on load.
class IndexLoader {
 public:
  static Result<std::unique_ptr<InvertedIndex>> Load(
      std::string_view data, HashFamily* family_out, CorpusStats* stats_out) {
    if (data.size() < kMagicLen + 4 ||
        data.substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen)) {
      return Status::Corruption("index: bad magic");
    }
    data.remove_prefix(kMagicLen);
    uint32_t version = 0;
    if (!GetFixed32(&data, &version) || version != kVersion) {
      return Status::Corruption("index: unsupported version");
    }
    std::string_view family_name;
    if (!GetLengthPrefixed(&data, &family_name)) {
      return Status::Corruption("index: bad hash family");
    }
    uint64_t hash_bits = 0;
    if (!GetVarint64(&data, &hash_bits)) {
      return Status::Corruption("index: bad hash width");
    }
    uint8_t used_stats = 0;
    if (data.empty()) return Status::Corruption("index: truncated");
    used_stats = static_cast<uint8_t>(data[0]);
    data.remove_prefix(1);
    CorpusStats stats;
    if (!GetStats(&data, &stats)) {
      return Status::Corruption("index: bad corpus stats");
    }

    MATE_ASSIGN_OR_RETURN(HashFamily family, ParseHashFamily(family_name));
    if (family_out != nullptr) *family_out = family;
    if (stats_out != nullptr) *stats_out = stats;
    std::unique_ptr<RowHashFunction> hash =
        MakeRowHash(family, static_cast<size_t>(hash_bits),
                    used_stats ? &stats : nullptr);
    if (hash == nullptr) return Status::Corruption("index: bad hash config");
    auto index = std::make_unique<InvertedIndex>(std::move(hash));

    // Dictionary, in id order.
    uint64_t dict_size = 0;
    if (!GetVarint64(&data, &dict_size)) {
      return Status::Corruption("index: bad dictionary size");
    }
    for (uint64_t i = 0; i < dict_size; ++i) {
      std::string_view value;
      if (!GetLengthPrefixed(&data, &value)) {
        return Status::Corruption("index: truncated dictionary");
      }
      ValueId id = index->dictionary_.GetOrAdd(value);
      if (id != i) return Status::Corruption("index: dictionary id skew");
    }

    // Posting lists.
    uint64_t num_lists = 0;
    if (!GetVarint64(&data, &num_lists)) {
      return Status::Corruption("index: bad posting list count");
    }
    for (uint64_t i = 0; i < num_lists; ++i) {
      uint64_t value_id = 0, list_len = 0;
      if (!GetVarint64(&data, &value_id) || !GetVarint64(&data, &list_len)) {
        return Status::Corruption("index: bad posting list header");
      }
      if (value_id >= dict_size) {
        return Status::Corruption("index: posting for unknown value");
      }
      PostingList list;
      list.reserve(list_len);
      for (uint64_t e = 0; e < list_len; ++e) {
        uint32_t t = 0, c = 0, r = 0;
        if (!GetVarint32(&data, &t) || !GetVarint32(&data, &c) ||
            !GetVarint32(&data, &r)) {
          return Status::Corruption("index: truncated posting entry");
        }
        list.push_back(PostingEntry{t, c, r});
      }
      index->num_posting_entries_ += list.size();
      index->postings_.emplace(value_id, std::move(list));
    }

    // Super keys.
    MATE_ASSIGN_OR_RETURN(SuperKeyStore store,
                          SuperKeyStore::ParseFrom(&data));
    if (store.hash_bits() != index->hash_bits()) {
      return Status::Corruption("index: super key width mismatch");
    }
    index->superkeys_ = std::move(store);
    return index;
  }
};

void SerializeIndex(const InvertedIndex& index, HashFamily family,
                    const CorpusStats& stats, std::string* out) {
  out->clear();
  out->append(kMagic, kMagicLen);
  PutFixed32(out, kVersion);
  PutLengthPrefixed(out, HashFamilyName(family));
  PutVarint64(out, index.hash_bits());
  // Heuristic: stats were "used" iff they are non-empty.
  out->push_back(stats.num_cells > 0 ? '\x01' : '\x00');
  PutStats(out, stats);

  const ValueDictionary& dict = index.dictionary();
  PutVarint64(out, dict.size());
  for (ValueId id = 0; id < dict.size(); ++id) {
    PutLengthPrefixed(out, dict.ValueOf(id));
  }

  // Posting lists in value-id order for deterministic bytes.
  std::vector<std::pair<ValueId, const PostingList*>> lists;
  index.ForEachPostingList([&](ValueId id, const PostingList& list) {
    lists.emplace_back(id, &list);
  });
  std::sort(lists.begin(), lists.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  PutVarint64(out, lists.size());
  for (const auto& [id, list] : lists) {
    PutVarint64(out, id);
    PutVarint64(out, list->size());
    for (const PostingEntry& entry : *list) {
      PutVarint32(out, entry.table_id);
      PutVarint32(out, entry.column_id);
      PutVarint32(out, entry.row_id);
    }
  }

  index.superkeys().AppendToString(out);
}

Result<std::unique_ptr<InvertedIndex>> DeserializeIndex(
    std::string_view data, HashFamily* family, CorpusStats* stats) {
  return IndexLoader::Load(data, family, stats);
}

Status SaveIndex(const InvertedIndex& index, HashFamily family,
                 const CorpusStats& stats, const std::string& path) {
  std::string buffer;
  SerializeIndex(index, family, stats, &buffer);
  return WriteFileAtomic(path, buffer);
}

Result<std::unique_ptr<InvertedIndex>> LoadIndex(const std::string& path,
                                                 HashFamily* family,
                                                 CorpusStats* stats) {
  MATE_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  return DeserializeIndex(data, family, stats);
}

}  // namespace mate
