// Per-row super-key storage (§5.1). The paper discusses two layouts: super
// keys duplicated per PL item, or the space-efficient per-row layout (one
// super key per table row, joined with the PLs at probe time). This store
// implements the per-row layout: a flat word array per table, indexed by
// row id, so a probe is one pointer computation.

#ifndef MATE_INDEX_SUPERKEY_STORE_H_
#define MATE_INDEX_SUPERKEY_STORE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "storage/types.h"
#include "util/bitvector.h"
#include "util/simd.h"
#include "util/status.h"

namespace mate {

class SuperKeyStore {
 public:
  /// `hash_bits` must be a positive multiple of 64 (the store keeps whole
  /// words per row).
  explicit SuperKeyStore(size_t hash_bits);

  size_t hash_bits() const { return hash_bits_; }
  size_t words_per_key() const { return words_per_key_; }
  size_t num_tables() const { return tables_.size(); }

  /// Ensures table `t` exists with room for `num_rows` rows (zero keys).
  void EnsureTable(TableId t, size_t num_rows);

  /// Appends one row slot to table `t`; returns its row id.
  RowId AppendRow(TableId t);

  /// Overwrites the super key of (t, r). Precondition: key width matches.
  void Set(TableId t, RowId r, const BitVector& key);

  /// ORs `signature` into the stored key of (t, r) — the §5.4 column-add
  /// update path.
  void OrInto(TableId t, RowId r, const BitVector& signature);

  /// Zeroes the key of (t, r) (used before a §5.4 rehash).
  void Reset(TableId t, RowId r);

  /// Borrowed pointer to the words of (t, r)'s key; valid until the table
  /// is resized.
  const uint64_t* RowWords(TableId t, RowId r) const {
    return tables_[t].data() + static_cast<size_t>(r) * words_per_key_;
  }

  /// Copies the key of (t, r) into a BitVector.
  BitVector Get(TableId t, RowId r) const;

  /// True iff every set bit of `query` is set in the stored key of (t, r) —
  /// the row-filter probe of §6.3, walking words upward so the XASH length
  /// segment short-circuits first. Dispatches to the active SIMD kernel
  /// (util/simd.h) over the query's raw word pointer.
  bool Covers(TableId t, RowId r, const BitVector& query) const {
    return simd::Kernels().covers(query.words(), RowWords(t, r),
                                  words_per_key_);
  }

  /// Rows one CoversBatch call probes at most. 16 keeps a rule-2 prune's
  /// wasted probes bounded while amortizing the dispatch indirection and
  /// the query-side register loads over the whole block.
  static constexpr size_t kMaxProbeBatch = 16;

  /// Batched row-filter probe: bit i of the result is
  /// Covers(t, rows[i], query) for i in [0, count). Precondition:
  /// count <= kMaxProbeBatch. The per-row flat-word layout makes each probe
  /// one pointer computation off the table's slab, so the whole block runs
  /// inside one kernel call (the executor's gather/probe row loop feeds
  /// this; probes are side-effect free, so callers may probe ahead of the
  /// rule-2 walk without changing any decision).
  uint32_t CoversBatch(TableId t, const RowId* rows, size_t count,
                       const BitVector& query) const {
    assert(count <= kMaxProbeBatch);
    return simd::Kernels().covers_batch(query.words(), tables_[t].data(),
                                        rows, words_per_key_, count);
  }

  size_t NumRows(TableId t) const {
    return tables_[t].size() / words_per_key_;
  }

  /// Per-table row counts — the shape the serialized index advertises in
  /// its header so phase-1 loading can cross-validate against the corpus
  /// before the super keys themselves are streamed in.
  std::vector<uint64_t> RowCounts() const;

  /// Total bytes of key payload (for the §7.1 index-size stats).
  size_t MemoryBytes() const;

  /// Serialization for index_io.
  void AppendToString(std::string* out) const;
  static Result<SuperKeyStore> ParseFrom(std::string_view* input);

 private:
  size_t hash_bits_;
  size_t words_per_key_;
  std::vector<std::vector<uint64_t>> tables_;
};

}  // namespace mate

#endif  // MATE_INDEX_SUPERKEY_STORE_H_
