#include "index/index_builder.h"

#include <sstream>

#include "util/stopwatch.h"

namespace mate {

std::string IndexBuildReport::ToString() const {
  std::ostringstream os;
  os << "build=" << build_seconds << "s (stats scan " << stats_scan_seconds
     << "s), postings=" << posting_entries << " (" << posting_bytes
     << " B), dict=" << dictionary_bytes << " B, superkeys=" << superkey_bytes
     << " B per-row (" << superkey_bytes_per_cell_layout << " B per-cell)";
  return os.str();
}

Result<std::unique_ptr<InvertedIndex>> BuildIndex(
    const Corpus& corpus, const IndexBuildOptions& options) {
  IndexBuildReport report;
  return BuildIndexWithReport(corpus, options, &report);
}

Result<std::unique_ptr<InvertedIndex>> BuildIndexWithReport(
    const Corpus& corpus, const IndexBuildOptions& options,
    IndexBuildReport* report) {
  if (options.hash_bits == 0 || options.hash_bits % 64 != 0 ||
      options.hash_bits > BitVector::kMaxBits) {
    return Status::InvalidArgument(
        "hash_bits must be a positive multiple of 64, at most 512");
  }

  Stopwatch stats_timer;
  CorpusStats stats;
  if (options.use_corpus_stats) stats = corpus.ComputeStats();
  report->corpus_stats = stats;
  report->stats_scan_seconds = stats_timer.ElapsedSeconds();

  std::unique_ptr<RowHashFunction> hash =
      MakeRowHash(options.hash_family, options.hash_bits,
                  options.use_corpus_stats ? &stats : nullptr);
  if (hash == nullptr) {
    return Status::InvalidArgument("unknown hash family");
  }

  Stopwatch build_timer;
  auto index = std::make_unique<InvertedIndex>(std::move(hash));
  if (options.num_threads == 1) {
    for (TableId t = 0; t < corpus.NumTables(); ++t) {
      MATE_RETURN_IF_ERROR(index->InsertTable(corpus, t));
    }
  } else {
    // Postings stay serial (deterministic dictionary ids); the super-key
    // hashing pass — the dominant cost — fans out across threads.
    for (TableId t = 0; t < corpus.NumTables(); ++t) {
      MATE_RETURN_IF_ERROR(index->InsertTablePostingsOnly(corpus, t));
    }
    MATE_RETURN_IF_ERROR(
        index->RebuildSuperKeys(corpus, options.num_threads));
  }
  report->build_seconds = build_timer.ElapsedSeconds();
  report->posting_entries = index->NumPostingEntries();
  report->posting_bytes = index->PostingBytes();
  report->dictionary_bytes = index->dictionary().MemoryBytes();
  report->superkey_bytes = index->SuperKeyBytes();
  report->superkey_bytes_per_cell_layout =
      report->posting_entries * (options.hash_bits / 8);
  return index;
}

}  // namespace mate
