// Offline indexing (Figure 2, left): scans a corpus, builds the inverted
// index and per-row super keys, and reports build cost and size — the
// quantities behind the §7.1 "Index generation" discussion.

#ifndef MATE_INDEX_INDEX_BUILDER_H_
#define MATE_INDEX_INDEX_BUILDER_H_

#include <memory>
#include <string>

#include "hash/hash_registry.h"
#include "index/inverted_index.h"
#include "storage/corpus.h"
#include "util/status.h"

namespace mate {

struct IndexBuildOptions {
  size_t hash_bits = 128;
  HashFamily hash_family = HashFamily::kXash;

  /// When true (default), a corpus scan parameterizes the hash: XASH alpha
  /// via Eq. 5 and measured character frequencies; Bloom hash count via the
  /// average column count V.
  bool use_corpus_stats = true;

  /// Worker threads for the super-key hashing pass (the dominant build
  /// cost; posting-list insertion stays single-threaded for determinism).
  /// 0 uses the hardware concurrency; 1 builds fully serially. The built
  /// index is bit-identical regardless of thread count.
  unsigned num_threads = 1;
};

struct IndexBuildReport {
  CorpusStats corpus_stats;
  double stats_scan_seconds = 0.0;
  double build_seconds = 0.0;
  size_t posting_entries = 0;
  size_t posting_bytes = 0;
  size_t dictionary_bytes = 0;
  size_t superkey_bytes = 0;
  /// Bytes the paper's per-cell super-key layout would use (§7.1 compares
  /// per-cell vs per-row storage).
  size_t superkey_bytes_per_cell_layout = 0;

  std::string ToString() const;
};

/// Builds an index over `corpus`.
Result<std::unique_ptr<InvertedIndex>> BuildIndex(
    const Corpus& corpus, const IndexBuildOptions& options);

/// Same, also filling `*report`.
Result<std::unique_ptr<InvertedIndex>> BuildIndexWithReport(
    const Corpus& corpus, const IndexBuildOptions& options,
    IndexBuildReport* report);

}  // namespace mate

#endif  // MATE_INDEX_INDEX_BUILDER_H_
