#include "index/superkey_store.h"

#include <cassert>

#include "util/coding.h"

namespace mate {

SuperKeyStore::SuperKeyStore(size_t hash_bits)
    : hash_bits_(hash_bits), words_per_key_(hash_bits / 64) {
  assert(hash_bits > 0 && hash_bits % 64 == 0);
}

void SuperKeyStore::EnsureTable(TableId t, size_t num_rows) {
  if (tables_.size() <= t) tables_.resize(t + 1);
  if (tables_[t].size() < num_rows * words_per_key_) {
    tables_[t].resize(num_rows * words_per_key_, 0);
  }
}

RowId SuperKeyStore::AppendRow(TableId t) {
  if (tables_.size() <= t) tables_.resize(t + 1);
  RowId r = static_cast<RowId>(tables_[t].size() / words_per_key_);
  tables_[t].resize(tables_[t].size() + words_per_key_, 0);
  return r;
}

void SuperKeyStore::Set(TableId t, RowId r, const BitVector& key) {
  assert(key.num_bits() == hash_bits_);
  uint64_t* row = tables_[t].data() + static_cast<size_t>(r) * words_per_key_;
  for (size_t w = 0; w < words_per_key_; ++w) row[w] = key.word(w);
}

void SuperKeyStore::OrInto(TableId t, RowId r, const BitVector& signature) {
  assert(signature.num_bits() == hash_bits_);
  uint64_t* row = tables_[t].data() + static_cast<size_t>(r) * words_per_key_;
  for (size_t w = 0; w < words_per_key_; ++w) row[w] |= signature.word(w);
}

void SuperKeyStore::Reset(TableId t, RowId r) {
  uint64_t* row = tables_[t].data() + static_cast<size_t>(r) * words_per_key_;
  for (size_t w = 0; w < words_per_key_; ++w) row[w] = 0;
}

BitVector SuperKeyStore::Get(TableId t, RowId r) const {
  BitVector key(hash_bits_);
  const uint64_t* row = RowWords(t, r);
  for (size_t w = 0; w < words_per_key_; ++w) key.set_word(w, row[w]);
  return key;
}

std::vector<uint64_t> SuperKeyStore::RowCounts() const {
  std::vector<uint64_t> counts;
  counts.reserve(tables_.size());
  for (const auto& table : tables_) {
    counts.push_back(table.size() / words_per_key_);
  }
  return counts;
}

size_t SuperKeyStore::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& table : tables_) bytes += table.size() * sizeof(uint64_t);
  return bytes;
}

void SuperKeyStore::AppendToString(std::string* out) const {
  PutVarint64(out, hash_bits_);
  PutVarint64(out, tables_.size());
  for (const auto& table : tables_) {
    PutVarint64(out, table.size());
    for (uint64_t word : table) PutFixed64(out, word);
  }
}

Result<SuperKeyStore> SuperKeyStore::ParseFrom(std::string_view* input) {
  uint64_t hash_bits = 0;
  if (!GetVarint64(input, &hash_bits) || hash_bits == 0 ||
      hash_bits % 64 != 0 || hash_bits > BitVector::kMaxBits) {
    return Status::Corruption("superkey store: bad hash width");
  }
  uint64_t num_tables = 0;
  // Size bounds before any resize: a flipped byte must fail the parse, not
  // drive a multi-exabyte allocation (each table costs >= 1 byte, each word
  // exactly 8).
  if (!GetVarint64(input, &num_tables) || num_tables > input->size()) {
    return Status::Corruption("superkey store: bad table count");
  }
  SuperKeyStore store(static_cast<size_t>(hash_bits));
  store.tables_.resize(num_tables);
  for (uint64_t t = 0; t < num_tables; ++t) {
    uint64_t num_words = 0;
    if (!GetVarint64(input, &num_words) || num_words > input->size() / 8) {
      return Status::Corruption("superkey store: bad word count");
    }
    if (num_words % store.words_per_key_ != 0) {
      return Status::Corruption("superkey store: ragged table");
    }
    store.tables_[t].resize(num_words);
    for (uint64_t w = 0; w < num_words; ++w) {
      if (!GetFixed64(input, &store.tables_[t][w])) {
        return Status::Corruption("superkey store: truncated words");
      }
    }
  }
  return store;
}

}  // namespace mate
