#include "index/index_shards.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mate {

IndexShards IndexShards::Build(const Corpus& corpus, size_t num_shards) {
  std::vector<uint64_t> weights;
  weights.reserve(corpus.NumTables());
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    // Shape accessors only: shard planning runs on every sharded query and
    // must not materialize a lazily loaded corpus to weigh it.
    weights.push_back(static_cast<uint64_t>(corpus.table_num_rows(t)) *
                      static_cast<uint64_t>(corpus.table_num_columns(t)));
  }
  return BuildFromWeights(weights, num_shards);
}

IndexShards IndexShards::BuildFromWeights(const std::vector<uint64_t>& weights,
                                          size_t num_shards) {
  IndexShards shards;
  const size_t num_tables = weights.size();
  if (num_tables == 0 || num_shards == 0) return shards;
  num_shards = std::min(num_shards, num_tables);

  uint64_t remaining =
      std::accumulate(weights.begin(), weights.end(), uint64_t{0});
  TableId next = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t shards_left = num_shards - s;
    // Chase the running average of what is left: heavier-than-average
    // prefixes close early and the average of the remainder adapts, so one
    // giant table cannot starve the shards after it.
    const uint64_t target = remaining / shards_left;
    ShardRange range;
    range.begin = next;
    uint64_t acc = 0;
    // Always take one table, then extend while under target — but leave at
    // least one table for each shard still to come.
    do {
      acc += weights[next++];
    } while (acc < target && num_tables - next > shards_left - 1);
    if (s + 1 == num_shards) {
      while (next < num_tables) acc += weights[next++];
    }
    range.end = next;
    assert(range.end > range.begin);
    shards.ranges_.push_back(range);
    shards.weights_.push_back(acc);
    remaining -= std::min(acc, remaining);
  }
  assert(shards.ranges_.back().end == num_tables);
  return shards;
}

size_t IndexShards::ShardOf(TableId t) const {
  assert(!ranges_.empty());
  assert(t >= ranges_.front().begin && t < ranges_.back().end);
  const auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), t,
      [](TableId id, const ShardRange& r) { return id < r.end; });
  return static_cast<size_t>(it - ranges_.begin());
}

}  // namespace mate
