// Index persistence. The on-disk image carries the hash configuration
// (family, width, corpus statistics) so a loaded index reconstructs a
// bit-identical hash function, plus the dictionary, posting lists, and the
// per-row super keys (which are the expensive part to recompute).
//
// Format v2 is laid out for phased loading: a small *shape* section
// (per-table row counts) sits ahead of the bulky data so a loader can
// cross-validate the index against its corpus before postings exist in
// memory, and the posting region is size-prefixed and contiguous so its
// extent can be bounds-checked — and the super-key section located —
// without parsing a single list.
//
// Load errors are section- and offset-aware: a truncated or corrupt image
// names the section ("dictionary", "postings", ...) and the byte offset
// where parsing stopped, not just a generic failure.

#ifndef MATE_INDEX_INDEX_IO_H_
#define MATE_INDEX_INDEX_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hash/hash_registry.h"
#include "index/inverted_index.h"
#include "util/status.h"

namespace mate {

/// Serializes `index` into `out` (replacing its contents). `family` and
/// `stats` must be the values the index was built with (BuildIndexWithReport
/// exposes the stats).
void SerializeIndex(const InvertedIndex& index, HashFamily family,
                    const CorpusStats& stats, std::string* out);

/// Parses an index serialized by SerializeIndex (both phases, blocking).
/// When non-null, `family` and `stats` receive the hash configuration
/// stored in the image (what SaveIndex was called with) — Session keeps
/// them so a loaded session can re-save and re-key without rescanning the
/// corpus.
Result<std::unique_ptr<InvertedIndex>> DeserializeIndex(
    std::string_view data, HashFamily* family = nullptr,
    CorpusStats* stats = nullptr);

Status SaveIndex(const InvertedIndex& index, HashFamily family,
                 const CorpusStats& stats, const std::string& path);
Result<std::unique_ptr<InvertedIndex>> LoadIndex(const std::string& path,
                                                 HashFamily* family = nullptr,
                                                 CorpusStats* stats = nullptr);

/// Two-phase index load — the machinery behind Session::Open's phased path:
///
///   Begin  — opens and memory-maps the file (read-copy fallback for inputs
///            that cannot be mapped), then parses the header, corpus stats,
///            shape section, and value dictionary, and bounds-checks the
///            posting region. Everything a serving process needs to
///            validate the index against its corpus and start accepting
///            traffic, without touching the bulky sections.
///   Finish — phase 2: streams the posting lists and super keys into the
///            index (typically on a background thread; pages fault in
///            lazily under the mmap) and releases the mapping. Call exactly
///            once.
///
/// TakeIndex may be called any time after Begin: the returned index has its
/// hash and dictionary populated but MUST NOT be probed until Finish has
/// returned OK (Session gates this behind its readiness latch). The load
/// object keeps a pointer to the taken index, so it must outlive Finish.
class PhasedIndexLoad {
 public:
  static Result<PhasedIndexLoad> Begin(const std::string& path);

  ~PhasedIndexLoad();
  PhasedIndexLoad(PhasedIndexLoad&&) noexcept;
  PhasedIndexLoad& operator=(PhasedIndexLoad&&) noexcept;

  HashFamily hash_family() const;
  const CorpusStats& corpus_stats() const;
  /// Per-table row counts from the shape header; phase-1 corpus/index
  /// cross-validation happens against these, not the super keys.
  const std::vector<uint64_t>& rows_per_table() const;
  /// Byte size of the contiguous posting region (reporting).
  size_t posting_region_bytes() const;
  /// True when the image is served by an mmap (phase 2 faults pages in
  /// lazily) rather than the read-copy fallback.
  bool is_mapped() const;

  /// Transfers ownership of the index under construction (hash +
  /// dictionary ready; postings/super keys absent until Finish).
  std::unique_ptr<InvertedIndex> TakeIndex();

  /// Phase 2. On failure the index contents are unspecified and must be
  /// discarded (Session surfaces the error from its readiness check).
  Status Finish();

 private:
  friend class IndexLoader;
  PhasedIndexLoad();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mate

#endif  // MATE_INDEX_INDEX_IO_H_
