// Index persistence. The on-disk image carries the hash configuration
// (family, width, corpus statistics) so a loaded index reconstructs a
// bit-identical hash function, plus the dictionary, posting lists, and the
// per-row super keys (which are the expensive part to recompute).

#ifndef MATE_INDEX_INDEX_IO_H_
#define MATE_INDEX_INDEX_IO_H_

#include <memory>
#include <string>

#include "hash/hash_registry.h"
#include "index/inverted_index.h"
#include "util/status.h"

namespace mate {

/// Serializes `index` into `out` (replacing its contents). `family` and
/// `stats` must be the values the index was built with (BuildIndexWithReport
/// exposes the stats).
void SerializeIndex(const InvertedIndex& index, HashFamily family,
                    const CorpusStats& stats, std::string* out);

/// Parses an index serialized by SerializeIndex. When non-null, `family`
/// and `stats` receive the hash configuration stored in the image (what
/// SaveIndex was called with) — Session keeps them so a loaded session can
/// re-save and re-key without rescanning the corpus.
Result<std::unique_ptr<InvertedIndex>> DeserializeIndex(
    std::string_view data, HashFamily* family = nullptr,
    CorpusStats* stats = nullptr);

Status SaveIndex(const InvertedIndex& index, HashFamily family,
                 const CorpusStats& stats, const std::string& path);
Result<std::unique_ptr<InvertedIndex>> LoadIndex(const std::string& path,
                                                 HashFamily* family = nullptr,
                                                 CorpusStats* stats = nullptr);

}  // namespace mate

#endif  // MATE_INDEX_INDEX_IO_H_
