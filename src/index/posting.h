// Posting-list types for the single-attribute inverted index (Eq. 4):
// a normalized value maps to the (table, column, row) triplets containing it.

#ifndef MATE_INDEX_POSTING_H_
#define MATE_INDEX_POSTING_H_

#include <vector>

#include "storage/types.h"

namespace mate {

struct PostingEntry {
  TableId table_id;
  ColumnId column_id;
  RowId row_id;

  bool operator==(const PostingEntry& other) const {
    return table_id == other.table_id && column_id == other.column_id &&
           row_id == other.row_id;
  }
  bool operator<(const PostingEntry& other) const {
    if (table_id != other.table_id) return table_id < other.table_id;
    if (row_id != other.row_id) return row_id < other.row_id;
    return column_id < other.column_id;
  }
};

using PostingList = std::vector<PostingEntry>;

}  // namespace mate

#endif  // MATE_INDEX_POSTING_H_
