// Sharding plan over the inverted index's candidate space: the table-id
// range [0, NumTables) is partitioned into S contiguous ranges of
// approximately equal posting weight. Posting lists are sorted by
// (table_id, row, column), so one shard's slice of any PL is a contiguous
// run found with two binary searches — a shard can fetch and evaluate its
// candidate tables without ever touching a sibling's, which is what lets
// one query's Algorithm-1 loop fan out across the thread pool
// (core/query_executor.h) with zero coordination until the final top-k
// merge.
//
// The plan is a pure layout decision: it affects which worker evaluates
// which candidate table, never the query answer.

#ifndef MATE_INDEX_INDEX_SHARDS_H_
#define MATE_INDEX_INDEX_SHARDS_H_

#include <cstdint>
#include <vector>

#include "storage/corpus.h"

namespace mate {

/// Half-open table-id range [begin, end).
struct ShardRange {
  TableId begin = 0;
  TableId end = 0;

  size_t NumTables() const { return end - begin; }
};

class IndexShards {
 public:
  /// Partitions the corpus's tables into at most `num_shards` contiguous
  /// ranges balanced by cell count (rows x columns — the corpus-side proxy
  /// for posting entries per table). Produces fewer ranges when the corpus
  /// has fewer tables than `num_shards`; zero ranges for an empty corpus or
  /// `num_shards` == 0. Every range is non-empty and the ranges cover
  /// [0, NumTables) in order.
  static IndexShards Build(const Corpus& corpus, size_t num_shards);

  /// Same partition from explicit per-table weights (tests, callers with
  /// better knowledge of per-table cost). weights[t] belongs to table t.
  static IndexShards BuildFromWeights(const std::vector<uint64_t>& weights,
                                      size_t num_shards);

  size_t num_shards() const { return ranges_.size(); }
  const ShardRange& range(size_t s) const { return ranges_[s]; }
  const std::vector<ShardRange>& ranges() const { return ranges_; }

  /// Planned weight of shard `s` (diagnostics; the realized per-query load
  /// depends on where the query's candidates land).
  uint64_t planned_weight(size_t s) const { return weights_[s]; }

  /// Shard owning table `t`. Precondition: num_shards() > 0 and `t` is
  /// inside the partitioned range.
  size_t ShardOf(TableId t) const;

 private:
  std::vector<ShardRange> ranges_;
  std::vector<uint64_t> weights_;  // planned weight per range
};

}  // namespace mate

#endif  // MATE_INDEX_INDEX_SHARDS_H_
