#include "index/inverted_index.h"

#include <algorithm>
#include <thread>

#include "util/string_util.h"

namespace mate {

InvertedIndex::InvertedIndex(std::unique_ptr<RowHashFunction> hash)
    : hash_(std::move(hash)), superkeys_(hash_->hash_bits()) {}

const PostingList* InvertedIndex::Lookup(std::string_view normalized) const {
  ValueId id = dictionary_.Find(normalized);
  if (id == kInvalidValueId) return nullptr;
  auto it = postings_.find(id);
  if (it == postings_.end() || it->second.empty()) return nullptr;
  return &it->second;
}

size_t InvertedIndex::MemoryBytes() const {
  return PostingBytes() + dictionary_.MemoryBytes() + SuperKeyBytes();
}

void InvertedIndex::AddPosting(std::string_view normalized,
                               PostingEntry entry) {
  ValueId id = dictionary_.GetOrAdd(normalized);
  PostingList& list = postings_[id];
  auto pos = std::lower_bound(list.begin(), list.end(), entry);
  if (pos != list.end() && *pos == entry) return;  // duplicates collapse
  list.insert(pos, entry);
  ++num_posting_entries_;
}

void InvertedIndex::RemovePosting(std::string_view normalized,
                                  const PostingEntry& entry) {
  ValueId id = dictionary_.Find(normalized);
  if (id == kInvalidValueId) return;
  auto it = postings_.find(id);
  if (it == postings_.end()) return;
  PostingList& list = it->second;
  auto pos = std::lower_bound(list.begin(), list.end(), entry);
  if (pos != list.end() && *pos == entry) {
    list.erase(pos);
    --num_posting_entries_;
  }
}

void InvertedIndex::RehashRow(const Corpus& corpus, TableId t, RowId r) {
  const Table& table = corpus.table(t);
  superkeys_.Reset(t, r);
  BitVector key(hash_->hash_bits());
  for (ColumnId c = 0; c < table.NumColumns(); ++c) {
    hash_->AddValue(NormalizeValue(table.cell(r, c)), &key);
  }
  superkeys_.Set(t, r, key);
}

void InvertedIndex::RehashTableRange(const Corpus& corpus, TableId begin,
                                     TableId end) {
  for (TableId t = begin; t < end && t < corpus.NumTables(); ++t) {
    const Table& table = corpus.table(t);
    for (RowId r = 0; r < table.NumRows(); ++r) {
      if (table.IsRowDeleted(r)) continue;
      RehashRow(corpus, t, r);
    }
  }
}

Status InvertedIndex::RebuildSuperKeys(const Corpus& corpus,
                                       unsigned num_threads) {
  superkeys_ = SuperKeyStore(hash_->hash_bits());
  // Pre-size every table so worker threads touch disjoint, stable storage.
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    superkeys_.EnsureTable(t, corpus.table(t).NumRows());
  }
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  if (num_threads <= 1 || corpus.NumTables() < 2) {
    RehashTableRange(corpus, 0, static_cast<TableId>(corpus.NumTables()));
    return Status::OK();
  }
  const TableId total = static_cast<TableId>(corpus.NumTables());
  const TableId stride = (total + num_threads - 1) / num_threads;
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < num_threads; ++w) {
    TableId begin = static_cast<TableId>(w) * stride;
    if (begin >= total) break;
    TableId end = std::min<TableId>(total, begin + stride);
    workers.emplace_back(
        [this, &corpus, begin, end] { RehashTableRange(corpus, begin, end); });
  }
  for (std::thread& worker : workers) worker.join();
  return Status::OK();
}

Status InvertedIndex::ResetHash(const Corpus& corpus,
                                std::unique_ptr<RowHashFunction> new_hash,
                                unsigned num_threads) {
  if (new_hash == nullptr) return Status::InvalidArgument("null hash");
  hash_ = std::move(new_hash);
  return RebuildSuperKeys(corpus, num_threads);
}

Status InvertedIndex::InsertTablePostingsOnly(const Corpus& corpus,
                                              TableId t) {
  if (t >= corpus.NumTables()) return Status::OutOfRange("no such table");
  const Table& table = corpus.table(t);
  for (RowId r = 0; r < table.NumRows(); ++r) {
    if (table.IsRowDeleted(r)) continue;
    for (ColumnId c = 0; c < table.NumColumns(); ++c) {
      AddPosting(NormalizeValue(table.cell(r, c)), PostingEntry{t, c, r});
    }
  }
  return Status::OK();
}

Status InvertedIndex::InsertTable(const Corpus& corpus, TableId t) {
  if (t >= corpus.NumTables()) return Status::OutOfRange("no such table");
  const Table& table = corpus.table(t);
  superkeys_.EnsureTable(t, table.NumRows());
  for (RowId r = 0; r < table.NumRows(); ++r) {
    if (table.IsRowDeleted(r)) continue;
    BitVector key(hash_->hash_bits());
    for (ColumnId c = 0; c < table.NumColumns(); ++c) {
      std::string norm = NormalizeValue(table.cell(r, c));
      AddPosting(norm, PostingEntry{t, c, r});
      hash_->AddValue(norm, &key);
    }
    superkeys_.Set(t, r, key);
  }
  return Status::OK();
}

Status InvertedIndex::InsertRow(const Corpus& corpus, TableId t, RowId r) {
  if (t >= corpus.NumTables()) return Status::OutOfRange("no such table");
  const Table& table = corpus.table(t);
  if (r >= table.NumRows()) return Status::OutOfRange("no such row");
  superkeys_.EnsureTable(t, table.NumRows());
  BitVector key(hash_->hash_bits());
  for (ColumnId c = 0; c < table.NumColumns(); ++c) {
    std::string norm = NormalizeValue(table.cell(r, c));
    AddPosting(norm, PostingEntry{t, c, r});
    hash_->AddValue(norm, &key);
  }
  superkeys_.Set(t, r, key);
  return Status::OK();
}

Status InvertedIndex::AddAppendedColumn(const Corpus& corpus, TableId t) {
  if (t >= corpus.NumTables()) return Status::OutOfRange("no such table");
  const Table& table = corpus.table(t);
  if (table.NumColumns() == 0) return Status::InvalidArgument("no columns");
  const ColumnId c = static_cast<ColumnId>(table.NumColumns() - 1);
  superkeys_.EnsureTable(t, table.NumRows());
  for (RowId r = 0; r < table.NumRows(); ++r) {
    if (table.IsRowDeleted(r)) continue;
    std::string norm = NormalizeValue(table.cell(r, c));
    AddPosting(norm, PostingEntry{t, c, r});
    // §5.4: OR the new column's Xash result into the existing super key.
    superkeys_.OrInto(t, r, hash_->HashValue(norm));
  }
  return Status::OK();
}

Status InvertedIndex::UpdateCell(const Corpus& corpus, TableId t, RowId r,
                                 ColumnId c, std::string_view old_normalized) {
  if (t >= corpus.NumTables()) return Status::OutOfRange("no such table");
  const Table& table = corpus.table(t);
  if (r >= table.NumRows() || c >= table.NumColumns()) {
    return Status::OutOfRange("no such cell");
  }
  RemovePosting(old_normalized, PostingEntry{t, c, r});
  AddPosting(NormalizeValue(table.cell(r, c)), PostingEntry{t, c, r});
  // §5.4: a cell update requires a complete re-hash of the row's super key
  // (bits of the old value cannot be un-ORed).
  RehashRow(corpus, t, r);
  return Status::OK();
}

Status InvertedIndex::DeleteRow(const Corpus& corpus, TableId t, RowId r) {
  if (t >= corpus.NumTables()) return Status::OutOfRange("no such table");
  const Table& table = corpus.table(t);
  if (r >= table.NumRows()) return Status::OutOfRange("no such row");
  for (ColumnId c = 0; c < table.NumColumns(); ++c) {
    RemovePosting(NormalizeValue(table.cell(r, c)), PostingEntry{t, c, r});
  }
  superkeys_.Reset(t, r);
  return Status::OK();
}

Status InvertedIndex::DeleteTable(const Corpus& corpus, TableId t) {
  if (t >= corpus.NumTables()) return Status::OutOfRange("no such table");
  const Table& table = corpus.table(t);
  for (RowId r = 0; r < table.NumRows(); ++r) {
    if (table.IsRowDeleted(r)) continue;
    MATE_RETURN_IF_ERROR(DeleteRow(corpus, t, r));
  }
  return Status::OK();
}

Status InvertedIndex::DropColumn(const Corpus& corpus, TableId t,
                                 ColumnId dropped,
                                 const std::vector<std::string>& removed_cells) {
  if (t >= corpus.NumTables()) return Status::OutOfRange("no such table");
  const Table& table = corpus.table(t);
  if (removed_cells.size() != table.NumRows()) {
    return Status::InvalidArgument("removed_cells size mismatch");
  }
  // Remove the old PL items: the dropped column itself, plus every column
  // that used to sit to its right (their ids have shifted down by one).
  for (RowId r = 0; r < table.NumRows(); ++r) {
    RemovePosting(NormalizeValue(removed_cells[r]),
                  PostingEntry{t, dropped, r});
  }
  for (ColumnId c = dropped; c < table.NumColumns(); ++c) {
    for (RowId r = 0; r < table.NumRows(); ++r) {
      RemovePosting(NormalizeValue(table.cell(r, c)),
                    PostingEntry{t, static_cast<ColumnId>(c + 1), r});
    }
  }
  // Re-add the shifted columns under their new ids and rehash every live
  // row's super key (the dropped value's bits cannot be un-ORed).
  for (ColumnId c = dropped; c < table.NumColumns(); ++c) {
    for (RowId r = 0; r < table.NumRows(); ++r) {
      if (table.IsRowDeleted(r)) continue;
      AddPosting(NormalizeValue(table.cell(r, c)), PostingEntry{t, c, r});
    }
  }
  for (RowId r = 0; r < table.NumRows(); ++r) {
    if (table.IsRowDeleted(r)) continue;
    RehashRow(corpus, t, r);
  }
  return Status::OK();
}

}  // namespace mate
