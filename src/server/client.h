// Minimal blocking client for the mate_server wire protocol: one TCP
// connection, one outstanding request at a time. Transport problems (bad
// address, connection refused, broken stream) surface through the Result
// layer; a QUERY's *server-side* outcome — including kOverloaded sheds —
// arrives inside QueryResponse::status, so load generators can count sheds
// without tearing the connection down.

#ifndef MATE_SERVER_CLIENT_H_
#define MATE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "server/protocol.h"
#include "util/status.h"

namespace mate {

class MateClient {
 public:
  /// Connects to `host:port` (IPv4 dotted quad, e.g. "127.0.0.1").
  static Result<MateClient> Connect(const std::string& host, uint16_t port);

  MateClient(MateClient&& other) noexcept;
  MateClient& operator=(MateClient&& other) noexcept;
  MateClient(const MateClient&) = delete;
  MateClient& operator=(const MateClient&) = delete;
  ~MateClient();

  /// Sends one QUERY and reads its response. The returned response's
  /// `status` is the server's verdict (kOverloaded on shed); a non-OK
  /// *Result* means the transport itself failed.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// Fetches the server's observability snapshot.
  Result<ServerStatsSnapshot> Stats();

  /// Fetches the server's Prometheus text exposition page.
  Result<std::string> Metrics();

  /// Round-trips an empty PING frame.
  Status Ping();

  bool connected() const { return fd_ >= 0; }

 private:
  explicit MateClient(int fd) : fd_(fd) {}

  /// Writes `request_payload` as one frame and reads the response frame's
  /// leading status; OK leaves the verb body in `*body` (backed by
  /// `*response_payload`).
  Status RoundTrip(const std::string& request_payload,
                   std::string* response_payload, Status* server_status,
                   std::string_view* body);

  int fd_ = -1;
};

}  // namespace mate

#endif  // MATE_SERVER_CLIENT_H_
