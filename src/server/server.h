// Resident multi-tenant serving front-end: a long-lived TCP server that
// multiplexes many client connections over ONE shared Session, so the
// corpus, inverted index, thread pool, and result cache are paid for once
// and amortized across every tenant.
//
// Threading model. Session documents a single-caller contract for
// Discover, so the server runs exactly one dispatcher thread that executes
// queries sequentially off a bounded queue; each accepted connection gets a
// reader thread that decodes frames, runs admission control, parks on a
// future until the dispatcher fulfills it, and writes the response. STATS
// and PING are answered inline on the connection thread (observability
// must keep working while the queue is saturated — that is when you need
// it). Queueing delay is therefore real and visible in the measured
// latency, which is what an open-loop tail-latency harness needs.
//
// Admission control. A QUERY is admitted only when the queue holds fewer
// than `max_queue_depth` pending entries and the server is not draining;
// otherwise it is shed immediately with Status::Overloaded (the client
// sees a well-formed error response, not a dropped connection). Accepts
// beyond `max_connections` live connections are shed the same way: one
// kOverloaded frame, then close. Stop() drains gracefully: stop
// accepting, shed new queries, finish every admitted in-flight query,
// then join. Connection threads deregister themselves on exit and their
// handles are reaped as the server runs, so connection churn does not
// accumulate dead threads or fd slots.
//
// Multi-tenancy. The tenant string on each request selects a result-cache
// partition inside the shared Session (independent byte budgets,
// ConfigureCachePartition on first contact when `tenant_cache_bytes` is
// set) and a per-tenant request/admitted/shed counter row in STATS.

#ifndef MATE_SERVER_SERVER_H_
#define MATE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/protocol.h"
#include "util/latency_histogram.h"
#include "util/status.h"

namespace mate {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks a free port, readable via port().
  uint16_t port = 0;

  /// Admission-control bound: QUERY requests beyond this many pending
  /// entries are shed with kOverloaded.
  size_t max_queue_depth = 64;

  /// Connection-level admission bound: accepts beyond this many live
  /// connections are shed with a single kOverloaded response frame and
  /// closed (a typed refusal, not a hung or dropped connect), bounding the
  /// thread-per-connection memory surface.
  size_t max_connections = 256;

  /// When non-zero, every tenant's result-cache partition is budgeted to
  /// this many bytes on first contact (0 keeps the session default).
  size_t tenant_cache_bytes = 0;

  /// How long Stop() waits for in-flight response writes before clobbering
  /// connections whose peers stopped reading (SHUT_RDWR unblocks a send
  /// stuck on a full buffer). Normal drains never wait this long — the
  /// grace only bounds the pathological stalled-client case.
  std::chrono::milliseconds drain_write_grace{5000};

  /// Test hook: the dispatcher sleeps this long before each query, making
  /// queue-full sheds deterministic under small max_queue_depth.
  std::chrono::milliseconds dispatch_delay_for_test{0};

  /// Slow-query tracing. When non-zero, every QUERY request carries a
  /// QueryTrace through its whole lifetime (read frame -> decode -> queue
  /// wait -> dispatch [the Discover pipeline's spans join here] -> write
  /// frame); requests whose end-to-end wall time exceeds this threshold
  /// dump that span tree as one JSONL line. 0 (the default) disables
  /// per-request tracing entirely — queries run on the null-sink path.
  std::chrono::milliseconds slow_query_threshold{0};

  /// Where slow-query JSONL lines go (appended, one object per line).
  /// Empty -> stderr.
  std::string slow_query_log_path;
};

class MateServer {
 public:
  /// `session` must be open (or opening) and outlive the server; the
  /// server becomes its only Discover caller.
  MateServer(Session* session, ServerOptions options);

  /// Not started or already stopped in the destructor -> no-op; otherwise
  /// performs the same graceful drain as Stop().
  ~MateServer();

  MateServer(const MateServer&) = delete;
  MateServer& operator=(const MateServer&) = delete;

  /// Binds, listens, and starts the accept + dispatcher threads. IOError
  /// when the address cannot be bound.
  Status Start();

  /// Graceful drain: closes the listener, sheds queries not yet admitted,
  /// completes every admitted one, then joins all threads. Idempotent.
  void Stop();

  /// The bound port (resolves option `port` == 0). 0 before Start().
  uint16_t port() const { return port_; }

  /// A consistent observability snapshot (same data the STATS verb serves).
  ServerStatsSnapshot stats() const;

  /// The Prometheus text page the METRICS verb serves: hot-path counters
  /// (queries admitted/shed/completed, per-verb request counts, latency
  /// histogram) plus point-in-time gauges (queue depth, connections, cache
  /// and residency figures) refreshed from the session at render time. The
  /// registry is per-server, so the page covers this server's lifetime.
  std::string RenderMetricsText();

  /// Test-only: live connection records still registered. Exited
  /// connections deregister themselves, so this must fall back to 0 after
  /// clients hang up — the registry does not grow with connection churn.
  size_t registered_connections_for_test() const;

 private:
  struct PendingQuery {
    QueryRequest request;
    std::promise<Result<DiscoveryResult>> promise;
    /// Admission time; served latency = completion − admission, so queue
    /// wait is part of every measured latency.
    std::chrono::steady_clock::time_point enqueue_time;
    /// Slow-query tracing handoff: the connection thread owns the trace
    /// and parks on the promise while the dispatcher records into it —
    /// the future's happens-before edges sequence all access.
    QueryTrace* trace = nullptr;
    uint32_t root_span = QueryTrace::kNoParent;
    uint32_t queue_wait_span = QueryTrace::kNoParent;
  };

  struct TenantCounters {
    uint64_t requests = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    /// The tenant's mate_tenant_requests_total series, registered on first
    /// contact (the tenant string is a label — escaping is the renderer's
    /// job).
    Counter* requests_metric = nullptr;
  };

  void AcceptLoop();
  void DispatchLoop();
  void ServeConnection(uint64_t id, int fd);

  /// Joins connection threads that have already exited and handed their
  /// handles to finished_threads_. Called from the accept loop (so churn is
  /// reaped while the server runs) and from Stop().
  void ReapFinishedConnections();

  /// Admission control: enqueues under the queue bound, or returns
  /// kOverloaded. On success the returned future yields the query result.
  Status Admit(QueryRequest request,
               std::future<Result<DiscoveryResult>>* future,
               QueryTrace* trace, uint32_t root_span);

  void HandleQuery(int fd, std::string_view body, double read_seconds);
  void HandleStats(int fd);
  void HandleMetrics(int fd);

  /// End of a traced request: bumps the slow counter and writes the span
  /// tree as one JSONL line when the root span's wall time exceeds
  /// slow_query_threshold.
  void MaybeLogSlowQuery(const QueryTrace& trace, uint32_t root_span,
                         const std::string& tenant, const Status& status);

  Session* const session_;
  const ServerOptions options_;

  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: wakes the accept poll on Stop

  std::thread accept_thread_;
  std::thread dispatch_thread_;

  // Connection registry. Each live connection owns one record; on exit the
  // connection thread closes its fd, moves its thread handle to
  // finished_threads_ (joined by the accept loop or Stop), erases its
  // record, and signals connections_cv_ so Stop() can wait for empty.
  struct Connection {
    int fd = -1;
    std::thread thread;
  };
  mutable std::mutex connections_mu_;
  std::condition_variable connections_cv_;
  std::map<uint64_t, Connection> connections_;
  std::vector<std::thread> finished_threads_;
  uint64_t next_connection_id_ = 0;
  std::atomic<uint64_t> active_connections_{0};

  // Queue + admission state (one mutex so shed-vs-admit is linearized with
  // the drain flag).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<PendingQuery>> queue_;
  bool draining_ = false;
  bool started_ = false;
  bool stopped_ = false;

  // Serving metrics (queue_mu_ guards these too; they are touched on the
  // same paths).
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  uint64_t completed_ = 0;
  double total_query_seconds_ = 0.0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  LatencyHistogram latency_us_;
  std::map<std::string, TenantCounters> tenants_;

  // Metrics cells (owned by metrics_; registered in the constructor, so
  // hot paths never look anything up). Counters/histogram are bumped at
  // the same points as the queue_mu_-guarded figures above; gauges refresh
  // from stats() at render time.
  MetricsRegistry metrics_;
  Counter* m_queries_total_ = nullptr;
  Counter* m_shed_total_ = nullptr;
  Counter* m_completed_total_ = nullptr;
  Counter* m_slow_total_ = nullptr;
  Counter* m_requests_query_ = nullptr;
  Counter* m_requests_stats_ = nullptr;
  Counter* m_requests_ping_ = nullptr;
  Counter* m_requests_metrics_ = nullptr;
  Gauge* m_queue_depth_ = nullptr;
  Gauge* m_queue_capacity_ = nullptr;
  Gauge* m_connections_ = nullptr;
  Gauge* m_draining_ = nullptr;
  Gauge* m_cache_hits_ = nullptr;
  Gauge* m_cache_misses_ = nullptr;
  Gauge* m_corpus_resident_bytes_ = nullptr;
  Gauge* m_corpus_budget_bytes_ = nullptr;
  Gauge* m_corpus_evictions_ = nullptr;
  Gauge* m_tables_resident_ = nullptr;
  Histogram* m_latency_seconds_ = nullptr;

  // Slow-query log sink (append; stderr when no path is configured).
  std::mutex slow_log_mu_;
  std::ofstream slow_log_file_;
};

}  // namespace mate

#endif  // MATE_SERVER_SERVER_H_
