// Resident multi-tenant serving front-end: a long-lived TCP server that
// multiplexes many client connections over ONE shared Session, so the
// corpus, inverted index, thread pool, and result cache are paid for once
// and amortized across every tenant.
//
// Threading model. Session documents a single-caller contract for
// Discover, so the server runs exactly one dispatcher thread that executes
// queries sequentially off a bounded queue; each accepted connection gets a
// reader thread that decodes frames, runs admission control, parks on a
// future until the dispatcher fulfills it, and writes the response. STATS
// and PING are answered inline on the connection thread (observability
// must keep working while the queue is saturated — that is when you need
// it). Queueing delay is therefore real and visible in the measured
// latency, which is what an open-loop tail-latency harness needs.
//
// Admission control. A QUERY is admitted only when the queue holds fewer
// than `max_queue_depth` pending entries and the server is not draining;
// otherwise it is shed immediately with Status::Overloaded (the client
// sees a well-formed error response, not a dropped connection). Accepts
// beyond `max_connections` live connections are shed the same way: one
// kOverloaded frame, then close. Stop() drains gracefully: stop
// accepting, shed new queries, finish every admitted in-flight query,
// then join. Connection threads deregister themselves on exit and their
// handles are reaped as the server runs, so connection churn does not
// accumulate dead threads or fd slots.
//
// Multi-tenancy. The tenant string on each request selects a result-cache
// partition inside the shared Session (independent byte budgets,
// ConfigureCachePartition on first contact when `tenant_cache_bytes` is
// set) and a per-tenant request/admitted/shed counter row in STATS. The
// tenant string comes off the wire, so everything keyed on it is bounded:
// names longer than kMaxTenantNameBytes are rejected at decode, and once
// `max_tenants` distinct names hold dedicated rows, further tenants fold
// into one shared "__other__" row, metric series, and cache partition — an
// adversarial client cycling fresh names cannot grow the registry, the
// METRICS page, or the cache's partition map without bound.
//
// SLO-aware steering. With `steering` = kAuto the dispatcher picks each
// query's intra-query fan-out at dequeue time from (a) the queue depth,
// (b) the live served p99 vs `target_p99`, and (c) the session's
// pre-execution PL-traffic estimate: big queries fan out across the pool
// only when the server has headroom and degrade to serial under pressure,
// so one giant query cannot convoy the tail. The executor guarantees
// bit-identical results at every fan-out setting, and the knobs are
// excluded from the result-cache fingerprint — steering is invisible in
// every way except latency.

#ifndef MATE_SERVER_SERVER_H_
#define MATE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/query_executor.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/protocol.h"
#include "util/latency_histogram.h"
#include "util/status.h"

namespace mate {

/// Per-query fan-out steering at the dispatcher's dequeue point.
enum class SteeringMode {
  /// Every query runs with the spec's default knobs (auto fan-out) — the
  /// pre-steering behavior.
  kOff,
  /// Choose intra_query_threads per query from queue depth, live p99 vs
  /// target_p99, and the pre-execution PL-traffic estimate.
  kAuto,
};

/// The tenant row every over-bound tenant folds into (satellite of
/// ServerOptions::max_tenants). Clients may also name it directly; it
/// behaves like any other tenant.
inline constexpr const char* kOverflowTenant = "__other__";

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks a free port, readable via port().
  uint16_t port = 0;

  /// Admission-control bound: QUERY requests beyond this many pending
  /// entries are shed with kOverloaded.
  size_t max_queue_depth = 64;

  /// Connection-level admission bound: accepts beyond this many live
  /// connections are shed with a single kOverloaded response frame and
  /// closed (a typed refusal, not a hung or dropped connect), bounding the
  /// thread-per-connection memory surface.
  size_t max_connections = 256;

  /// When non-zero, every tenant's result-cache partition is budgeted to
  /// this many bytes on first contact (0 keeps the session default).
  size_t tenant_cache_bytes = 0;

  /// Cardinality bound on everything keyed by the wire's tenant string:
  /// at most this many tenant rows (counters, labeled metric series, cache
  /// partitions) ever exist. Once dedicated rows would exceed the bound,
  /// new tenant names share the kOverflowTenant row. Values below 1 behave
  /// as 1 (everything folds).
  size_t max_tenants = 64;

  /// Fan-out steering policy at dequeue (kOff = pre-steering behavior).
  SteeringMode steering = SteeringMode::kOff;

  /// Served-latency SLO consulted by steering: while the live p99 is over
  /// this target, big queries degrade to serial. 0 disables the latency
  /// term (steering then reacts to queue depth alone).
  std::chrono::milliseconds target_p99{0};

  /// PL-traffic estimate below which a query counts as small and always
  /// runs serial under steering (fan-out would buy nothing — this is the
  /// executor's own auto gate). Tests lower it to exercise steering on toy
  /// corpora.
  uint64_t steering_min_items = QueryExecutor::kAutoParallelMinItems;

  /// Test hook: Admit sleeps this long inside the (unlocked)
  /// first-admission ConfigureCachePartition step, so tests can pin that
  /// concurrent admits/stats are NOT stalled behind it.
  std::chrono::milliseconds configure_partition_delay_for_test{0};

  /// How long Stop() waits for in-flight response writes before clobbering
  /// connections whose peers stopped reading (SHUT_RDWR unblocks a send
  /// stuck on a full buffer). Normal drains never wait this long — the
  /// grace only bounds the pathological stalled-client case.
  std::chrono::milliseconds drain_write_grace{5000};

  /// Test hook: the dispatcher sleeps this long before each query, making
  /// queue-full sheds deterministic under small max_queue_depth.
  std::chrono::milliseconds dispatch_delay_for_test{0};

  /// Slow-query tracing. When non-zero, every QUERY request carries a
  /// QueryTrace through its whole lifetime (read frame -> decode -> queue
  /// wait -> dispatch [the Discover pipeline's spans join here] -> write
  /// frame); requests whose end-to-end wall time exceeds this threshold
  /// dump that span tree as one JSONL line. 0 (the default) disables
  /// per-request tracing entirely — queries run on the null-sink path.
  std::chrono::milliseconds slow_query_threshold{0};

  /// Where slow-query JSONL lines go (appended, one object per line).
  /// Empty -> stderr.
  std::string slow_query_log_path;
};

class MateServer {
 public:
  /// `session` must be open (or opening) and outlive the server; the
  /// server becomes its only Discover caller.
  MateServer(Session* session, ServerOptions options);

  /// Not started or already stopped in the destructor -> no-op; otherwise
  /// performs the same graceful drain as Stop().
  ~MateServer();

  MateServer(const MateServer&) = delete;
  MateServer& operator=(const MateServer&) = delete;

  /// Binds, listens, and starts the accept + dispatcher threads. IOError
  /// when the address cannot be bound.
  Status Start();

  /// Graceful drain: closes the listener, sheds queries not yet admitted,
  /// completes every admitted one, then joins all threads. Idempotent.
  void Stop();

  /// The bound port (resolves option `port` == 0). 0 before Start().
  uint16_t port() const { return port_; }

  /// A consistent observability snapshot (same data the STATS verb serves).
  ServerStatsSnapshot stats() const;

  /// The Prometheus text page the METRICS verb serves: hot-path counters
  /// (queries admitted/shed/completed, per-verb request counts, latency
  /// histogram) plus point-in-time gauges (queue depth, connections, cache
  /// and residency figures) refreshed from the session at render time. The
  /// registry is per-server, so the page covers this server's lifetime.
  std::string RenderMetricsText();

  /// Test-only: live connection records still registered. Exited
  /// connections deregister themselves, so this must fall back to 0 after
  /// clients hang up — the registry does not grow with connection churn.
  size_t registered_connections_for_test() const;

  /// Test-only: how many times Admit called ConfigureCachePartition (must
  /// be exactly one per distinct tenant row, however many first admissions
  /// race).
  uint64_t partition_configures_for_test() const {
    return partition_configures_.load();
  }

 private:
  struct PendingQuery {
    QueryRequest request;
    std::promise<Result<DiscoveryResult>> promise;
    /// Admission time; served latency = completion − admission, so queue
    /// wait is part of every measured latency.
    std::chrono::steady_clock::time_point enqueue_time;
    /// Slow-query tracing handoff: the connection thread owns the trace
    /// and parks on the promise while the dispatcher records into it —
    /// the future's happens-before edges sequence all access.
    QueryTrace* trace = nullptr;
    uint32_t root_span = QueryTrace::kNoParent;
    uint32_t queue_wait_span = QueryTrace::kNoParent;
  };

  struct TenantCounters {
    uint64_t requests = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    /// The tenant's mate_tenant_requests_total series, registered on first
    /// contact (the tenant string is a label — escaping is the renderer's
    /// job).
    Counter* requests_metric = nullptr;
    /// Claimed (under queue_mu_) by the first would-be-admitted query so
    /// ConfigureCachePartition runs exactly once — outside the lock.
    bool partition_configured = false;
  };

  void AcceptLoop();
  void DispatchLoop();
  void ServeConnection(uint64_t id, int fd);

  /// Joins connection threads that have already exited and handed their
  /// handles to finished_threads_. Called from the accept loop (so churn is
  /// reaped while the server runs) and from Stop().
  void ReapFinishedConnections();

  /// Admission control: enqueues under the queue bound, or returns
  /// kOverloaded. On success the returned future yields the query result.
  /// Folds over-bound tenants into kOverflowTenant (rewriting
  /// request.tenant so accounting and the cache partition agree) and runs
  /// the tenant's first-admission ConfigureCachePartition outside
  /// queue_mu_.
  Status Admit(QueryRequest request,
               std::future<Result<DiscoveryResult>>* future,
               QueryTrace* trace, uint32_t root_span);

  /// Steering (options_.steering == kAuto): picks spec->intra_query_threads
  /// from the queue depth observed at dequeue, the live served p99, and the
  /// session's PL-traffic estimate; tallies the decision. Never changes
  /// results — only how fast they are computed.
  void SteerSpec(QuerySpec* spec, size_t queue_depth, uint64_t p99_us,
                 uint32_t dispatch_span);

  void HandleQuery(int fd, std::string_view body, double read_seconds);
  void HandleStats(int fd);
  void HandleMetrics(int fd);

  /// End of a traced request: bumps the slow counter and writes the span
  /// tree as one JSONL line when the root span's wall time exceeds
  /// slow_query_threshold.
  void MaybeLogSlowQuery(const QueryTrace& trace, uint32_t root_span,
                         const std::string& tenant, const Status& status);

  Session* const session_;
  const ServerOptions options_;

  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: wakes the accept poll on Stop

  std::thread accept_thread_;
  std::thread dispatch_thread_;

  // Connection registry. Each live connection owns one record; on exit the
  // connection thread closes its fd, moves its thread handle to
  // finished_threads_ (joined by the accept loop or Stop), erases its
  // record, and signals connections_cv_ so Stop() can wait for empty.
  struct Connection {
    int fd = -1;
    std::thread thread;
  };
  mutable std::mutex connections_mu_;
  std::condition_variable connections_cv_;
  std::map<uint64_t, Connection> connections_;
  std::vector<std::thread> finished_threads_;
  uint64_t next_connection_id_ = 0;
  std::atomic<uint64_t> active_connections_{0};

  // Queue + admission state (one mutex so shed-vs-admit is linearized with
  // the drain flag).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<PendingQuery>> queue_;
  bool draining_ = false;
  bool started_ = false;
  bool stopped_ = false;

  // Serving metrics (queue_mu_ guards these too; they are touched on the
  // same paths).
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  uint64_t completed_ = 0;
  double total_query_seconds_ = 0.0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  LatencyHistogram latency_us_;
  std::map<std::string, TenantCounters> tenants_;

  // Steering decision tallies (atomics: bumped by the dispatcher outside
  // queue_mu_, read by stats()).
  std::atomic<uint64_t> steer_serial_{0};
  std::atomic<uint64_t> steer_partial_{0};
  std::atomic<uint64_t> steer_full_{0};
  std::atomic<uint64_t> partition_configures_{0};

  // Metrics cells (owned by metrics_; registered in the constructor, so
  // hot paths never look anything up). Counters/histogram are bumped at
  // the same points as the queue_mu_-guarded figures above; gauges refresh
  // from stats() at render time.
  MetricsRegistry metrics_;
  Counter* m_queries_total_ = nullptr;
  Counter* m_shed_total_ = nullptr;
  Counter* m_completed_total_ = nullptr;
  Counter* m_slow_total_ = nullptr;
  Counter* m_requests_query_ = nullptr;
  Counter* m_requests_stats_ = nullptr;
  Counter* m_requests_ping_ = nullptr;
  Counter* m_requests_metrics_ = nullptr;
  Counter* m_steer_serial_ = nullptr;
  Counter* m_steer_partial_ = nullptr;
  Counter* m_steer_full_ = nullptr;
  Gauge* m_queue_depth_ = nullptr;
  Gauge* m_queue_capacity_ = nullptr;
  Gauge* m_connections_ = nullptr;
  Gauge* m_draining_ = nullptr;
  // Monotone session-side counts (cache hit/miss traffic, corpus
  // evictions) are *counters* on the exposition page — rate() must work —
  // but their source of truth lives in the session, so RenderMetricsText
  // advances each cell by the delta since the last render (serialized by
  // render_mu_).
  Counter* m_cache_hits_ = nullptr;
  Counter* m_cache_misses_ = nullptr;
  Counter* m_corpus_evictions_ = nullptr;
  Gauge* m_corpus_resident_bytes_ = nullptr;
  Gauge* m_corpus_budget_bytes_ = nullptr;
  Gauge* m_tables_resident_ = nullptr;
  Histogram* m_latency_seconds_ = nullptr;
  std::mutex render_mu_;

  // Slow-query log sink (append; stderr when no path is configured).
  std::mutex slow_log_mu_;
  std::ofstream slow_log_file_;
};

}  // namespace mate

#endif  // MATE_SERVER_SERVER_H_
