#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace mate {

Result<MateClient> MateClient::Connect(const std::string& host,
                                       uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad server address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IOError("connect(" + host + ":" +
                               std::to_string(port) +
                               ") failed: " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  return MateClient(fd);
}

MateClient::MateClient(MateClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

MateClient& MateClient::operator=(MateClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

MateClient::~MateClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status MateClient::RoundTrip(const std::string& request_payload,
                             std::string* response_payload,
                             Status* server_status, std::string_view* body) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  MATE_RETURN_IF_ERROR(WriteFrame(fd_, request_payload));
  Status s = ReadFrame(fd_, response_payload);
  if (s.IsNotFound()) {
    return Status::IOError("server closed the connection");
  }
  MATE_RETURN_IF_ERROR(s);
  return DecodeResponseStatus(*response_payload, server_status, body);
}

Result<QueryResponse> MateClient::Query(const QueryRequest& request) {
  std::string payload;
  EncodeQueryRequest(request, &payload);
  std::string response_payload;
  QueryResponse response;
  std::string_view body;
  MATE_RETURN_IF_ERROR(
      RoundTrip(payload, &response_payload, &response.status, &body));
  if (response.status.ok()) {
    MATE_RETURN_IF_ERROR(DecodeQueryResponseBody(body, &response.results));
  }
  return response;
}

Result<ServerStatsSnapshot> MateClient::Stats() {
  std::string payload;
  EncodeStatsRequest(&payload);
  std::string response_payload;
  Status server_status;
  std::string_view body;
  MATE_RETURN_IF_ERROR(
      RoundTrip(payload, &response_payload, &server_status, &body));
  MATE_RETURN_IF_ERROR(server_status);
  ServerStatsSnapshot snapshot;
  MATE_RETURN_IF_ERROR(DecodeStatsResponseBody(body, &snapshot));
  return snapshot;
}

Result<std::string> MateClient::Metrics() {
  std::string payload;
  EncodeMetricsRequest(&payload);
  std::string response_payload;
  Status server_status;
  std::string_view body;
  MATE_RETURN_IF_ERROR(
      RoundTrip(payload, &response_payload, &server_status, &body));
  MATE_RETURN_IF_ERROR(server_status);
  std::string text_page;
  MATE_RETURN_IF_ERROR(DecodeMetricsResponseBody(body, &text_page));
  return text_page;
}

Status MateClient::Ping() {
  std::string payload;
  EncodePingRequest(&payload);
  std::string response_payload;
  Status server_status;
  std::string_view body;
  MATE_RETURN_IF_ERROR(
      RoundTrip(payload, &response_payload, &server_status, &body));
  return server_status;
}

}  // namespace mate
