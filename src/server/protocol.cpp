#include "server/protocol.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/coding.h"
#include "util/stopwatch.h"

namespace mate {

namespace {

constexpr uint8_t kFilterRowBit = 0x01;
constexpr uint8_t kFilterTableBit = 0x02;

// Rebuilds a Status from its wire (code, message) pair. Status keeps its
// code+message constructor private, so dispatch through the factories.
Status StatusFromWire(StatusCode code, std::string message) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kIOError:
      return Status::IOError(std::move(message));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(message));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kOverloaded:
      return Status::Overloaded(std::move(message));
  }
  return Status::Corruption("unknown status code on the wire");
}

void PutTableIdList(std::string* dst, const std::vector<TableId>& ids) {
  PutVarint64(dst, ids.size());
  for (TableId id : ids) PutVarint32(dst, id);
}

Status GetTableIdList(std::string_view* input, std::string_view what,
                      std::vector<TableId>* ids) {
  uint64_t n = 0;
  if (!GetVarint64(input, &n) || n > input->size()) {
    return Status::InvalidArgument("malformed " + std::string(what) +
                                   " list in query request");
  }
  ids->clear();
  ids->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t id = 0;
    if (!GetVarint32(input, &id)) {
      return Status::InvalidArgument("truncated " + std::string(what) +
                                     " list in query request");
    }
    ids->push_back(id);
  }
  return Status::OK();
}

void EncodeTenantStats(const TenantStats& t, std::string* dst) {
  PutLengthPrefixed(dst, t.tenant);
  PutVarint64(dst, t.requests);
  PutVarint64(dst, t.admitted);
  PutVarint64(dst, t.shed);
  PutVarint64(dst, t.cache_hits);
  PutVarint64(dst, t.cache_misses);
  PutVarint64(dst, t.cache_entries);
  PutVarint64(dst, t.cache_bytes);
  PutVarint64(dst, t.cache_capacity_bytes);
}

bool DecodeTenantStats(std::string_view* input, TenantStats* t) {
  std::string_view tenant;
  if (!GetLengthPrefixed(input, &tenant)) return false;
  t->tenant.assign(tenant);
  return GetVarint64(input, &t->requests) &&
         GetVarint64(input, &t->admitted) && GetVarint64(input, &t->shed) &&
         GetVarint64(input, &t->cache_hits) &&
         GetVarint64(input, &t->cache_misses) &&
         GetVarint64(input, &t->cache_entries) &&
         GetVarint64(input, &t->cache_bytes) &&
         GetVarint64(input, &t->cache_capacity_bytes);
}

}  // namespace

QueryRequest MakeQueryRequest(const Table& table,
                              const std::vector<ColumnId>& key_columns,
                              int k, std::string tenant) {
  QueryRequest request;
  request.tenant = std::move(tenant);
  request.k = k;
  request.query = Table(table.name());
  std::vector<std::vector<std::string>> cells(key_columns.size());
  for (RowId r = 0; r < table.NumRows(); ++r) {
    if (table.IsRowDeleted(r)) continue;
    for (size_t i = 0; i < key_columns.size(); ++i) {
      cells[i].push_back(table.cell(r, key_columns[i]));
    }
  }
  request.query.AppendEmptyRows(table.NumLiveRows());
  for (size_t i = 0; i < key_columns.size(); ++i) {
    // Cannot fail: every cells[i] holds exactly one cell per live row.
    Status added = request.query.AddColumnWithCells(
        table.column_name(key_columns[i]), std::move(cells[i]));
    (void)added;
  }
  return request;
}

QuerySpec SpecFromRequest(const QueryRequest& request) {
  QuerySpec spec;
  spec.table = &request.query;
  spec.key_columns.resize(request.query.NumColumns());
  for (ColumnId c = 0; c < spec.key_columns.size(); ++c) {
    spec.key_columns[c] = c;
  }
  spec.options.k = request.k;
  spec.options.use_row_filter = request.use_row_filter;
  spec.options.use_table_filters = request.use_table_filters;
  spec.options.exclude_tables = request.exclude_tables;
  spec.options.restrict_tables = request.restrict_tables;
  spec.tenant = request.tenant;
  return spec;
}

void EncodeQueryRequest(const QueryRequest& request, std::string* payload) {
  payload->push_back(static_cast<char>(ServerVerb::kQuery));
  PutLengthPrefixed(payload, request.tenant);
  PutVarint32(payload, static_cast<uint32_t>(request.k));
  uint8_t flags = 0;
  if (request.use_row_filter) flags |= kFilterRowBit;
  if (request.use_table_filters) flags |= kFilterTableBit;
  payload->push_back(static_cast<char>(flags));
  PutTableIdList(payload, request.exclude_tables);
  PutTableIdList(payload, request.restrict_tables);
  const Table& q = request.query;
  PutVarint32(payload, static_cast<uint32_t>(q.NumColumns()));
  for (ColumnId c = 0; c < q.NumColumns(); ++c) {
    PutLengthPrefixed(payload, q.column_name(c));
  }
  PutVarint64(payload, q.NumRows());
  for (RowId r = 0; r < q.NumRows(); ++r) {
    for (ColumnId c = 0; c < q.NumColumns(); ++c) {
      PutLengthPrefixed(payload, q.cell(r, c));
    }
  }
}

void EncodeStatsRequest(std::string* payload) {
  payload->push_back(static_cast<char>(ServerVerb::kStats));
}

void EncodePingRequest(std::string* payload) {
  payload->push_back(static_cast<char>(ServerVerb::kPing));
}

void EncodeMetricsRequest(std::string* payload) {
  payload->push_back(static_cast<char>(ServerVerb::kMetrics));
}

Status DecodeRequestVerb(std::string_view payload, ServerVerb* verb,
                         std::string_view* rest) {
  if (payload.empty()) {
    return Status::InvalidArgument("empty request frame");
  }
  const uint8_t raw = static_cast<uint8_t>(payload[0]);
  switch (raw) {
    case static_cast<uint8_t>(ServerVerb::kQuery):
    case static_cast<uint8_t>(ServerVerb::kStats):
    case static_cast<uint8_t>(ServerVerb::kPing):
    case static_cast<uint8_t>(ServerVerb::kMetrics):
      *verb = static_cast<ServerVerb>(raw);
      *rest = payload.substr(1);
      return Status::OK();
    default:
      return Status::InvalidArgument("unknown request verb " +
                                     std::to_string(raw));
  }
}

Status DecodeQueryRequest(std::string_view body, QueryRequest* request) {
  std::string_view tenant;
  if (!GetLengthPrefixed(&body, &tenant)) {
    return Status::InvalidArgument("malformed tenant in query request");
  }
  if (tenant.size() > kMaxTenantNameBytes) {
    return Status::InvalidArgument(
        "tenant name of " + std::to_string(tenant.size()) +
        " bytes exceeds limit of " + std::to_string(kMaxTenantNameBytes));
  }
  request->tenant.assign(tenant);
  uint32_t k = 0;
  if (!GetVarint32(&body, &k)) {
    return Status::InvalidArgument("malformed k in query request");
  }
  request->k = static_cast<int>(k);
  if (body.empty()) {
    return Status::InvalidArgument("missing filter flags in query request");
  }
  const uint8_t flags = static_cast<uint8_t>(body[0]);
  body.remove_prefix(1);
  request->use_row_filter = (flags & kFilterRowBit) != 0;
  request->use_table_filters = (flags & kFilterTableBit) != 0;
  MATE_RETURN_IF_ERROR(
      GetTableIdList(&body, "exclude_tables", &request->exclude_tables));
  MATE_RETURN_IF_ERROR(
      GetTableIdList(&body, "restrict_tables", &request->restrict_tables));

  uint32_t num_columns = 0;
  if (!GetVarint32(&body, &num_columns) || num_columns == 0 ||
      num_columns > body.size()) {
    return Status::InvalidArgument("malformed column count in query request");
  }
  std::vector<std::string> column_names;
  column_names.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string_view name;
    if (!GetLengthPrefixed(&body, &name)) {
      return Status::InvalidArgument(
          "truncated column names in query request");
    }
    column_names.emplace_back(name);
  }
  uint64_t num_rows = 0;
  if (!GetVarint64(&body, &num_rows) || num_rows > body.size()) {
    return Status::InvalidArgument("malformed row count in query request");
  }
  std::vector<std::vector<std::string>> cells(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) cells[c].reserve(num_rows);
  for (uint64_t r = 0; r < num_rows; ++r) {
    for (uint32_t c = 0; c < num_columns; ++c) {
      std::string_view cell;
      if (!GetLengthPrefixed(&body, &cell)) {
        return Status::InvalidArgument("truncated cells in query request");
      }
      cells[c].emplace_back(cell);
    }
  }
  if (!body.empty()) {
    return Status::InvalidArgument("trailing bytes after query request");
  }
  request->query = Table();
  request->query.AppendEmptyRows(num_rows);
  for (uint32_t c = 0; c < num_columns; ++c) {
    MATE_RETURN_IF_ERROR(request->query.AddColumnWithCells(
        std::move(column_names[c]), std::move(cells[c])));
  }
  return Status::OK();
}

void EncodeQueryResponse(const Corpus& corpus, const DiscoveryResult& result,
                         std::string* payload) {
  payload->push_back(static_cast<char>(StatusCode::kOk));
  PutLengthPrefixed(payload, "");
  PutVarint64(payload, result.top_k.size());
  for (const TableResult& r : result.top_k) {
    PutVarint32(payload, r.table_id);
    PutVarint64(payload, static_cast<uint64_t>(r.joinability));
    PutLengthPrefixed(payload, corpus.table_name(r.table_id));
    PutVarint32(payload, static_cast<uint32_t>(r.best_mapping.size()));
    for (ColumnId c : r.best_mapping) {
      PutVarint32(payload, c);
      PutLengthPrefixed(payload, corpus.table_column_name(r.table_id, c));
    }
  }
}

void EncodeErrorResponse(const Status& status, std::string* payload) {
  payload->push_back(static_cast<char>(status.code()));
  PutLengthPrefixed(payload, status.message());
}

void EncodeStatsResponse(const ServerStatsSnapshot& snapshot,
                         std::string* payload) {
  payload->push_back(static_cast<char>(StatusCode::kOk));
  PutLengthPrefixed(payload, "");
  PutVarint64(payload, snapshot.queue_depth);
  PutVarint64(payload, snapshot.queue_capacity);
  PutVarint64(payload, snapshot.admitted);
  PutVarint64(payload, snapshot.shed);
  PutVarint64(payload, snapshot.completed);
  PutVarint64(payload, snapshot.active_connections);
  payload->push_back(snapshot.draining ? 1 : 0);
  PutFixed64(payload, std::bit_cast<uint64_t>(snapshot.total_query_seconds));
  PutVarint64(payload, snapshot.cache_hits);
  PutVarint64(payload, snapshot.cache_misses);
  PutVarint64(payload, snapshot.latency_count);
  PutVarint64(payload, snapshot.latency_p50_us);
  PutVarint64(payload, snapshot.latency_p90_us);
  PutVarint64(payload, snapshot.latency_p99_us);
  PutVarint64(payload, snapshot.latency_p999_us);
  PutVarint64(payload, snapshot.latency_max_us);
  PutVarint64(payload, snapshot.corpus_resident_bytes);
  PutVarint64(payload, snapshot.corpus_peak_resident_bytes);
  PutVarint64(payload, snapshot.corpus_budget_bytes);
  PutVarint64(payload, snapshot.corpus_evictions);
  PutVarint64(payload, snapshot.tables_resident);
  PutVarint64(payload, snapshot.num_tables);
  PutVarint64(payload, snapshot.steering_serial);
  PutVarint64(payload, snapshot.steering_partial);
  PutVarint64(payload, snapshot.steering_full);
  PutVarint64(payload, snapshot.tenants.size());
  for (const TenantStats& t : snapshot.tenants) EncodeTenantStats(t, payload);
}

void EncodePingResponse(std::string* payload) {
  payload->push_back(static_cast<char>(StatusCode::kOk));
  PutLengthPrefixed(payload, "");
}

void EncodeMetricsResponse(std::string_view text_page, std::string* payload) {
  payload->push_back(static_cast<char>(StatusCode::kOk));
  PutLengthPrefixed(payload, "");
  PutLengthPrefixed(payload, text_page);
}

Status DecodeMetricsResponseBody(std::string_view body,
                                 std::string* text_page) {
  std::string_view page;
  if (!GetLengthPrefixed(&body, &page)) {
    return Status::Corruption("malformed metrics page in response");
  }
  text_page->assign(page);
  return Status::OK();
}

Status DecodeResponseStatus(std::string_view payload, Status* server_status,
                            std::string_view* body) {
  if (payload.empty()) {
    return Status::Corruption("empty response frame");
  }
  const uint8_t raw = static_cast<uint8_t>(payload[0]);
  if (raw > static_cast<uint8_t>(StatusCode::kOverloaded)) {
    return Status::Corruption("unknown status code " + std::to_string(raw) +
                              " in response frame");
  }
  payload.remove_prefix(1);
  std::string_view message;
  if (!GetLengthPrefixed(&payload, &message)) {
    return Status::Corruption("malformed status message in response frame");
  }
  *server_status =
      StatusFromWire(static_cast<StatusCode>(raw), std::string(message));
  *body = payload;
  return Status::OK();
}

Status DecodeQueryResponseBody(std::string_view body,
                               std::vector<ServedResult>* results) {
  uint64_t n = 0;
  if (!GetVarint64(&body, &n) || n > body.size() + 1) {
    return Status::Corruption("malformed result count in query response");
  }
  results->clear();
  results->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ServedResult r;
    uint64_t joinability = 0;
    std::string_view name;
    if (!GetVarint32(&body, &r.table_id) ||
        !GetVarint64(&body, &joinability) ||
        !GetLengthPrefixed(&body, &name)) {
      return Status::Corruption("truncated result in query response");
    }
    r.joinability = static_cast<int64_t>(joinability);
    r.table_name.assign(name);
    uint32_t mapping_size = 0;
    if (!GetVarint32(&body, &mapping_size) || mapping_size > body.size()) {
      return Status::Corruption("malformed mapping in query response");
    }
    r.mapping.reserve(mapping_size);
    r.mapping_names.reserve(mapping_size);
    for (uint32_t m = 0; m < mapping_size; ++m) {
      uint32_t column = 0;
      std::string_view column_name;
      if (!GetVarint32(&body, &column) ||
          !GetLengthPrefixed(&body, &column_name)) {
        return Status::Corruption("truncated mapping in query response");
      }
      r.mapping.push_back(column);
      r.mapping_names.emplace_back(column_name);
    }
    results->push_back(std::move(r));
  }
  if (!body.empty()) {
    return Status::Corruption("trailing bytes after query response");
  }
  return Status::OK();
}

Status DecodeStatsResponseBody(std::string_view body,
                               ServerStatsSnapshot* snapshot) {
  uint64_t seconds_bits = 0;
  uint8_t draining = 0;
  bool ok = GetVarint64(&body, &snapshot->queue_depth) &&
            GetVarint64(&body, &snapshot->queue_capacity) &&
            GetVarint64(&body, &snapshot->admitted) &&
            GetVarint64(&body, &snapshot->shed) &&
            GetVarint64(&body, &snapshot->completed) &&
            GetVarint64(&body, &snapshot->active_connections);
  if (ok && !body.empty()) {
    draining = static_cast<uint8_t>(body[0]);
    body.remove_prefix(1);
  } else {
    ok = false;
  }
  ok = ok && GetFixed64(&body, &seconds_bits) &&
       GetVarint64(&body, &snapshot->cache_hits) &&
       GetVarint64(&body, &snapshot->cache_misses) &&
       GetVarint64(&body, &snapshot->latency_count) &&
       GetVarint64(&body, &snapshot->latency_p50_us) &&
       GetVarint64(&body, &snapshot->latency_p90_us) &&
       GetVarint64(&body, &snapshot->latency_p99_us) &&
       GetVarint64(&body, &snapshot->latency_p999_us) &&
       GetVarint64(&body, &snapshot->latency_max_us) &&
       GetVarint64(&body, &snapshot->corpus_resident_bytes) &&
       GetVarint64(&body, &snapshot->corpus_peak_resident_bytes) &&
       GetVarint64(&body, &snapshot->corpus_budget_bytes) &&
       GetVarint64(&body, &snapshot->corpus_evictions) &&
       GetVarint64(&body, &snapshot->tables_resident) &&
       GetVarint64(&body, &snapshot->num_tables) &&
       GetVarint64(&body, &snapshot->steering_serial) &&
       GetVarint64(&body, &snapshot->steering_partial) &&
       GetVarint64(&body, &snapshot->steering_full);
  uint64_t num_tenants = 0;
  ok = ok && GetVarint64(&body, &num_tenants) && num_tenants <= body.size();
  if (!ok) {
    return Status::Corruption("malformed stats response");
  }
  snapshot->draining = draining != 0;
  snapshot->total_query_seconds = std::bit_cast<double>(seconds_bits);
  snapshot->tenants.clear();
  snapshot->tenants.reserve(num_tenants);
  for (uint64_t i = 0; i < num_tenants; ++i) {
    TenantStats t;
    if (!DecodeTenantStats(&body, &t)) {
      return Status::Corruption("truncated tenant stats in stats response");
    }
    snapshot->tenants.push_back(std::move(t));
  }
  if (!body.empty()) {
    return Status::Corruption("trailing bytes after stats response");
  }
  return Status::OK();
}

std::string ServerStatsSnapshot::ToString() const {
  std::ostringstream out;
  out << "server: queue " << queue_depth << "/" << queue_capacity
      << (draining ? " (draining)" : "") << ", admitted " << admitted
      << ", shed " << shed << ", completed " << completed << ", connections "
      << active_connections << "\n";
  out << "service: " << total_query_seconds << "s query time, cache "
      << cache_hits << " hits / " << cache_misses << " misses\n";
  out << "latency (us, n=" << latency_count << "): p50 " << latency_p50_us
      << ", p90 " << latency_p90_us << ", p99 " << latency_p99_us
      << ", p99.9 " << latency_p999_us << ", max " << latency_max_us << "\n";
  out << "corpus: " << corpus_resident_bytes << "/" << corpus_budget_bytes
      << " bytes resident (peak " << corpus_peak_resident_bytes << "), "
      << tables_resident << "/" << num_tables << " tables, "
      << corpus_evictions << " evictions\n";
  if (steering_serial + steering_partial + steering_full > 0) {
    out << "steering: " << steering_serial << " serial, " << steering_partial
        << " partial, " << steering_full << " full\n";
  }
  for (const TenantStats& t : tenants) {
    out << "tenant '" << t.tenant << "': " << t.requests << " requests, "
        << t.admitted << " admitted, " << t.shed << " shed, cache "
        << t.cache_hits << " hits / " << t.cache_misses << " misses, "
        << t.cache_entries << " entries, " << t.cache_bytes << "/"
        << t.cache_capacity_bytes << " bytes\n";
  }
  return out.str();
}

Status WriteFrame(int fd, std::string_view payload) {
  std::string frame;
  frame.reserve(4 + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  size_t written = 0;
  while (written < frame.size()) {
    // MSG_NOSIGNAL: a peer that hung up before its response is written must
    // surface as EPIPE here, not as a process-killing SIGPIPE — one
    // disconnecting client must never take down a multi-tenant server.
    const ssize_t n = ::send(fd, frame.data() + written,
                             frame.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("socket write failed: " +
                             std::string(std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

namespace {

/// Reads exactly `n` bytes. `*eof_at_start` reports a clean EOF before the
/// first byte (only meaningful when the read fails).
Status ReadExactly(int fd, char* buf, size_t n, bool* eof_at_start) {
  size_t got = 0;
  *eof_at_start = false;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("socket read failed: " +
                             std::string(std::strerror(errno)));
    }
    if (r == 0) {
      *eof_at_start = got == 0;
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status ReadFrame(int fd, std::string* payload, uint32_t max_bytes,
                 double* transfer_seconds) {
  char header[4];
  bool eof_at_start = false;
  Status s = ReadExactly(fd, header, sizeof(header), &eof_at_start);
  if (!s.ok()) {
    if (eof_at_start) return Status::NotFound("connection closed");
    return s;
  }
  // Timed from header completion: the wait for a peer to *start* a request
  // is connection idle time, not frame transfer.
  Stopwatch transfer_timer;
  std::string_view header_view(header, sizeof(header));
  uint32_t length = 0;
  GetFixed32(&header_view, &length);
  if (length > max_bytes) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(length) + " bytes exceeds limit of " +
        std::to_string(max_bytes));
  }
  // Grow the buffer as bytes actually arrive instead of trusting the
  // client-declared length: a forged header must not allocate max_bytes
  // upfront for a peer that never sends a payload.
  constexpr size_t kReadChunkBytes = 256u << 10;
  payload->clear();
  size_t got = 0;
  while (got < length) {
    const size_t step = std::min<size_t>(kReadChunkBytes, length - got);
    payload->resize(got + step);
    s = ReadExactly(fd, payload->data() + got, step, &eof_at_start);
    if (!s.ok()) return s;
    got += step;
  }
  if (transfer_seconds != nullptr) {
    *transfer_seconds = transfer_timer.ElapsedSeconds();
  }
  return Status::OK();
}

}  // namespace mate
