#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

namespace mate {

namespace {

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

MateServer::MateServer(Session* session, ServerOptions options)
    : session_(session), options_(std::move(options)) {
  m_queries_total_ = metrics_.RegisterCounter(
      "mate_queries_total", "QUERY requests admitted by the server");
  m_shed_total_ = metrics_.RegisterCounter(
      "mate_queries_shed_total", "QUERY requests refused with kOverloaded");
  m_completed_total_ = metrics_.RegisterCounter(
      "mate_queries_completed_total",
      "Queries the dispatcher executed to completion");
  m_slow_total_ = metrics_.RegisterCounter(
      "mate_slow_queries_total",
      "Queries slower end-to-end than slow_query_threshold");
  m_requests_query_ = metrics_.RegisterCounter(
      "mate_requests_total", "Request frames decoded, by verb",
      {{"verb", "query"}});
  m_requests_stats_ = metrics_.RegisterCounter(
      "mate_requests_total", "Request frames decoded, by verb",
      {{"verb", "stats"}});
  m_requests_ping_ = metrics_.RegisterCounter(
      "mate_requests_total", "Request frames decoded, by verb",
      {{"verb", "ping"}});
  m_requests_metrics_ = metrics_.RegisterCounter(
      "mate_requests_total", "Request frames decoded, by verb",
      {{"verb", "metrics"}});
  m_steer_serial_ = metrics_.RegisterCounter(
      "mate_steering_decisions_total",
      "Dequeue-time fan-out decisions, by mode", {{"mode", "serial"}});
  m_steer_partial_ = metrics_.RegisterCounter(
      "mate_steering_decisions_total",
      "Dequeue-time fan-out decisions, by mode", {{"mode", "partial"}});
  m_steer_full_ = metrics_.RegisterCounter(
      "mate_steering_decisions_total",
      "Dequeue-time fan-out decisions, by mode", {{"mode", "full"}});
  m_queue_depth_ = metrics_.RegisterGauge(
      "mate_queue_depth", "Pending entries in the admission queue");
  m_queue_capacity_ = metrics_.RegisterGauge(
      "mate_queue_capacity", "Admission queue bound (max_queue_depth)");
  m_connections_ = metrics_.RegisterGauge("mate_connections_active",
                                          "Live client connections");
  m_draining_ = metrics_.RegisterGauge(
      "mate_draining", "1 while Stop() drains admitted queries");
  // Monotone counts exposed as counters (rate() works); their source of
  // truth is the session, so RenderMetricsText advances them by delta.
  m_cache_hits_ = metrics_.RegisterCounter(
      "mate_result_cache_hits", "Result-cache hits across all partitions");
  m_cache_misses_ = metrics_.RegisterCounter(
      "mate_result_cache_misses",
      "Result-cache misses across all partitions");
  m_corpus_evictions_ = metrics_.RegisterCounter(
      "mate_corpus_evictions", "Tables evicted by the residency budget");
  m_corpus_resident_bytes_ = metrics_.RegisterGauge(
      "mate_corpus_resident_bytes", "Corpus extent bytes resident");
  m_corpus_budget_bytes_ = metrics_.RegisterGauge(
      "mate_corpus_budget_bytes",
      "Corpus residency budget (0 = unlimited)");
  m_tables_resident_ = metrics_.RegisterGauge(
      "mate_tables_resident", "Tables partially or fully resident");
  m_latency_seconds_ = metrics_.RegisterHistogram(
      "mate_query_latency_seconds",
      "Served query latency (admission to completion)", 1e-6);
  m_queue_capacity_->Set(
      static_cast<int64_t>(options_.max_queue_depth));
}

MateServer::~MateServer() { Stop(); }

Status MateServer::Start() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (started_) return Status::InvalidArgument("server already started");
    started_ = true;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(listen_fd_);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IOError("bind(" + options_.host + ":" +
                               std::to_string(options_.port) +
                               ") failed: " + std::strerror(errno));
    CloseFd(listen_fd_);
    return s;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status s = Status::IOError("listen() failed: " +
                               std::string(std::strerror(errno)));
    CloseFd(listen_fd_);
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_.store(ntohs(bound.sin_port));

  if (::pipe(wake_pipe_) < 0) {
    Status s = Status::IOError("pipe() failed: " +
                               std::string(std::strerror(errno)));
    CloseFd(listen_fd_);
    return s;
  }

  if (options_.slow_query_threshold.count() > 0 &&
      !options_.slow_query_log_path.empty()) {
    slow_log_file_.open(options_.slow_query_log_path,
                        std::ios::out | std::ios::app);
    if (!slow_log_file_.is_open()) {
      CloseFd(listen_fd_);
      CloseFd(wake_pipe_[0]);
      CloseFd(wake_pipe_[1]);
      return Status::IOError("cannot open slow-query log " +
                             options_.slow_query_log_path);
    }
  }

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  return Status::OK();
}

void MateServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
    draining_ = true;
  }
  queue_cv_.notify_all();
  // Wake the accept poll so the listener closes and no new connections
  // arrive during the drain.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // In-flight queries (already admitted) finish: the dispatcher drains the
  // queue and exits. Connections parked on futures get their responses.
  if (dispatch_thread_.joinable()) dispatch_thread_.join();

  // Unblock connection readers parked in ReadFrame. Read-side only at
  // first: write sides stay open so responses to just-drained queries
  // still reach their clients.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& [id, conn] : connections_) {
      if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RD);
    }
  }
  // Every connection thread observes the error, deregisters itself (closing
  // its fd), and hands its handle to finished_threads_; wait for the
  // registry to empty, then join the handles. A thread blocked in
  // WriteFrame on a full send buffer (its peer stopped reading) is NOT
  // woken by the read-side shutdown — after a grace period, escalate those
  // stragglers to SHUT_RDWR, which fails the blocked send with EPIPE, so
  // this join cannot hang forever on a stalled client.
  {
    std::unique_lock<std::mutex> lock(connections_mu_);
    if (!connections_cv_.wait_for(lock, options_.drain_write_grace,
                                  [this] { return connections_.empty(); })) {
      for (auto& [id, conn] : connections_) {
        if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
      }
      connections_cv_.wait(lock, [this] { return connections_.empty(); });
    }
  }
  ReapFinishedConnections();
  CloseFd(wake_pipe_[0]);
  CloseFd(wake_pipe_[1]);
}

void MateServer::ReapFinishedConnections() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    done.swap(finished_threads_);
  }
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void MateServer::AcceptLoop() {
  while (true) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // Stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    // Join threads of connections that exited since the last accept, so a
    // long-lived server under connection churn does not accumulate dead
    // thread handles.
    ReapFinishedConnections();
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      if (connections_.size() >= options_.max_connections) {
        shed = true;
      } else {
        const uint64_t id = next_connection_id_++;
        Connection& conn = connections_[id];
        conn.fd = client;
        active_connections_.fetch_add(1);
        conn.thread =
            std::thread([this, id, client] { ServeConnection(id, client); });
      }
    }
    if (shed) {
      std::string response;
      EncodeErrorResponse(
          Status::Overloaded("connection limit (" +
                             std::to_string(options_.max_connections) +
                             ") reached"),
          &response);
      (void)WriteFrame(client, response);
      ::close(client);
    }
  }
  CloseFd(listen_fd_);
}

void MateServer::ServeConnection(uint64_t id, int fd) {
  std::string payload;
  while (true) {
    double read_seconds = 0.0;
    Status s = ReadFrame(fd, &payload, kMaxFrameBytes, &read_seconds);
    if (s.IsNotFound()) break;  // clean EOF between frames
    if (s.IsInvalidArgument()) {
      // Oversized declared length: answer once, then close — the stream
      // position can no longer be trusted.
      std::string response;
      EncodeErrorResponse(s, &response);
      (void)WriteFrame(fd, response);
      break;
    }
    if (!s.ok()) break;  // truncated frame or socket error

    ServerVerb verb;
    std::string_view body;
    s = DecodeRequestVerb(payload, &verb, &body);
    if (!s.ok()) {
      // Frame boundaries are intact; report the typed error and keep the
      // connection.
      std::string response;
      EncodeErrorResponse(s, &response);
      if (!WriteFrame(fd, response).ok()) break;
      continue;
    }
    switch (verb) {
      case ServerVerb::kQuery:
        m_requests_query_->Increment();
        HandleQuery(fd, body, read_seconds);
        break;
      case ServerVerb::kStats:
        m_requests_stats_->Increment();
        HandleStats(fd);
        break;
      case ServerVerb::kPing: {
        m_requests_ping_->Increment();
        std::string response;
        EncodePingResponse(&response);
        (void)WriteFrame(fd, response);
        break;
      }
      case ServerVerb::kMetrics:
        // Inline on the connection thread, like STATS: scrapes must keep
        // answering while the admission queue is saturated.
        m_requests_metrics_->Increment();
        HandleMetrics(fd);
        break;
    }
  }
  // A response-write failure surfaces as a read failure on the next
  // ReadFrame, so every exit funnels through here. Deregister: close the
  // fd, hand the thread handle to the reaper, erase the record, and wake
  // Stop() in case it is waiting for the registry to drain. Moving the
  // handle of the running thread is fine — only join from another thread
  // touches the underlying thread of execution.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    auto it = connections_.find(id);
    if (it != connections_.end()) {
      CloseFd(it->second.fd);
      finished_threads_.push_back(std::move(it->second.thread));
      connections_.erase(it);
    }
    active_connections_.fetch_sub(1);
  }
  connections_cv_.notify_all();
}

void MateServer::HandleQuery(int fd, std::string_view body,
                             double read_seconds) {
  // Per-request tracing is armed by the slow-query threshold: every query
  // records its server-side phases, and only the ones that end up slow pay
  // for serialization. Threshold 0 = the null-sink path.
  std::unique_ptr<QueryTrace> trace;
  uint32_t root = QueryTrace::kNoParent;
  if (options_.slow_query_threshold.count() > 0) {
    // The frame's transfer finished just before this trace exists, so the
    // epoch is rewound by its duration: read_frame occupies [0, read_us),
    // the root "request" span starts at 0 and covers it, and the decode
    // span (beginning "now" = read_us) does not overlap its sibling —
    // span-containment self-time accounting stays sound, and the root's
    // wall time includes what the client spent sending the frame.
    const uint64_t read_us = static_cast<uint64_t>(read_seconds * 1e6);
    trace = std::make_unique<QueryTrace>("request", read_us);
    root = trace->BeginSpanAt("request", QueryTrace::kNoParent, 0);
    trace->AddCompleteSpan("read_frame", root, 0, read_us);
  }
  std::string response;
  QueryRequest request;
  Status s;
  {
    ScopedSpan decode_span(trace.get(), "decode", root);
    s = DecodeQueryRequest(body, &request);
  }
  if (!s.ok()) {
    EncodeErrorResponse(s, &response);
    {
      ScopedSpan write_span(trace.get(), "write_frame", root);
      (void)WriteFrame(fd, response);
    }
    if (trace != nullptr) {
      trace->EndSpan(root);
      MaybeLogSlowQuery(*trace, root, request.tenant, s);
    }
    return;
  }
  const std::string tenant = request.tenant;
  std::future<Result<DiscoveryResult>> future;
  s = Admit(std::move(request), &future, trace.get(), root);
  if (!s.ok()) {
    // Shed (queue full / draining). The overload tail matters most in the
    // slow-query log, so this path ends the trace like a served request.
    EncodeErrorResponse(s, &response);
    {
      ScopedSpan write_span(trace.get(), "write_frame", root);
      (void)WriteFrame(fd, response);
    }
    if (trace != nullptr) {
      trace->EndSpan(root);
      MaybeLogSlowQuery(*trace, root, tenant, s);
    }
    return;
  }
  Result<DiscoveryResult> result = future.get();
  if (!result.ok()) {
    EncodeErrorResponse(result.status(), &response);
  } else {
    EncodeQueryResponse(session_->corpus(), result.value(), &response);
  }
  {
    ScopedSpan write_span(trace.get(), "write_frame", root);
    (void)WriteFrame(fd, response);
  }
  if (trace != nullptr) {
    trace->EndSpan(root);
    MaybeLogSlowQuery(*trace, root, tenant, result.status());
  }
}

void MateServer::HandleStats(int fd) {
  std::string response;
  EncodeStatsResponse(stats(), &response);
  (void)WriteFrame(fd, response);
}

void MateServer::HandleMetrics(int fd) {
  std::string response;
  EncodeMetricsResponse(RenderMetricsText(), &response);
  (void)WriteFrame(fd, response);
}

namespace {

// Advances a counter cell to a monotone total maintained elsewhere (the
// session). Caller serializes concurrent advances (render_mu_).
void AdvanceCounterTo(Counter* counter, uint64_t total) {
  const uint64_t current = counter->Value();
  if (total > current) counter->Increment(total - current);
}

}  // namespace

std::string MateServer::RenderMetricsText() {
  // Server-side counters are maintained at their event sites; gauges are
  // levels and refresh here from the same snapshot STATS serves. Cache and
  // eviction traffic is monotone but owned by the session, so those
  // counter cells advance by delta — under render_mu_, so concurrent
  // scrapes cannot double-apply a delta.
  const ServerStatsSnapshot snapshot = stats();
  std::lock_guard<std::mutex> lock(render_mu_);
  m_queue_depth_->Set(static_cast<int64_t>(snapshot.queue_depth));
  m_connections_->Set(static_cast<int64_t>(snapshot.active_connections));
  m_draining_->Set(snapshot.draining ? 1 : 0);
  AdvanceCounterTo(m_cache_hits_, snapshot.cache_hits);
  AdvanceCounterTo(m_cache_misses_, snapshot.cache_misses);
  AdvanceCounterTo(m_corpus_evictions_, snapshot.corpus_evictions);
  m_corpus_resident_bytes_->Set(
      static_cast<int64_t>(snapshot.corpus_resident_bytes));
  m_corpus_budget_bytes_->Set(
      static_cast<int64_t>(snapshot.corpus_budget_bytes));
  m_tables_resident_->Set(static_cast<int64_t>(snapshot.tables_resident));
  return metrics_.RenderPrometheusText();
}

void MateServer::MaybeLogSlowQuery(const QueryTrace& trace,
                                   uint32_t root_span,
                                   const std::string& tenant,
                                   const Status& status) {
  const std::vector<TraceSpan> spans = trace.Spans();
  if (root_span >= spans.size()) return;
  const uint64_t wall_us = spans[root_span].duration_us;
  const uint64_t threshold_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          options_.slow_query_threshold)
          .count());
  if (wall_us <= threshold_us) return;
  m_slow_total_->Increment();
  std::string extra = "\"tenant\":\"" + JsonEscape(tenant) +
                      "\",\"status\":\"" +
                      JsonEscape(status.ok() ? "ok" : status.message()) +
                      "\",\"wall_us\":" + std::to_string(wall_us) + ",";
  const std::string line = trace.ToJsonLine(extra);
  std::lock_guard<std::mutex> lock(slow_log_mu_);
  if (slow_log_file_.is_open()) {
    slow_log_file_ << line << "\n";
    slow_log_file_.flush();
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

Status MateServer::Admit(QueryRequest request,
                         std::future<Result<DiscoveryResult>>* future,
                         QueryTrace* trace, uint32_t root_span) {
  TenantCounters* tenant = nullptr;
  // The loop runs at most twice: once to claim a tenant's first-admission
  // partition configuration (performed between iterations, outside
  // queue_mu_ — a slow ResultCache resize must not stall every concurrent
  // admit/shed/stats behind the queue lock), then again to re-run the
  // admission checks atomically with the enqueue.
  while (true) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (tenant == nullptr) {
        // Tenant resolution under the cardinality bound: a name without a
        // dedicated row folds into the shared overflow row once adding one
        // would exceed max_tenants. request.tenant is rewritten so the
        // cache partition, counters, and metric series all agree.
        auto it = tenants_.find(request.tenant);
        if (it == tenants_.end() &&
            tenants_.size() + 1 >= std::max<size_t>(options_.max_tenants, 1)) {
          request.tenant = kOverflowTenant;
          it = tenants_.find(request.tenant);
        }
        if (it == tenants_.end()) {
          it = tenants_.try_emplace(request.tenant).first;
        }
        tenant = &it->second;
        ++tenant->requests;
        if (tenant->requests_metric == nullptr) {
          // First contact: mint the tenant's labeled counter series (now
          // bounded by max_tenants). Lock order here is queue_mu_ ->
          // registry mutex; the registry never calls back out, so this
          // nesting cannot invert.
          tenant->requests_metric = metrics_.RegisterCounter(
              "mate_tenant_requests_total", "QUERY frames received, by tenant.",
              {{"tenant", request.tenant}});
        }
        tenant->requests_metric->Increment();
      }
      if (draining_) {
        ++shed_;
        ++tenant->shed;
        m_shed_total_->Increment();
        return Status::Overloaded("server is draining");
      }
      if (queue_.size() >= options_.max_queue_depth) {
        ++shed_;
        ++tenant->shed;
        m_shed_total_->Increment();
        return Status::Overloaded(
            "admission queue full (" +
            std::to_string(options_.max_queue_depth) + " pending)");
      }
      if (options_.tenant_cache_bytes > 0 && !tenant->partition_configured) {
        // Claim the one-time configuration now, under the lock (exactly
        // once per tenant row, however many first admissions race), but
        // perform it outside: control falls past this scope to the
        // configure step below, then loops.
        tenant->partition_configured = true;
      } else {
        ++admitted_;
        m_queries_total_->Increment();
        ++tenant->admitted;
        auto pending = std::make_unique<PendingQuery>();
        pending->request = std::move(request);
        pending->enqueue_time = std::chrono::steady_clock::now();
        if (trace != nullptr) {
          pending->trace = trace;
          pending->root_span = root_span;
          pending->queue_wait_span = trace->BeginSpan("queue_wait", root_span);
        }
        *future = pending->promise.get_future();
        queue_.push_back(std::move(pending));
        m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
        break;
      }
    }
    // First would-be-admitted query of this tenant: budget its cache
    // partition before this query can be enqueued (so nothing of *this*
    // query lands in an unbudgeted partition; a same-tenant racer admitted
    // in the window lands before the resize, which then evicts down —
    // transient, and far cheaper than serializing every admit behind the
    // configure). ResultCache is internally synchronized.
    if (options_.configure_partition_delay_for_test.count() > 0) {
      std::this_thread::sleep_for(options_.configure_partition_delay_for_test);
    }
    session_->ConfigureCachePartition(request.tenant,
                                      options_.tenant_cache_bytes);
    partition_configures_.fetch_add(1);
  }
  queue_cv_.notify_one();
  return Status::OK();
}

void MateServer::SteerSpec(QuerySpec* spec, size_t queue_depth,
                           uint64_t p99_us, uint32_t dispatch_span) {
  const Result<uint64_t> estimate = session_->EstimatePlItems(*spec);
  if (!estimate.ok()) {
    // A spec Discover will reject anyway; leave the knobs alone so the
    // error surfaces unchanged, and count no decision.
    return;
  }
  const uint64_t target_p99_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          options_.target_p99)
          .count());
  const bool big = estimate.value() >= options_.steering_min_items;
  const bool over_slo = target_p99_us > 0 && p99_us > target_p99_us;
  const bool queue_deep = queue_depth * 2 >= options_.max_queue_depth;
  const char* mode = nullptr;
  if (!big || over_slo || queue_deep) {
    // Small queries gain nothing from fan-out; big ones degrade to serial
    // while the server is in the red — a giant query must not grab the
    // whole pool while the queue backs up or the SLO is already blown.
    spec->intra_query_threads = 1;
    mode = "serial";
    steer_serial_.fetch_add(1, std::memory_order_relaxed);
    m_steer_serial_->Increment();
  } else if (queue_depth > 0) {
    // Pressure building but not critical: half the pool.
    spec->intra_query_threads = std::max(1u, session_->num_threads() / 2);
    mode = "partial";
    steer_partial_.fetch_add(1, std::memory_order_relaxed);
    m_steer_partial_->Increment();
  } else {
    // Idle: the executor's auto mode (full fan-out for big queries).
    spec->intra_query_threads = 0;
    mode = "full";
    steer_full_.fetch_add(1, std::memory_order_relaxed);
    m_steer_full_->Increment();
  }
  if (spec->trace != nullptr) {
    spec->trace->AddCompleteSpan(
        "steer", dispatch_span, spec->trace->NowUs(), 0, 0,
        "\"mode\":\"" + std::string(mode) +
            "\",\"estimate\":" + std::to_string(estimate.value()) +
            ",\"queue_depth\":" + std::to_string(queue_depth) +
            ",\"p99_us\":" + std::to_string(p99_us));
  }
}

void MateServer::DispatchLoop() {
  while (true) {
    std::unique_ptr<PendingQuery> pending;
    size_t queue_depth = 0;
    uint64_t p99_us = 0;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (draining_) return;
        continue;
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
      m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      // Steering inputs, captured atomically with the dequeue: the backlog
      // left behind this query and the live served p99.
      queue_depth = queue_.size();
      if (options_.steering == SteeringMode::kAuto) {
        p99_us = latency_us_.Percentile(0.99);
      }
    }
    if (options_.dispatch_delay_for_test.count() > 0) {
      std::this_thread::sleep_for(options_.dispatch_delay_for_test);
    }
    uint32_t dispatch_span = QueryTrace::kNoParent;
    if (pending->trace != nullptr) {
      pending->trace->EndSpan(pending->queue_wait_span);
      dispatch_span =
          pending->trace->BeginSpan("dispatch", pending->root_span);
      // Discover roots its own span tree under whatever attach_parent says;
      // point it at the dispatch span so the query pipeline's phases nest
      // inside this request.
      pending->trace->SetAttachParent(dispatch_span);
    }
    QuerySpec spec = SpecFromRequest(pending->request);
    spec.trace = pending->trace;
    if (options_.steering == SteeringMode::kAuto) {
      SteerSpec(&spec, queue_depth, p99_us, dispatch_span);
    }
    Result<DiscoveryResult> result = session_->Discover(spec);
    if (pending->trace != nullptr) {
      pending->trace->EndSpan(dispatch_span);
    }
    const auto now = std::chrono::steady_clock::now();
    const uint64_t waited_us =
        static_cast<uint64_t>(std::chrono::duration_cast<
                                  std::chrono::microseconds>(
                                  now - pending->enqueue_time)
                                  .count());
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      ++completed_;
      latency_us_.Record(waited_us);
      if (result.ok()) {
        total_query_seconds_ += result.value().stats.runtime_seconds;
      }
    }
    m_completed_total_->Increment();
    m_latency_seconds_->Record(waited_us);
    pending->promise.set_value(std::move(result));
  }
}

size_t MateServer::registered_connections_for_test() const {
  std::lock_guard<std::mutex> lock(connections_mu_);
  return connections_.size();
}

ServerStatsSnapshot MateServer::stats() const {
  ServerStatsSnapshot snapshot;
  std::vector<std::string> tenant_names;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    snapshot.queue_depth = queue_.size();
    snapshot.queue_capacity = options_.max_queue_depth;
    snapshot.admitted = admitted_;
    snapshot.shed = shed_;
    snapshot.completed = completed_;
    snapshot.draining = draining_;
    snapshot.total_query_seconds = total_query_seconds_;
    snapshot.latency_count = latency_us_.count();
    snapshot.latency_p50_us = latency_us_.Percentile(0.50);
    snapshot.latency_p90_us = latency_us_.Percentile(0.90);
    snapshot.latency_p99_us = latency_us_.Percentile(0.99);
    snapshot.latency_p999_us = latency_us_.Percentile(0.999);
    snapshot.latency_max_us = latency_us_.max();
    for (const auto& [name, counters] : tenants_) {
      TenantStats t;
      t.tenant = name;
      t.requests = counters.requests;
      t.admitted = counters.admitted;
      t.shed = counters.shed;
      snapshot.tenants.push_back(std::move(t));
      tenant_names.push_back(name);
    }
  }
  snapshot.active_connections = active_connections_.load();
  snapshot.steering_serial = steer_serial_.load();
  snapshot.steering_partial = steer_partial_.load();
  snapshot.steering_full = steer_full_.load();

  const ResultCacheStats cache = session_->cache_stats();
  snapshot.cache_hits = cache.hits;
  snapshot.cache_misses = cache.misses;

  const ResidencyStats residency = session_->corpus_residency();
  snapshot.corpus_resident_bytes = residency.resident_bytes;
  snapshot.corpus_peak_resident_bytes = residency.peak_resident_bytes;
  snapshot.corpus_budget_bytes = residency.budget_bytes;
  snapshot.corpus_evictions = residency.evictions;
  snapshot.tables_resident = residency.tables_resident;
  snapshot.num_tables = session_->corpus().NumTables();

  // Per-tenant cache rows come from the session's partition stats (the
  // cache is internally synchronized; reading it outside queue_mu_ avoids
  // a lock-order edge with the dispatcher).
  for (size_t i = 0; i < tenant_names.size(); ++i) {
    const ResultCacheStats partition =
        session_->cache_partition_stats(tenant_names[i]);
    TenantStats& t = snapshot.tenants[i];
    t.cache_hits = partition.hits;
    t.cache_misses = partition.misses;
    t.cache_entries = partition.entries;
    t.cache_bytes = partition.bytes;
    t.cache_capacity_bytes = partition.capacity_bytes;
  }
  return snapshot;
}

}  // namespace mate
