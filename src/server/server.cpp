#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace mate {

namespace {

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

MateServer::MateServer(Session* session, ServerOptions options)
    : session_(session), options_(std::move(options)) {}

MateServer::~MateServer() { Stop(); }

Status MateServer::Start() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (started_) return Status::InvalidArgument("server already started");
    started_ = true;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(listen_fd_);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IOError("bind(" + options_.host + ":" +
                               std::to_string(options_.port) +
                               ") failed: " + std::strerror(errno));
    CloseFd(listen_fd_);
    return s;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status s = Status::IOError("listen() failed: " +
                               std::string(std::strerror(errno)));
    CloseFd(listen_fd_);
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_.store(ntohs(bound.sin_port));

  if (::pipe(wake_pipe_) < 0) {
    Status s = Status::IOError("pipe() failed: " +
                               std::string(std::strerror(errno)));
    CloseFd(listen_fd_);
    return s;
  }

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  return Status::OK();
}

void MateServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
    draining_ = true;
  }
  queue_cv_.notify_all();
  // Wake the accept poll so the listener closes and no new connections
  // arrive during the drain.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // In-flight queries (already admitted) finish: the dispatcher drains the
  // queue and exits. Connections parked on futures get their responses.
  if (dispatch_thread_.joinable()) dispatch_thread_.join();

  // Unblock connection readers parked in ReadFrame. Read-side only at
  // first: write sides stay open so responses to just-drained queries
  // still reach their clients.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& [id, conn] : connections_) {
      if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RD);
    }
  }
  // Every connection thread observes the error, deregisters itself (closing
  // its fd), and hands its handle to finished_threads_; wait for the
  // registry to empty, then join the handles. A thread blocked in
  // WriteFrame on a full send buffer (its peer stopped reading) is NOT
  // woken by the read-side shutdown — after a grace period, escalate those
  // stragglers to SHUT_RDWR, which fails the blocked send with EPIPE, so
  // this join cannot hang forever on a stalled client.
  {
    std::unique_lock<std::mutex> lock(connections_mu_);
    if (!connections_cv_.wait_for(lock, options_.drain_write_grace,
                                  [this] { return connections_.empty(); })) {
      for (auto& [id, conn] : connections_) {
        if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
      }
      connections_cv_.wait(lock, [this] { return connections_.empty(); });
    }
  }
  ReapFinishedConnections();
  CloseFd(wake_pipe_[0]);
  CloseFd(wake_pipe_[1]);
}

void MateServer::ReapFinishedConnections() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    done.swap(finished_threads_);
  }
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void MateServer::AcceptLoop() {
  while (true) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // Stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    // Join threads of connections that exited since the last accept, so a
    // long-lived server under connection churn does not accumulate dead
    // thread handles.
    ReapFinishedConnections();
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      if (connections_.size() >= options_.max_connections) {
        shed = true;
      } else {
        const uint64_t id = next_connection_id_++;
        Connection& conn = connections_[id];
        conn.fd = client;
        active_connections_.fetch_add(1);
        conn.thread =
            std::thread([this, id, client] { ServeConnection(id, client); });
      }
    }
    if (shed) {
      std::string response;
      EncodeErrorResponse(
          Status::Overloaded("connection limit (" +
                             std::to_string(options_.max_connections) +
                             ") reached"),
          &response);
      (void)WriteFrame(client, response);
      ::close(client);
    }
  }
  CloseFd(listen_fd_);
}

void MateServer::ServeConnection(uint64_t id, int fd) {
  std::string payload;
  while (true) {
    Status s = ReadFrame(fd, &payload);
    if (s.IsNotFound()) break;  // clean EOF between frames
    if (s.IsInvalidArgument()) {
      // Oversized declared length: answer once, then close — the stream
      // position can no longer be trusted.
      std::string response;
      EncodeErrorResponse(s, &response);
      (void)WriteFrame(fd, response);
      break;
    }
    if (!s.ok()) break;  // truncated frame or socket error

    ServerVerb verb;
    std::string_view body;
    s = DecodeRequestVerb(payload, &verb, &body);
    if (!s.ok()) {
      // Frame boundaries are intact; report the typed error and keep the
      // connection.
      std::string response;
      EncodeErrorResponse(s, &response);
      if (!WriteFrame(fd, response).ok()) break;
      continue;
    }
    switch (verb) {
      case ServerVerb::kQuery:
        HandleQuery(fd, body);
        break;
      case ServerVerb::kStats:
        HandleStats(fd);
        break;
      case ServerVerb::kPing: {
        std::string response;
        EncodePingResponse(&response);
        (void)WriteFrame(fd, response);
        break;
      }
    }
  }
  // A response-write failure surfaces as a read failure on the next
  // ReadFrame, so every exit funnels through here. Deregister: close the
  // fd, hand the thread handle to the reaper, erase the record, and wake
  // Stop() in case it is waiting for the registry to drain. Moving the
  // handle of the running thread is fine — only join from another thread
  // touches the underlying thread of execution.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    auto it = connections_.find(id);
    if (it != connections_.end()) {
      CloseFd(it->second.fd);
      finished_threads_.push_back(std::move(it->second.thread));
      connections_.erase(it);
    }
    active_connections_.fetch_sub(1);
  }
  connections_cv_.notify_all();
}

void MateServer::HandleQuery(int fd, std::string_view body) {
  std::string response;
  QueryRequest request;
  Status s = DecodeQueryRequest(body, &request);
  if (!s.ok()) {
    EncodeErrorResponse(s, &response);
    (void)WriteFrame(fd, response);
    return;
  }
  std::future<Result<DiscoveryResult>> future;
  s = Admit(std::move(request), &future);
  if (!s.ok()) {
    EncodeErrorResponse(s, &response);
    (void)WriteFrame(fd, response);
    return;
  }
  Result<DiscoveryResult> result = future.get();
  if (!result.ok()) {
    EncodeErrorResponse(result.status(), &response);
  } else {
    EncodeQueryResponse(session_->corpus(), result.value(), &response);
  }
  (void)WriteFrame(fd, response);
}

void MateServer::HandleStats(int fd) {
  std::string response;
  EncodeStatsResponse(stats(), &response);
  (void)WriteFrame(fd, response);
}

Status MateServer::Admit(QueryRequest request,
                         std::future<Result<DiscoveryResult>>* future) {
  bool configure_partition = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    TenantCounters& tenant = tenants_[request.tenant];
    ++tenant.requests;
    if (draining_) {
      ++shed_;
      ++tenant.shed;
      return Status::Overloaded("server is draining");
    }
    if (queue_.size() >= options_.max_queue_depth) {
      ++shed_;
      ++tenant.shed;
      return Status::Overloaded(
          "admission queue full (" +
          std::to_string(options_.max_queue_depth) + " pending)");
    }
    ++admitted_;
    configure_partition =
        tenant.admitted == 0 && options_.tenant_cache_bytes > 0;
    ++tenant.admitted;
    auto pending = std::make_unique<PendingQuery>();
    pending->request = std::move(request);
    pending->enqueue_time = std::chrono::steady_clock::now();
    *future = pending->promise.get_future();
    if (configure_partition) {
      // First admitted query of this tenant: give its cache partition the
      // configured budget before anything lands in it. ResultCache is
      // internally synchronized, so this is safe alongside the dispatcher.
      session_->ConfigureCachePartition(pending->request.tenant,
                                        options_.tenant_cache_bytes);
    }
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return Status::OK();
}

void MateServer::DispatchLoop() {
  while (true) {
    std::unique_ptr<PendingQuery> pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (draining_) return;
        continue;
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    if (options_.dispatch_delay_for_test.count() > 0) {
      std::this_thread::sleep_for(options_.dispatch_delay_for_test);
    }
    QuerySpec spec = SpecFromRequest(pending->request);
    Result<DiscoveryResult> result = session_->Discover(spec);
    const auto now = std::chrono::steady_clock::now();
    const uint64_t waited_us =
        static_cast<uint64_t>(std::chrono::duration_cast<
                                  std::chrono::microseconds>(
                                  now - pending->enqueue_time)
                                  .count());
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      ++completed_;
      latency_us_.Record(waited_us);
      if (result.ok()) {
        total_query_seconds_ += result.value().stats.runtime_seconds;
      }
    }
    pending->promise.set_value(std::move(result));
  }
}

size_t MateServer::registered_connections_for_test() const {
  std::lock_guard<std::mutex> lock(connections_mu_);
  return connections_.size();
}

ServerStatsSnapshot MateServer::stats() const {
  ServerStatsSnapshot snapshot;
  std::vector<std::string> tenant_names;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    snapshot.queue_depth = queue_.size();
    snapshot.queue_capacity = options_.max_queue_depth;
    snapshot.admitted = admitted_;
    snapshot.shed = shed_;
    snapshot.completed = completed_;
    snapshot.draining = draining_;
    snapshot.total_query_seconds = total_query_seconds_;
    snapshot.latency_count = latency_us_.count();
    snapshot.latency_p50_us = latency_us_.Percentile(0.50);
    snapshot.latency_p90_us = latency_us_.Percentile(0.90);
    snapshot.latency_p99_us = latency_us_.Percentile(0.99);
    snapshot.latency_p999_us = latency_us_.Percentile(0.999);
    snapshot.latency_max_us = latency_us_.max();
    for (const auto& [name, counters] : tenants_) {
      TenantStats t;
      t.tenant = name;
      t.requests = counters.requests;
      t.admitted = counters.admitted;
      t.shed = counters.shed;
      snapshot.tenants.push_back(std::move(t));
      tenant_names.push_back(name);
    }
  }
  snapshot.active_connections = active_connections_.load();

  const ResultCacheStats cache = session_->cache_stats();
  snapshot.cache_hits = cache.hits;
  snapshot.cache_misses = cache.misses;

  const ResidencyStats residency = session_->corpus_residency();
  snapshot.corpus_resident_bytes = residency.resident_bytes;
  snapshot.corpus_peak_resident_bytes = residency.peak_resident_bytes;
  snapshot.corpus_budget_bytes = residency.budget_bytes;
  snapshot.corpus_evictions = residency.evictions;
  snapshot.tables_resident = residency.tables_resident;
  snapshot.num_tables = session_->corpus().NumTables();

  // Per-tenant cache rows come from the session's partition stats (the
  // cache is internally synchronized; reading it outside queue_mu_ avoids
  // a lock-order edge with the dispatcher).
  for (size_t i = 0; i < tenant_names.size(); ++i) {
    const ResultCacheStats partition =
        session_->cache_partition_stats(tenant_names[i]);
    TenantStats& t = snapshot.tenants[i];
    t.cache_hits = partition.hits;
    t.cache_misses = partition.misses;
    t.cache_entries = partition.entries;
    t.cache_bytes = partition.bytes;
    t.cache_capacity_bytes = partition.capacity_bytes;
  }
  return snapshot;
}

}  // namespace mate
