// Wire protocol of mate_server: a small length-prefixed binary framing over
// TCP, built from the same varint/fixed codecs (util/coding.h) the corpus
// and index files use. One frame is
//
//   [fixed32 payload_length][payload]
//
// and every payload starts with a one-byte verb (requests) or a one-byte
// status code (responses):
//
//   QUERY request:  [u8 verb=1][lp tenant][varint32 k][u8 filter flags]
//                   [varint64 n + varint32 ids]  (exclude_tables, sorted by
//                   the client or not — the server treats them as a set)
//                   [varint64 n + varint32 ids]  (restrict_tables)
//                   [varint32 num_key_columns][lp column name ...]
//                   [varint64 num_rows][lp cell ...]  (row-major, live rows)
//   STATS request:  [u8 verb=2]
//   PING  request:  [u8 verb=3]
//   METRICS req.:   [u8 verb=4]
//
//   response:       [u8 status_code][lp status message][verb-specific body]
//
// The QUERY body on OK is the served top-k: table id, joinability, table
// name, and the column mapping (ids + names, so a client can print results
// without holding the corpus). The STATS body is the ServerStatsSnapshot
// below. Clients send only the query's *key columns* (discovery reads
// nothing else from a query table — the same property the result-cache
// fingerprint relies on), so served results are bit-identical to an
// in-process Session::Discover over the full table.
//
// Malformed payloads decode to a typed Status (never a crash); the server
// answers with that status and keeps the connection when frame boundaries
// are intact, or closes it when the stream itself is unusable (oversized
// or truncated frame).

#ifndef MATE_SERVER_PROTOCOL_H_
#define MATE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/session.h"
#include "storage/corpus.h"
#include "storage/table.h"
#include "util/status.h"

namespace mate {

enum class ServerVerb : uint8_t {
  kQuery = 1,
  kStats = 2,
  kPing = 3,
  /// Prometheus text exposition page; answered inline on the connection
  /// thread like STATS, so scrapes keep working at saturation.
  kMetrics = 4,
};

/// Frames larger than this are rejected with a typed error and the
/// connection is closed (the declared length cannot be trusted).
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Tenant names longer than this are rejected at decode with a typed
/// InvalidArgument. The tenant string becomes a metric label, a stats-row
/// key, and a cache-partition key, so its length must be bounded far below
/// the 64MB frame cap an adversarial client could otherwise exploit.
constexpr size_t kMaxTenantNameBytes = 256;

// ---- client-side request construction ---------------------------------

/// One discovery request as it travels the wire. `query` holds only the key
/// columns (in key order) and `key_columns` is the identity mapping over
/// them; MakeQueryRequest builds that shape from a full table.
struct QueryRequest {
  std::string tenant;
  int k = 10;
  bool use_row_filter = true;
  bool use_table_filters = true;
  std::vector<TableId> exclude_tables;
  std::vector<TableId> restrict_tables;
  Table query;
};

/// Projects `table`'s `key_columns` (ids into `table`) into a key-only
/// request table: live rows only, columns in key order keeping their names.
/// Precondition: every id is in range.
QueryRequest MakeQueryRequest(const Table& table,
                              const std::vector<ColumnId>& key_columns,
                              int k, std::string tenant);

/// The QuerySpec a server evaluates for a decoded request; `request` must
/// outlive the spec (the spec points at request.query).
QuerySpec SpecFromRequest(const QueryRequest& request);

// ---- payload codecs ----------------------------------------------------

/// Serializes a request payload (verb byte included, frame header not).
void EncodeQueryRequest(const QueryRequest& request, std::string* payload);
void EncodeStatsRequest(std::string* payload);
void EncodePingRequest(std::string* payload);
void EncodeMetricsRequest(std::string* payload);

/// Reads the verb byte. InvalidArgument on an empty payload or unknown
/// verb. `*rest` receives the payload after the verb.
Status DecodeRequestVerb(std::string_view payload, ServerVerb* verb,
                         std::string_view* rest);

/// Decodes a QUERY request body (everything after the verb byte).
/// InvalidArgument names the malformed section.
Status DecodeQueryRequest(std::string_view body, QueryRequest* request);

// ---- responses ---------------------------------------------------------

/// One served result row (the client-side mirror of TableResult plus the
/// names a client cannot resolve itself).
struct ServedResult {
  TableId table_id = kInvalidTableId;
  int64_t joinability = 0;
  std::string table_name;
  std::vector<ColumnId> mapping;
  std::vector<std::string> mapping_names;
};

struct QueryResponse {
  /// The server-side outcome: OK, kOverloaded (shed by admission control or
  /// draining), or the typed validation/corruption error Discover returned.
  Status status;
  std::vector<ServedResult> results;
};

/// Per-tenant serving counters, as reported by the STATS verb.
struct TenantStats {
  std::string tenant;
  uint64_t requests = 0;   // QUERY frames received for this tenant
  uint64_t admitted = 0;   // passed admission control
  uint64_t shed = 0;       // refused with kOverloaded
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_capacity_bytes = 0;
};

/// The serving-side metrics layer: admission-control gauges, BatchStats-
/// shaped aggregates over served queries, corpus residency, and the
/// per-tenant counter table.
struct ServerStatsSnapshot {
  // Admission control.
  uint64_t queue_depth = 0;
  uint64_t queue_capacity = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;
  uint64_t active_connections = 0;
  bool draining = false;

  // BatchStats-shaped service aggregates (seconds / counters over every
  // completed query; latency percentiles cover queue wait + execution,
  // measured server-side in microseconds).
  double total_query_seconds = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t latency_count = 0;
  uint64_t latency_p50_us = 0;
  uint64_t latency_p90_us = 0;
  uint64_t latency_p99_us = 0;
  uint64_t latency_p999_us = 0;
  uint64_t latency_max_us = 0;

  // Corpus residency (Session::corpus_residency).
  uint64_t corpus_resident_bytes = 0;
  uint64_t corpus_peak_resident_bytes = 0;
  uint64_t corpus_budget_bytes = 0;
  uint64_t corpus_evictions = 0;
  uint64_t tables_resident = 0;
  uint64_t num_tables = 0;

  // SLO-aware steering decisions taken at dequeue (zero when steering is
  // off): how many queries ran serial / at partial fan-out / at full
  // fan-out. Mirrors mate_steering_decisions_total{mode=...}.
  uint64_t steering_serial = 0;
  uint64_t steering_partial = 0;
  uint64_t steering_full = 0;

  std::vector<TenantStats> tenants;

  std::string ToString() const;
};

/// Serializes an OK QUERY response; names come from the corpus's shape
/// accessors (never materializing a table).
void EncodeQueryResponse(const Corpus& corpus, const DiscoveryResult& result,
                         std::string* payload);
/// Serializes a non-OK response (any verb): status byte + message only.
void EncodeErrorResponse(const Status& status, std::string* payload);
/// Serializes an OK STATS response.
void EncodeStatsResponse(const ServerStatsSnapshot& snapshot,
                         std::string* payload);
/// Serializes an OK PING response (status byte only).
void EncodePingResponse(std::string* payload);
/// Serializes an OK METRICS response: the Prometheus text page, length-
/// prefixed.
void EncodeMetricsResponse(std::string_view text_page, std::string* payload);

/// Decodes any response payload's leading status; OK responses leave the
/// verb-specific body in `*body`. Corruption on an empty payload or an
/// unknown status code byte.
Status DecodeResponseStatus(std::string_view payload, Status* server_status,
                            std::string_view* body);
/// Decodes an OK QUERY response body.
Status DecodeQueryResponseBody(std::string_view body,
                               std::vector<ServedResult>* results);
/// Decodes an OK STATS response body.
Status DecodeStatsResponseBody(std::string_view body,
                               ServerStatsSnapshot* snapshot);
/// Decodes an OK METRICS response body.
Status DecodeMetricsResponseBody(std::string_view body,
                                 std::string* text_page);

// ---- framed socket I/O -------------------------------------------------

/// Writes [fixed32 length][payload] to `fd`, handling short writes and
/// EINTR. IOError on a closed/failed socket.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame into `*payload`. Distinguishes three outcomes:
///   * OK — a complete frame arrived;
///   * NotFound("connection closed") — clean EOF at a frame boundary (the
///     peer hung up between requests; not an error);
///   * IOError / InvalidArgument — truncated frame, socket error, or a
///     declared length beyond `max_bytes` (stream unusable; close it).
///
/// When `transfer_seconds` is non-null it receives the time from header
/// completion to the last payload byte — the frame's on-wire transfer
/// time, excluding however long the socket sat idle waiting for the peer
/// to start a request (the server's per-request "read_frame" span).
Status ReadFrame(int fd, std::string* payload,
                 uint32_t max_bytes = kMaxFrameBytes,
                 double* transfer_seconds = nullptr);

}  // namespace mate

#endif  // MATE_SERVER_PROTOCOL_H_
