// Quickstart: index a tiny corpus and discover n-ary joinable tables.
//
// This walks the paper's Figure 1 running example end to end through
// mate::Session, the library's front door:
//   1. build a corpus (the data lake),
//   2. open a Session that builds the MATE index (inverted index + XASH
//      super keys) and owns it together with the thread pool and cache,
//   3. ask for the top-k tables joinable with a query table on the
//      composite key <F. Name, L. Name, Country>.
//
//   4. persist the pair and reopen it *phased*: Open returns while the
//      mmap'd postings and super keys stream in on the pool, and the first
//      Discover blocks on the readiness latch — same results, servable
//      process long before the index is hot.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/session.h"

using namespace mate;  // NOLINT: example brevity

int main() {
  // ---- 1. The data lake --------------------------------------------
  Corpus corpus;

  Table t1("people_de");  // the paper's candidate table T1
  t1.AddColumn("Vorname");
  t1.AddColumn("Nachname");
  t1.AddColumn("Land");
  t1.AddColumn("Besetzung");
  (void)t1.AppendRow({"Helmut", "Newton", "Germany", "Photographer"});
  (void)t1.AppendRow({"Muhammad", "Lee", "US", "Dancer"});
  (void)t1.AppendRow({"Ansel", "Adams", "UK", "Dancer"});
  (void)t1.AppendRow({"Ansel", "Adams", "US", "Photographer"});
  (void)t1.AppendRow({"Muhammad", "Ali", "US", "Boxer"});
  (void)t1.AppendRow({"Muhammad", "Lee", "Germany", "Birder"});
  (void)t1.AppendRow({"Gretchen", "Lee", "Germany", "Artist"});
  (void)t1.AppendRow({"Adam", "Sandler", "US", "Actor"});
  corpus.AddTable(std::move(t1));

  Table t2("partial_match");
  t2.AddColumn("first");
  t2.AddColumn("last");
  t2.AddColumn("country");
  (void)t2.AppendRow({"Muhammad", "Lee", "US"});
  (void)t2.AppendRow({"Helmut", "Newton", "Germany"});
  (void)t2.AppendRow({"Grace", "Hopper", "US"});
  corpus.AddTable(std::move(t2));

  Table t3("values_but_no_combos");
  t3.AddColumn("a");
  t3.AddColumn("b");
  t3.AddColumn("c");
  (void)t3.AppendRow({"Muhammad", "Newton", "UK"});
  (void)t3.AppendRow({"Ansel", "Lee", "Germany"});
  corpus.AddTable(std::move(t3));

  // ---- 2. Open the discovery service (Figure 2, left) ----------------
  SessionOptions session_options;
  session_options.corpus = std::move(corpus);
  session_options.build_index = true;    // XASH, 128 bits, corpus-tuned
  auto session = Session::Open(std::move(session_options));
  if (!session.ok()) {
    std::fprintf(stderr, "Session::Open failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  std::printf("Indexed corpus: %s\n",
              session->corpus_stats().ToString().c_str());
  std::printf("Index: %s\n\n", session->build_report().ToString().c_str());

  // ---- 3. Online discovery (Algorithm 1) ----------------------------
  Table query("d");
  query.AddColumn("F. Name");
  query.AddColumn("L. Name");
  query.AddColumn("Country");
  query.AddColumn("Salary");
  (void)query.AppendRow({"Muhammad", "Lee", "US", "60k"});
  (void)query.AppendRow({"Ansel", "Adams", "UK", "50k"});
  (void)query.AppendRow({"Ansel", "Adams", "US", "400k"});
  (void)query.AppendRow({"Muhammad", "Lee", "Germany", "90k"});
  (void)query.AppendRow({"Helmut", "Newton", "Germany", "300k"});

  QuerySpec spec;
  spec.table = &query;
  spec.key_columns = {0, 1, 2};
  spec.options.k = 5;
  auto discovered = session->Discover(spec);
  if (!discovered.ok()) {  // malformed specs fail loudly, before any work
    std::fprintf(stderr, "Discover failed: %s\n",
                 discovered.status().ToString().c_str());
    return 1;
  }
  const DiscoveryResult& result = *discovered;
  const Corpus& lake = session->corpus();

  std::printf("Top joinable tables for key <F. Name, L. Name, Country>:\n");
  for (const TableResult& tr : result.top_k) {
    std::printf("  %-22s joinability=%lld  mapping:",
                lake.table(tr.table_id).name().c_str(),
                static_cast<long long>(tr.joinability));
    for (size_t i = 0; i < tr.best_mapping.size(); ++i) {
      std::printf(" %s->%s",
                  query.column_name(static_cast<ColumnId>(i)).c_str(),
                  lake.table(tr.table_id)
                      .column_name(tr.best_mapping[i])
                      .c_str());
    }
    std::printf("\n");
  }
  std::printf("\nDiscovery stats: %s\n", result.stats.ToString().c_str());
  std::printf(
      "\nThe super-key row filter sent %llu of %llu fetched rows to "
      "verification (precision %.2f) — that pruning is the paper's core "
      "contribution.\n",
      static_cast<unsigned long long>(result.stats.rows_sent_to_verification),
      static_cast<unsigned long long>(result.stats.rows_checked),
      result.stats.Precision());

  // ---- 4. Cold start: save, then reopen phased ----------------------
  const std::string corpus_path = "/tmp/mate_quickstart.corpus";
  const std::string index_path = "/tmp/mate_quickstart.index";
  if (auto s = session->Save(corpus_path, index_path); !s.ok()) {
    std::fprintf(stderr, "Save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  SessionOptions reopen;
  reopen.corpus_path = corpus_path;
  reopen.index_path = index_path;
  reopen.num_threads = 2;  // phase 2 streams on the pool
  auto served = Session::Open(std::move(reopen));
  if (!served.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 served.status().ToString().c_str());
    return 1;
  }
  std::printf("\nReopened from disk; index %s at Open return.\n",
              served->index_ready() ? "already warm" : "still warming");
  auto again = served->Discover(spec);  // blocks on the readiness latch
  if (!again.ok()) {
    std::fprintf(stderr, "Discover after reopen failed: %s\n",
                 again.status().ToString().c_str());
    return 1;
  }
  bool same = again->top_k.size() == result.top_k.size();
  for (size_t i = 0; same && i < result.top_k.size(); ++i) {
    same = again->top_k[i].table_id == result.top_k[i].table_id &&
           again->top_k[i].joinability == result.top_k[i].joinability;
  }
  std::printf("First post-reopen Discover returned %zu tables (%s the "
              "in-memory session's answer).\n",
              again->top_k.size(), same ? "matching" : "DIFFERENT FROM");
  std::remove(corpus_path.c_str());
  std::remove(index_path.c_str());
  return same ? 0 : 1;
}
