// The paper's §7.3 qualitative result, reproduced synthetically: searching
// with the single-column key <Movie Title> surfaces tables that merely share
// title strings, while the composite key <Director, Movie Title> surfaces a
// rich, correctly-aligned movie-facts table (plot, actors, ...).
//
// Build & run:  ./build/examples/movie_enrichment

#include <cstdio>
#include <string>

#include "core/session.h"

using namespace mate;  // NOLINT: example brevity

namespace {

struct Movie {
  const char* director;
  const char* title;
  const char* year;
  const char* plot;
  const char* lead;
};

constexpr Movie kMovies[] = {
    {"nolan", "inception", "2010", "a thief steals secrets in dreams",
     "dicaprio"},
    {"nolan", "dunkirk", "2017", "allied soldiers are evacuated", "whitehead"},
    {"scott", "alien", "1979", "a crew meets a deadly organism", "weaver"},
    {"scott", "gladiator", "2000", "a general seeks revenge in rome",
     "crowe"},
    {"kubrick", "the shining", "1980", "a writer unravels in a hotel",
     "nicholson"},
    {"spielberg", "jaws", "1975", "a shark terrorizes a beach town",
     "scheider"},
    {"spielberg", "lincoln", "2012", "a president fights for a law",
     "day-lewis"},
    {"villeneuve", "dune", "2021", "a noble family rules a desert planet",
     "chalamet"},
};

}  // namespace

int main() {
  Corpus corpus;

  // The valuable target: a movie-facts table keyed by (director, title).
  Table facts("movie_facts");
  facts.AddColumn("director");
  facts.AddColumn("title");
  facts.AddColumn("year");
  facts.AddColumn("plot");
  facts.AddColumn("lead_actor");
  for (const Movie& m : kMovies) {
    (void)facts.AppendRow({m.director, m.title, m.year, m.plot, m.lead});
  }
  TableId facts_id = corpus.AddTable(std::move(facts));

  // Noise: tables that reuse famous titles for unrelated things (bands,
  // books, board games) — they join on the title column alone.
  const char* reuse_kinds[] = {"band", "novel", "board game", "racehorse"};
  for (int k = 0; k < 4; ++k) {
    Table reuse(std::string("things_named_like_movies_") +
                std::to_string(k));
    reuse.AddColumn("name");
    reuse.AddColumn("kind");
    reuse.AddColumn("since");
    for (const Movie& m : kMovies) {
      (void)reuse.AppendRow(
          {m.title, reuse_kinds[k], std::to_string(1990 + k)});
    }
    corpus.AddTable(std::move(reuse));
  }

  SessionOptions session_options;
  session_options.corpus = std::move(corpus);
  session_options.build_index = true;
  auto session = Session::Open(std::move(session_options));
  if (!session.ok()) {
    std::fprintf(stderr, "Session::Open failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  const Corpus& lake = session->corpus();

  // The analyst's dataset: directors + titles + a rating to be enriched.
  Table query("imdb_sample");
  query.AddColumn("director_name");
  query.AddColumn("movie_title");
  query.AddColumn("imdb_score");
  for (const Movie& m : kMovies) {
    (void)query.AppendRow({m.director, m.title, "7.9"});
  }

  QuerySpec spec;
  spec.table = &query;
  spec.options.k = 3;

  std::printf("Single-column key <movie_title>:\n");
  spec.key_columns = {1};
  auto unary = session->Discover(spec);
  if (!unary.ok()) {
    std::fprintf(stderr, "Discover failed: %s\n",
                 unary.status().ToString().c_str());
    return 1;
  }
  for (const TableResult& tr : unary->top_k) {
    std::printf("  %-32s joinability=%lld  (%zu columns of payload)\n",
                lake.table(tr.table_id).name().c_str(),
                static_cast<long long>(tr.joinability),
                lake.table(tr.table_id).NumColumns() - 1);
  }
  std::printf("  -> every title-reuse table ties with the real one; the "
              "analyst cannot tell them apart.\n\n");

  std::printf("Composite key <director_name, movie_title>:\n");
  spec.key_columns = {0, 1};
  auto nary = session->Discover(spec);
  if (!nary.ok()) {
    std::fprintf(stderr, "Discover failed: %s\n",
                 nary.status().ToString().c_str());
    return 1;
  }
  for (const TableResult& tr : nary->top_k) {
    std::printf("  %-32s joinability=%lld\n",
                lake.table(tr.table_id).name().c_str(),
                static_cast<long long>(tr.joinability));
  }
  if (!nary->top_k.empty() && nary->top_k[0].table_id == facts_id) {
    const Table& t = lake.table(facts_id);
    std::printf("  -> only the aligned movie-facts table survives; joining "
                "it adds columns:");
    for (ColumnId c = 2; c < t.NumColumns(); ++c) {
      std::printf(" %s", t.column_name(c).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
