// Data-lake curation with the XASH toolbox beyond joins: find near-duplicate
// records across tables (§1: "our hash function could serve as a prefilter
// for finding similar records") and tables that can be *unioned* with a
// dataset at hand (§1/§8), all from the same signatures that power join
// discovery.
//
// Build & run:  ./build/examples/dataset_curation

#include <cstdio>

#include "core/similarity.h"
#include "core/union_search.h"
#include "hash/xash.h"

using namespace mate;  // NOLINT: example brevity

int main() {
  Corpus corpus;

  // Two customer exports with overlapping records (classic dedup target).
  Table crm("crm_export");
  crm.AddColumn("name");
  crm.AddColumn("city");
  crm.AddColumn("plan");
  (void)crm.AppendRow({"dana alvarez", "berlin", "pro"});
  (void)crm.AppendRow({"li wei", "hamburg", "basic"});
  (void)crm.AppendRow({"sam okafor", "vienna", "pro"});
  corpus.AddTable(std::move(crm));

  Table billing("billing_export");
  billing.AddColumn("customer");
  billing.AddColumn("location");
  billing.AddColumn("tier");
  (void)billing.AppendRow({"Dana Alvarez", "BERLIN", "pro"});   // exact dup
  (void)billing.AppendRow({"li wei", "hamburg", "premium"});    // near dup
  (void)billing.AppendRow({"new customer", "munich", "basic"}); // unique
  TableId billing_id = corpus.AddTable(std::move(billing));

  // A table from another team with the same schema domain (union target).
  Table partners("partner_customers");
  partners.AddColumn("name");
  partners.AddColumn("city");
  partners.AddColumn("plan");
  (void)partners.AppendRow({"ana petrov", "berlin", "basic"});
  (void)partners.AppendRow({"joao silva", "vienna", "pro"});
  corpus.AddTable(std::move(partners));

  XashOptions opts;
  opts.hash_bits = 256;
  Xash hash(opts);

  // ---- 1. Near-duplicate records across the lake ---------------------
  DuplicateRowFinder finder(&corpus, &hash);
  DuplicateFinderOptions dup_options;
  dup_options.min_overlap = 0.6;
  std::printf("Near-duplicate records (cell-set overlap >= %.1f):\n",
              dup_options.min_overlap);
  for (const DuplicateRowPair& pair : finder.FindDuplicates(dup_options)) {
    std::printf("  %s#%u  ~  %s#%u  (overlap %.2f)\n",
                corpus.table(pair.left_table).name().c_str(), pair.left_row,
                corpus.table(pair.right_table).name().c_str(),
                pair.right_row, pair.overlap);
  }

  // ---- 2. Value-level similarity candidates (§9) ----------------------
  std::vector<std::string> values = {"dana alvarez", "dana alvares",
                                     "li wei", "munich"};
  std::printf("\nSimilarity-join candidates within Hamming budget 4:\n");
  for (const SimilarValuePair& pair :
       SimilarValueCandidates(hash, values, 4)) {
    std::printf("  '%s' ~ '%s' (distance %zu)\n", values[pair.left].c_str(),
                values[pair.right].c_str(), pair.hamming);
  }

  // ---- 3. Union search for a dataset at hand --------------------------
  UnionIndex union_index = UnionIndex::Build(corpus, &hash, 32);
  Table query("my_customers");
  query.AddColumn("name");
  query.AddColumn("city");
  query.AddColumn("plan");
  (void)query.AppendRow({"dana alvarez", "berlin", "pro"});
  (void)query.AppendRow({"joao silva", "vienna", "pro"});
  UnionSearchOptions union_options;
  union_options.min_aligned_fraction = 0.6;
  std::printf("\nTables unionable with my_customers:\n");
  for (const UnionResult& result :
       union_index.Discover(query, union_options)) {
    std::printf("  %-18s score %.2f, %zu columns aligned\n",
                corpus.table(result.table_id).name().c_str(), result.score,
                result.alignment.size());
  }
  (void)billing_id;
  return 0;
}
