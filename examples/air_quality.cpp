// The paper's §1 motivating scenario: explaining air pollution measured in
// European cities. The sensor table has only <timestamp, city, pm10>; to
// make sense of it we need weather, public events, and road traffic tables
// — all joinable on the *composite* key <timestamp, city>.
//
// A unary system would fetch every table sharing timestamps (all of them!)
// or cities and drown in false positives; MATE finds the aligned tables in
// one query. This example builds such a lake (with decoy tables that share
// each key column individually but never the combination) and runs both
// MATE and the naive SCR baseline to show the difference.
//
// Build & run:  ./build/examples/air_quality

#include <cstdio>
#include <string>
#include <vector>

#include "core/session.h"

using namespace mate;  // NOLINT: example brevity

namespace {

const char* kCities[] = {"berlin", "hamburg", "munich", "dresden",
                         "hannover", "leipzig"};
const char* kConditions[] = {"sunny", "rain", "fog", "snow", "windy"};
const char* kEvents[] = {"marathon", "street fair", "football match",
                         "concert", "demonstration"};

std::string Day(int d) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "2019-03-%02d", d + 1);
  return buf;
}

}  // namespace

int main() {
  Corpus corpus;

  // Weather observations: aligned on (date, city) for all 6 cities x 28
  // days — fully joinable.
  Table weather("weather_observations");
  weather.AddColumn("date");
  weather.AddColumn("city");
  weather.AddColumn("condition");
  weather.AddColumn("temp_c");
  for (int d = 0; d < 28; ++d) {
    for (int c = 0; c < 6; ++c) {
      (void)weather.AppendRow({Day(d), kCities[c], kConditions[(d + c) % 5],
                               std::to_string(5 + (d * 7 + c * 3) % 20)});
    }
  }
  TableId weather_id = corpus.AddTable(std::move(weather));

  // Public events: sparse — only some (date, city) pairs.
  Table events("public_events");
  events.AddColumn("when");
  events.AddColumn("where");
  events.AddColumn("event");
  for (int d = 0; d < 28; d += 3) {
    (void)events.AppendRow({Day(d), kCities[d % 6], kEvents[d % 5]});
  }
  TableId events_id = corpus.AddTable(std::move(events));

  // Road traffic: aligned for two cities only.
  Table traffic("road_traffic");
  traffic.AddColumn("day");
  traffic.AddColumn("municipality");
  traffic.AddColumn("congestion_pct");
  for (int d = 0; d < 28; ++d) {
    for (int c = 0; c < 2; ++c) {
      (void)traffic.AppendRow(
          {Day(d), kCities[c], std::to_string(20 + (d * 5 + c) % 60)});
    }
  }
  TableId traffic_id = corpus.AddTable(std::move(traffic));

  // Decoy 1: same dates, *different* cities (US cities): joins on the
  // timestamp alone, never on the pair.
  Table decoy_dates("us_air_quality");
  decoy_dates.AddColumn("date");
  decoy_dates.AddColumn("city");
  decoy_dates.AddColumn("aqi");
  const char* us_cities[] = {"austin", "boston", "denver"};
  for (int d = 0; d < 28; ++d) {
    (void)decoy_dates.AppendRow(
        {Day(d), us_cities[d % 3], std::to_string(40 + d)});
  }
  corpus.AddTable(std::move(decoy_dates));

  // Decoy 2: same cities, wrong dates — a deep historical census. Every
  // one of its 600 rows is fetched through the city column; none contains a
  // 2019 date, so they are pure false-positive pressure on the row filter.
  Table decoy_cities("city_population_history");
  decoy_cities.AddColumn("city");
  decoy_cities.AddColumn("census_date");
  decoy_cities.AddColumn("population");
  for (int year = 1900; year < 2000; ++year) {
    for (int c = 0; c < 6; ++c) {
      (void)decoy_cities.AppendRow(
          {kCities[c], std::to_string(year) + "-05-09",
           std::to_string(200000 + year * 100 + c * 1000)});
    }
  }
  corpus.AddTable(std::move(decoy_cities));

  // ---- Open the discovery service and query ---------------------------
  SessionOptions session_options;
  session_options.corpus = std::move(corpus);
  session_options.build_index = true;
  auto session = Session::Open(std::move(session_options));
  if (!session.ok()) {
    std::fprintf(stderr, "Session::Open failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  // The sensor table we want to enrich (one reading per city per day).
  Table sensors("particulate_sensors");
  sensors.AddColumn("timestamp");
  sensors.AddColumn("location");
  sensors.AddColumn("pm10");
  for (int d = 0; d < 28; ++d) {
    for (int c = 0; c < 6; ++c) {
      (void)sensors.AppendRow(
          {Day(d), kCities[c], std::to_string(10 + (d * 11 + c * 7) % 35)});
    }
  }

  QuerySpec spec;
  spec.table = &sensors;
  spec.key_columns = {0, 1};
  spec.options.k = 5;
  auto discovered = session->Discover(spec);
  if (!discovered.ok()) {
    std::fprintf(stderr, "Discover failed: %s\n",
                 discovered.status().ToString().c_str());
    return 1;
  }
  const DiscoveryResult& result = *discovered;

  std::printf("Enriching sensor data on the composite key "
              "<timestamp, location>:\n\n");
  for (const TableResult& tr : result.top_k) {
    const char* note = tr.table_id == weather_id   ? "(weather — full join)"
                       : tr.table_id == traffic_id ? "(traffic — 2 cities)"
                       : tr.table_id == events_id  ? "(events — sparse)"
                                                   : "(unexpected!)";
    std::printf("  %-22s joinability=%-4lld %s\n",
                session->corpus().table(tr.table_id).name().c_str(),
                static_cast<long long>(tr.joinability), note);
  }

  // SCR is MATE without the super-key row filter — one options knob away.
  QuerySpec scr_spec = spec;
  scr_spec.options.use_row_filter = false;
  auto scr_discovered = session->Discover(scr_spec);
  if (!scr_discovered.ok()) {
    std::fprintf(stderr, "Discover failed: %s\n",
                 scr_discovered.status().ToString().c_str());
    return 1;
  }
  const DiscoveryResult& scr_result = *scr_discovered;
  std::printf(
      "\nRow filtering at work (same results, very different work):\n"
      "  MATE: %llu candidate rows fetched, %llu reached verification\n"
      "  SCR : %llu candidate rows fetched, %llu reached verification\n",
      static_cast<unsigned long long>(result.stats.rows_checked),
      static_cast<unsigned long long>(result.stats.rows_sent_to_verification),
      static_cast<unsigned long long>(scr_result.stats.rows_checked),
      static_cast<unsigned long long>(
          scr_result.stats.rows_sent_to_verification));
  std::printf(
      "  Both systems return the same tables; the super key lets MATE skip "
      "exact verification for hundreds of census rows (city matches, date "
      "never does — the survivors are date-on-date digit collisions, the "
      "short-numeric-value weakness §9 flags as future work). The "
      "init-column heuristic (§6.1) also chose 'location' over 'timestamp', "
      "so the US table sharing only dates was never even fetched.\n");
  return 0;
}
