// §5.4 in action: keeping the MATE index consistent under table edits
// (insert table/row, append column, update cell, delete row/column) without
// rebuilding it — all through one mate::Session, whose result cache is
// explicitly invalidated after each edit batch — and persisting the session
// to disk and back.
//
// Build & run:  ./build/examples/index_maintenance

#include <cstdio>
#include <string>

#include "core/session.h"

using namespace mate;  // NOLINT: example brevity

namespace {

int64_t TopJoinability(Session* session, const Table& query,
                       const std::vector<ColumnId>& key) {
  QuerySpec spec;
  spec.table = &query;
  spec.key_columns = key;
  spec.options.k = 1;
  auto result = session->Discover(spec);
  if (!result.ok()) {
    std::fprintf(stderr, "Discover failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return result->JoinabilityAt(0);
}

}  // namespace

int main() {
  Corpus corpus;
  Table inventory("inventory");
  inventory.AddColumn("sku");
  inventory.AddColumn("warehouse");
  inventory.AddColumn("stock");
  (void)inventory.AppendRow({"widget-1", "berlin", "15"});
  (void)inventory.AppendRow({"widget-2", "berlin", "3"});
  (void)inventory.AppendRow({"widget-3", "hamburg", "42"});
  TableId inv_id = corpus.AddTable(std::move(inventory));

  SessionOptions session_options;
  session_options.corpus = std::move(corpus);
  session_options.build_index = true;
  auto opened = Session::Open(std::move(session_options));
  if (!opened.ok()) {
    std::fprintf(stderr, "Session::Open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  Session session = std::move(*opened);

  Table orders("orders");
  orders.AddColumn("sku");
  orders.AddColumn("warehouse");
  (void)orders.AppendRow({"widget-1", "berlin"});
  (void)orders.AppendRow({"widget-3", "hamburg"});
  (void)orders.AppendRow({"widget-9", "munich"});
  const std::vector<ColumnId> key = {0, 1};

  std::printf("initial top joinability: %lld (expect 2)\n",
              static_cast<long long>(TopJoinability(&session, orders, key)));

  // Insert a row that matches the third order -> joinability rises to 3.
  // Every edit goes through the session's mutable accessors; the cache must
  // be invalidated afterwards or repeated queries keep the pre-edit answer.
  auto new_row = session.mutable_corpus()
                     ->mutable_table(inv_id)
                     ->AppendRow({"widget-9", "munich", "7"});
  if (!new_row.ok()) return 1;
  if (auto s = session.mutable_index()->InsertRow(session.corpus(), inv_id,
                                                  *new_row);
      !s.ok()) {
    return 1;
  }
  std::printf("stale cache still says:  %lld (the pre-edit answer!)\n",
              static_cast<long long>(TopJoinability(&session, orders, key)));
  session.InvalidateCache();
  std::printf("after InvalidateCache:   %lld (expect 3)\n",
              static_cast<long long>(TopJoinability(&session, orders, key)));

  // Update a cell: widget-1 moves to hamburg -> its combo stops matching.
  if (auto s = session.mutable_corpus()->mutable_table(inv_id)->SetCell(
          0, 1, "hamburg");
      !s.ok()) {
    return 1;
  }
  if (auto s = session.mutable_index()->UpdateCell(session.corpus(), inv_id,
                                                   0, 1, "berlin");
      !s.ok()) {
    return 1;
  }
  session.InvalidateCache();
  std::printf("after UpdateCell:        %lld (expect 2)\n",
              static_cast<long long>(TopJoinability(&session, orders, key)));

  // Delete the widget-3 row -> joinability drops to 1.
  if (auto s = session.mutable_index()->DeleteRow(session.corpus(), inv_id,
                                                  2);
      !s.ok()) {
    return 1;
  }
  if (auto s = session.mutable_corpus()->mutable_table(inv_id)->DeleteRow(2);
      !s.ok()) {
    return 1;
  }
  session.InvalidateCache();
  std::printf("after DeleteRow:         %lld (expect 1)\n",
              static_cast<long long>(TopJoinability(&session, orders, key)));

  // Append a column (per §5.4 this only ORs new bits into the super keys).
  {
    std::vector<std::string> cells;
    for (RowId r = 0; r < session.corpus().table(inv_id).NumRows(); ++r) {
      cells.push_back("supplier-" + std::to_string(r % 2));
    }
    if (auto s = session.mutable_corpus()
                     ->mutable_table(inv_id)
                     ->AddColumnWithCells("supplier", std::move(cells));
        !s.ok()) {
      return 1;
    }
    if (auto s = session.mutable_index()->AddAppendedColumn(session.corpus(),
                                                            inv_id);
        !s.ok()) {
      return 1;
    }
    session.InvalidateCache();
  }
  std::printf("after AddColumn:         %lld (expect 1)\n",
              static_cast<long long>(TopJoinability(&session, orders, key)));

  // Persist the maintained session and reload it from disk.
  const std::string corpus_path = "/tmp/mate_example_corpus.bin";
  const std::string index_path = "/tmp/mate_example_index.bin";
  if (auto s = session.Save(corpus_path, index_path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  SessionOptions reopen;
  reopen.corpus_path = corpus_path;
  reopen.index_path = index_path;
  auto reloaded = Session::Open(std::move(reopen));
  if (!reloaded.ok()) {
    std::fprintf(stderr, "reload failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("after Save/Open:         %lld (expect 1)\n",
              static_cast<long long>(TopJoinability(&*reloaded, orders,
                                                    key)));
  std::remove(corpus_path.c_str());
  std::remove(index_path.c_str());
  std::printf("\nEvery edit kept the index consistent without a rebuild — "
              "the §5.4 maintenance paths behind one owning Session.\n");
  return 0;
}
