// §5.4 in action: keeping the MATE index consistent under table edits
// (insert table/row, append column, update cell, delete row/column) without
// rebuilding it — and persisting it to disk and back.
//
// Build & run:  ./build/examples/index_maintenance

#include <cstdio>
#include <string>

#include "core/mate.h"
#include "index/index_builder.h"
#include "index/index_io.h"

using namespace mate;  // NOLINT: example brevity

namespace {

int64_t TopJoinability(const Corpus& corpus, const InvertedIndex& index,
                       const Table& query,
                       const std::vector<ColumnId>& key) {
  MateSearch mate(&corpus, &index);
  DiscoveryOptions options;
  options.k = 1;
  DiscoveryResult result = mate.Discover(query, key, options);
  return result.JoinabilityAt(0);
}

}  // namespace

int main() {
  Corpus corpus;
  Table inventory("inventory");
  inventory.AddColumn("sku");
  inventory.AddColumn("warehouse");
  inventory.AddColumn("stock");
  (void)inventory.AppendRow({"widget-1", "berlin", "15"});
  (void)inventory.AppendRow({"widget-2", "berlin", "3"});
  (void)inventory.AppendRow({"widget-3", "hamburg", "42"});
  TableId inv_id = corpus.AddTable(std::move(inventory));

  IndexBuildOptions build_options;
  IndexBuildReport report;
  auto built = BuildIndexWithReport(corpus, build_options, &report);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<InvertedIndex> index = std::move(*built);

  Table orders("orders");
  orders.AddColumn("sku");
  orders.AddColumn("warehouse");
  (void)orders.AppendRow({"widget-1", "berlin"});
  (void)orders.AppendRow({"widget-3", "hamburg"});
  (void)orders.AppendRow({"widget-9", "munich"});
  const std::vector<ColumnId> key = {0, 1};

  std::printf("initial top joinability: %lld (expect 2)\n",
              static_cast<long long>(
                  TopJoinability(corpus, *index, orders, key)));

  // Insert a row that matches the third order -> joinability rises to 3.
  auto new_row =
      corpus.mutable_table(inv_id)->AppendRow({"widget-9", "munich", "7"});
  if (!new_row.ok()) return 1;
  if (auto s = index->InsertRow(corpus, inv_id, *new_row); !s.ok()) return 1;
  std::printf("after InsertRow:         %lld (expect 3)\n",
              static_cast<long long>(
                  TopJoinability(corpus, *index, orders, key)));

  // Update a cell: widget-1 moves to hamburg -> its combo stops matching.
  if (auto s = corpus.mutable_table(inv_id)->SetCell(0, 1, "hamburg");
      !s.ok()) {
    return 1;
  }
  if (auto s = index->UpdateCell(corpus, inv_id, 0, 1, "berlin"); !s.ok()) {
    return 1;
  }
  std::printf("after UpdateCell:        %lld (expect 2)\n",
              static_cast<long long>(
                  TopJoinability(corpus, *index, orders, key)));

  // Delete the widget-3 row -> joinability drops to 1.
  if (auto s = index->DeleteRow(corpus, inv_id, 2); !s.ok()) return 1;
  if (auto s = corpus.mutable_table(inv_id)->DeleteRow(2); !s.ok()) return 1;
  std::printf("after DeleteRow:         %lld (expect 1)\n",
              static_cast<long long>(
                  TopJoinability(corpus, *index, orders, key)));

  // Append a column (per §5.4 this only ORs new bits into the super keys).
  {
    std::vector<std::string> cells;
    for (RowId r = 0; r < corpus.table(inv_id).NumRows(); ++r) {
      cells.push_back("supplier-" + std::to_string(r % 2));
    }
    if (auto s = corpus.mutable_table(inv_id)
                     ->AddColumnWithCells("supplier", std::move(cells));
        !s.ok()) {
      return 1;
    }
    if (auto s = index->AddAppendedColumn(corpus, inv_id); !s.ok()) return 1;
  }
  std::printf("after AddColumn:         %lld (expect 1)\n",
              static_cast<long long>(
                  TopJoinability(corpus, *index, orders, key)));

  // Persist the maintained index and reload it.
  const std::string path = "/tmp/mate_example_index.bin";
  if (auto s = SaveIndex(*index, HashFamily::kXash, report.corpus_stats,
                         path);
      !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto loaded = LoadIndex(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("after Save/Load:         %lld (expect 1)\n",
              static_cast<long long>(
                  TopJoinability(corpus, **loaded, orders, key)));
  std::remove(path.c_str());
  std::printf("\nEvery edit kept the index consistent without a rebuild — "
              "the §5.4 maintenance paths.\n");
  return 0;
}
