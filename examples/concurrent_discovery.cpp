// Batch discovery on a work-stealing pool: runs the same query set through
// DiscoveryEngine::DiscoverBatch at increasing thread counts, checks that
// every run returns exactly the serial results, and prints the throughput
// scaling table. This is the multi-tenant serving shape: many independent
// discovery requests in flight against one shared immutable index.

#include <iostream>
#include <thread>
#include <vector>

#include "bench_util/report.h"
#include "core/discovery_engine.h"
#include "index/index_builder.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: example brevity

namespace {

bool SameResults(const std::vector<DiscoveryResult>& a,
                 const std::vector<DiscoveryResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].top_k.size() != b[q].top_k.size()) return false;
    for (size_t i = 0; i < a[q].top_k.size(); ++i) {
      if (a[q].top_k[i].table_id != b[q].top_k[i].table_id ||
          a[q].top_k[i].joinability != b[q].top_k[i].joinability ||
          a[q].top_k[i].best_mapping != b[q].top_k[i].best_mapping) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  WorkloadConfig config;
  config.scale = 0.25;
  config.queries_per_set = 8;
  Workload workload = MakeWebTablesWorkload(config);

  auto index = BuildIndex(workload.corpus, IndexBuildOptions{});
  if (!index.ok()) {
    std::cerr << "index build failed: " << index.status().ToString() << "\n";
    return 1;
  }

  // Pool every query set into one batch — the engine does not care that the
  // queries have different shapes.
  std::vector<BatchQuery> batch;
  for (const auto& [name, cases] : workload.query_sets) {
    for (const QueryCase& qc : cases) {
      batch.push_back({&qc.query, qc.key_columns});
    }
  }
  std::cout << "corpus: " << workload.corpus.NumTables() << " tables, batch: "
            << batch.size() << " queries\n\n";

  DiscoveryEngine engine(&workload.corpus, index->get());
  DiscoveryOptions options;
  options.k = 10;

  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<unsigned> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  BatchResult serial;
  double serial_wall = 0.0;
  ReportTable table({"Threads", "Wall", "q/s", "Speedup", "p50", "p99",
                     "Identical"});
  for (unsigned threads : thread_counts) {
    BatchOptions batch_options;
    batch_options.num_threads = threads;
    BatchResult result = engine.DiscoverBatch(batch, options, batch_options);
    bool identical = true;
    if (threads == 1) {
      serial = result;
      serial_wall = result.stats.wall_seconds;
    } else {
      identical = SameResults(serial.results, result.results);
    }
    table.AddRow({std::to_string(result.stats.num_threads),
                  FormatSeconds(result.stats.wall_seconds),
                  FormatDouble(result.stats.QueriesPerSecond(), 1),
                  FormatDouble(serial_wall / result.stats.wall_seconds, 2) +
                      "x",
                  FormatSeconds(result.stats.latency_p50_s),
                  FormatSeconds(result.stats.latency_p99_s),
                  identical ? "yes" : "NO"});
    if (!identical) {
      std::cerr << "ERROR: results diverged from the serial run at "
                << threads << " threads\n";
      return 1;
    }
  }
  table.Print(std::cout);
  std::cout << "\nEvery run returned bit-identical top-k lists; only the "
               "wall clock changed.\n";
  return 0;
}
