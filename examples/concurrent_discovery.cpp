// Batch discovery on a work-stealing pool: runs the same query set through
// Session::DiscoverBatch at increasing thread counts, checks that every run
// returns exactly the serial results, and prints the throughput scaling
// table — then re-runs the batch with the session's result cache enabled to
// show repeated streams collapsing into copies. This is the multi-tenant
// serving shape: many independent discovery requests in flight against one
// shared immutable index.
//
// The closing section flips the parallelism axis: ONE query fanned out over
// the same pool via QuerySpec::intra_query_threads (the sharded executor of
// core/query_executor.h) — the shape for a single giant query with nothing
// to batch — again bit-identical to its serial run.

#include <iostream>
#include <thread>
#include <vector>

#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: example brevity

int main() {
  WorkloadConfig config;
  config.scale = 0.25;
  config.queries_per_set = 8;
  Workload workload = MakeWebTablesWorkload(config);

  // Pool every query set into one batch — the engine does not care that the
  // queries have different shapes.
  std::vector<QuerySpec> batch;
  for (const auto& [name, cases] : workload.query_sets) {
    for (const QueryCase& qc : cases) {
      QuerySpec spec;
      spec.table = &qc.query;
      spec.key_columns = qc.key_columns;
      spec.options.k = 10;
      batch.push_back(std::move(spec));
    }
  }

  SessionOptions session_options;
  session_options.corpus = std::move(workload.corpus);
  session_options.build_index = true;
  session_options.num_threads = 1;
  session_options.cache_bytes = 0;  // scaling rows below measure raw work
  auto opened = Session::Open(std::move(session_options));
  if (!opened.ok()) {
    std::cerr << "Session::Open failed: " << opened.status().ToString()
              << "\n";
    return 1;
  }
  Session session = std::move(*opened);
  std::cout << "corpus: " << session.corpus().NumTables()
            << " tables, batch: " << batch.size() << " queries\n\n";

  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<unsigned> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  std::vector<DiscoveryResult> serial;
  double serial_wall = 0.0;
  ReportTable table({"Threads", "Wall", "q/s", "Speedup", "p50", "p99",
                     "Identical"});
  for (unsigned threads : thread_counts) {
    session.SetNumThreads(threads);
    auto result = session.DiscoverBatch(batch);
    if (!result.ok()) {
      std::cerr << "DiscoverBatch failed: " << result.status().ToString()
                << "\n";
      return 1;
    }
    bool identical = true;
    if (threads == 1) {
      serial = result->results;
      serial_wall = result->stats.wall_seconds;
    } else {
      identical = SameTopK(serial, result->results);
    }
    table.AddRow({std::to_string(result->stats.num_threads),
                  FormatSeconds(result->stats.wall_seconds),
                  FormatDouble(result->stats.QueriesPerSecond(), 1),
                  FormatDouble(serial_wall / result->stats.wall_seconds, 2) +
                      "x",
                  FormatSeconds(result->stats.latency_p50_s),
                  FormatSeconds(result->stats.latency_p99_s),
                  identical ? "yes" : "NO"});
    if (!identical) {
      std::cerr << "ERROR: results diverged from the serial run at "
                << threads << " threads\n";
      return 1;
    }
  }
  table.Print(std::cout);

  // Same batch again, now with the result cache on: the first pass fills
  // it, the second is pure hits — and still bit-identical.
  session.ConfigureCache(SessionOptions::kDefaultCacheBytes);
  auto fill = session.DiscoverBatch(batch);
  auto cached = session.DiscoverBatch(batch);
  if (!fill.ok() || !cached.ok()) {
    std::cerr << "cached re-run failed\n";
    return 1;
  }
  if (!SameTopK(serial, cached->results)) {
    std::cerr << "ERROR: cached results diverged from the serial run\n";
    return 1;
  }
  std::cout << "\nCached re-run: " << cached->stats.cache_hits << "/"
            << batch.size() << " hits, wall "
            << FormatSeconds(cached->stats.wall_seconds) << " vs "
            << FormatSeconds(fill->stats.wall_seconds)
            << " for the cache-filling pass.\n";

  // The other parallelism axis: one query sharded across the pool. The
  // cache is off again so the sharded run really recomputes.
  session.ConfigureCache(0);
  QuerySpec one = batch.front();
  one.intra_query_threads = 1;
  auto one_serial = session.Discover(one);
  one.intra_query_threads = 0;  // auto: fans out when the query is big
  one.intra_query_shards = 4;   // force the sharded path for the demo
  auto one_sharded = session.Discover(one);
  if (!one_serial.ok() || !one_sharded.ok()) {
    std::cerr << "intra-query run failed\n";
    return 1;
  }
  if (!SameTopK({*one_serial}, {*one_sharded})) {
    std::cerr << "ERROR: sharded single query diverged from serial\n";
    return 1;
  }
  std::cout << "\nIntra-query fan-out of one query: serial "
            << FormatSeconds(one_serial->stats.runtime_seconds) << " vs "
            << one_sharded->stats.shards_used << " shards on "
            << one_sharded->stats.fanout_threads << " workers "
            << FormatSeconds(one_sharded->stats.runtime_seconds)
            << " — identical top-k.\n";

  std::cout << "\nEvery run returned bit-identical top-k lists; only the "
               "wall clock changed.\n";
  return 0;
}
