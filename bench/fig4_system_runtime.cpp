// E2 — Figure 4: discovery runtime of MATE (Xash, 128 bits) vs the
// single-column adaptations SCR, MCR, SCR-JOSIE, MCR-JOSIE over the six
// WT/OD query ladders (log-scale bars in the paper).
//
// Paper shape to hold: MATE fastest everywhere (up to 61x vs MCR, 13x vs
// SCR); no baseline dominates the others across all sets; runtimes grow
// with query cardinality.

#include <iostream>

#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "index/index_builder.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

void RunWorkload(const Workload& workload, int k, ReportTable* table) {
  auto index = BuildIndex(workload.corpus, IndexBuildOptions{});
  if (!index.ok()) {
    std::cerr << "index build failed: " << index.status().ToString() << "\n";
    std::exit(1);
  }
  JosieIndex josie = JosieIndex::Build(workload.corpus);

  const SystemKind systems[] = {SystemKind::kMate, SystemKind::kScr,
                                SystemKind::kMcr, SystemKind::kScrJosie,
                                SystemKind::kMcrJosie};
  for (const auto& [name, queries] : workload.query_sets) {
    std::vector<std::string> row = {name};
    double mate_runtime = 0.0;
    for (SystemKind kind : systems) {
      QuerySetMetrics metrics = RunSystem(kind, workload.corpus, **index,
                                          &josie, queries, k, name);
      if (kind == SystemKind::kMate) mate_runtime = metrics.total_runtime_s;
      row.push_back(FormatSeconds(metrics.total_runtime_s));
      if (kind != SystemKind::kMate && mate_runtime > 0) {
        row.back() += " (" +
                      FormatDouble(metrics.total_runtime_s / mate_runtime, 1) +
                      "x)";
      }
    }
    table->AddRow(std::move(row));
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.25;
  defaults.queries = 4;
  BenchArgs args = ParseBenchArgs(argc, argv, "fig4_system_runtime",
                                  defaults);
  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = args.queries;
  config.seed = args.seed;

  std::cout << "== E2 / Figure 4: Mate vs single-column systems, total "
               "runtime per query set (k="
            << args.k << ", scale=" << args.scale << ") ==\n"
            << "Columns show total seconds over " << args.queries
            << " queries; (Nx) = slowdown vs Mate.\n\n";

  ReportTable table({"Query set", "Mate (Xash 128)", "SCR", "MCR",
                     "SCR Josie", "MCR Josie"});
  RunWorkload(MakeWebTablesWorkload(config), args.k, &table);
  RunWorkload(MakeOpenDataWorkload(config), args.k, &table);
  table.Print(std::cout);
  std::cout << "\nShape check (paper): Mate fastest in every row; MCR "
               "degrades worst on the web-table corpus; SCR-based systems "
               "slower than MCR-based on OD but competitive on WT.\n";
  return 0;
}
