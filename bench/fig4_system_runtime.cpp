// E2 — Figure 4: discovery runtime of MATE (Xash, 128 bits) vs the
// single-column adaptations SCR, MCR, SCR-JOSIE, MCR-JOSIE over the six
// WT/OD query ladders (log-scale bars in the paper).
//
// Paper shape to hold: MATE fastest everywhere (up to 61x vs MCR, 13x vs
// SCR); no baseline dominates the others across all sets; runtimes grow
// with query cardinality.

#include <iostream>
#include <thread>

#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

struct ThroughputTotals {
  size_t queries = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;  // sum of per-query runtimes
};

void RunWorkload(Workload workload, int k, unsigned threads,
                 ReportTable* table, ThroughputTotals* totals) {
  SessionOptions session_options;
  session_options.corpus = std::move(workload.corpus);
  session_options.build_index = true;
  session_options.num_threads = threads;
  session_options.cache_bytes = 0;  // runtime bench: every query pays full cost
  Session session = OpenOrDie(std::move(session_options));
  JosieIndex josie = JosieIndex::Build(session.corpus());

  const SystemKind systems[] = {SystemKind::kMate, SystemKind::kScr,
                                SystemKind::kMcr, SystemKind::kScrJosie,
                                SystemKind::kMcrJosie};
  for (const auto& [name, queries] : workload.query_sets) {
    std::vector<std::string> row = {name};
    double mate_runtime = 0.0;
    for (SystemKind kind : systems) {
      QuerySetMetrics metrics =
          RunOrDie(RunSystem(kind, session, &josie, queries, k, name));
      if (kind == SystemKind::kMate) mate_runtime = metrics.total_runtime_s;
      row.push_back(FormatSeconds(metrics.total_runtime_s));
      if (kind != SystemKind::kMate && mate_runtime > 0) {
        row.back() += " (" +
                      FormatDouble(metrics.total_runtime_s / mate_runtime, 1) +
                      "x)";
      }
      totals->queries += metrics.queries;
      totals->wall_seconds += metrics.batch.wall_seconds;
      totals->cpu_seconds += metrics.total_runtime_s;
    }
    table->AddRow(std::move(row));
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.25;
  defaults.queries = 4;
  BenchArgs args = ParseBenchArgs(argc, argv, "fig4_system_runtime",
                                  defaults);
  if (args.threads == 0) args.threads = std::thread::hardware_concurrency();
  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = args.queries;
  config.seed = args.seed;

  std::cout << "== E2 / Figure 4: Mate vs single-column systems, total "
               "runtime per query set (k="
            << args.k << ", scale=" << args.scale << ", threads="
            << args.threads << ") ==\n"
            << "Columns show summed per-query seconds over " << args.queries
            << " queries; (Nx) = slowdown vs Mate.\n\n";

  ReportTable table({"Query set", "Mate (Xash 128)", "SCR", "MCR",
                     "SCR Josie", "MCR Josie"});
  ThroughputTotals totals;
  RunWorkload(MakeWebTablesWorkload(config), args.k, args.threads, &table,
              &totals);
  RunWorkload(MakeOpenDataWorkload(config), args.k, args.threads, &table,
              &totals);
  table.Print(std::cout);
  std::cout << "\nBatch throughput (threads=" << args.threads << "): "
            << totals.queries << " system-queries in "
            << FormatSeconds(totals.wall_seconds) << " wall = "
            << FormatDouble(totals.queries / totals.wall_seconds, 1)
            << " q/s; effective parallelism "
            << FormatDouble(totals.cpu_seconds / totals.wall_seconds, 2)
            << "x (summed per-query time / wall; per-query times include "
               "contention, so compare wall across --threads runs for true "
               "speedup).\n";
  std::cout << "\nShape check (paper): Mate fastest in every row; MCR "
               "degrades worst on the web-table corpus; SCR-based systems "
               "slower than MCR-based on OD but competitive on WT.\n";
  return 0;
}
