// E9 — §7.1 "Index generation": offline costs. The paper reports, for
// DWTC/OD: super-key storage of 123.6/11.9 GB in the per-cell layout vs
// 21.6/0.92 GB per-row; JOSIE needing 293/20 GB *plus* an SCR index (its
// index has no row information); and index build times (Mate 35h/2h vs
// JOSIE 336h/50h at their scale).
//
// Shape to hold: per-cell layout costs posting_count/row_count times the
// per-row layout; the JOSIE index alone cannot answer row-level probes.

#include <iostream>

#include "baselines/josie.h"
#include "bench_util/report.h"
#include "index/index_builder.h"
#include "util/stopwatch.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

void ReportCorpus(const std::string& name, const Corpus& corpus,
                  ReportTable* table) {
  for (size_t bits : {size_t{128}, size_t{512}}) {
    IndexBuildOptions options;
    options.hash_bits = bits;
    IndexBuildReport report;
    auto index = BuildIndexWithReport(corpus, options, &report);
    if (!index.ok()) {
      std::cerr << "build failed: " << index.status().ToString() << "\n";
      std::exit(1);
    }
    Stopwatch josie_timer;
    JosieIndex josie = JosieIndex::Build(corpus);
    double josie_seconds = josie_timer.ElapsedSeconds();

    table->AddRow({name + " @" + std::to_string(bits) + "b",
                   std::to_string(report.corpus_stats.num_tables),
                   std::to_string(report.posting_entries),
                   FormatSeconds(report.stats_scan_seconds +
                                 report.build_seconds),
                   FormatBytes(report.posting_bytes),
                   FormatBytes(report.superkey_bytes),
                   FormatBytes(report.superkey_bytes_per_cell_layout),
                   FormatSeconds(josie_seconds),
                   FormatBytes(josie.MemoryBytes())});
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.25;
  defaults.queries = 1;
  BenchArgs args = ParseBenchArgs(argc, argv, "index_build_stats", defaults);
  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = 1;  // corpora only; queries irrelevant here
  config.seed = args.seed;

  std::cout << "== E9 / §7.1 index generation: build cost and storage "
               "(scale="
            << args.scale << ") ==\n\n";

  ReportTable table({"Corpus", "Tables", "Postings", "Mate build",
                     "Posting bytes", "Superkeys (per-row)",
                     "Superkeys (per-cell)", "Josie build", "Josie bytes"});
  {
    Workload wt = MakeWebTablesWorkload(config);
    ReportCorpus("WT", wt.corpus, &table);
  }
  {
    Workload od = MakeOpenDataWorkload(config);
    ReportCorpus("OD", od.corpus, &table);
  }
  table.Print(std::cout);
  std::cout << "\nShape check (paper): the per-cell super-key layout costs "
               "~avg-columns x the per-row layout (123.6 vs 21.6 GB on "
               "DWTC); note the Josie index stores column sets only — "
               "multi-column discovery still needs the SCR/Mate index on "
               "top of it.\n";
  return 0;
}
