// E6 — Figure 6: scalability in the join-key size |Q| (2..10 columns, the
// §7.5.3 open-data setup): (a) runtime, (b) precision, for Xash, BF, HT,
// and SCR.
//
// Paper shape to hold: runtime falls monotonically as |Q| grows (more
// 1-bits in the query super key -> harder to mask; fewer joinable rows ->
// table filter rule 2 fires earlier); precision dips around |Q|=3 then
// recovers from |Q|=4 upward.

#include <iostream>

#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.3;
  defaults.queries = 4;
  BenchArgs args = ParseBenchArgs(argc, argv, "fig6_key_size", defaults);
  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = args.queries;
  config.seed = args.seed;

  std::cout << "== E6 / Figure 6: key-size sweep |Q| = 2..10 (k=" << args.k
            << ", scale=" << args.scale << ") ==\n\n";

  Workload workload =
      MakeKeySizeWorkload(config, {2, 3, 4, 5, 6, 7, 8, 9, 10});

  SessionOptions session_options;
  session_options.corpus = std::move(workload.corpus);
  session_options.build_index = true;
  session_options.cache_bytes = 0;  // runtime bench: no cached reuse
  Session session = OpenOrDie(std::move(session_options));

  struct FilterConfig {
    const char* label;
    HashFamily family;  // ignored when scr
    bool scr;
  };
  const FilterConfig filters[] = {
      {"Xash", HashFamily::kXash, false},
      {"BF", HashFamily::kBloom, false},
      {"HT", HashFamily::kHashTable, false},
      {"SCR", HashFamily::kXash, true},
  };

  ReportTable runtime_table(
      {"|Q|", "Xash (s)", "BF (s)", "HT (s)", "SCR (s)"});
  ReportTable precision_table(
      {"|Q|", "Xash", "BF", "HT", "SCR"});

  // results[set][filter]
  std::vector<std::vector<QuerySetMetrics>> results(
      workload.query_sets.size(),
      std::vector<QuerySetMetrics>(std::size(filters)));
  for (size_t f = 0; f < std::size(filters); ++f) {
    const FilterConfig& filter = filters[f];
    if (!filter.scr) {
      if (auto status = session.ResetHash(filter.family, 128); !status.ok()) {
        std::cerr << "ResetHash failed: " << status.ToString() << "\n";
        return 1;
      }
    }
    for (size_t s = 0; s < workload.query_sets.size(); ++s) {
      DiscoveryOptions mate_options;
      mate_options.k = args.k;
      mate_options.use_row_filter = !filter.scr;
      results[s][f] = RunOrDie(RunMateWithOptions(
          session, workload.query_sets[s].second, mate_options,
          filter.label));
    }
  }

  for (size_t s = 0; s < workload.query_sets.size(); ++s) {
    std::vector<std::string> rt = {workload.query_sets[s].first};
    std::vector<std::string> pr = {workload.query_sets[s].first};
    for (size_t f = 0; f < std::size(filters); ++f) {
      rt.push_back(FormatSeconds(results[s][f].total_runtime_s));
      pr.push_back(FormatMeanStd(results[s][f].avg_precision,
                                 results[s][f].std_precision));
    }
    runtime_table.AddRow(std::move(rt));
    precision_table.AddRow(std::move(pr));
  }
  std::cout << "(a) runtime:\n";
  runtime_table.Print(std::cout);
  std::cout << "\n(b) precision:\n";
  precision_table.Print(std::cout);
  std::cout << "\nShape check (paper): Xash runtime decreases monotonically "
               "with |Q|; precision dips at |Q|=3 and recovers from 4 "
               "upward; Xash dominates BF/HT at every size.\n";
  return 0;
}
