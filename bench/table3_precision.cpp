// E4 — Table 3: row-filter precision (TP / (TP+FP) over rows reaching
// verification), mean ± std across the queries of each set, for each hash
// function at 128 and 512 bits.
//
// Paper shape to hold: Xash achieves the highest average precision at both
// sizes (0.90 ±0.21 at 512 in the paper), precision grows with hash size,
// BF/HT can edge Xash in a few OD cells, digests sit near the bottom.

#include <iostream>

#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

struct HashConfig {
  HashFamily family;
  size_t bits;
  std::string Label() const {
    return std::string(HashFamilyName(family)) + " " + std::to_string(bits);
  }
};

const std::vector<HashConfig>& Configs() {
  // Table 3's columns: MD5 and City at 128; SimHash/HT/BF/LHBF/Xash at
  // 128 and 512.
  static const std::vector<HashConfig> kConfigs = {
      {HashFamily::kMd5, 128},
      {HashFamily::kCity, 128},
      {HashFamily::kSimHash, 128},
      {HashFamily::kSimHash, 512},
      {HashFamily::kHashTable, 128},
      {HashFamily::kHashTable, 512},
      {HashFamily::kBloom, 128},
      {HashFamily::kBloom, 512},
      {HashFamily::kLessHashingBloom, 128},
      {HashFamily::kLessHashingBloom, 512},
      {HashFamily::kXash, 128},
      {HashFamily::kXash, 512}};
  return kConfigs;
}

struct Cell {
  double mean = 0.0;
  double std_dev = 0.0;
  size_t queries = 0;
};

void RunWorkload(Workload workload, int k,
                 std::vector<std::vector<std::string>>* rows,
                 std::vector<Cell>* averages) {
  SessionOptions session_options;
  session_options.corpus = std::move(workload.corpus);
  session_options.build_index = true;
  session_options.cache_bytes = 0;
  Session session = OpenOrDie(std::move(session_options));

  size_t base = rows->size();
  for (const auto& [name, queries] : workload.query_sets) {
    (void)queries;
    rows->push_back({name});
  }
  for (size_t c = 0; c < Configs().size(); ++c) {
    const HashConfig& config = Configs()[c];
    if (auto status = session.ResetHash(config.family, config.bits);
        !status.ok()) {
      std::cerr << "ResetHash failed: " << status.ToString() << "\n";
      std::exit(1);
    }
    for (size_t s = 0; s < workload.query_sets.size(); ++s) {
      DiscoveryOptions mate_options;
      mate_options.k = k;
      QuerySetMetrics metrics = RunOrDie(RunMateWithOptions(
          session, workload.query_sets[s].second, mate_options,
          config.Label()));
      (*rows)[base + s].push_back(
          FormatMeanStd(metrics.avg_precision, metrics.std_precision));
      Cell& avg = (*averages)[c];
      avg.mean += metrics.avg_precision;
      avg.std_dev += metrics.std_precision;
      avg.queries += 1;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.15;
  defaults.queries = 3;
  BenchArgs args = ParseBenchArgs(argc, argv, "table3_precision", defaults);
  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = args.queries;
  config.seed = args.seed;

  std::cout << "== E4 / Table 3: row-filter precision per hash function "
               "(mean ± std across queries; k="
            << args.k << ", scale=" << args.scale << ") ==\n\n";

  std::vector<std::string> headers = {"Dataset"};
  for (const HashConfig& c : Configs()) headers.push_back(c.Label());
  std::vector<std::vector<std::string>> rows;
  std::vector<Cell> averages(Configs().size());

  RunWorkload(MakeWebTablesWorkload(config), args.k, &rows, &averages);
  RunWorkload(MakeOpenDataWorkload(config), args.k, &rows, &averages);
  RunWorkload(MakeKaggleWorkload(config), args.k, &rows, &averages);
  RunWorkload(MakeSchoolWorkload(config), args.k, &rows, &averages);

  ReportTable table(headers);
  for (auto& row : rows) table.AddRow(std::move(row));
  std::vector<std::string> avg_row = {"Average"};
  for (const Cell& cell : averages) {
    avg_row.push_back(FormatMeanStd(
        cell.queries ? cell.mean / static_cast<double>(cell.queries) : 0.0,
        cell.queries ? cell.std_dev / static_cast<double>(cell.queries)
                     : 0.0));
  }
  table.AddRow(std::move(avg_row));
  table.Print(std::cout);
  std::cout << "\nShape check (paper): Xash highest average precision at "
               "both sizes; 512 >= 128 for each family; digests lowest.\n";
  return 0;
}
