// E3 — Table 2: discovery runtime of MATE under every super-key hash
// function and hash size, against the SCR (no filter) baseline, on all
// eight query sets. The index is built once per corpus; each hash config
// re-keys the super keys only (posting lists are hash-independent).
//
// Paper shape to hold: Xash fastest in every row; BF the second-best
// family; HT the weakest filter; plain digests (MD5/Murmur/City) beat SCR
// but lose to the filters; larger hash sizes usually help, with occasional
// inversions (the paper's blue cells).

#include <iostream>

#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

struct HashConfig {
  HashFamily family;
  size_t bits;
  std::string Label() const {
    return std::string(HashFamilyName(family)) + " " + std::to_string(bits);
  }
};

const std::vector<HashConfig>& Configs() {
  static const std::vector<HashConfig> kConfigs = {
      {HashFamily::kMd5, 128},       {HashFamily::kMurmur, 128},
      {HashFamily::kCity, 128},      {HashFamily::kSimHash, 128},
      {HashFamily::kSimHash, 256},   {HashFamily::kSimHash, 512},
      {HashFamily::kHashTable, 128}, {HashFamily::kHashTable, 256},
      {HashFamily::kHashTable, 512}, {HashFamily::kBloom, 128},
      {HashFamily::kBloom, 256},     {HashFamily::kBloom, 512},
      {HashFamily::kLessHashingBloom, 128},
      {HashFamily::kLessHashingBloom, 256},
      {HashFamily::kLessHashingBloom, 512},
      {HashFamily::kXash, 128},      {HashFamily::kXash, 256},
      {HashFamily::kXash, 512}};
  return kConfigs;
}

void RunWorkload(Workload workload, int k, ReportTable* table) {
  SessionOptions session_options;
  session_options.corpus = std::move(workload.corpus);
  session_options.build_index = true;
  session_options.cache_bytes = 0;  // runtime bench: no cached reuse
  Session session = OpenOrDie(std::move(session_options));

  // rows[set] = {SCR seconds, then one per config}.
  std::vector<std::vector<std::string>> rows(workload.query_sets.size());
  for (size_t s = 0; s < workload.query_sets.size(); ++s) {
    rows[s].push_back(workload.query_sets[s].first);
    DiscoveryOptions scr;
    scr.k = k;
    scr.use_row_filter = false;
    QuerySetMetrics metrics = RunOrDie(RunMateWithOptions(
        session, workload.query_sets[s].second, scr, "SCR"));
    rows[s].push_back(FormatSeconds(metrics.total_runtime_s));
  }
  for (const HashConfig& config : Configs()) {
    if (auto status = session.ResetHash(config.family, config.bits);
        !status.ok()) {
      std::cerr << "ResetHash failed: " << status.ToString() << "\n";
      std::exit(1);
    }
    for (size_t s = 0; s < workload.query_sets.size(); ++s) {
      DiscoveryOptions mate_options;
      mate_options.k = k;
      QuerySetMetrics metrics = RunOrDie(RunMateWithOptions(
          session, workload.query_sets[s].second, mate_options,
          config.Label()));
      rows[s].push_back(FormatSeconds(metrics.total_runtime_s));
    }
  }
  for (auto& row : rows) table->AddRow(std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.12;
  defaults.queries = 2;
  BenchArgs args = ParseBenchArgs(argc, argv, "table2_hash_runtime",
                                  defaults);
  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = args.queries;
  config.seed = args.seed;

  std::cout << "== E3 / Table 2: runtime (total seconds per query set) per "
               "hash function (k="
            << args.k << ", scale=" << args.scale << ") ==\n\n";

  std::vector<std::string> headers = {"Dataset", "SCR"};
  for (const HashConfig& c : Configs()) headers.push_back(c.Label());
  ReportTable table(headers);
  RunWorkload(MakeWebTablesWorkload(config), args.k, &table);
  RunWorkload(MakeOpenDataWorkload(config), args.k, &table);
  RunWorkload(MakeKaggleWorkload(config), args.k, &table);
  RunWorkload(MakeSchoolWorkload(config), args.k, &table);
  table.Print(std::cout);
  std::cout << "\nShape check (paper): Xash wins every row (up to 10x vs "
               "BF); SCR slowest; digests in between; larger sizes usually "
               "faster.\n";
  return 0;
}
