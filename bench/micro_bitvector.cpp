// E10 — micro: BitVector operation throughput (the row-filter inner loop).
// Subset checks against non-covering keys should exit early thanks to the
// length segment living in word 0 — compare Covering vs NonCovering.

#include <benchmark/benchmark.h>

#include "util/bitvector.h"
#include "util/rng.h"

namespace mate {
namespace {

BitVector RandomKey(Rng* rng, size_t bits, int ones) {
  BitVector v(bits);
  for (int i = 0; i < ones; ++i) v.SetBit(rng->Uniform(bits));
  return v;
}

void BM_OrWith(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  Rng rng(1);
  BitVector a = RandomKey(&rng, bits, 12);
  BitVector b = RandomKey(&rng, bits, 12);
  for (auto _ : state) {
    a.OrWith(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_OrWith)->Arg(128)->Arg(256)->Arg(512);

void BM_SubsetCovering(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  Rng rng(2);
  BitVector super = RandomKey(&rng, bits, 40);
  BitVector query = super;  // full cover: worst case, all words scanned
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.IsSubsetOf(super));
  }
}
BENCHMARK(BM_SubsetCovering)->Arg(128)->Arg(256)->Arg(512);

void BM_SubsetNonCoveringFirstWord(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  Rng rng(3);
  BitVector super = RandomKey(&rng, bits, 12);
  BitVector query(bits);
  query.SetBit(1);  // XASH length bit region: mismatch in word 0
  super.ClearBit(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.IsSubsetOf(super));
  }
}
BENCHMARK(BM_SubsetNonCoveringFirstWord)->Arg(128)->Arg(256)->Arg(512);

void BM_RotateRange(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  Rng rng(4);
  BitVector v = RandomKey(&rng, bits, 20);
  size_t region = bits - 17;
  size_t k = 7;
  for (auto _ : state) {
    v.RotateRangeLeft(17, region, k);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_RotateRange)->Arg(128)->Arg(256)->Arg(512);

void BM_CountOnes(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  Rng rng(5);
  BitVector v = RandomKey(&rng, bits, 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.CountOnes());
  }
}
BENCHMARK(BM_CountOnes)->Arg(128)->Arg(512);

}  // namespace
}  // namespace mate
