// Intra-query scaling (ROADMAP "index sharding" + "intra-query
// parallelism"): one giant OD-style query — the Fig. 4/6 workload the batch
// engine cannot help, because there is nothing to batch — through the
// sharded executor at increasing fan-out widths. Reports wall time and
// speedup vs the serial path and checks every run is bit-identical to it.
//
// Shape to hold: speedup grows with threads (>= 2x at 8 threads on the
// large-query workload), results identical at every width, and the `auto`
// row engages the sharded path on its own (the query's PL traffic clears
// the QueryExecutor::kAutoParallelMinItems gate).

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util/bench_json.h"
#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "core/query_executor.h"
#include "util/stopwatch.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

constexpr int kRepetitions = 3;  // best-of, to shave scheduler noise

// Best-of-kRepetitions wall time for one spec; every run's result must be
// bit-identical to `reference` (empty reference = first run defines it).
double TimeQuery(Session& session, const QuerySpec& spec,
                 std::vector<DiscoveryResult>* reference,
                 uint64_t* shards_used, uint64_t* fanout) {
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    Stopwatch timer;
    auto result = session.Discover(spec);
    const double elapsed = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::cerr << "Discover failed: " << result.status().ToString() << "\n";
      std::exit(1);
    }
    if (rep == 0) {
      *shards_used = result->stats.shards_used;
      *fanout = result->stats.fanout_threads;
    }
    std::vector<DiscoveryResult> run;
    run.push_back(std::move(*result));
    if (reference->empty()) {
      *reference = std::move(run);
    } else if (!SameTopK(*reference, run)) {
      std::cerr << "ERROR: results diverged from the serial reference\n";
      std::exit(1);
    }
    best = rep == 0 ? elapsed : std::min(best, elapsed);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 1.0;
  defaults.threads = 8;
  BenchArgs args =
      ParseBenchArgs(argc, argv, "single_query_scaling", defaults);
  if (args.threads == 0) args.threads = std::thread::hardware_concurrency();

  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = 1;  // one giant query is the whole workload
  config.seed = args.seed;
  Workload workload = MakeOpenDataWorkload(config);

  // The largest OD ladder — the paper's 10k-row open-data queries.
  const auto& [set_name, cases] = workload.query_sets.back();
  const QueryCase& qc = cases.front();

  SessionOptions session_options;
  session_options.corpus = std::move(workload.corpus);
  session_options.build_index = true;
  session_options.num_threads = 1;
  session_options.cache_bytes = 0;  // every run pays full cost
  Session session = OpenOrDie(std::move(session_options));

  std::cout << "== Intra-query scaling on one " << set_name
            << " query (corpus=" << session.corpus().NumTables()
            << " tables, query=" << qc.query.NumRows()
            << " rows, key=" << qc.key_columns.size()
            << " cols, k=" << args.k << ", best of " << kRepetitions
            << ") ==\n\n";

  QuerySpec spec;
  spec.table = &qc.query;
  spec.key_columns = qc.key_columns;
  spec.options.k = args.k;

  std::vector<unsigned> widths = {1};
  for (unsigned w = 2; w < args.threads; w *= 2) widths.push_back(w);
  if (args.threads > 1) widths.push_back(args.threads);

  std::vector<DiscoveryResult> serial;
  double serial_wall = 0.0;
  ReportTable table(
      {"Threads", "Shards", "Fanout", "Wall", "Speedup", "Identical"});
  BenchJsonWriter json("single_query_scaling", args.threads);
  for (unsigned width : widths) {
    session.SetNumThreads(width);
    spec.intra_query_threads = width;
    uint64_t shards = 0, fanout = 0;
    const double wall = TimeQuery(session, spec, &serial, &shards, &fanout);
    if (width == 1) serial_wall = wall;
    table.AddRow({std::to_string(width), std::to_string(shards),
                  std::to_string(fanout), FormatSeconds(wall),
                  FormatDouble(serial_wall / wall, 2) + "x",
                  width == 1 ? "ref" : "yes"});
    json.Add("width=" + std::to_string(width), "wall", wall, "s", shards);
  }

  // Auto mode at full width: the gate must engage by itself on a query
  // this large.
  session.SetNumThreads(args.threads);
  spec.intra_query_threads = 0;
  uint64_t auto_shards = 0, auto_fanout = 0;
  const double auto_wall =
      TimeQuery(session, spec, &serial, &auto_shards, &auto_fanout);
  table.AddRow({"auto", std::to_string(auto_shards),
                std::to_string(auto_fanout), FormatSeconds(auto_wall),
                FormatDouble(serial_wall / auto_wall, 2) + "x", "yes"});
  table.Print(std::cout);

  std::cout << "\nShape check: speedup grows with threads (>= 2x at 8 on "
               "the full-scale workload); every row returned bit-identical "
               "top-k lists; 'auto' engaged "
            << auto_shards << " shards on its own.\n";
  if (args.threads >= 2 && serial_wall / auto_wall < 1.05 &&
      auto_shards <= 1) {
    std::cerr << "ERROR: auto mode never engaged the sharded path\n";
    return 1;
  }
  json.Add("width=auto", "wall", auto_wall, "s", auto_shards);
  if (!json.WriteTo(args.json_path)) return 1;
  return 0;
}
