// Intra-query scaling (ROADMAP "index sharding" + "intra-query
// parallelism"): one giant OD-style query — the Fig. 4/6 workload the batch
// engine cannot help, because there is nothing to batch — through the
// sharded executor at increasing fan-out widths. Reports wall time and
// speedup vs the serial path and checks every run is bit-identical to it.
//
// Shape to hold: speedup grows with threads (>= 2x at 8 threads on the
// large-query workload), results identical at every width, and the `auto`
// row engages the sharded path on its own (the query's PL traffic clears
// the QueryExecutor::kAutoParallelMinItems gate).

#include <algorithm>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

#include "bench_util/bench_json.h"
#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "core/query_executor.h"
#include "util/stopwatch.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

constexpr int kRepetitions = 3;  // best-of, to shave scheduler noise

// Best-of-kRepetitions wall time for one spec; every run's result must be
// bit-identical to `reference` (empty reference = first run defines it).
double TimeQuery(Session& session, const QuerySpec& spec,
                 std::vector<DiscoveryResult>* reference,
                 uint64_t* shards_used, uint64_t* fanout) {
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    Stopwatch timer;
    auto result = session.Discover(spec);
    const double elapsed = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::cerr << "Discover failed: " << result.status().ToString() << "\n";
      std::exit(1);
    }
    if (rep == 0) {
      *shards_used = result->stats.shards_used;
      *fanout = result->stats.fanout_threads;
    }
    std::vector<DiscoveryResult> run;
    run.push_back(std::move(*result));
    if (reference->empty()) {
      *reference = std::move(run);
    } else if (!SameTopK(*reference, run)) {
      std::cerr << "ERROR: results diverged from the serial reference\n";
      std::exit(1);
    }
    best = rep == 0 ? elapsed : std::min(best, elapsed);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 1.0;
  defaults.threads = 8;
  BenchArgs args =
      ParseBenchArgs(argc, argv, "single_query_scaling", defaults);
  if (args.threads == 0) args.threads = std::thread::hardware_concurrency();

  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = 1;  // one giant query is the whole workload
  config.seed = args.seed;
  Workload workload = MakeOpenDataWorkload(config);

  // The largest OD ladder — the paper's 10k-row open-data queries.
  const auto& [set_name, cases] = workload.query_sets.back();
  const QueryCase& qc = cases.front();

  SessionOptions session_options;
  session_options.corpus = std::move(workload.corpus);
  session_options.build_index = true;
  session_options.num_threads = 1;
  session_options.cache_bytes = 0;  // every run pays full cost
  Session session = OpenOrDie(std::move(session_options));

  std::cout << "== Intra-query scaling on one " << set_name
            << " query (corpus=" << session.corpus().NumTables()
            << " tables, query=" << qc.query.NumRows()
            << " rows, key=" << qc.key_columns.size()
            << " cols, k=" << args.k << ", best of " << kRepetitions
            << ") ==\n\n";

  QuerySpec spec;
  spec.table = &qc.query;
  spec.key_columns = qc.key_columns;
  spec.options.k = args.k;

  std::vector<unsigned> widths = {1};
  for (unsigned w = 2; w < args.threads; w *= 2) widths.push_back(w);
  if (args.threads > 1) widths.push_back(args.threads);

  std::vector<DiscoveryResult> serial;
  double serial_wall = 0.0;
  ReportTable table(
      {"Threads", "Shards", "Fanout", "Wall", "Speedup", "Identical"});
  BenchJsonWriter json("single_query_scaling", args.threads);
  for (unsigned width : widths) {
    session.SetNumThreads(width);
    spec.intra_query_threads = width;
    uint64_t shards = 0, fanout = 0;
    const double wall = TimeQuery(session, spec, &serial, &shards, &fanout);
    if (width == 1) serial_wall = wall;
    table.AddRow({std::to_string(width), std::to_string(shards),
                  std::to_string(fanout), FormatSeconds(wall),
                  FormatDouble(serial_wall / wall, 2) + "x",
                  width == 1 ? "ref" : "yes"});
    json.Add("width=" + std::to_string(width), "wall", wall, "s", shards);
  }

  // Auto mode at full width: the gate must engage by itself on a query
  // this large.
  session.SetNumThreads(args.threads);
  spec.intra_query_threads = 0;
  uint64_t auto_shards = 0, auto_fanout = 0;
  const double auto_wall =
      TimeQuery(session, spec, &serial, &auto_shards, &auto_fanout);
  table.AddRow({"auto", std::to_string(auto_shards),
                std::to_string(auto_fanout), FormatSeconds(auto_wall),
                FormatDouble(serial_wall / auto_wall, 2) + "x", "yes"});
  table.Print(std::cout);

  std::cout << "\nShape check: speedup grows with threads (>= 2x at 8 on "
               "the full-scale workload); every row returned bit-identical "
               "top-k lists; 'auto' engaged "
            << auto_shards << " shards on its own.\n";
  if (args.threads >= 2 && serial_wall / auto_wall < 1.05 &&
      auto_shards <= 1) {
    std::cerr << "ERROR: auto mode never engaged the sharded path\n";
    return 1;
  }
  json.Add("width=auto", "wall", auto_wall, "s", auto_shards);

  // ---- tracing overhead + span coverage (src/obs/trace.h) --------------
  // Re-measure the serial path back-to-back with and without a QueryTrace
  // armed so the comparison shares thermal/cache state, then check the
  // traced span tree covers every pipeline phase and that the phases
  // account for the discover span's wall time.
  session.SetNumThreads(1);
  spec.intra_query_threads = 1;
  uint64_t shards = 0, fanout = 0;
  const double untraced_wall =
      TimeQuery(session, spec, &serial, &shards, &fanout);
  double traced_wall = 0.0;
  std::unique_ptr<QueryTrace> trace;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    auto rep_trace = std::make_unique<QueryTrace>("bench");
    spec.trace = rep_trace.get();
    Stopwatch timer;
    auto result = session.Discover(spec);
    const double elapsed = timer.ElapsedSeconds();
    spec.trace = nullptr;
    if (!result.ok()) {
      std::cerr << "traced Discover failed: " << result.status().ToString()
                << "\n";
      return 1;
    }
    std::vector<DiscoveryResult> run;
    run.push_back(std::move(*result));
    if (!SameTopK(serial, run)) {
      std::cerr << "ERROR: traced run diverged from the serial reference\n";
      return 1;
    }
    traced_wall = rep == 0 ? elapsed : std::min(traced_wall, elapsed);
    trace = std::move(rep_trace);
  }
  const double overhead = untraced_wall > 0.0
                              ? (traced_wall - untraced_wall) / untraced_wall
                              : 0.0;

  const std::vector<TraceSpan> spans = trace->Spans();
  std::set<std::string> names;
  for (const TraceSpan& span : spans) names.insert(span.name);
  for (const char* phase :
       {"discover", "validate", "readiness_wait", "execute", "prepare",
        "fetch", "evaluate", "merge", "materialize", "row_loop"}) {
    if (names.count(phase) == 0) {
      std::cerr << "ERROR: traced span tree misses phase '" << phase
                << "'\n";
      return 1;
    }
  }
  // Phase accounting: the discover span's direct children must explain its
  // duration to within 10% (acceptance gate on the OD workload).
  const TraceSpan& discover = spans.front();
  uint64_t children_us = 0;
  for (const TraceSpan& span : spans) {
    if (span.parent == discover.id) children_us += span.duration_us;
  }
  const double coverage =
      discover.duration_us > 0
          ? static_cast<double>(children_us) /
                static_cast<double>(discover.duration_us)
          : 1.0;
  std::cout << "\nTracing: off=" << FormatSeconds(untraced_wall)
            << " on=" << FormatSeconds(traced_wall) << " overhead="
            << FormatDouble(overhead * 100.0, 2) << "% ("
            << spans.size() << " spans, phase coverage "
            << FormatDouble(coverage * 100.0, 1) << "% of discover wall)\n";
  if (coverage < 0.9 || coverage > 1.01) {
    std::cerr << "ERROR: phase spans explain "
              << FormatDouble(coverage * 100.0, 1)
              << "% of the discover span (want within 10%)\n";
    return 1;
  }
  if (overhead > 0.25) {
    std::cerr << "ERROR: armed tracing costs "
              << FormatDouble(overhead * 100.0, 1)
              << "% on a full OD query — instrumentation is too hot\n";
    return 1;
  }
  json.Add("trace=off", "wall", untraced_wall, "s", 1);
  json.Add("trace=on", "wall", traced_wall, "s",
           static_cast<uint64_t>(spans.size()));
  json.Add("trace=on", "tracing_overhead", overhead, "frac", 1);

  if (!json.WriteTo(args.json_path)) return 1;
  return 0;
}
