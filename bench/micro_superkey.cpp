// Micro-bench for the §6.3 row-filter hot path: super-key containment
// probes ((q & ~row) == 0) against a SuperKeyStore slab, comparing the
// single-row Covers loop with the batched CoversBatch path, each under the
// forced-scalar and the dispatched (SIMD) kernels, at the hash widths the
// repo actually runs (128-bit default, 512-bit stress).
//
// Unlike the other micro_* benches this one is self-contained (no Google
// Benchmark): CI's bench-smoke runs it off bench/smoke_list.txt with
// --json=, and it carries hard gates the library must keep:
//
//   * bit-identity: every (mode, width) sweep must report the exact same
//     match count and probe-mask checksum — the kernels may only change
//     speed, never an answer (exit 1 otherwise);
//   * on hosts whose dispatched level is AVX2, the batched-SIMD sweep must
//     sustain >= 1.5x the probes/s of the scalar single-probe loop at the
//     default 128-bit width (the tentpole's reason to exist). On other
//     hosts the speedup gate auto-skips — the identity gates still run.
//
// --scale scales the row count; --json feeds the BENCH_*.json trajectory.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/bench_json.h"
#include "bench_util/report.h"
#include "index/superkey_store.h"
#include "util/bitvector.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/stopwatch.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

constexpr size_t kBaseRows = 200000;
constexpr int kSweeps = 5;  // per (mode, width); best-of to damp jitter

BitVector RandomKey(Rng* rng, size_t bits, int ones) {
  BitVector v(bits);
  for (int i = 0; i < ones; ++i) {
    v.SetBit(static_cast<size_t>(rng->Uniform(bits)));
  }
  return v;
}

// One probe sweep: every row of table 0 against every query. Returns the
// number of covering (query, row) pairs and folds each probe into
// `checksum` so modes can be diffed bit for bit.
uint64_t SweepSingle(const SuperKeyStore& store, size_t rows,
                     const std::vector<BitVector>& queries,
                     uint64_t* checksum) {
  uint64_t matches = 0;
  uint64_t sum = *checksum;
  for (const BitVector& q : queries) {
    for (RowId r = 0; r < rows; ++r) {
      const bool hit = store.Covers(0, r, q);
      matches += hit ? 1 : 0;
      sum = sum * 31 + (hit ? 1 : 0);
    }
  }
  *checksum = sum;
  return matches;
}

uint64_t SweepBatch(const SuperKeyStore& store, size_t rows,
                    const std::vector<BitVector>& queries,
                    uint64_t* checksum) {
  RowId block[SuperKeyStore::kMaxProbeBatch];
  uint64_t matches = 0;
  uint64_t sum = *checksum;
  for (const BitVector& q : queries) {
    for (size_t begin = 0; begin < rows;
         begin += SuperKeyStore::kMaxProbeBatch) {
      const size_t count =
          std::min(SuperKeyStore::kMaxProbeBatch, rows - begin);
      for (size_t i = 0; i < count; ++i) {
        block[i] = static_cast<RowId>(begin + i);
      }
      const uint32_t mask = store.CoversBatch(0, block, count, q);
      for (size_t i = 0; i < count; ++i) {
        const bool hit = ((mask >> i) & 1u) != 0;
        matches += hit ? 1 : 0;
        sum = sum * 31 + (hit ? 1 : 0);
      }
    }
  }
  *checksum = sum;
  return matches;
}

struct SweepResult {
  double probes_per_sec = 0;
  uint64_t matches = 0;
  uint64_t checksum = 0;
};

SweepResult RunMode(const SuperKeyStore& store, size_t rows,
                    const std::vector<BitVector>& queries, bool batched) {
  SweepResult best;
  const double total_probes =
      static_cast<double>(rows) * static_cast<double>(queries.size());
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    uint64_t checksum = 0;
    Stopwatch timer;
    const uint64_t matches = batched
                                 ? SweepBatch(store, rows, queries, &checksum)
                                 : SweepSingle(store, rows, queries, &checksum);
    const double rate = total_probes / timer.ElapsedSeconds();
    if (sweep == 0) {
      best.matches = matches;
      best.checksum = checksum;
    } else if (matches != best.matches || checksum != best.checksum) {
      std::cerr << "micro_superkey: sweep " << sweep
                << " diverged from sweep 0 within one mode\n";
      std::exit(1);
    }
    best.probes_per_sec = std::max(best.probes_per_sec, rate);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 1.0;
  BenchArgs args = ParseBenchArgs(argc, argv, "micro_superkey", defaults);
  BenchJsonWriter json("micro_superkey", args.threads);

  const size_t rows =
      std::max<size_t>(4096, static_cast<size_t>(kBaseRows * args.scale));
  constexpr size_t kQueries = 8;

  std::cout << "micro_superkey: " << rows << " rows x " << kQueries
            << " queries per sweep, dispatched level = "
            << simd::LevelName(simd::ActiveLevel()) << "\n\n";

  ReportTable report({"bits", "mode", "probe", "Mprobe/s", "matches"});
  // probes/s at width 128 keyed by (scalar, batched) for the speedup gate.
  double rate_scalar_single = 0, rate_simd_batch = 0;

  const bool env_forced_scalar =
      simd::ActiveLevel() == simd::KernelLevel::kScalar;
  for (size_t hash_bits : {size_t{128}, size_t{512}}) {
    SuperKeyStore store(hash_bits);
    store.EnsureTable(0, rows);
    Rng rng(args.seed + hash_bits);
    // Sparse-ish super keys (~15% ones) probed by 4-bit queries: roughly
    // the density the XASH path produces, with a realistic hit/miss mix.
    for (RowId r = 0; r < rows; ++r) {
      store.Set(0, r, RandomKey(&rng, hash_bits,
                                static_cast<int>(hash_bits / 7)));
    }
    std::vector<BitVector> queries;
    for (size_t q = 0; q < kQueries; ++q) {
      queries.push_back(RandomKey(&rng, hash_bits, 4));
    }

    SweepResult reference;  // scalar single-probe: the ground truth
    for (bool use_simd : {false, true}) {
      if (use_simd && env_forced_scalar) continue;  // honor MATE_FORCE_SCALAR
      simd::ForceScalar(!use_simd);
      for (bool batched : {false, true}) {
        const SweepResult r = RunMode(store, rows, queries, batched);
        if (!use_simd && !batched) {
          reference = r;
        } else if (r.matches != reference.matches ||
                   r.checksum != reference.checksum) {
          std::cerr << "micro_superkey: bit-identity violation at bits="
                    << hash_bits << " simd=" << use_simd
                    << " batched=" << batched << "\n";
          return 1;
        }
        const std::string mode = use_simd ? "simd" : "scalar";
        const std::string probe = batched ? "batch" : "single";
        report.AddRow({std::to_string(hash_bits), mode, probe,
                       FormatDouble(r.probes_per_sec / 1e6, 1),
                       std::to_string(r.matches)});
        json.Add("bits=" + std::to_string(hash_bits), mode + "_" + probe,
                 r.probes_per_sec / 1e6, "Mprobe/s");
        if (hash_bits == 128) {
          if (!use_simd && !batched) rate_scalar_single = r.probes_per_sec;
          if (use_simd && batched) rate_simd_batch = r.probes_per_sec;
        }
      }
    }
  }
  simd::ForceScalar(env_forced_scalar);

  report.Print(std::cout);
  std::cout << "\n";

  if (!json.WriteTo(args.json_path)) return 1;

  // Speedup gate: only meaningful where the dispatched level is AVX2.
  if (!env_forced_scalar && simd::DetectLevel() == simd::KernelLevel::kAvx2) {
    const double speedup = rate_simd_batch / rate_scalar_single;
    std::cout << "batched-SIMD vs scalar single-probe speedup at 128 bits: "
              << FormatDouble(speedup, 2) << "x (gate: >= 1.5x)\n";
    if (speedup < 1.5) {
      std::cerr << "micro_superkey: FAIL speedup gate\n";
      return 1;
    }
  } else {
    std::cout << "speedup gate skipped (dispatched level is "
              << simd::LevelName(simd::ActiveLevel())
              << ", gate requires avx2)\n";
  }
  std::cout << "micro_superkey: OK\n";
  return 0;
}
