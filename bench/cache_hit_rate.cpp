// Result-cache bench (ROADMAP "result caching"): replays a Zipf-distributed
// repeated-query stream through one mate::Session, cold (cache disabled)
// vs warm (cache enabled), and reports hit-rate and batch speedup. Web
// query logs are heavy-tailed, so the same few discovery requests dominate
// a serving window; the session's fingerprint cache turns the repeats into
// copies.
//
// Shape to hold: hit-rate grows with the Zipf skew s; at >= 50% hit-rate
// the warm pass is > 1.5x faster than cold; warm results are bit-identical
// to cold at any thread count.

#include <iostream>
#include <thread>
#include <vector>

#include "bench_util/bench_json.h"
#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "util/rng.h"
#include "util/zipf.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

constexpr size_t kCacheBytes = size_t{256} << 20;

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.25;
  defaults.queries = 16;
  BenchArgs args = ParseBenchArgs(argc, argv, "cache_hit_rate", defaults);
  if (args.threads == 0) args.threads = std::thread::hardware_concurrency();
  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = args.queries;
  config.seed = args.seed;

  Workload workload = MakeWebTablesWorkload(config);

  // Distinct query pool: the WT (100) set only. One ladder keeps per-query
  // cost homogeneous, so the wall-clock speedup tracks the hit-rate instead
  // of whichever expensive one-off query lands in the stream.
  std::vector<const QueryCase*> pool;
  for (const QueryCase& qc : workload.query_sets[1].second) {
    pool.push_back(&qc);
  }

  SessionOptions session_options;
  session_options.corpus = std::move(workload.corpus);
  session_options.build_index = true;
  session_options.num_threads = args.threads;
  session_options.cache_bytes = 0;  // start cold; toggled per run below
  Session session = OpenOrDie(std::move(session_options));

  // 2x the distinct pool: long enough for real reuse, short enough that
  // the skew s visibly moves the number of distinct queries drawn (and so
  // the hit-rate) instead of saturating at "every query seen already".
  const size_t stream_length = 2 * pool.size();
  std::cout << "== Result cache on a Zipf query stream (distinct="
            << pool.size() << ", stream=" << stream_length
            << ", k=" << args.k << ", threads=" << session.num_threads()
            << ", cache=" << FormatBytes(kCacheBytes) << ") ==\n\n";

  DiscoveryOptions options;
  options.k = args.k;

  ReportTable table({"Zipf s", "Cold wall", "Warm wall", "Speedup",
                     "Hit-rate", "Identical"});
  BenchJsonWriter json("cache_hit_rate", args.threads);
  for (double s : {0.0, 0.7, 1.1, 1.5}) {
    // One deterministic stream per skew, shared by both passes.
    Rng rng(args.seed + static_cast<uint64_t>(s * 1000));
    ZipfDistribution zipf(pool.size(), s);
    std::vector<QuerySpec> specs;
    specs.reserve(stream_length);
    for (size_t i = 0; i < stream_length; ++i) {
      const QueryCase* qc = pool[zipf.Sample(&rng)];
      QuerySpec spec;
      spec.table = &qc->query;
      spec.key_columns = qc->key_columns;
      spec.options = options;
      specs.push_back(std::move(spec));
    }

    session.ConfigureCache(0);
    auto cold = session.DiscoverBatch(specs);
    if (!cold.ok()) {
      std::cerr << "cold run failed: " << cold.status().ToString() << "\n";
      return 1;
    }
    session.ConfigureCache(kCacheBytes);
    auto warm = session.DiscoverBatch(specs);
    if (!warm.ok()) {
      std::cerr << "warm run failed: " << warm.status().ToString() << "\n";
      return 1;
    }

    const bool identical = SameTopK(cold->results, warm->results);
    const double hit_rate =
        static_cast<double>(warm->stats.cache_hits) /
        static_cast<double>(warm->stats.cache_hits +
                            warm->stats.cache_misses);
    table.AddRow({FormatDouble(s, 1),
                  FormatSeconds(cold->stats.wall_seconds),
                  FormatSeconds(warm->stats.wall_seconds),
                  FormatDouble(cold->stats.wall_seconds /
                                   warm->stats.wall_seconds,
                               2) + "x",
                  FormatDouble(100.0 * hit_rate, 1) + "%",
                  identical ? "yes" : "NO"});
    if (!identical) {
      std::cerr << "ERROR: cached results diverged from cold at s=" << s
                << "\n";
      return 1;
    }
    const std::string scenario = "zipf_s=" + FormatDouble(s, 1);
    json.Add(scenario, "cold_wall", cold->stats.wall_seconds, "s");
    json.Add(scenario, "warm_wall", warm->stats.wall_seconds, "s");
    json.Add(scenario, "hit_rate", hit_rate, "ratio");
  }
  table.Print(std::cout);
  std::cout << "\nShape check: hit-rate climbs with s; speedup > 1.5x "
               "wherever the hit-rate exceeds 50% (a hit costs a map probe "
               "and a copy instead of a full Algorithm 1 run).\n";
  if (!json.WriteTo(args.json_path)) return 1;
  return 0;
}
