// E10 — micro: inverted-index probe and super-key filter throughput (the
// online discovery hot loops).

#include <benchmark/benchmark.h>

#include "index/index_builder.h"
#include "workload/generator.h"

namespace mate {
namespace {

struct World {
  Corpus corpus;
  std::unique_ptr<InvertedIndex> index;
  std::vector<std::string> probe_values;  // mix of present and absent
  std::vector<BitVector> probe_keys;
};

const World& SharedWorld() {
  static World* world = [] {
    auto* w = new World();
    Vocabulary vocab =
        Vocabulary::Generate(5000, Vocabulary::Style::kMixed, 11);
    CorpusSpec spec;
    spec.num_tables = 500;
    spec.seed = 13;
    w->corpus = GenerateCorpus(spec, vocab);
    auto index = BuildIndex(w->corpus, IndexBuildOptions{});
    w->index = std::move(*index);
    Rng rng(17);
    for (int i = 0; i < 1024; ++i) {
      if (i % 2 == 0) {
        w->probe_values.push_back(vocab.word(rng.Uniform(vocab.size())));
      } else {
        w->probe_values.push_back(GenerateWord(&rng, 3, 10) + "-absent");
      }
      w->probe_keys.push_back(w->index->hash().MakeSuperKey(
          {w->probe_values.back(), vocab.word(rng.Uniform(vocab.size()))}));
    }
    return w;
  }();
  return *world;
}

void BM_PostingListLookup(benchmark::State& state) {
  const World& world = SharedWorld();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.index->Lookup(world.probe_values[i++ & 1023]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PostingListLookup);

void BM_SuperKeyCoversProbe(benchmark::State& state) {
  const World& world = SharedWorld();
  const SuperKeyStore& store = world.index->superkeys();
  size_t i = 0;
  size_t num_tables = store.num_tables();
  for (auto _ : state) {
    size_t t = i % num_tables;
    size_t rows = store.NumRows(static_cast<TableId>(t));
    if (rows == 0) {
      ++i;
      continue;
    }
    benchmark::DoNotOptimize(
        store.Covers(static_cast<TableId>(t), static_cast<RowId>(i % rows),
                     world.probe_keys[i & 1023]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SuperKeyCoversProbe);

void BM_IndexBuildSmall(benchmark::State& state) {
  Vocabulary vocab = Vocabulary::Generate(500, Vocabulary::Style::kMixed, 3);
  CorpusSpec spec;
  spec.num_tables = 50;
  spec.seed = 5;
  Corpus corpus = GenerateCorpus(spec, vocab);
  for (auto _ : state) {
    auto index = BuildIndex(corpus, IndexBuildOptions{});
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexBuildSmall)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mate
