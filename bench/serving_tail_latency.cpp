// Open-loop tail-latency harness for mate_server (ROADMAP "mate_server"):
// starts the real server (in this process, but driven purely over TCP
// sockets and the wire protocol — nothing bypasses the front-end), then
// fires Zipf-distributed query streams from multiple tenants at a constant
// arrival rate and reports p50/p90/p99/p99.9 of the *client-observed*
// latency, measured from each request's scheduled arrival time. Open-loop
// is the honest protocol for tail latency: a slow server does not slow the
// arrival process down, so queueing delay accumulates into the measured
// numbers instead of silently throttling the load (closed-loop coordinated
// omission).
//
// Three scenarios:
//   steady   — arrival rate ~50% of measured capacity, deep queue: every
//              request must be served, and every served top-k must be
//              bit-identical to an in-process Session::Discover of the
//              same query (hard gate).
//   overload — arrival rate ~4x capacity against a tiny admission queue:
//              the server MUST shed with kOverloaded (hard gate), must not
//              crash or grow its queue beyond the bound, and the p99 of
//              *admitted* requests must stay finite — admission control is
//              what keeps served latency bounded when offered load is not.
//   mixed    — a giant query (synthesized until its pre-execution PL
//              estimate clears the executor's auto-parallel gate) blended
//              into the small-query pool, offered at ~4x capacity, run
//              twice with identical seeds: once with steering off (the
//              executor's auto gate fans the giant out every time) and
//              once with --steering=auto (dequeue-time SLO steering
//              degrades it to serial while the queue is deep or the p99 is
//              over target). Hard gates: zero bit-identity violations in
//              BOTH runs, steering must take serial decisions under
//              overload, and the steered p99 must not exceed the
//              fixed-fanout p99 — on an oversubscribed box, fan-out under
//              pressure is pure overhead and steering must claw it back.
//
// Every JSON record carries the tenant count and offered arrival rate
// (bench_util AddWithLoad), so the trajectory records the load shape.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_util/bench_json.h"
#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "core/query_executor.h"
#include "server/client.h"
#include "server/server.h"
#include "util/latency_histogram.h"
#include "util/rng.h"
#include "util/zipf.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

using Clock = std::chrono::steady_clock;

struct LoadResult {
  LatencyHistogram served_us;  // latency of admitted+served requests
  uint64_t served = 0;
  uint64_t shed = 0;
  uint64_t transport_errors = 0;
  uint64_t mismatches = 0;  // served top-k != in-process expectation
  double elapsed_seconds = 0.0;
};

bool SameServedTopK(const std::vector<ServedResult>& served,
                    const DiscoveryResult& expected) {
  if (served.size() != expected.top_k.size()) return false;
  for (size_t i = 0; i < served.size(); ++i) {
    const ServedResult& s = served[i];
    const TableResult& e = expected.top_k[i];
    if (s.table_id != e.table_id || s.joinability != e.joinability ||
        s.mapping != e.best_mapping) {
      return false;
    }
  }
  return true;
}

/// Drives `connections` sockets per tenant at a combined constant arrival
/// rate of `arrival_rate` requests/s for `requests_per_connection` requests
/// each. Requests are spread round-robin over the connections; each
/// connection thread owns its slice of the global schedule, sleeps until
/// each scheduled arrival, and measures latency from that *scheduled* time
/// (overdue arrivals fire immediately and the backlog counts).
LoadResult RunOpenLoop(uint16_t port, const std::vector<QueryRequest>& pool,
                       const std::vector<const DiscoveryResult*>& expected,
                       size_t tenants, size_t connections_per_tenant,
                       double arrival_rate, size_t requests_per_connection,
                       uint64_t seed) {
  const size_t total_connections = tenants * connections_per_tenant;
  std::vector<LoadResult> per_connection(total_connections);
  std::vector<std::thread> threads;
  threads.reserve(total_connections);
  const auto start = Clock::now() + std::chrono::milliseconds(50);
  const double interval_s =
      static_cast<double>(total_connections) / arrival_rate;
  for (size_t c = 0; c < total_connections; ++c) {
    threads.emplace_back([&, c] {
      LoadResult& out = per_connection[c];
      auto client = MateClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        out.transport_errors = requests_per_connection;
        return;
      }
      const std::string tenant =
          "tenant-" + std::to_string(c / connections_per_tenant);
      Rng rng(seed + 7919 * c);
      ZipfDistribution zipf(pool.size(), /*s=*/1.1);
      for (size_t i = 0; i < requests_per_connection; ++i) {
        // Interleaved global schedule: connection c owns arrivals
        // c, c + N, c + 2N, ... of the combined constant-rate stream.
        const double offset_s =
            (static_cast<double>(i) * static_cast<double>(total_connections) +
             static_cast<double>(c)) *
            interval_s / static_cast<double>(total_connections);
        const auto scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(offset_s));
        std::this_thread::sleep_until(scheduled);  // no-op when overdue
        const size_t q = zipf.Sample(&rng);
        QueryRequest request = pool[q];
        request.tenant = tenant;
        auto response = client->Query(request);
        const auto done = Clock::now();
        if (!response.ok()) {
          ++out.transport_errors;
          break;  // transport is gone; stop this connection
        }
        if (response->status.IsOverloaded()) {
          ++out.shed;
          continue;
        }
        if (!response->status.ok()) {
          ++out.transport_errors;
          continue;
        }
        ++out.served;
        if (!SameServedTopK(response->results, *expected[q])) {
          ++out.mismatches;
        }
        const auto waited = done - scheduled;
        out.served_us.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(waited)
                .count()));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LoadResult merged;
  const auto end = Clock::now();
  merged.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  for (const LoadResult& r : per_connection) {
    merged.served_us.Merge(r.served_us);
    merged.served += r.served;
    merged.shed += r.shed;
    merged.transport_errors += r.transport_errors;
    merged.mismatches += r.mismatches;
  }
  return merged;
}

/// Value of the first unlabeled sample line `name <value>` on a Prometheus
/// text page; -1 when absent.
int64_t ParseMetricValue(const std::string& page, const std::string& name) {
  size_t start = 0;
  while (start < page.size()) {
    size_t end = page.find('\n', start);
    if (end == std::string::npos) end = page.size();
    const std::string line = page.substr(start, end - start);
    if (line.rfind(name + " ", 0) == 0) {
      return std::strtoll(line.c_str() + name.size() + 1, nullptr, 10);
    }
    start = end + 1;
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.2;
  defaults.queries = 12;
  defaults.threads = 2;
  BenchArgs args =
      ParseBenchArgs(argc, argv, "serving_tail_latency", defaults);
  if (args.threads == 0) args.threads = std::thread::hardware_concurrency();

  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = args.queries;
  config.seed = args.seed;
  Workload workload = MakeWebTablesWorkload(config);

  std::vector<const QueryCase*> pool_cases;
  for (const QueryCase& qc : workload.query_sets[1].second) {
    pool_cases.push_back(&qc);
  }

  SessionOptions session_options;
  session_options.corpus = std::move(workload.corpus);
  session_options.build_index = true;
  session_options.num_threads = args.threads;
  session_options.cache_bytes = size_t{64} << 20;
  Session session = OpenOrDie(std::move(session_options));

  // In-process ground truth, computed BEFORE the server starts (the server
  // dispatcher becomes the session's only Discover caller afterwards).
  // Serving bit-identity is gated against these results.
  std::vector<QueryRequest> pool;
  std::vector<DiscoveryResult> expected_store;
  expected_store.reserve(pool_cases.size());
  for (const QueryCase* qc : pool_cases) {
    QuerySpec spec;
    spec.table = &qc->query;
    spec.key_columns = qc->key_columns;
    spec.options.k = args.k;
    auto result = session.Discover(spec);
    if (!result.ok()) {
      std::cerr << "in-process ground truth failed: "
                << result.status().ToString() << "\n";
      return 1;
    }
    expected_store.push_back(std::move(*result));
    pool.push_back(
        MakeQueryRequest(qc->query, qc->key_columns, args.k, ""));
  }
  std::vector<const DiscoveryResult*> expected;
  for (const DiscoveryResult& r : expected_store) expected.push_back(&r);

  const size_t kTenants = 2;
  BenchJsonWriter json("serving_tail_latency", args.threads);
  ReportTable table({"Scenario", "Rate (req/s)", "Served", "Shed", "p50",
                     "p90", "p99", "p99.9"});

  // ---- capacity probe: closed-loop RTTs over one socket ----------------
  // Measured over the wire so framing/IPC overhead is part of capacity.
  double capacity_rps = 0.0;
  {
    ServerOptions options;
    options.max_queue_depth = 64;
    MateServer server(&session, options);
    if (Status s = server.Start(); !s.ok()) {
      std::cerr << "server start failed: " << s.ToString() << "\n";
      return 1;
    }
    auto client = MateClient::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      std::cerr << "probe connect failed: " << client.status().ToString()
                << "\n";
      return 1;
    }
    const size_t kProbeRounds = 3;
    const auto probe_start = Clock::now();
    size_t probes = 0;
    for (size_t round = 0; round < kProbeRounds; ++round) {
      for (const QueryRequest& request : pool) {
        QueryRequest probe = request;
        probe.tenant = "probe";
        auto response = client->Query(probe);
        if (!response.ok() || !response->status.ok()) {
          std::cerr << "probe query failed\n";
          return 1;
        }
        ++probes;
      }
    }
    const double probe_seconds =
        std::chrono::duration<double>(Clock::now() - probe_start).count();
    capacity_rps = static_cast<double>(probes) / probe_seconds;
    server.Stop();
  }
  std::cout << "== Open-loop serving tail latency (pool=" << pool.size()
            << " queries, tenants=" << kTenants
            << ", measured capacity ~" << FormatDouble(capacity_rps, 0)
            << " req/s) ==\n\n";

  int exit_code = 0;

  // ---- steady: 50% of capacity, deep queue -----------------------------
  {
    ServerOptions options;
    options.max_queue_depth = 64;
    options.tenant_cache_bytes = size_t{16} << 20;
    MateServer server(&session, options);
    if (Status s = server.Start(); !s.ok()) {
      std::cerr << "server start failed: " << s.ToString() << "\n";
      return 1;
    }
    const double rate = 0.5 * capacity_rps;
    // Scrape METRICS mid-load on its own connection: observability must
    // answer while the dispatcher is busy, and the page must stay valid.
    std::atomic<bool> midrun_metrics_ok{false};
    std::thread scraper([&server, &midrun_metrics_ok] {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      auto client = MateClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) return;
      auto page = client->Metrics();
      midrun_metrics_ok =
          page.ok() && ParseMetricValue(*page, "mate_queries_total") >= 0 &&
          page->find("# TYPE mate_query_latency_seconds histogram") !=
              std::string::npos;
    });
    LoadResult r = RunOpenLoop(server.port(), pool, expected, kTenants,
                               /*connections_per_tenant=*/4, rate,
                               /*requests_per_connection=*/40, args.seed);
    scraper.join();
    // Quiesced: the page's admitted counter must equal the server's own
    // admission count exactly.
    int64_t page_queries_total = -1;
    uint64_t stats_admitted = 0;
    {
      auto client = MateClient::Connect("127.0.0.1", server.port());
      if (client.ok()) {
        auto page = client->Metrics();
        if (page.ok()) {
          page_queries_total = ParseMetricValue(*page, "mate_queries_total");
        }
      }
      stats_admitted = server.stats().admitted;
    }
    server.Stop();
    table.AddRow({"steady", FormatDouble(rate, 0), std::to_string(r.served),
                  std::to_string(r.shed),
                  std::to_string(r.served_us.Percentile(0.50)) + "us",
                  std::to_string(r.served_us.Percentile(0.90)) + "us",
                  std::to_string(r.served_us.Percentile(0.99)) + "us",
                  std::to_string(r.served_us.Percentile(0.999)) + "us"});
    json.AddWithLoad("steady", "p50", r.served_us.Percentile(0.50), "us",
                     kTenants, rate);
    json.AddWithLoad("steady", "p90", r.served_us.Percentile(0.90), "us",
                     kTenants, rate);
    json.AddWithLoad("steady", "p99", r.served_us.Percentile(0.99), "us",
                     kTenants, rate);
    json.AddWithLoad("steady", "p999", r.served_us.Percentile(0.999), "us",
                     kTenants, rate);
    json.AddWithLoad("steady", "served", static_cast<double>(r.served),
                     "requests", kTenants, rate);
    json.AddWithLoad("steady", "shed_ratio",
                     static_cast<double>(r.shed) /
                         static_cast<double>(r.served + r.shed),
                     "ratio", kTenants, rate);
    if (r.transport_errors > 0) {
      std::cerr << "GATE FAILED (steady): " << r.transport_errors
                << " transport errors\n";
      exit_code = 1;
    }
    if (r.mismatches > 0) {
      std::cerr << "GATE FAILED (steady): " << r.mismatches
                << " served results diverged from in-process Discover\n";
      exit_code = 1;
    }
    if (r.served == 0) {
      std::cerr << "GATE FAILED (steady): nothing served\n";
      exit_code = 1;
    }
    if (!midrun_metrics_ok.load()) {
      std::cerr << "GATE FAILED (steady): mid-run METRICS scrape did not "
                   "return a valid page\n";
      exit_code = 1;
    }
    if (page_queries_total < 0 ||
        static_cast<uint64_t>(page_queries_total) != stats_admitted) {
      std::cerr << "GATE FAILED (steady): METRICS mate_queries_total="
                << page_queries_total << " != admitted=" << stats_admitted
                << "\n";
      exit_code = 1;
    }
    json.AddWithLoad("steady", "metrics_queries_total",
                     static_cast<double>(page_queries_total), "requests",
                     kTenants, rate);
  }

  // ---- overload: ~4x capacity into a 4-deep queue ----------------------
  // 16 always-overdue connections against queue depth 4: the structural
  // guarantee that admission control engages, independent of hardware.
  {
    ServerOptions options;
    options.max_queue_depth = 4;
    options.tenant_cache_bytes = size_t{16} << 20;
    MateServer server(&session, options);
    if (Status s = server.Start(); !s.ok()) {
      std::cerr << "server start failed: " << s.ToString() << "\n";
      return 1;
    }
    const double rate = 4.0 * capacity_rps;
    LoadResult r = RunOpenLoop(server.port(), pool, expected, kTenants,
                               /*connections_per_tenant=*/8, rate,
                               /*requests_per_connection=*/25, args.seed + 1);
    const ServerStatsSnapshot stats = server.stats();
    server.Stop();
    table.AddRow({"overload", FormatDouble(rate, 0),
                  std::to_string(r.served), std::to_string(r.shed),
                  std::to_string(r.served_us.Percentile(0.50)) + "us",
                  std::to_string(r.served_us.Percentile(0.90)) + "us",
                  std::to_string(r.served_us.Percentile(0.99)) + "us",
                  std::to_string(r.served_us.Percentile(0.999)) + "us"});
    json.AddWithLoad("overload", "p50", r.served_us.Percentile(0.50), "us",
                     kTenants, rate);
    json.AddWithLoad("overload", "p90", r.served_us.Percentile(0.90), "us",
                     kTenants, rate);
    json.AddWithLoad("overload", "p99", r.served_us.Percentile(0.99), "us",
                     kTenants, rate);
    json.AddWithLoad("overload", "p999", r.served_us.Percentile(0.999), "us",
                     kTenants, rate);
    json.AddWithLoad("overload", "served", static_cast<double>(r.served),
                     "requests", kTenants, rate);
    json.AddWithLoad("overload", "shed_ratio",
                     static_cast<double>(r.shed) /
                         static_cast<double>(r.served + r.shed),
                     "ratio", kTenants, rate);
    if (r.transport_errors > 0) {
      std::cerr << "GATE FAILED (overload): " << r.transport_errors
                << " transport errors (shedding must be a typed response, "
                   "not a dropped connection)\n";
      exit_code = 1;
    }
    if (r.mismatches > 0) {
      std::cerr << "GATE FAILED (overload): " << r.mismatches
                << " served results diverged from in-process Discover\n";
      exit_code = 1;
    }
    if (r.shed == 0) {
      std::cerr << "GATE FAILED (overload): offered ~4x capacity into a "
                   "4-deep queue but nothing was shed\n";
      exit_code = 1;
    }
    if (r.served > 0 && r.served_us.Percentile(0.99) == 0) {
      std::cerr << "GATE FAILED (overload): admitted p99 is zero\n";
      exit_code = 1;
    }
    if (stats.queue_depth > stats.queue_capacity) {
      std::cerr << "GATE FAILED (overload): queue grew beyond its bound\n";
      exit_code = 1;
    }
  }

  // ---- mixed giant+small at 4x capacity: steering off vs auto ----------
  {
    // Synthesize the giant: a single-column query of corpus values, grown
    // until its pre-execution PL estimate clears the executor's
    // auto-parallel gate with margin — so the steering-off baseline
    // genuinely fans it out on every dispatch.
    Table giant_table("giant");
    giant_table.AddColumn("a");
    uint64_t giant_estimate = 0;
    {
      const Corpus& corpus = session.corpus();
      const uint64_t target = 2 * QueryExecutor::kAutoParallelMinItems;
      std::unordered_set<std::string> seen;
      for (TableId t = 0;
           t < corpus.NumTables() && giant_estimate < target; ++t) {
        const Table& src = corpus.table(t);
        if (src.NumColumns() == 0) continue;
        const size_t rows = std::min<size_t>(src.NumRows(), 8);
        for (size_t r = 0; r < rows; ++r) {
          if (src.IsRowDeleted(r)) continue;
          const std::string& value = src.cell(r, 0);
          if (value.empty() || !seen.insert(value).second) continue;
          (void)giant_table.AppendRow({value});
        }
        QuerySpec probe;
        probe.table = &giant_table;
        probe.key_columns = {0};
        probe.options.k = args.k;
        auto e = session.EstimatePlItems(probe);
        if (e.ok()) giant_estimate = *e;
      }
    }
    std::cout << "\nmixed: giant query " << giant_table.NumRows()
              << " rows, estimated PL items " << giant_estimate
              << " (auto-parallel gate "
              << QueryExecutor::kAutoParallelMinItems << ")\n";

    // In-process ground truth for the giant (no server is running now).
    QuerySpec giant_spec;
    giant_spec.table = &giant_table;
    giant_spec.key_columns = {0};
    giant_spec.options.k = args.k;
    auto giant_expected = session.Discover(giant_spec);
    if (!giant_expected.ok()) {
      std::cerr << "giant ground truth failed: "
                << giant_expected.status().ToString() << "\n";
      return 1;
    }

    // Giant first: Zipf rank 0 is hottest, so giant traffic dominates.
    std::vector<QueryRequest> mixed_pool;
    std::vector<const DiscoveryResult*> mixed_expected;
    mixed_pool.push_back(MakeQueryRequest(giant_table, {0}, args.k, ""));
    mixed_expected.push_back(&*giant_expected);
    for (size_t i = 0; i < pool.size(); ++i) {
      mixed_pool.push_back(pool[i]);
      mixed_expected.push_back(expected[i]);
    }

    // Capacity of the mixed pool (fixed-fanout server, cache disabled).
    double mixed_capacity_rps = 0.0;
    {
      ServerOptions options;
      options.max_queue_depth = 64;
      options.tenant_cache_bytes = 1;  // nothing fits: every query executes
      MateServer server(&session, options);
      if (Status s = server.Start(); !s.ok()) {
        std::cerr << "server start failed: " << s.ToString() << "\n";
        return 1;
      }
      auto client = MateClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        std::cerr << "mixed probe connect failed\n";
        return 1;
      }
      const auto probe_start = Clock::now();
      size_t probes = 0;
      for (const QueryRequest& request : mixed_pool) {
        QueryRequest probe = request;
        probe.tenant = "probe";
        auto response = client->Query(probe);
        if (!response.ok() || !response->status.ok()) {
          std::cerr << "mixed probe query failed\n";
          return 1;
        }
        ++probes;
      }
      mixed_capacity_rps =
          static_cast<double>(probes) /
          std::chrono::duration<double>(Clock::now() - probe_start).count();
      server.Stop();
    }
    const double rate = 4.0 * mixed_capacity_rps;

    // Identical seeds and schedules; the only difference is the steering
    // mode, so the p99 comparison isolates the dequeue-time policy.
    const auto run_mixed = [&](SteeringMode mode,
                               ServerStatsSnapshot* stats_out) {
      ServerOptions options;
      options.max_queue_depth = 8;
      // A 1-byte partition per tenant: no served result ever fits, so
      // every request executes — steering must win on execution shape,
      // not on result caching.
      options.tenant_cache_bytes = 1;
      options.steering = mode;
      options.target_p99 = std::chrono::milliseconds(2);
      MateServer server(&session, options);
      if (Status s = server.Start(); !s.ok()) {
        std::cerr << "server start failed: " << s.ToString() << "\n";
        std::exit(1);
      }
      // One request per connection: every latency sample is a pure
      // queue-wait + service measurement from its own scheduled arrival.
      // With multi-shot connections the server that sheds LESS (steering)
      // accumulates per-connection backlog into its served histogram —
      // coordinated omission would punish the better policy.
      LoadResult r = RunOpenLoop(server.port(), mixed_pool, mixed_expected,
                                 kTenants, /*connections_per_tenant=*/48,
                                 rate, /*requests_per_connection=*/1,
                                 args.seed + 2);
      *stats_out = server.stats();
      server.Stop();
      return r;
    };
    ServerStatsSnapshot off_stats;
    ServerStatsSnapshot auto_stats;
    const LoadResult off = run_mixed(SteeringMode::kOff, &off_stats);
    const LoadResult steered = run_mixed(SteeringMode::kAuto, &auto_stats);

    for (const auto& [label, r] :
         {std::pair<const char*, const LoadResult&>{"mixed steering=off",
                                                    off},
          std::pair<const char*, const LoadResult&>{"mixed steering=auto",
                                                    steered}}) {
      table.AddRow({label, FormatDouble(rate, 0), std::to_string(r.served),
                    std::to_string(r.shed),
                    std::to_string(r.served_us.Percentile(0.50)) + "us",
                    std::to_string(r.served_us.Percentile(0.90)) + "us",
                    std::to_string(r.served_us.Percentile(0.99)) + "us",
                    std::to_string(r.served_us.Percentile(0.999)) + "us"});
    }
    json.AddWithLoad("mixed_off", "p50", off.served_us.Percentile(0.50),
                     "us", kTenants, rate);
    json.AddWithLoad("mixed_off", "p99", off.served_us.Percentile(0.99),
                     "us", kTenants, rate);
    json.AddWithLoad("mixed_off", "served", static_cast<double>(off.served),
                     "requests", kTenants, rate);
    json.AddWithLoad("mixed_auto", "p50",
                     steered.served_us.Percentile(0.50), "us", kTenants,
                     rate);
    json.AddWithLoad("mixed_auto", "p99",
                     steered.served_us.Percentile(0.99), "us", kTenants,
                     rate);
    json.AddWithLoad("mixed_auto", "served",
                     static_cast<double>(steered.served), "requests",
                     kTenants, rate);
    json.AddWithLoad("mixed_auto", "steer_serial",
                     static_cast<double>(auto_stats.steering_serial),
                     "decisions", kTenants, rate);
    json.AddWithLoad("mixed_auto", "steer_partial",
                     static_cast<double>(auto_stats.steering_partial),
                     "decisions", kTenants, rate);
    json.AddWithLoad("mixed_auto", "steer_full",
                     static_cast<double>(auto_stats.steering_full),
                     "decisions", kTenants, rate);
    json.AddWithLoad("mixed_auto", "giant_estimate",
                     static_cast<double>(giant_estimate), "pl_items",
                     kTenants, rate);

    if (off.transport_errors + steered.transport_errors > 0) {
      std::cerr << "GATE FAILED (mixed): transport errors (off="
                << off.transport_errors
                << ", auto=" << steered.transport_errors << ")\n";
      exit_code = 1;
    }
    if (off.mismatches + steered.mismatches > 0) {
      std::cerr << "GATE FAILED (mixed): " << off.mismatches << "+"
                << steered.mismatches
                << " served results diverged from in-process Discover — "
                   "steering must never change served bits\n";
      exit_code = 1;
    }
    if (off.served == 0 || steered.served == 0) {
      std::cerr << "GATE FAILED (mixed): nothing served (off="
                << off.served << ", auto=" << steered.served << ")\n";
      exit_code = 1;
    }
    if (auto_stats.steering_serial == 0) {
      std::cerr << "GATE FAILED (mixed): 4x overload but steering never "
                   "degraded a query to serial\n";
      exit_code = 1;
    }
    if (off_stats.steering_serial + off_stats.steering_partial +
            off_stats.steering_full >
        0) {
      std::cerr << "GATE FAILED (mixed): steering=off server counted "
                   "steering decisions\n";
      exit_code = 1;
    }
    if (giant_estimate < QueryExecutor::kAutoParallelMinItems) {
      std::cerr << "GATE FAILED (mixed): giant query estimate "
                << giant_estimate
                << " never cleared the auto-parallel gate — the baseline "
                   "is not fanning out\n";
      exit_code = 1;
    }
    if (steered.served_us.Percentile(0.99) >
        off.served_us.Percentile(0.99)) {
      std::cerr << "GATE FAILED (mixed): steered p99 "
                << steered.served_us.Percentile(0.99)
                << "us exceeds fixed-fanout p99 "
                << off.served_us.Percentile(0.99) << "us\n";
      exit_code = 1;
    }
  }

  table.Print(std::cout);
  std::cout << "\nShape check: steady-state p99 stays near single-query "
               "service time; under overload the shed ratio absorbs the "
               "excess while admitted p99 stays bounded by (queue depth + "
               "1) x service time.\n";
  if (!json.WriteTo(args.json_path)) return 1;
  return exit_code;
}
