// Memory governance (ROADMAP "corpus memory governance"): discovery under a
// corpus residency byte budget (SessionOptions::corpus_budget_bytes) vs the
// classic unlimited run, over a corpus ~4x the budget.
//
// The corpus is built so the two governance mechanisms both carry load:
//
//   * many small "hot group" tables probed by 2-column-key queries (multi-
//     column keys verify whole rows, so candidates fully materialize) —
//     cycling disjoint groups drives residency past the budget, forcing
//     LRU eviction between queries and re-materialization on the second
//     cycle;
//   * one giant wide table probed by a single-column-key query — the
//     evaluator requests only the touched column (corpus format v3
//     per-column extents), so the giant table never materializes more than
//     a sliver of its cell bytes.
//
// Hard gates (exit 1), all over the budgeted session unless noted:
//   * top-k results bit-identical to the unlimited run, re-touches after
//     eviction included;
//   * peak resident corpus bytes <= 1.1x the budget (the budget is a real
//     ceiling, not a suggestion — one query's working set of headroom);
//   * evictions > 0 and re-materializations > 0 (the budget actually
//     engaged);
//   * the giant table's resident bytes stay < 25% of its cell bytes after
//     its single-column query (checked on the unlimited session, where no
//     eviction can mask a whole-table parse).
//
// CI runs this in bench-smoke; --json feeds the BENCH_*.json trajectory.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/bench_json.h"
#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "core/session.h"
#include "storage/corpus_io.h"
#include "util/stopwatch.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

// Distinct key combos per group/giant query — also the query row count.
constexpr size_t kCombos = 50;
// Hot tables per group: one query's full-materialization working set.
constexpr size_t kTablesPerGroup = 2;
constexpr size_t kHotRows = 320;
constexpr size_t kGiantCols = 24;

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::cerr << what << ": " << status.ToString() << "\n";
  std::exit(1);
}

// Group values ("g<g>a<j>", "g<g>b<j>") are disjoint across groups and from
// the giant's vocabulary, so each query's posting traffic — and therefore
// its materialization working set — stays confined to its own group.
Table MakeHotTable(size_t group, size_t member) {
  Table table("hot_g" + std::to_string(group) + "_" + std::to_string(member));
  table.AddColumn("ka");
  table.AddColumn("kb");
  table.AddColumn("payload");
  for (size_t r = 0; r < kHotRows; ++r) {
    const std::string j = std::to_string(r % kCombos);
    (void)table.AppendRow({"g" + std::to_string(group) + "a" + j,
                           "g" + std::to_string(group) + "b" + j,
                           "p" + std::to_string(group * 10 + member) + "x" +
                               std::to_string(r)});
  }
  return table;
}

// One narrow key column of probed values ("giv<j>") plus many fat junk
// columns no query ever touches: the single-column-key query must pay for
// ~1/24th of this table's bytes, not the blob.
Table MakeGiantTable(size_t rows) {
  Table giant("giant_wide");
  giant.AddColumn("gk");
  for (size_t c = 1; c < kGiantCols; ++c) {
    giant.AddColumn("junk" + std::to_string(c));
  }
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> cells;
    cells.reserve(kGiantCols);
    cells.push_back("giv" + std::to_string(r % kCombos));
    for (size_t c = 1; c < kGiantCols; ++c) {
      cells.push_back("z" + std::to_string(c) + "u" +
                      std::to_string(r % 1009));
    }
    (void)giant.AppendRow(std::move(cells));
  }
  return giant;
}

Table MakeGroupQuery(size_t group) {
  Table query("q_g" + std::to_string(group));
  query.AddColumn("qa");
  query.AddColumn("qb");
  for (size_t j = 0; j < kCombos; ++j) {
    (void)query.AppendRow({"g" + std::to_string(group) + "a" +
                               std::to_string(j),
                           "g" + std::to_string(group) + "b" +
                               std::to_string(j)});
  }
  return query;
}

Table MakeGiantQuery() {
  Table query("q_giant");
  query.AddColumn("qk");
  for (size_t j = 0; j < kCombos; ++j) {
    (void)query.AppendRow({"giv" + std::to_string(j)});
  }
  return query;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.25;
  defaults.threads = 4;
  BenchArgs args = ParseBenchArgs(argc, argv, "memory_budget", defaults);
  if (args.threads == 0) args.threads = 4;

  // Floors keep the working-set-vs-budget geometry sound at tiny scales:
  // one query must fit in ~10% of the budget for the peak gate to be fair.
  const size_t num_groups = std::max<size_t>(
      30, static_cast<size_t>(120 * args.scale));
  const size_t giant_rows = std::max<size_t>(
      2400, static_cast<size_t>(12000 * args.scale));

  Corpus corpus;
  for (size_t g = 0; g < num_groups; ++g) {
    for (size_t m = 0; m < kTablesPerGroup; ++m) {
      corpus.AddTable(MakeHotTable(g, m));
    }
  }
  const TableId giant_id = corpus.AddTable(MakeGiantTable(giant_rows));
  const size_t num_tables = corpus.NumTables();

  const std::string corpus_path = "/tmp/mate_memory_budget.corpus";
  const std::string index_path = "/tmp/mate_memory_budget.index";
  {
    SessionOptions build;
    build.corpus = std::move(corpus);
    build.build_index = true;
    build.build_options.num_threads = args.threads;
    Session session = OpenOrDie(std::move(build));
    if (Status s = session.Save(corpus_path, index_path); !s.ok()) {
      Die("Save failed", s);
    }
  }

  // Query stream: two full cycles over the disjoint groups (cycle 2
  // re-touches tables cycle 1's evictions dropped), with the giant
  // single-column probe once per cycle.
  std::vector<Table> query_tables;
  query_tables.reserve(num_groups + 1);
  for (size_t g = 0; g < num_groups; ++g) {
    query_tables.push_back(MakeGroupQuery(g));
  }
  query_tables.push_back(MakeGiantQuery());
  std::vector<size_t> stream;  // indices into query_tables
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (size_t g = 0; g < num_groups; ++g) stream.push_back(g);
    stream.push_back(num_groups);  // the giant query
  }

  // By hand, not OpenOrDie: the helper drains WaitCorpusResident, and a
  // fully materialized corpus is exactly what this bench must not start
  // from. Only the index load is drained (it isn't what's measured).
  const auto open_session = [&](uint64_t budget_bytes) {
    SessionOptions options;
    options.corpus_path = corpus_path;
    options.index_path = index_path;
    options.num_threads = args.threads;
    options.cache_bytes = 0;      // every query pays full cost
    options.warm_corpus = false;  // materialization is what we measure
    options.corpus_budget_bytes = budget_bytes;
    auto session = Session::Open(std::move(options));
    if (!session.ok()) Die("Session::Open failed", session.status());
    if (Status ready = session->WaitUntilReady(); !ready.ok()) {
      Die("index load failed", ready);
    }
    return std::move(*session);
  };

  const auto run_stream = [&](Session& session,
                              std::vector<DiscoveryResult>* results) {
    Stopwatch wall;
    for (size_t qi : stream) {
      QuerySpec spec;
      spec.table = &query_tables[qi];
      spec.key_columns = qi == num_groups ? std::vector<ColumnId>{0}
                                          : std::vector<ColumnId>{0, 1};
      spec.options.k = args.k;
      auto result = session.Discover(spec);
      if (!result.ok()) Die("Discover failed", result.status());
      results->push_back(std::move(*result));
    }
    return wall.ElapsedSeconds();
  };

  // ---- unlimited reference -------------------------------------------
  Session unlimited = open_session(0);
  uint64_t total_cell_bytes = 0;
  for (TableId t = 0; t < unlimited.corpus().NumTables(); ++t) {
    total_cell_bytes += unlimited.corpus().table_cell_bytes(t);
  }
  std::vector<DiscoveryResult> reference;
  const double unlimited_wall = run_stream(unlimited, &reference);
  const uint64_t giant_resident =
      unlimited.corpus().table_resident_bytes(giant_id);
  const uint64_t giant_total = unlimited.corpus().table_cell_bytes(giant_id);
  const ResidencyStats unlimited_res = unlimited.corpus_residency();

  // ---- budgeted run: corpus is exactly 4x the budget ------------------
  const uint64_t budget = total_cell_bytes / 4;
  Session budgeted = open_session(budget);
  std::vector<DiscoveryResult> governed;
  const double budgeted_wall = run_stream(budgeted, &governed);
  const ResidencyStats res = budgeted.corpus_residency();

  std::cout << "== Corpus residency budget (" << num_tables << " tables, "
            << FormatBytes(total_cell_bytes) << " of cells, budget "
            << FormatBytes(budget) << " = 1/4, " << stream.size()
            << " queries, k=" << args.k << ", threads=" << args.threads
            << ") ==\n\n";
  ReportTable table({"Mode", "Wall", "Peak resident", "Evictions",
                     "Re-parses", "Giant resident"});
  table.AddRow({"unlimited", FormatSeconds(unlimited_wall),
                FormatBytes(unlimited_res.peak_resident_bytes), "0", "0",
                FormatBytes(giant_resident) + "/" + FormatBytes(giant_total)});
  table.AddRow({"budgeted", FormatSeconds(budgeted_wall),
                FormatBytes(res.peak_resident_bytes),
                std::to_string(res.evictions),
                std::to_string(res.rematerializations),
                FormatBytes(budgeted.corpus().table_resident_bytes(giant_id)) +
                    "/" + FormatBytes(giant_total)});
  table.Print(std::cout);
  std::cout << "\nBudgeted run parsed "
            << FormatBytes(res.bytes_materialized) << " total ("
            << res.rematerializations << " tables re-parsed after eviction) "
            << "and never held more than "
            << FormatBytes(res.peak_resident_bytes) << " resident.\n";

  // ---- hard gates -----------------------------------------------------
  if (!SameTopK(reference, governed)) {
    std::cerr << "ERROR: budgeted results diverged from the unlimited run\n";
    return 1;
  }
  std::cout << "Results are bit-identical to the unlimited run "
               "(re-touches after eviction included).\n";
  if (res.peak_resident_bytes > budget + budget / 10) {
    std::cerr << "ERROR: peak resident " << res.peak_resident_bytes
              << "B exceeded 1.1x the budget (" << budget << "B)\n";
    return 1;
  }
  if (res.evictions == 0 || res.rematerializations == 0) {
    std::cerr << "ERROR: the budget never engaged (evictions="
              << res.evictions << ", re-parses=" << res.rematerializations
              << ") — corpus too small for the stream?\n";
    return 1;
  }
  if (giant_resident * 4 >= giant_total) {
    std::cerr << "ERROR: the single-column query materialized "
              << giant_resident << "B of the giant table's " << giant_total
              << "B (>= 25%) — columnar materialization regressed\n";
    return 1;
  }
  std::cout << "Single-column probe of the giant table materialized "
            << FormatBytes(giant_resident) << " of "
            << FormatBytes(giant_total) << " (< 25%).\n";

  BenchJsonWriter json("memory_budget", args.threads);
  json.Add("unlimited", "wall", unlimited_wall, "s");
  json.Add("unlimited", "peak_resident",
           static_cast<double>(unlimited_res.peak_resident_bytes), "bytes");
  json.Add("budgeted", "wall", budgeted_wall, "s");
  json.Add("budgeted", "budget", static_cast<double>(budget), "bytes");
  json.Add("budgeted", "peak_resident",
           static_cast<double>(res.peak_resident_bytes), "bytes");
  json.Add("budgeted", "evictions", static_cast<double>(res.evictions),
           "count");
  json.Add("budgeted", "rematerializations",
           static_cast<double>(res.rematerializations), "count");
  json.Add("budgeted", "bytes_materialized",
           static_cast<double>(res.bytes_materialized), "bytes");
  json.Add("giant", "resident_fraction",
           giant_total > 0
               ? static_cast<double>(giant_resident) /
                     static_cast<double>(giant_total)
               : 0.0,
           "ratio");
  if (!json.WriteTo(args.json_path)) return 1;

  std::remove(corpus_path.c_str());
  std::remove(index_path.c_str());
  return 0;
}
