// E5 — Figure 5: precision contribution of each XASH component on the
// WT (100) query set: SCR (no filter), length-only, rare-characters-only,
// characters+location, characters+length+location, full Xash at 128 and
// 512 bits, and the Ideal system (a filter that passes only true joinable
// rows, precision 1 by definition).
//
// Paper shape to hold: each added component raises precision;
// characters+location filters more than length alone; rotation (the delta
// between char+len+loc and Xash) removes ~20% of the remaining FPs.

#include <iostream>
#include <memory>

#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "hash/xash.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

struct AblationConfig {
  std::string label;
  size_t bits;
  bool use_length;
  bool use_chars;
  bool use_location;
  bool use_rotation;
};

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.25;
  defaults.queries = 5;
  BenchArgs args = ParseBenchArgs(argc, argv, "fig5_ablation", defaults);
  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = args.queries;
  config.seed = args.seed;

  std::cout << "== E5 / Figure 5: Xash component ablation on WT (100) "
               "(precision of the row filter; k="
            << args.k << ", scale=" << args.scale << ") ==\n\n";

  Workload workload = MakeWebTablesWorkload(config);
  // Figure 5 uses the WT (100) set only.
  const auto& queries = workload.query_sets[1].second;

  SessionOptions session_options;
  session_options.corpus = std::move(workload.corpus);
  session_options.build_index = true;
  session_options.cache_bytes = 0;  // precision bench, no reuse to exploit
  Session session = OpenOrDie(std::move(session_options));
  auto frequencies = std::make_unique<CharFrequencyTable>(
      CharFrequencyTable::FromCounts(session.corpus_stats().char_counts));

  ReportTable table({"Configuration", "Precision (mean ± std)", "FP rows",
                     "TP rows"});

  // SCR: no row filter at all — every fetched row reaches verification.
  {
    DiscoveryOptions scr;
    scr.k = args.k;
    scr.use_row_filter = false;
    QuerySetMetrics metrics =
        RunOrDie(RunMateWithOptions(session, queries, scr, "SCR"));
    table.AddRow({"SCR (no filter)",
                  FormatMeanStd(metrics.avg_precision, metrics.std_precision),
                  std::to_string(metrics.fp_rows),
                  std::to_string(metrics.tp_rows)});
  }

  const AblationConfig configs[] = {
      {"Length only", 128, true, false, false, false},
      {"Rare characters only", 128, false, true, false, false},
      {"Char. + location", 128, false, true, true, false},
      {"Char. + length + location", 128, true, true, true, false},
      {"Xash (128 bit)", 128, true, true, true, true},
      {"Xash (512 bit)", 512, true, true, true, true},
  };
  double char_len_loc_fp = -1.0;
  double xash128_fp = -1.0;
  for (const AblationConfig& ablation : configs) {
    XashOptions xopts;
    xopts.hash_bits = ablation.bits;
    xopts.corpus_unique_values = session.corpus_stats().num_unique_values;
    xopts.use_length = ablation.use_length;
    xopts.use_chars = ablation.use_chars;
    xopts.use_location = ablation.use_location;
    xopts.use_rotation = ablation.use_rotation;
    xopts.frequencies = frequencies.get();
    if (auto status = session.ResetHash(HashFamily::kXash,
                                        std::make_unique<Xash>(xopts));
        !status.ok()) {
      std::cerr << "ResetHash failed: " << status.ToString() << "\n";
      return 1;
    }
    DiscoveryOptions mate_options;
    mate_options.k = args.k;
    QuerySetMetrics metrics = RunOrDie(
        RunMateWithOptions(session, queries, mate_options, ablation.label));
    if (ablation.label == "Char. + length + location") {
      char_len_loc_fp = static_cast<double>(metrics.fp_rows);
    }
    if (ablation.label == "Xash (128 bit)") {
      xash128_fp = static_cast<double>(metrics.fp_rows);
    }
    table.AddRow({ablation.label,
                  FormatMeanStd(metrics.avg_precision, metrics.std_precision),
                  std::to_string(metrics.fp_rows),
                  std::to_string(metrics.tp_rows)});
  }
  table.AddRow({"Ideal system", FormatMeanStd(1.0, 0.0), "0", "-"});
  table.Print(std::cout);

  if (char_len_loc_fp > 0) {
    std::cout << "\nRotation removed "
              << FormatDouble(
                     100.0 * (char_len_loc_fp - xash128_fp) / char_len_loc_fp,
                     1)
              << "% of the FPs remaining after char+length+location "
                 "(paper: ~20%).\n";
  }
  std::cout << "Shape check (paper): precision climbs with each component; "
               "char-based features beat length alone.\n";
  return 0;
}
