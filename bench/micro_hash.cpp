// E10 — micro: signature-generation throughput of every super-key hash
// (offline indexing is one HashValue per cell, so this is the index build
// hot loop). XASH trades a slower hash for a far stronger filter.

#include <benchmark/benchmark.h>

#include "hash/hash_registry.h"
#include "util/rng.h"
#include "workload/vocabulary.h"

namespace mate {
namespace {

std::vector<std::string> TestValues() {
  Rng rng(42);
  std::vector<std::string> values;
  for (int i = 0; i < 512; ++i) values.push_back(GenerateWord(&rng, 2, 14));
  return values;
}

void HashFamilyBench(benchmark::State& state, HashFamily family) {
  const size_t bits = static_cast<size_t>(state.range(0));
  auto hash = MakeRowHash(family, bits, nullptr);
  const std::vector<std::string> values = TestValues();
  size_t i = 0;
  BitVector sig(bits);
  for (auto _ : state) {
    sig.Clear();
    hash->AddValue(values[i++ & 511], &sig);
    benchmark::DoNotOptimize(sig);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_Xash(benchmark::State& state) {
  HashFamilyBench(state, HashFamily::kXash);
}
void BM_Bloom(benchmark::State& state) {
  HashFamilyBench(state, HashFamily::kBloom);
}
void BM_LHBF(benchmark::State& state) {
  HashFamilyBench(state, HashFamily::kLessHashingBloom);
}
void BM_HashTable(benchmark::State& state) {
  HashFamilyBench(state, HashFamily::kHashTable);
}
void BM_Md5(benchmark::State& state) {
  HashFamilyBench(state, HashFamily::kMd5);
}
void BM_Murmur(benchmark::State& state) {
  HashFamilyBench(state, HashFamily::kMurmur);
}
void BM_City(benchmark::State& state) {
  HashFamilyBench(state, HashFamily::kCity);
}
void BM_SimHash(benchmark::State& state) {
  HashFamilyBench(state, HashFamily::kSimHash);
}

BENCHMARK(BM_Xash)->Arg(128)->Arg(512);
BENCHMARK(BM_Bloom)->Arg(128)->Arg(512);
BENCHMARK(BM_LHBF)->Arg(128)->Arg(512);
BENCHMARK(BM_HashTable)->Arg(128);
BENCHMARK(BM_Md5)->Arg(128);
BENCHMARK(BM_Murmur)->Arg(128);
BENCHMARK(BM_City)->Arg(128);
BENCHMARK(BM_SimHash)->Arg(128);

// Super-key aggregation for a whole row (5 values, the DWTC average).
void BM_MakeSuperKeyRow(benchmark::State& state) {
  auto hash = MakeRowHash(HashFamily::kXash, 128, nullptr);
  Rng rng(7);
  std::vector<std::string> row;
  for (int i = 0; i < 5; ++i) row.push_back(GenerateWord(&rng, 2, 14));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash->MakeSuperKey(row));
  }
}
BENCHMARK(BM_MakeSuperKeyRow);

}  // namespace
}  // namespace mate
