// E7 — §7.5.1: precision as k varies from 2 to 20 on WT (100). Larger k
// weakens the table-filter stopping rule, so more (and weaker) candidate
// tables get their rows filtered.
//
// Paper shape to hold: Xash has the highest precision at every k and gains
// slightly (~4%) as k grows; BF stays flat; the weaker hashes drift down.

#include <iostream>
#include <thread>

#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.25;
  defaults.queries = 5;
  BenchArgs args = ParseBenchArgs(argc, argv, "topk_sweep", defaults);
  if (args.threads == 0) args.threads = std::thread::hardware_concurrency();
  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = args.queries;
  config.seed = args.seed;

  std::cout << "== E7 / §7.5.1: precision vs k on WT (100) (scale="
            << args.scale << ", threads=" << args.threads << ") ==\n\n";

  Workload workload = MakeWebTablesWorkload(config);
  const auto& queries = workload.query_sets[1].second;  // WT (100)

  SessionOptions session_options;
  session_options.corpus = std::move(workload.corpus);
  session_options.build_index = true;
  session_options.num_threads = args.threads;
  session_options.cache_bytes = 0;  // precision sweep, no reuse to exploit
  Session session = OpenOrDie(std::move(session_options));

  const HashFamily families[] = {HashFamily::kXash, HashFamily::kBloom,
                                 HashFamily::kLessHashingBloom,
                                 HashFamily::kHashTable,
                                 HashFamily::kSimHash};
  const int ks[] = {2, 5, 10, 15, 20};

  ReportTable table({"k", "Xash", "BF", "LHBF", "HT", "SimHash"});
  // precisions[k][family]
  std::vector<std::vector<std::string>> cells(
      std::size(ks), std::vector<std::string>(std::size(families)));
  for (size_t f = 0; f < std::size(families); ++f) {
    if (auto status = session.ResetHash(families[f], 128); !status.ok()) {
      std::cerr << "ResetHash failed: " << status.ToString() << "\n";
      return 1;
    }
    for (size_t ki = 0; ki < std::size(ks); ++ki) {
      DiscoveryOptions mate_options;
      mate_options.k = ks[ki];
      QuerySetMetrics metrics = RunOrDie(
          RunMateWithOptions(session, queries, mate_options,
                             std::string(HashFamilyName(families[f]))));
      cells[ki][f] = FormatDouble(metrics.avg_precision, 3);
    }
  }
  for (size_t ki = 0; ki < std::size(ks); ++ki) {
    std::vector<std::string> row = {std::to_string(ks[ki])};
    for (size_t f = 0; f < std::size(families); ++f) {
      row.push_back(cells[ki][f]);
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nShape check (paper): Xash top at every k and roughly "
               "non-decreasing; BF flat.\n";
  return 0;
}
