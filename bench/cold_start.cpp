// Cold start (ROADMAP "async I/O" + "corpus-side lazy loading"): eager vs
// phased/lazy Session::Open over the same on-disk corpus + index pair.
//
// A serving process does more at startup than load its files: it parses
// incoming requests, warms sockets, loads configuration. The bench models
// the part that matters here — after Open returns, each mode must still
// deserialize the query table from CSV (the request) before it can call
// Discover. Under eager load that work queues behind the full index AND
// corpus reads; under phased+lazy load it overlaps with the background
// posting/super-key streaming, the corpus contributes only a header parse,
// and cells materialize per candidate table on demand.
//
// The corpus carries one *giant cold table* stuffed with values no query
// ever probes — the ROADMAP's motivating case: a small-table query must
// reach its first result without materializing it.
//
// Reported per mode, best of kRepetitions:
//   * open     — when Session::Open returned (phased: time-to-accept);
//   * parsed   — when the query CSV was deserialized;
//   * first    — time-to-first-result (Discover blocked on readiness);
//   * resident — corpus tables materialized when the first result landed.
// Plus the corpus-header-parse time (what lazy Open pays for the corpus).
//
// Exit 1 if the first results are not bit-identical across modes, if lazy
// Open returns with the corpus already fully materialized, or if the
// on-demand mode materialized the giant cold table for a query that never
// touches it — CI gates bench-smoke on all three.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/bench_json.h"
#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "storage/corpus_io.h"
#include "storage/csv.h"
#include "util/stopwatch.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

constexpr int kRepetitions = 3;  // best-of, to shave scheduler noise

struct ModeResult {
  double open_s = 0.0;
  double parsed_s = 0.0;
  double first_s = 0.0;
  bool corpus_resident_at_open = true;
  size_t tables_resident_first = 0;
  bool giant_resident_first = true;
  std::vector<DiscoveryResult> results;  // one entry: the first result
};

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::cerr << what << ": " << status.ToString() << "\n";
  std::exit(1);
}

// Many rows, few distinct values (cheap on the index, fat in the corpus),
// and a value universe ("zzcoldNN_C") disjoint from the word-shaped query
// vocabulary — so no query ever fetches a posting that points here and the
// table stays cold unless something eagerly materializes it.
Table MakeGiantColdTable(size_t rows) {
  Table giant("giant_cold");
  constexpr size_t kCols = 6;
  for (size_t c = 0; c < kCols; ++c) {
    giant.AddColumn("cold_c" + std::to_string(c));
  }
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> cells;
    cells.reserve(kCols);
    for (size_t c = 0; c < kCols; ++c) {
      cells.push_back("zzcold" + std::to_string(r % 89) + "_" +
                      std::to_string(c));
    }
    (void)giant.AppendRow(std::move(cells));
  }
  return giant;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.5;
  defaults.threads = 4;
  BenchArgs args = ParseBenchArgs(argc, argv, "cold_start", defaults);
  if (args.threads == 0) args.threads = 4;

  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = 1;
  config.seed = args.seed;
  Workload workload = MakeOpenDataWorkload(config);
  const auto& [set_name, cases] = workload.query_sets.back();
  const QueryCase& qc = cases.front();
  const std::string query_csv = ToCsv(qc.query);

  const size_t giant_rows =
      std::max<size_t>(20000, static_cast<size_t>(160000 * args.scale));
  const TableId giant_id =
      workload.corpus.AddTable(MakeGiantColdTable(giant_rows));
  const size_t num_tables = workload.corpus.NumTables();

  const std::string corpus_path = "/tmp/mate_cold_start.corpus";
  const std::string index_path = "/tmp/mate_cold_start.index";
  {
    SessionOptions build;
    build.corpus = std::move(workload.corpus);
    build.build_index = true;
    build.build_options.num_threads = args.threads;
    Session session = OpenOrDie(std::move(build));
    if (Status s = session.Save(corpus_path, index_path); !s.ok()) {
      Die("Save failed", s);
    }
  }
  // Warm the page cache for both files so the modes compare parse and
  // overlap costs, not who reads the disk first.
  const size_t corpus_bytes = ReadFileToString(corpus_path).ValueOr("").size();
  const size_t index_bytes = ReadFileToString(index_path).ValueOr("").size();

  // What a lazy open pays on the corpus side: stats + table directory.
  double header_parse_s = 0.0;
  {
    Stopwatch timer;
    auto header_only = OpenCorpusLazy(corpus_path);
    if (!header_only.ok()) Die("OpenCorpusLazy failed", header_only.status());
    header_parse_s = timer.ElapsedSeconds();
  }

  const auto run_mode = [&](bool eager, bool warm) {
    ModeResult best;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      ModeResult mode;
      Stopwatch total;
      SessionOptions options;
      options.corpus_path = corpus_path;
      options.index_path = index_path;
      options.num_threads = args.threads;
      options.cache_bytes = 0;
      options.eager_load = eager;
      options.eager_corpus = eager;
      options.warm_corpus = warm;
      auto session = Session::Open(std::move(options));
      if (!session.ok()) Die("Session::Open failed", session.status());
      mode.open_s = total.ElapsedSeconds();
      mode.corpus_resident_at_open = session->corpus_resident();

      // The "request": deserialize the query table. Under phased load this
      // overlaps with the background index streaming + corpus warming.
      auto query = ParseCsv(query_csv, "q");
      if (!query.ok()) Die("ParseCsv failed", query.status());
      mode.parsed_s = total.ElapsedSeconds();

      QuerySpec spec;
      spec.table = &*query;
      spec.key_columns = qc.key_columns;
      spec.options.k = args.k;
      auto result = session->Discover(spec);  // blocks on index readiness
      if (!result.ok()) Die("Discover failed", result.status());
      mode.first_s = total.ElapsedSeconds();
      mode.tables_resident_first = session->corpus().tables_resident();
      mode.giant_resident_first = session->corpus().table_resident(giant_id);
      mode.results.push_back(std::move(*result));

      if (rep == 0 || mode.first_s < best.first_s) best = std::move(mode);
    }
    return best;
  };

  ModeResult eager = run_mode(/*eager=*/true, /*warm=*/true);
  ModeResult phased = run_mode(/*eager=*/false, /*warm=*/true);
  ModeResult on_demand = run_mode(/*eager=*/false, /*warm=*/false);

  std::cout << "== Cold start on one " << set_name << " query (corpus file "
            << FormatBytes(corpus_bytes) << " incl. giant cold table of "
            << giant_rows << " rows, index file " << FormatBytes(index_bytes)
            << ", key=" << qc.key_columns.size() << " cols, k=" << args.k
            << ", threads=" << args.threads << ", best of " << kRepetitions
            << ") ==\n\n";
  std::cout << "Corpus header parse (lazy open's corpus cost): "
            << FormatSeconds(header_parse_s) << "\n\n";
  ReportTable table({"Mode", "Open returns", "Query parsed", "First result",
                     "Resident @first"});
  const auto resident = [&](const ModeResult& mode) {
    return std::to_string(mode.tables_resident_first) + "/" +
           std::to_string(num_tables) +
           (mode.giant_resident_first ? " (incl. giant)" : " (giant cold)");
  };
  table.AddRow({"eager", FormatSeconds(eager.open_s),
                FormatSeconds(eager.parsed_s), FormatSeconds(eager.first_s),
                resident(eager)});
  table.AddRow({"phased+warm", FormatSeconds(phased.open_s),
                FormatSeconds(phased.parsed_s), FormatSeconds(phased.first_s),
                resident(phased)});
  table.AddRow({"phased+on-demand", FormatSeconds(on_demand.open_s),
                FormatSeconds(on_demand.parsed_s),
                FormatSeconds(on_demand.first_s), resident(on_demand)});
  table.Print(std::cout);

  const double accept_speedup =
      phased.open_s > 0 ? eager.open_s / phased.open_s : 0.0;
  std::cout << "\nPhased Open returned " << FormatDouble(accept_speedup, 2)
            << "x sooner (time-to-accept " << FormatSeconds(phased.open_s)
            << " vs " << FormatSeconds(eager.open_s)
            << "); time-to-first-result " << FormatSeconds(phased.first_s)
            << " vs " << FormatSeconds(eager.first_s) << " eager.\n";

  // The hard gates. First: all modes bit-identical.
  if (!SameTopK(eager.results, phased.results) ||
      !SameTopK(eager.results, on_demand.results)) {
    std::cerr << "ERROR: lazy/phased open returned different results than "
                 "eager open\n";
    return 1;
  }
  std::cout << "First-query results are bit-identical across modes.\n";
  // Second: lazy Open must return before the corpus is fully materialized
  // (deterministic in the on-demand mode: nothing materializes without a
  // query).
  if (on_demand.corpus_resident_at_open) {
    std::cerr << "ERROR: lazy Open returned with the corpus already fully "
                 "materialized\n";
    return 1;
  }
  // Third: a small-table query must not pay for the giant cold table
  // (deterministic in the on-demand mode — no warmer races the check).
  if (on_demand.giant_resident_first) {
    std::cerr << "ERROR: the small-table query materialized the giant cold "
                 "table\n";
    return 1;
  }
  std::cout << "Small-table query reached its first result with "
            << on_demand.tables_resident_first << "/" << num_tables
            << " tables materialized; the giant cold table stayed cold.\n";

  BenchJsonWriter json("cold_start", args.threads);
  json.Add("corpus", "header_parse", header_parse_s, "s");
  const auto emit_mode = [&json](const char* name, const ModeResult& mode) {
    json.Add(name, "open", mode.open_s, "s");
    json.Add(name, "query_parsed", mode.parsed_s, "s");
    json.Add(name, "first_result", mode.first_s, "s");
    json.Add(name, "tables_resident_at_first",
             static_cast<double>(mode.tables_resident_first), "tables");
  };
  emit_mode("eager", eager);
  emit_mode("phased+warm", phased);
  emit_mode("phased+on-demand", on_demand);
  if (!json.WriteTo(args.json_path)) return 1;

  if (phased.open_s >= eager.open_s) {
    // On a single hardware thread the loader can only time-slice with the
    // corpus read, so the overlap cannot buy wall time — the shape to hold
    // there is work parity (phased within a few % of eager). With real
    // cores, phased Open should return roughly an index-stream early.
    std::cerr << "WARNING: phased Open was not faster than eager Open on "
                 "this run (single hardware thread, noise, or tiny "
                 "corpus?)\n";
  }
  std::remove(corpus_path.c_str());
  std::remove(index_path.c_str());
  return 0;
}
