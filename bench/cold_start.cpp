// Cold start (ROADMAP "async I/O for corpus/index loading"): eager vs
// phased Session::Open over the same on-disk OD corpus + index pair.
//
// A serving process does more at startup than load the index: it parses
// incoming requests, warms sockets, loads configuration. The bench models
// the part that matters here — after Open returns, each mode must still
// deserialize the query table from CSV (the request) before it can call
// Discover. Under eager load that work queues behind the full index read;
// under phased load it overlaps with the background posting/super-key
// streaming, and the mmap'd region spares the upfront full-file copy.
//
// Reported per mode, best of kRepetitions:
//   * open     — when Session::Open returned (phased: time-to-accept);
//   * parsed   — when the query CSV was deserialized;
//   * first    — time-to-first-result (Discover blocked on readiness).
//
// Exit 1 if the first results are not bit-identical across modes — CI
// gates bench-smoke on this.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "storage/corpus_io.h"
#include "storage/csv.h"
#include "util/stopwatch.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

constexpr int kRepetitions = 3;  // best-of, to shave scheduler noise

struct ModeResult {
  double open_s = 0.0;
  double parsed_s = 0.0;
  double first_s = 0.0;
  bool ready_at_parse = true;
  std::vector<DiscoveryResult> results;  // one entry: the first result
};

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::cerr << what << ": " << status.ToString() << "\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.5;
  defaults.threads = 4;
  BenchArgs args = ParseBenchArgs(argc, argv, "cold_start", defaults);
  if (args.threads == 0) args.threads = 4;

  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = 1;
  config.seed = args.seed;
  Workload workload = MakeOpenDataWorkload(config);
  const auto& [set_name, cases] = workload.query_sets.back();
  const QueryCase& qc = cases.front();
  const std::string query_csv = ToCsv(qc.query);

  const std::string corpus_path = "/tmp/mate_cold_start.corpus";
  const std::string index_path = "/tmp/mate_cold_start.index";
  {
    SessionOptions build;
    build.corpus = std::move(workload.corpus);
    build.build_index = true;
    build.build_options.num_threads = args.threads;
    Session session = OpenOrDie(std::move(build));
    if (Status s = session.Save(corpus_path, index_path); !s.ok()) {
      Die("Save failed", s);
    }
  }
  // Warm the page cache for both files so the two modes compare parse and
  // overlap costs, not who reads the disk first.
  const size_t corpus_bytes = ReadFileToString(corpus_path).ValueOr("").size();
  const size_t index_bytes = ReadFileToString(index_path).ValueOr("").size();

  const auto run_mode = [&](bool eager) {
    ModeResult best;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      ModeResult mode;
      Stopwatch total;
      SessionOptions options;
      options.corpus_path = corpus_path;
      options.index_path = index_path;
      options.num_threads = args.threads;
      options.cache_bytes = 0;
      options.eager_load = eager;
      auto session = Session::Open(std::move(options));
      if (!session.ok()) Die("Session::Open failed", session.status());
      mode.open_s = total.ElapsedSeconds();

      // The "request": deserialize the query table. Under phased load this
      // overlaps with the background index streaming.
      auto query = ParseCsv(query_csv, "q");
      if (!query.ok()) Die("ParseCsv failed", query.status());
      mode.parsed_s = total.ElapsedSeconds();
      mode.ready_at_parse = session->index_ready();

      QuerySpec spec;
      spec.table = &*query;
      spec.key_columns = qc.key_columns;
      spec.options.k = args.k;
      auto result = session->Discover(spec);  // blocks on readiness
      if (!result.ok()) Die("Discover failed", result.status());
      mode.first_s = total.ElapsedSeconds();
      mode.results.push_back(std::move(*result));

      if (rep == 0 || mode.first_s < best.first_s) best = std::move(mode);
    }
    return best;
  };

  ModeResult eager = run_mode(/*eager=*/true);
  ModeResult phased = run_mode(/*eager=*/false);

  std::cout << "== Cold start on one " << set_name << " query (corpus file "
            << FormatBytes(corpus_bytes) << ", index file "
            << FormatBytes(index_bytes) << ", key=" << qc.key_columns.size()
            << " cols, k=" << args.k << ", threads=" << args.threads
            << ", best of " << kRepetitions << ") ==\n\n";
  ReportTable table({"Mode", "Open returns", "Query parsed", "First result",
                     "Ready at parse"});
  table.AddRow({"eager", FormatSeconds(eager.open_s),
                FormatSeconds(eager.parsed_s), FormatSeconds(eager.first_s),
                eager.ready_at_parse ? "yes" : "no"});
  table.AddRow({"phased", FormatSeconds(phased.open_s),
                FormatSeconds(phased.parsed_s), FormatSeconds(phased.first_s),
                phased.ready_at_parse ? "yes" : "no"});
  table.Print(std::cout);

  const double accept_speedup =
      phased.open_s > 0 ? eager.open_s / phased.open_s : 0.0;
  std::cout << "\nPhased Open returned " << FormatDouble(accept_speedup, 2)
            << "x sooner (time-to-accept " << FormatSeconds(phased.open_s)
            << " vs " << FormatSeconds(eager.open_s)
            << "); time-to-first-result " << FormatSeconds(phased.first_s)
            << " vs " << FormatSeconds(eager.first_s) << " eager.\n";

  // The hard gate: both modes must produce bit-identical first results.
  if (!SameTopK(eager.results, phased.results)) {
    std::cerr << "ERROR: phased open returned different results than eager "
                 "open\n";
    return 1;
  }
  std::cout << "First-query results are bit-identical across modes.\n";
  if (phased.open_s >= eager.open_s) {
    // On a single hardware thread the loader can only time-slice with the
    // corpus read, so the overlap cannot buy wall time — the shape to hold
    // there is work parity (phased within a few % of eager). With real
    // cores, phased Open should return roughly an index-stream early.
    std::cerr << "WARNING: phased Open was not faster than eager Open on "
                 "this run (single hardware thread, noise, or tiny "
                 "corpus?)\n";
  }
  std::remove(corpus_path.c_str());
  std::remove(index_path.c_str());
  return 0;
}
