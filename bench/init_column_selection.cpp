// E8 — §7.5.4: how many PL items each initial-column strategy fetches on
// the OD (10000) query set. The paper reports averages of 179 (cardinality
// heuristic) vs 202 (column order) vs 248 (longest string) vs 728 (worst
// case), with 83 for the ground-truth best choice.
//
// Paper shape to hold: Best <= Cardinality < ColumnOrder <= TLS << Worst.

#include <iostream>

#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "core/init_column.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.2;
  defaults.queries = 8;
  BenchArgs args =
      ParseBenchArgs(argc, argv, "init_column_selection", defaults);
  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = args.queries;
  config.seed = args.seed;

  std::cout << "== E8 / §7.5.4: initial-column strategies, avg fetched PL "
               "items on OD (10000) (scale="
            << args.scale << ") ==\n\n";

  Workload workload = MakeOpenDataWorkload(config);
  const auto& queries = workload.query_sets[2].second;  // OD (10000)

  SessionOptions session_options;
  session_options.corpus = std::move(workload.corpus);
  session_options.build_index = true;
  session_options.cache_bytes = 0;
  Session session = OpenOrDie(std::move(session_options));
  const InvertedIndex& index = session.index();

  const InitColumnStrategy strategies[] = {
      InitColumnStrategy::kBestCase, InitColumnStrategy::kMinCardinality,
      InitColumnStrategy::kColumnOrder, InitColumnStrategy::kLongestString,
      InitColumnStrategy::kWorstCase};

  ReportTable table({"Strategy", "Avg PLs fetched", "Avg PL items",
                     "Items vs Best"});
  double best_avg = 0.0;
  for (InitColumnStrategy strategy : strategies) {
    double total_items = 0.0;
    double total_lists = 0.0;
    for (const QueryCase& qc : queries) {
      size_t pos = SelectInitColumn(qc.query, qc.key_columns, strategy,
                                    &index);
      total_items += static_cast<double>(CountPlItemsForColumn(
          qc.query, qc.key_columns[pos], index));
      total_lists += static_cast<double>(CountPostingListsForColumn(
          qc.query, qc.key_columns[pos], index));
    }
    double avg_items = total_items / static_cast<double>(queries.size());
    double avg_lists = total_lists / static_cast<double>(queries.size());
    if (strategy == InitColumnStrategy::kBestCase) best_avg = avg_items;
    table.AddRow({std::string(InitColumnStrategyName(strategy)),
                  FormatDouble(avg_lists, 0), FormatDouble(avg_items, 0),
                  best_avg > 0 ? FormatDouble(avg_items / best_avg, 2) + "x"
                               : "-"});
  }
  table.Print(std::cout);
  std::cout << "\nShape check (paper: 83 / 179 / 202 / 248 / 728): the "
               "cardinality heuristic lands close to Best and far below "
               "Worst because PL lengths are power-law distributed.\n";
  return 0;
}
