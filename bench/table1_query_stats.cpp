// E1 — Table 1: statistics of the query-table sets. The paper reports, per
// set, the number of tables, the average cardinality of the chosen query
// column, and the average joinability of the best discovered table. This
// harness prints the same columns for our synthetic analogues.
//
// Paper shape to hold: cardinality and joinability climb together through
// each ladder (WT(10) < WT(100) < WT(1000); OD(100) < OD(1000) < OD(10000)),
// School and Kaggle are the high-cardinality outliers.

#include <iostream>

#include "bench_util/report.h"
#include "bench_util/runner.h"
#include "workload/scenarios.h"

using namespace mate;  // NOLINT: bench brevity

namespace {

void ReportWorkload(Workload workload, int k, ReportTable* table) {
  SessionOptions session_options;
  session_options.corpus = std::move(workload.corpus);
  session_options.build_index = true;
  session_options.cache_bytes = 0;
  Session session = OpenOrDie(std::move(session_options));
  for (const auto& [name, queries] : workload.query_sets) {
    double total_cardinality = 0.0;
    for (const QueryCase& qc : queries) {
      // The paper's "cardinality": distinct values of the (init) query
      // column.
      total_cardinality += static_cast<double>(
          qc.query.ColumnCardinality(qc.key_columns[0]));
    }
    QuerySetMetrics metrics = RunOrDie(
        RunSystem(SystemKind::kMate, session, nullptr, queries, k, name));
    table->AddRow({name, std::to_string(queries.size()),
                   workload.corpus_name,
                   FormatDouble(total_cardinality /
                                    static_cast<double>(queries.size()),
                                0),
                   FormatDouble(metrics.avg_top1_joinability, 0)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs defaults;
  defaults.scale = 0.25;
  defaults.queries = 5;
  BenchArgs args = ParseBenchArgs(argc, argv, "table1_query_stats", defaults);
  WorkloadConfig config;
  config.scale = args.scale;
  config.queries_per_set = args.queries;
  config.seed = args.seed;

  std::cout << "== E1 / Table 1: input query tables (scale=" << args.scale
            << ", seed=" << args.seed << ") ==\n"
            << "Paper (full scale): WT 3/16/151, OD 15/263/2455, Kaggle "
               "34400, School 3100 avg cardinality;\n"
            << "joinability 4/52/99, 40/1434/8187, 2318, 15130.\n\n";

  ReportTable table({"Query set", "# tables", "Corpus", "Avg cardinality",
                     "Avg joinability"});
  ReportWorkload(MakeWebTablesWorkload(config), args.k, &table);
  ReportWorkload(MakeOpenDataWorkload(config), args.k, &table);
  ReportWorkload(MakeSchoolWorkload(config), args.k, &table);
  ReportWorkload(MakeKaggleWorkload(config), args.k, &table);
  table.Print(std::cout);
  std::cout << "\nShape check: cardinality and joinability must climb within "
               "each WT/OD ladder, with School/Kaggle largest.\n";
  return 0;
}
