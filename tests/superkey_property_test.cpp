// Property tests of the super-key contract (§6.3 lemma: no false negatives)
// for every hash family at every hash size, plus a relative filtering-power
// check that reproduces the paper's §6.4 analysis qualitatively.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "hash/hash_registry.h"
#include "hash/xash.h"
#include "util/rng.h"
#include "workload/vocabulary.h"

namespace mate {
namespace {

using FamilyBits = std::tuple<HashFamily, size_t>;

class SuperKeyPropertyTest : public testing::TestWithParam<FamilyBits> {
 protected:
  std::unique_ptr<RowHashFunction> MakeHash() const {
    auto [family, bits] = GetParam();
    return MakeRowHash(family, bits, nullptr);
  }
};

TEST_P(SuperKeyPropertyTest, NoFalseNegativesOnRandomRows) {
  std::unique_ptr<RowHashFunction> hash = MakeHash();
  ASSERT_NE(hash, nullptr);
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    // A random "row" of 2-10 values.
    size_t row_width = 2 + rng.Uniform(9);
    std::vector<std::string> row;
    for (size_t i = 0; i < row_width; ++i) {
      row.push_back(GenerateWord(&rng, 1, 14));
    }
    BitVector super_key = hash->MakeSuperKey(row);

    // Every subset of the row's values must be masked (the lemma's claim
    // for any composite key contained in the row).
    for (int s = 0; s < 8; ++s) {
      std::vector<std::string> subset;
      for (const std::string& v : row) {
        if (rng.Bernoulli(0.5)) subset.push_back(v);
      }
      BitVector subset_key = hash->MakeSuperKey(subset);
      EXPECT_TRUE(subset_key.IsSubsetOf(super_key))
          << hash->Name() << ": subset key not masked";
    }

    // And each individual signature as well.
    for (const std::string& v : row) {
      EXPECT_TRUE(hash->HashValue(v).IsSubsetOf(super_key));
    }
  }
}

TEST_P(SuperKeyPropertyTest, SignaturesAreStateless) {
  // Hashing a value must not depend on what was hashed before (otherwise
  // the offline/online signatures would diverge and break the lemma).
  std::unique_ptr<RowHashFunction> hash = MakeHash();
  BitVector first = hash->HashValue("stateless");
  (void)hash->MakeSuperKey({"a", "b", "c", "d"});
  BitVector second = hash->HashValue("stateless");
  EXPECT_EQ(first, second);
}

TEST_P(SuperKeyPropertyTest, SignatureWidthMatches) {
  auto [family, bits] = GetParam();
  std::unique_ptr<RowHashFunction> hash = MakeHash();
  EXPECT_EQ(hash->hash_bits(), bits);
  EXPECT_EQ(hash->HashValue("w").num_bits(), bits);
}

TEST_P(SuperKeyPropertyTest, OrAggregationIsOrderIndependent) {
  // §5.1: the super key is order-independent (bitwise OR commutes).
  std::unique_ptr<RowHashFunction> hash = MakeHash();
  std::vector<std::string> row = {"timestamp", "berlin", "42.5", "pm10"};
  std::vector<std::string> reversed(row.rbegin(), row.rend());
  EXPECT_EQ(hash->MakeSuperKey(row), hash->MakeSuperKey(reversed));
}

std::string ParamName(const testing::TestParamInfo<FamilyBits>& info) {
  auto [family, bits] = info.param;
  return std::string(HashFamilyName(family)) + "_" + std::to_string(bits);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAndSizes, SuperKeyPropertyTest,
    testing::Combine(testing::ValuesIn(AllHashFamilies()),
                     testing::Values(size_t{128}, size_t{256}, size_t{512})),
    ParamName);

TEST(SuperKeyFilteringPowerTest, XashMasksFewerRandomKeysThanDigests) {
  // §6.4/§7.3 qualitative claim: digest-style super keys (~50% ones per
  // value) mask nearly every probe, while XASH's sparse segmented bits
  // reject most random composite keys.
  Rng rng(77);
  auto xash = MakeRowHash(HashFamily::kXash, 128, nullptr);
  auto md5 = MakeRowHash(HashFamily::kMd5, 128, nullptr);

  int xash_fp = 0, md5_fp = 0;
  const int kTrials = 400;
  for (int i = 0; i < kTrials; ++i) {
    std::vector<std::string> row;
    for (int v = 0; v < 5; ++v) row.push_back(GenerateWord(&rng, 2, 12));
    std::vector<std::string> probe = {GenerateWord(&rng, 2, 12),
                                      GenerateWord(&rng, 2, 12)};
    if (xash->MakeSuperKey(probe).IsSubsetOf(xash->MakeSuperKey(row))) {
      ++xash_fp;
    }
    if (md5->MakeSuperKey(probe).IsSubsetOf(md5->MakeSuperKey(row))) {
      ++md5_fp;
    }
  }
  EXPECT_LT(xash_fp, md5_fp);
  EXPECT_LT(xash_fp, kTrials / 10);  // XASH rejects the vast majority
}

TEST(SuperKeyFilteringPowerTest, RotationKillsTheRandomMatchPattern) {
  // §5.3.5's "random match": a probe value partially masked by several
  // different row values (one contributes the rare-character bits, another
  // the length bit). Constructed instance: probe "qz" (len 2) against the
  // row {"aqa", "aaz", "bb"} — "aqa" covers the q bit, "aaz" the z bit,
  // "bb" the length-2 bit. Without rotation this is a false positive; the
  // rotation (by each value's own length) breaks the alignment.
  XashOptions with_opts;
  with_opts.hash_bits = 128;
  XashOptions without_opts = with_opts;
  without_opts.use_rotation = false;
  Xash with_rot(with_opts), without_rot(without_opts);

  std::vector<std::string> row = {"aqa", "aaz", "bb"};
  BitVector probe_without = without_rot.HashValue("qz");
  BitVector probe_with = with_rot.HashValue("qz");
  EXPECT_TRUE(probe_without.IsSubsetOf(without_rot.MakeSuperKey(row)))
      << "the constructed random match should fool the unrotated filter";
  EXPECT_FALSE(probe_with.IsSubsetOf(with_rot.MakeSuperKey(row)))
      << "rotation should break the cross-value alignment";
}

TEST(SuperKeyFilteringPowerTest, RotationDoesNotHurtOnRandomData) {
  // On independent random words rotation is roughly FP-neutral; allow a
  // small statistical slack in either direction.
  Rng rng(88);
  XashOptions with_opts;
  with_opts.hash_bits = 128;
  XashOptions without_opts = with_opts;
  without_opts.use_rotation = false;
  Xash with_rot(with_opts), without_rot(without_opts);

  int fp_with = 0, fp_without = 0;
  const int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    std::vector<std::string> row;
    for (int v = 0; v < 6; ++v) row.push_back(GenerateWord(&rng, 2, 12));
    std::vector<std::string> probe = {GenerateWord(&rng, 2, 12),
                                      GenerateWord(&rng, 2, 12)};
    if (with_rot.MakeSuperKey(probe).IsSubsetOf(with_rot.MakeSuperKey(row))) {
      ++fp_with;
    }
    if (without_rot.MakeSuperKey(probe).IsSubsetOf(
            without_rot.MakeSuperKey(row))) {
      ++fp_without;
    }
  }
  EXPECT_LE(fp_with, fp_without + kTrials / 100);
}

}  // namespace
}  // namespace mate
