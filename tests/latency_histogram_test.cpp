#include "util/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/math_util.h"
#include "util/rng.h"

namespace mate {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(0.999), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(LatencyHistogramTest, SmallValuesMatchPercentileSortedExactly) {
  // Values below kUnitBuckets are bucketed exactly, so every percentile
  // must agree with the nearest-rank reference on the raw samples.
  const std::vector<uint64_t> samples = {0, 1, 1, 2, 3, 5, 8,
                                         13, 21, 31, 31, 30};
  LatencyHistogram h;
  std::vector<double> sorted;
  for (uint64_t v : samples) {
    h.Record(v);
    sorted.push_back(static_cast<double>(v));
  }
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.Percentile(p),
              static_cast<uint64_t>(PercentileSorted(sorted, p)))
        << "p=" << p;
  }
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
}

TEST(LatencyHistogramTest, LargeValuesOverReportByAtMostOneSubBucket) {
  // Above the exact range the reported percentile is the bucket's upper
  // bound: >= the true sample, and within one sub-bucket width (1/16
  // relative) of it.
  Rng rng(7);
  std::vector<double> sorted;
  LatencyHistogram h;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = 32 + rng.NextUint64() % 1000000;
    h.Record(v);
    sorted.push_back(static_cast<double>(v));
  }
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = PercentileSorted(sorted, p);
    const double reported = static_cast<double>(h.Percentile(p));
    EXPECT_GE(reported, exact) << "p=" << p;
    EXPECT_LE(reported, exact * (1.0 + 1.0 / 16.0) + 1.0) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, PercentileNeverExceedsMax) {
  LatencyHistogram h;
  h.Record(86);  // bucket upper bound would be 87
  EXPECT_EQ(h.Percentile(0.5), 86u);
  EXPECT_EQ(h.Percentile(1.0), 86u);
  EXPECT_EQ(h.max(), 86u);
}

TEST(LatencyHistogramTest, MergeIsLossless) {
  // Per-connection histograms merged after a run must be indistinguishable
  // from recording every sample into one histogram.
  Rng rng(11);
  LatencyHistogram all, a, b;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.NextUint64() % 100000;
    all.Record(v);
    (i % 2 == 0 ? a : b).Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.Mean(), all.Mean());
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.Percentile(p), all.Percentile(p)) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, MinMaxMeanTrackRawValues) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(1000);
  h.Record(100);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), (10.0 + 1000.0 + 100.0) / 3.0);
}

TEST(LatencyHistogramTest, HugeValuesDoNotOverflowBuckets) {
  // The top octave covers the full uint64 range; recording extremes must
  // neither crash nor corrupt neighboring buckets.
  LatencyHistogram h;
  const uint64_t huge = std::numeric_limits<uint64_t>::max();
  h.Record(huge);
  h.Record(huge - 1);
  h.Record(1);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), huge);
  EXPECT_EQ(h.Percentile(0.01), 1u);
  EXPECT_EQ(h.Percentile(1.0), huge);
}

TEST(LatencyHistogramTest, ToStringCarriesTheServingStatsShape) {
  LatencyHistogram h;
  h.Record(5);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
  EXPECT_NE(s.find("max=5"), std::string::npos);
}

TEST(LatencyHistogramTest, CountAtOrBelowIsTheCumulativeBucketCount) {
  LatencyHistogram h;
  EXPECT_EQ(h.CountAtOrBelow(0), 0u);
  EXPECT_EQ(h.CountAtOrBelow(1u << 30), 0u);
  for (uint64_t v : {0, 1, 5, 31, 100}) h.Record(v);
  // Values < 32 live in exact buckets, so their thresholds are sharp.
  EXPECT_EQ(h.CountAtOrBelow(0), 1u);
  EXPECT_EQ(h.CountAtOrBelow(1), 2u);
  EXPECT_EQ(h.CountAtOrBelow(4), 2u);
  EXPECT_EQ(h.CountAtOrBelow(5), 3u);
  EXPECT_EQ(h.CountAtOrBelow(31), 4u);
  // 100's bucket upper bound is >= 100 and at most 1/16 above it.
  EXPECT_EQ(h.CountAtOrBelow(99), 4u);
  EXPECT_EQ(h.CountAtOrBelow(110), 5u);
  // Monotone, and the top threshold covers everything.
  uint64_t prev = 0;
  for (uint64_t t = 0; t < 256; ++t) {
    const uint64_t c = h.CountAtOrBelow(t);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_EQ(h.CountAtOrBelow(std::numeric_limits<uint64_t>::max()),
            h.count());
}

TEST(LatencyHistogramTest, SumIsExactAndMerges) {
  LatencyHistogram a;
  EXPECT_DOUBLE_EQ(a.Sum(), 0.0);
  for (uint64_t v : {0, 1, 5, 31, 100, 1000000}) a.Record(v);
  EXPECT_DOUBLE_EQ(a.Sum(), 1000137.0);
  LatencyHistogram b;
  b.Record(63);
  b.Merge(a);
  EXPECT_DOUBLE_EQ(b.Sum(), 1000200.0);
}

}  // namespace
}  // namespace mate
