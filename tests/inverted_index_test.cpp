#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "util/string_util.h"

namespace mate {
namespace {

Corpus MakeFigure1Corpus() {
  Corpus corpus;
  Table t1("T1");
  t1.AddColumn("Vorname");
  t1.AddColumn("Nachname");
  t1.AddColumn("Land");
  t1.AddColumn("Besetzung");
  (void)t1.AppendRow({"Helmut", "Newton", "Germany", "Photographer"});
  (void)t1.AppendRow({"Muhammad", "Lee", "US", "Dancer"});
  (void)t1.AppendRow({"Ansel", "Adams", "UK", "Dancer"});
  (void)t1.AppendRow({"Ansel", "Adams", "US", "Photographer"});
  (void)t1.AppendRow({"Muhammad", "Ali", "US", "Boxer"});
  (void)t1.AppendRow({"Muhammad", "Lee", "Germany", "Birder"});
  (void)t1.AppendRow({"Gretchen", "Lee", "Germany", "Artist"});
  (void)t1.AppendRow({"Adam", "Sandler", "US", "Actor"});
  corpus.AddTable(std::move(t1));

  Table t2("T2");
  t2.AddColumn("City");
  t2.AddColumn("Country");
  (void)t2.AppendRow({"Berlin", "Germany"});
  (void)t2.AppendRow({"Austin", "US"});
  corpus.AddTable(std::move(t2));
  return corpus;
}

std::unique_ptr<InvertedIndex> BuildDefault(const Corpus& corpus) {
  IndexBuildOptions options;
  auto index = BuildIndex(corpus, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(*index);
}

TEST(InvertedIndexTest, LookupFindsAllOccurrences) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = BuildDefault(corpus);
  // "muhammad" appears in rows 1, 4, 5 of T1's first column (Example 2).
  const PostingList* pl = index->Lookup("muhammad");
  ASSERT_NE(pl, nullptr);
  ASSERT_EQ(pl->size(), 3u);
  EXPECT_EQ((*pl)[0], (PostingEntry{0, 0, 1}));
  EXPECT_EQ((*pl)[1], (PostingEntry{0, 0, 4}));
  EXPECT_EQ((*pl)[2], (PostingEntry{0, 0, 5}));
}

TEST(InvertedIndexTest, LookupSpansTables) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = BuildDefault(corpus);
  const PostingList* pl = index->Lookup("germany");
  ASSERT_NE(pl, nullptr);
  EXPECT_EQ(pl->size(), 4u);  // 3 in T1, 1 in T2
  EXPECT_EQ(pl->back().table_id, 1u);
}

TEST(InvertedIndexTest, LookupIsNormalizedOnly) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = BuildDefault(corpus);
  EXPECT_NE(index->Lookup("us"), nullptr);
  // The index stores normalized values; raw-case probes miss by contract.
  EXPECT_EQ(index->Lookup("US"), nullptr);
  EXPECT_EQ(index->Lookup("never-there"), nullptr);
}

TEST(InvertedIndexTest, PostingEntriesCountEqualsLiveCells) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = BuildDefault(corpus);
  EXPECT_EQ(index->NumPostingEntries(), 8u * 4 + 2u * 2);
}

TEST(InvertedIndexTest, SuperKeysMaskTheirRowValues) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = BuildDefault(corpus);
  const Table& t1 = corpus.table(0);
  for (RowId r = 0; r < t1.NumRows(); ++r) {
    for (ColumnId c = 0; c < t1.NumColumns(); ++c) {
      BitVector sig =
          index->hash().HashValue(NormalizeValue(t1.cell(r, c)));
      EXPECT_TRUE(index->superkeys().Covers(0, r, sig))
          << "row " << r << " col " << c;
    }
  }
}

TEST(InvertedIndexTest, SuperKeyDistinguishesRows) {
  // Example 3's spirit: the composite key of row 1 should generally not be
  // masked by unrelated rows' super keys.
  Corpus corpus = MakeFigure1Corpus();
  auto index = BuildDefault(corpus);
  BitVector key = index->hash().MakeSuperKey({"muhammad", "lee", "us"});
  EXPECT_TRUE(index->superkeys().Covers(0, 1, key));   // the true row
  EXPECT_FALSE(index->superkeys().Covers(0, 7, key));  // adam sandler row
  EXPECT_FALSE(index->superkeys().Covers(1, 0, key));  // berlin row
}

TEST(InvertedIndexTest, BuildReportCountsMatch) {
  Corpus corpus = MakeFigure1Corpus();
  IndexBuildOptions options;
  IndexBuildReport report;
  auto index = BuildIndexWithReport(corpus, options, &report);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(report.posting_entries, (*index)->NumPostingEntries());
  EXPECT_EQ(report.superkey_bytes, (8 + 2) * 16u);  // 128-bit keys per row
  EXPECT_EQ(report.superkey_bytes_per_cell_layout,
            report.posting_entries * 16u);
  EXPECT_GT(report.corpus_stats.num_unique_values, 0u);
  EXPECT_GE(report.build_seconds, 0.0);
}

TEST(InvertedIndexTest, BuildRejectsBadWidth) {
  Corpus corpus = MakeFigure1Corpus();
  IndexBuildOptions options;
  options.hash_bits = 100;
  EXPECT_FALSE(BuildIndex(corpus, options).ok());
  options.hash_bits = 1024;
  EXPECT_FALSE(BuildIndex(corpus, options).ok());
}

TEST(InvertedIndexTest, BuildWithEveryHashFamily) {
  Corpus corpus = MakeFigure1Corpus();
  for (HashFamily family : AllHashFamilies()) {
    IndexBuildOptions options;
    options.hash_family = family;
    auto index = BuildIndex(corpus, options);
    ASSERT_TRUE(index.ok()) << HashFamilyName(family);
    EXPECT_EQ((*index)->hash().Name(), HashFamilyName(family));
  }
}

TEST(InvertedIndexTest, ResetHashRekeysSuperKeysOnly) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = BuildDefault(corpus);
  size_t postings_before = index->NumPostingEntries();

  ASSERT_TRUE(index
                  ->ResetHash(corpus, MakeRowHash(HashFamily::kBloom, 256,
                                                  nullptr))
                  .ok());
  EXPECT_EQ(index->NumPostingEntries(), postings_before);
  EXPECT_EQ(index->hash_bits(), 256u);
  EXPECT_EQ(index->hash().Name(), "BF");
  // Re-keyed super keys still satisfy the masking contract.
  BitVector sig = index->hash().HashValue("muhammad");
  EXPECT_TRUE(index->superkeys().Covers(0, 1, sig));
}

TEST(InvertedIndexTest, ParallelBuildIsBitIdentical) {
  // The threaded build must produce exactly the serial index: identical
  // postings, dictionary ids, and super keys.
  Corpus corpus = MakeFigure1Corpus();
  for (int extra = 0; extra < 40; ++extra) {
    Table t("bulk_" + std::to_string(extra));
    t.AddColumn("a");
    t.AddColumn("b");
    (void)t.AppendRow({"val" + std::to_string(extra), "x"});
    (void)t.AppendRow({"val" + std::to_string(extra + 1), "y"});
    corpus.AddTable(std::move(t));
  }
  IndexBuildOptions serial_opts;
  IndexBuildOptions parallel_opts;
  parallel_opts.num_threads = 4;
  auto serial = BuildIndex(corpus, serial_opts);
  auto parallel = BuildIndex(corpus, parallel_opts);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ((*serial)->NumPostingEntries(), (*parallel)->NumPostingEntries());
  EXPECT_EQ((*serial)->dictionary().size(), (*parallel)->dictionary().size());
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    for (RowId r = 0; r < corpus.table(t).NumRows(); ++r) {
      ASSERT_EQ((*serial)->superkeys().Get(t, r),
                (*parallel)->superkeys().Get(t, r))
          << "t=" << t << " r=" << r;
    }
  }
  (*serial)->ForEachPostingList([&](ValueId id, const PostingList& list) {
    const PostingList* other =
        (*parallel)->Lookup((*serial)->dictionary().ValueOf(id));
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(list, *other);
  });
}

TEST(InvertedIndexTest, ParallelResetHashMatchesSerial) {
  Corpus corpus = MakeFigure1Corpus();
  auto a = BuildDefault(corpus);
  auto b = BuildDefault(corpus);
  ASSERT_TRUE(
      a->ResetHash(corpus, MakeRowHash(HashFamily::kBloom, 256, nullptr), 1)
          .ok());
  ASSERT_TRUE(
      b->ResetHash(corpus, MakeRowHash(HashFamily::kBloom, 256, nullptr), 8)
          .ok());
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    for (RowId r = 0; r < corpus.table(t).NumRows(); ++r) {
      EXPECT_EQ(a->superkeys().Get(t, r), b->superkeys().Get(t, r));
    }
  }
}

TEST(InvertedIndexTest, MemoryBytesIsConsistent) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = BuildDefault(corpus);
  EXPECT_EQ(index->MemoryBytes(),
            index->PostingBytes() + index->dictionary().MemoryBytes() +
                index->SuperKeyBytes());
}

}  // namespace
}  // namespace mate
