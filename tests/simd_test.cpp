// Differential coverage of the hot-path kernel layer (util/simd.h): every
// dispatched level must compute bit-identical results to the always-compiled
// scalar reference — kernel by kernel over randomized word arrays, through
// BitVector's routed operations across widths 64-512 (random tails
// included), and end to end through Session::Discover across shard x thread
// shapes. On hosts without x86 SIMD the dispatched table degrades to the
// scalar one and the comparisons become (trivially passing) self-checks, so
// the suite runs everywhere, sanitizers included.

#include "util/simd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.h"
#include "util/bitvector.h"
#include "util/rng.h"

namespace mate {
namespace {

using simd::KernelLevel;
using simd::KernelTable;

// Restores the dispatch state a test found: the process is only ever in
// "pinned scalar" or "best detected" state, and ActiveLevel() tells which.
class ScopedDispatch {
 public:
  ScopedDispatch() : was_scalar_(simd::ActiveLevel() == KernelLevel::kScalar) {}
  ~ScopedDispatch() { simd::ForceScalar(was_scalar_); }

 private:
  bool was_scalar_;
};

std::vector<uint64_t> RandomWords(Rng* rng, size_t n, int style) {
  std::vector<uint64_t> words(n);
  for (size_t w = 0; w < n; ++w) {
    switch (style) {
      case 0:  // dense random
        words[w] = rng->NextUint64();
        break;
      case 1:  // sparse (super-key-like)
        words[w] = rng->NextUint64() & rng->NextUint64() & rng->NextUint64();
        break;
      case 2:  // all ones
        words[w] = ~uint64_t{0};
        break;
      default:  // all zeros
        words[w] = 0;
        break;
    }
  }
  return words;
}

// The pairs the containment kernels care about: (query, row) where row
// sometimes covers the query (row = query | noise) and sometimes misses by
// a single bit — the XASH length-segment short-circuit case.
struct ProbePair {
  std::vector<uint64_t> query;
  std::vector<uint64_t> row;
};

ProbePair RandomProbePair(Rng* rng, size_t n) {
  ProbePair pair;
  pair.query = RandomWords(rng, n, 1);
  pair.row = RandomWords(rng, n, rng->Uniform(4));
  if (rng->Uniform(2) == 0) {
    // Covering row: row |= query, then maybe knock one query bit out.
    for (size_t w = 0; w < n; ++w) pair.row[w] |= pair.query[w];
    if (rng->Uniform(2) == 0 && n > 0) {
      const size_t w = rng->Uniform(n);
      const uint64_t bit = uint64_t{1} << rng->Uniform(64);
      pair.query[w] |= bit;
      pair.row[w] &= ~bit;
    }
  }
  return pair;
}

std::vector<const KernelTable*> TablesUnderTest() {
  return {&simd::TableForLevel(KernelLevel::kSse2),
          &simd::TableForLevel(KernelLevel::kAvx2), &simd::Kernels()};
}

TEST(SimdKernelTest, ScalarTableIsScalar) {
  EXPECT_EQ(simd::ScalarKernels().level, KernelLevel::kScalar);
  EXPECT_STREQ(simd::ScalarKernels().name, "scalar");
  EXPECT_STREQ(simd::LevelName(KernelLevel::kAvx2), "avx2");
}

TEST(SimdKernelTest, ForceScalarPinsAndReleases) {
  ScopedDispatch restore;
  simd::ForceScalar(true);
  EXPECT_EQ(simd::ActiveLevel(), KernelLevel::kScalar);
  simd::ForceScalar(false);
  EXPECT_EQ(simd::ActiveLevel(), simd::DetectLevel());
}

TEST(SimdKernelTest, ContainmentKernelsMatchScalar) {
  const KernelTable& scalar = simd::ScalarKernels();
  Rng rng(101);
  for (const KernelTable* table : TablesUnderTest()) {
    for (int trial = 0; trial < 2000; ++trial) {
      const size_t n = rng.Uniform(9);  // 0..8 words
      const ProbePair pair = RandomProbePair(&rng, n);
      const bool expected =
          scalar.covers(pair.query.data(), pair.row.data(), n);
      EXPECT_EQ(table->covers(pair.query.data(), pair.row.data(), n),
                expected)
          << table->name << " n=" << n;
      EXPECT_EQ(table->and_not_any(pair.query.data(), pair.row.data(), n),
                !expected)
          << table->name << " n=" << n;
    }
  }
}

TEST(SimdKernelTest, CoversBatchMatchesPerRowScalar) {
  const KernelTable& scalar = simd::ScalarKernels();
  Rng rng(202);
  for (const KernelTable* table : TablesUnderTest()) {
    for (size_t words : {1u, 2u, 3u, 4u, 5u, 7u, 8u}) {
      // A slab of 64 rows; half forced to cover the query.
      constexpr size_t kRows = 64;
      const std::vector<uint64_t> query = RandomWords(&rng, words, 1);
      std::vector<uint64_t> slab(kRows * words);
      for (size_t r = 0; r < kRows; ++r) {
        std::vector<uint64_t> row = RandomWords(&rng, words, rng.Uniform(4));
        if (rng.Uniform(2) == 0) {
          for (size_t w = 0; w < words; ++w) row[w] |= query[w];
        }
        for (size_t w = 0; w < words; ++w) slab[r * words + w] = row[w];
      }
      for (size_t count : {size_t{0}, size_t{1}, size_t{5}, size_t{16}}) {
        std::vector<uint32_t> rows(count);
        for (size_t i = 0; i < count; ++i) {
          rows[i] = static_cast<uint32_t>(rng.Uniform(kRows));
        }
        const uint32_t expected = scalar.covers_batch(
            query.data(), slab.data(), rows.data(), words, count);
        EXPECT_EQ(table->covers_batch(query.data(), slab.data(), rows.data(),
                                      words, count),
                  expected)
            << table->name << " words=" << words << " count=" << count;
      }
    }
  }
}

TEST(SimdKernelTest, SweepKernelsMatchScalar) {
  const KernelTable& scalar = simd::ScalarKernels();
  Rng rng(303);
  for (const KernelTable* table : TablesUnderTest()) {
    for (int trial = 0; trial < 1000; ++trial) {
      const size_t n = rng.Uniform(9);
      const std::vector<uint64_t> a = RandomWords(&rng, n, rng.Uniform(4));
      const std::vector<uint64_t> b = RandomWords(&rng, n, rng.Uniform(4));

      std::vector<uint64_t> or_ref = a, or_got = a;
      scalar.or_words(or_ref.data(), b.data(), n);
      table->or_words(or_got.data(), b.data(), n);
      EXPECT_EQ(or_got, or_ref) << table->name << " or n=" << n;

      std::vector<uint64_t> and_ref = a, and_got = a;
      scalar.and_words(and_ref.data(), b.data(), n);
      table->and_words(and_got.data(), b.data(), n);
      EXPECT_EQ(and_got, and_ref) << table->name << " and n=" << n;

      EXPECT_EQ(table->popcount(a.data(), n), scalar.popcount(a.data(), n))
          << table->name << " popcount n=" << n;
      EXPECT_EQ(table->is_zero(a.data(), n), scalar.is_zero(a.data(), n))
          << table->name << " is_zero n=" << n;
    }
  }
}

// BitVector routes through the dispatched kernels; under forced-scalar and
// dispatched modes every operation must agree with a naive bit loop, across
// widths with and without ragged tails.
TEST(SimdBitVectorTest, RoutedOpsMatchNaiveAtEveryWidth) {
  ScopedDispatch restore;
  Rng rng(404);
  for (size_t bits :
       {64u, 100u, 128u, 130u, 192u, 256u, 320u, 448u, 511u, 512u}) {
    for (int trial = 0; trial < 40; ++trial) {
      BitVector a(bits), b(bits);
      for (size_t i = 0; i < bits; ++i) {
        if (rng.Uniform(3) == 0) a.SetBit(i);
        if (rng.Uniform(2) == 0) b.SetBit(i);
      }
      if (trial == 0) {  // edge masks: all-zero a, all-one b
        a.Clear();
        for (size_t i = 0; i < bits; ++i) b.SetBit(i);
      }
      bool naive_subset = true;
      size_t naive_ones = 0;
      bool naive_zero = true;
      for (size_t i = 0; i < bits; ++i) {
        if (a.TestBit(i) && !b.TestBit(i)) naive_subset = false;
        if (a.TestBit(i)) ++naive_ones;
        if (a.TestBit(i)) naive_zero = false;
      }
      for (bool force_scalar : {false, true}) {
        simd::ForceScalar(force_scalar);
        EXPECT_EQ(a.IsSubsetOf(b), naive_subset) << bits;
        EXPECT_EQ(a.CountOnes(), naive_ones) << bits;
        EXPECT_EQ(a.IsZero(), naive_zero) << bits;
        BitVector or_result = a;
        or_result.OrWith(b);
        BitVector and_result = a;
        and_result.AndWith(b);
        for (size_t i = 0; i < bits; ++i) {
          ASSERT_EQ(or_result.TestBit(i), a.TestBit(i) || b.TestBit(i))
              << bits << " bit " << i;
          ASSERT_EQ(and_result.TestBit(i), a.TestBit(i) && b.TestBit(i))
              << bits << " bit " << i;
        }
      }
    }
  }
}

// ---- query-level bit-identity matrix ----------------------------------
// Scalar vs dispatched kernels through the full Session::Discover pipeline,
// across shards {1, 8} x threads {1, 4}: top-k and every work counter must
// be bit-identical — the kernels only change speed, never the answer.

Table MakeMatrixQuery() {
  Table q("q");
  q.AddColumn("first");
  q.AddColumn("second");
  for (int i = 0; i < 10; ++i) {
    (void)q.AppendRow({"k" + std::to_string(i), "v" + std::to_string(i)});
  }
  return q;
}

Corpus MakeMatrixCorpus() {
  Corpus corpus;
  for (size_t t = 0; t < 40; ++t) {
    Table table("t" + std::to_string(t));
    table.AddColumn("a");
    table.AddColumn("b");
    table.AddColumn("c");
    const size_t joinability = 1 + (t % 5);
    for (size_t i = 0; i < joinability; ++i) {
      (void)table.AppendRow({"k" + std::to_string(i), "v" + std::to_string(i),
                             "pad" + std::to_string(t)});
    }
    (void)table.AppendRow({"k0", "v9", "noise"});
    (void)table.AppendRow({"own" + std::to_string(t), "z", "noise"});
    corpus.AddTable(std::move(table));
  }
  return corpus;
}

Session OpenMatrixSession(bool force_scalar, unsigned threads) {
  SessionOptions options;
  options.corpus = MakeMatrixCorpus();
  options.build_index = true;
  options.num_threads = threads;
  options.cache_bytes = 0;  // every run must recompute
  options.force_scalar_kernels = force_scalar;
  auto session = Session::Open(std::move(options));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(*session);
}

void ExpectIdentical(const DiscoveryResult& a, const DiscoveryResult& b,
                     const std::string& label) {
  ASSERT_EQ(a.top_k.size(), b.top_k.size()) << label;
  for (size_t i = 0; i < a.top_k.size(); ++i) {
    EXPECT_EQ(a.top_k[i].table_id, b.top_k[i].table_id) << label;
    EXPECT_EQ(a.top_k[i].joinability, b.top_k[i].joinability) << label;
    EXPECT_EQ(a.top_k[i].best_mapping, b.top_k[i].best_mapping) << label;
  }
  EXPECT_EQ(a.stats.pl_items_fetched, b.stats.pl_items_fetched) << label;
  EXPECT_EQ(a.stats.candidate_tables, b.stats.candidate_tables) << label;
  EXPECT_EQ(a.stats.tables_evaluated, b.stats.tables_evaluated) << label;
  EXPECT_EQ(a.stats.tables_pruned_rule1, b.stats.tables_pruned_rule1)
      << label;
  EXPECT_EQ(a.stats.tables_pruned_rule2, b.stats.tables_pruned_rule2)
      << label;
  EXPECT_EQ(a.stats.rows_checked, b.stats.rows_checked) << label;
  EXPECT_EQ(a.stats.rows_sent_to_verification,
            b.stats.rows_sent_to_verification)
      << label;
  EXPECT_EQ(a.stats.rows_true_positive, b.stats.rows_true_positive) << label;
  EXPECT_EQ(a.stats.value_comparisons, b.stats.value_comparisons) << label;
}

TEST(SimdDiscoverTest, ScalarAndSimdAreBitIdenticalAcrossShapes) {
  ScopedDispatch restore;
  const Table query = MakeMatrixQuery();
  for (unsigned threads : {1u, 4u}) {
    for (size_t shards : {size_t{1}, size_t{8}}) {
      QuerySpec spec;
      spec.table = &query;
      spec.key_columns = {0, 1};
      spec.options.k = 7;
      spec.intra_query_threads = threads;
      spec.intra_query_shards = shards;

      Session scalar_session =
          OpenMatrixSession(/*force_scalar=*/true, threads);
      auto scalar_result = scalar_session.Discover(spec);
      ASSERT_TRUE(scalar_result.ok()) << scalar_result.status().ToString();
      ASSERT_EQ(simd::ActiveLevel(), KernelLevel::kScalar);

      simd::ForceScalar(false);  // dispatched (SIMD where the host has it)
      Session simd_session =
          OpenMatrixSession(/*force_scalar=*/false, threads);
      auto simd_result = simd_session.Discover(spec);
      ASSERT_TRUE(simd_result.ok()) << simd_result.status().ToString();

      ExpectIdentical(*scalar_result, *simd_result,
                      "shards=" + std::to_string(shards) +
                          " threads=" + std::to_string(threads) + " level=" +
                          simd::LevelName(simd::ActiveLevel()));
    }
  }
}

// The row filter off forces the no-probe walk; on exercises the batched
// probe path. Both must agree between scalar and dispatched kernels.
TEST(SimdDiscoverTest, RowFilterOnAndOffAgreeAcrossLevels) {
  ScopedDispatch restore;
  const Table query = MakeMatrixQuery();
  for (bool use_row_filter : {true, false}) {
    QuerySpec spec;
    spec.table = &query;
    spec.key_columns = {0, 1};
    spec.options.k = 5;
    spec.options.use_row_filter = use_row_filter;

    simd::ForceScalar(true);
    Session scalar_session = OpenMatrixSession(/*force_scalar=*/true, 1);
    auto scalar_result = scalar_session.Discover(spec);
    ASSERT_TRUE(scalar_result.ok());

    simd::ForceScalar(false);
    Session simd_session = OpenMatrixSession(/*force_scalar=*/false, 1);
    auto simd_result = simd_session.Discover(spec);
    ASSERT_TRUE(simd_result.ok());

    ExpectIdentical(*scalar_result, *simd_result,
                    std::string("row_filter=") +
                        (use_row_filter ? "on" : "off"));
  }
}

}  // namespace
}  // namespace mate
