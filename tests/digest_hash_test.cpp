// Tests for the "standard hash function" baselines: MD5 (against RFC 1321
// vectors), Murmur3, the City-style hash, and SimHash.

#include <gtest/gtest.h>

#include "hash/city_like.h"
#include "hash/md5.h"
#include "hash/murmur3.h"
#include "hash/simhash.h"

namespace mate {
namespace {

// ---- MD5 ------------------------------------------------------------

TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5("").ToHexString(), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5("a").ToHexString(), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5("abc").ToHexString(), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5("message digest").ToHexString(),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5("abcdefghijklmnopqrstuvwxyz").ToHexString(),
            "c3fcd3d76192e4007dfb496cca67e13b");
}

TEST(Md5Test, PaddingBoundaries) {
  // 55, 56, 63, 64, 65 bytes cross the single/double-block padding edge;
  // the digest must be deterministic and distinct.
  std::vector<std::string> hexes;
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 128u}) {
    std::string input(len, 'x');
    std::string h1 = Md5(input).ToHexString();
    std::string h2 = Md5(input).ToHexString();
    EXPECT_EQ(h1, h2);
    hexes.push_back(h1);
  }
  for (size_t i = 0; i < hexes.size(); ++i) {
    for (size_t j = i + 1; j < hexes.size(); ++j) {
      EXPECT_NE(hexes[i], hexes[j]);
    }
  }
}

TEST(Md5Test, Low64High64CoverDigest) {
  Md5Digest d = Md5("abc");
  uint64_t lo = d.low64();
  uint64_t hi = d.high64();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ((lo >> (8 * i)) & 0xFF, d.bytes[i]);
    EXPECT_EQ((hi >> (8 * i)) & 0xFF, d.bytes[8 + i]);
  }
}

// ---- Murmur3 ----------------------------------------------------------

TEST(Murmur3Test, KnownVectors32) {
  EXPECT_EQ(Murmur3_32("", 0), 0u);
  EXPECT_EQ(Murmur3_32("", 1), 0x514E28B7u);
}

TEST(Murmur3Test, Deterministic) {
  EXPECT_EQ(Murmur3_32("hello", 42), Murmur3_32("hello", 42));
  EXPECT_EQ(Murmur3_128("hello world", 7), Murmur3_128("hello world", 7));
}

TEST(Murmur3Test, SeedChangesOutput) {
  EXPECT_NE(Murmur3_32("hello", 0), Murmur3_32("hello", 1));
  EXPECT_NE(Murmur3_128("hello", 0).first, Murmur3_128("hello", 1).first);
}

TEST(Murmur3Test, TailLengthsAllDiffer) {
  // Exercise every tail-switch case of both variants.
  std::vector<uint32_t> h32;
  std::vector<uint64_t> h128;
  for (size_t len = 0; len <= 17; ++len) {
    std::string s(len, 'a');
    h32.push_back(Murmur3_32(s, 0));
    h128.push_back(Murmur3_128(s, 0).first);
  }
  for (size_t i = 0; i < h32.size(); ++i) {
    for (size_t j = i + 1; j < h32.size(); ++j) {
      EXPECT_NE(h32[i], h32[j]) << i << " vs " << j;
      EXPECT_NE(h128[i], h128[j]) << i << " vs " << j;
    }
  }
}

TEST(Murmur3Test, AvalancheRoughlyHalfBitsFlip) {
  // Flipping one input bit should flip ~64 of 128 output bits.
  std::string a = "the quick brown fox";
  std::string b = a;
  b[0] ^= 1;
  auto [a_lo, a_hi] = Murmur3_128(a, 0);
  auto [b_lo, b_hi] = Murmur3_128(b, 0);
  int flipped = __builtin_popcountll(a_lo ^ b_lo) +
                __builtin_popcountll(a_hi ^ b_hi);
  EXPECT_GT(flipped, 40);
  EXPECT_LT(flipped, 88);
}

// ---- City-like --------------------------------------------------------

TEST(CityLikeTest, DeterministicAndLengthSensitive) {
  EXPECT_EQ(CityLikeHash64("data lake"), CityLikeHash64("data lake"));
  std::vector<uint64_t> hashes;
  for (size_t len = 0; len <= 24; ++len) {
    hashes.push_back(CityLikeHash64(std::string(len, 'k')));
  }
  for (size_t i = 0; i < hashes.size(); ++i) {
    for (size_t j = i + 1; j < hashes.size(); ++j) {
      EXPECT_NE(hashes[i], hashes[j]);
    }
  }
}

TEST(CityLikeTest, LanesAreIndependent) {
  auto [lo, hi] = CityLikeHash128("abcdefgh");
  EXPECT_NE(lo, hi);
  auto [lo2, hi2] = CityLikeHash128("abcdefgi");
  EXPECT_NE(lo, lo2);
  EXPECT_NE(hi, hi2);
}

TEST(CityLikeTest, AvalancheOnOneBitFlip) {
  std::string a = "join discovery";
  std::string b = a;
  b[3] ^= 4;
  int flipped = __builtin_popcountll(CityLikeHash64(a) ^ CityLikeHash64(b));
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

// ---- SimHash ----------------------------------------------------------

TEST(SimHashTest, DeterministicSignature) {
  SimHashRowHash sim(128);
  EXPECT_EQ(sim.HashValue("hello world"), sim.HashValue("hello world"));
}

TEST(SimHashTest, SimilarStringsGetCloseSignatures) {
  SimHashRowHash sim(128);
  BitVector a = sim.HashValue("international business machines");
  BitVector b = sim.HashValue("international business machine");  // 1 char off
  BitVector c = sim.HashValue("zzq9");
  auto hamming = [](const BitVector& x, const BitVector& y) {
    BitVector d = x;
    d.XorWith(y);
    return d.CountOnes();
  };
  EXPECT_LT(hamming(a, b), hamming(a, c));
}

TEST(SimHashTest, RoughlyHalfBitsSet) {
  // The paper's §7.3 point: digest-style hashes average ~50% ones, which is
  // what makes them poor super keys.
  SimHashRowHash sim(256);
  size_t total = 0;
  const char* inputs[] = {"alpha", "beta2024", "gamma delta", "x",
                          "some longer string value"};
  for (const char* s : inputs) total += sim.HashValue(s).CountOnes();
  double avg_fraction = static_cast<double>(total) / (5 * 256.0);
  EXPECT_GT(avg_fraction, 0.30);
  EXPECT_LT(avg_fraction, 0.70);
}

TEST(DigestRowHashTest, RawDigestsFillAboutHalfTheBits) {
  Md5RowHash md5(128);
  MurmurRowHash murmur(128);
  CityRowHash city(128);
  for (const char* s : {"muhammad", "lee", "us", "1997-01-01"}) {
    for (const RowHashFunction* h :
         std::initializer_list<const RowHashFunction*>{&md5, &murmur, &city}) {
      size_t ones = h->HashValue(s).CountOnes();
      EXPECT_GT(ones, 128u / 4) << h->Name() << " " << s;
      EXPECT_LT(ones, 3u * 128 / 4) << h->Name() << " " << s;
    }
  }
}

TEST(DigestRowHashTest, WideningKeepsDeterminism) {
  for (size_t bits : {128u, 256u, 512u}) {
    Md5RowHash md5(bits);
    MurmurRowHash murmur(bits);
    CityRowHash city(bits);
    for (const RowHashFunction* h :
         std::initializer_list<const RowHashFunction*>{&md5, &murmur, &city}) {
      EXPECT_EQ(h->HashValue("value"), h->HashValue("value"))
          << h->Name() << " bits=" << bits;
      EXPECT_EQ(h->HashValue("value").num_bits(), bits);
    }
  }
}

}  // namespace
}  // namespace mate
