#include "storage/table.h"

#include <gtest/gtest.h>

namespace mate {
namespace {

Table MakeFigure1Candidate() {
  // Candidate table T1 from the paper's running example (Figure 1).
  Table t("T1");
  t.AddColumn("Vorname");
  t.AddColumn("Nachname");
  t.AddColumn("Land");
  t.AddColumn("Besetzung");
  (void)t.AppendRow({"Helmut", "Newton", "Germany", "Photographer"});
  (void)t.AppendRow({"Muhammad", "Lee", "US", "Dancer"});
  (void)t.AppendRow({"Ansel", "Adams", "UK", "Dancer"});
  (void)t.AppendRow({"Ansel", "Adams", "US", "Photographer"});
  (void)t.AppendRow({"Muhammad", "Ali", "US", "Boxer"});
  (void)t.AppendRow({"Muhammad", "Lee", "Germany", "Birder"});
  (void)t.AppendRow({"Gretchen", "Lee", "Germany", "Artist"});
  (void)t.AppendRow({"Adam", "Sandler", "US", "Actor"});
  return t;
}

TEST(TableTest, BasicShape) {
  Table t = MakeFigure1Candidate();
  EXPECT_EQ(t.name(), "T1");
  EXPECT_EQ(t.NumColumns(), 4u);
  EXPECT_EQ(t.NumRows(), 8u);
  EXPECT_EQ(t.NumLiveRows(), 8u);
  EXPECT_EQ(t.cell(1, 0), "Muhammad");
  EXPECT_EQ(t.cell(7, 3), "Actor");
}

TEST(TableTest, AppendRowRejectsWrongArity) {
  Table t("x");
  t.AddColumn("a");
  t.AddColumn("b");
  Result<RowId> r = t.AppendRow({"only-one"});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST(TableTest, AddColumnBackfillsEmptyCells) {
  Table t = MakeFigure1Candidate();
  ColumnId c = t.AddColumn("Alter");
  EXPECT_EQ(t.NumColumns(), 5u);
  for (RowId r = 0; r < t.NumRows(); ++r) EXPECT_EQ(t.cell(r, c), "");
}

TEST(TableTest, AddColumnWithCells) {
  Table t("x");
  t.AddColumn("a");
  (void)t.AppendRow({"1"});
  (void)t.AppendRow({"2"});
  ASSERT_TRUE(t.AddColumnWithCells("b", {"x", "y"}).ok());
  EXPECT_EQ(t.cell(1, 1), "y");
  EXPECT_TRUE(t.AddColumnWithCells("c", {"too-few"}).IsInvalidArgument());
}

TEST(TableTest, DropColumnShiftsIds) {
  Table t = MakeFigure1Candidate();
  ASSERT_TRUE(t.DropColumn(1).ok());
  EXPECT_EQ(t.NumColumns(), 3u);
  EXPECT_EQ(t.column_name(1), "Land");
  EXPECT_EQ(t.cell(0, 1), "Germany");
  EXPECT_TRUE(t.DropColumn(99).IsOutOfRange());
}

TEST(TableTest, DeleteRowIsTombstone) {
  Table t = MakeFigure1Candidate();
  ASSERT_TRUE(t.DeleteRow(2).ok());
  EXPECT_EQ(t.NumRows(), 8u);       // ids stay allocated
  EXPECT_EQ(t.NumLiveRows(), 7u);
  EXPECT_TRUE(t.IsRowDeleted(2));
  EXPECT_EQ(t.cell(2, 0), "Ansel");  // cells stay readable (§5.4 deletes)
  EXPECT_TRUE(t.DeleteRow(2).IsAlreadyExists());
  EXPECT_TRUE(t.DeleteRow(100).IsOutOfRange());
}

TEST(TableTest, SetCell) {
  Table t = MakeFigure1Candidate();
  ASSERT_TRUE(t.SetCell(0, 0, "helmut2").ok());
  EXPECT_EQ(t.cell(0, 0), "helmut2");
  EXPECT_TRUE(t.SetCell(100, 0, "x").IsOutOfRange());
  EXPECT_TRUE(t.SetCell(0, 100, "x").IsOutOfRange());
}

TEST(TableTest, FindColumn) {
  Table t = MakeFigure1Candidate();
  EXPECT_EQ(t.FindColumn("Land"), 2u);
  EXPECT_EQ(t.FindColumn("nope"), kInvalidColumnId);
}

TEST(TableTest, RowValues) {
  Table t = MakeFigure1Candidate();
  EXPECT_EQ(t.RowValues(4),
            (std::vector<std::string>{"Muhammad", "Ali", "US", "Boxer"}));
}

TEST(TableTest, ColumnCardinalityIsDistinctNormalized) {
  Table t("x");
  t.AddColumn("a");
  (void)t.AppendRow({"US"});
  (void)t.AppendRow({"us "});   // normalizes to the same value
  (void)t.AppendRow({"Germany"});
  EXPECT_EQ(t.ColumnCardinality(0), 2u);
  ASSERT_TRUE(t.DeleteRow(2).ok());
  EXPECT_EQ(t.ColumnCardinality(0), 1u);  // deleted rows excluded
}

TEST(TableTest, PayloadBytes) {
  Table t("x");
  t.AddColumn("a");
  (void)t.AppendRow({"abcd"});
  (void)t.AppendRow({"ef"});
  EXPECT_EQ(t.PayloadBytes(), 6u);
}

}  // namespace
}  // namespace mate
