#include "util/bitvector.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mate {
namespace {

TEST(BitVectorTest, StartsZeroed) {
  BitVector v(128);
  EXPECT_EQ(v.num_bits(), 128u);
  EXPECT_EQ(v.num_words(), 2u);
  EXPECT_TRUE(v.IsZero());
  EXPECT_EQ(v.CountOnes(), 0u);
}

TEST(BitVectorTest, SetTestClearBit) {
  BitVector v(128);
  v.SetBit(0);
  v.SetBit(63);
  v.SetBit(64);
  v.SetBit(127);
  EXPECT_TRUE(v.TestBit(0));
  EXPECT_TRUE(v.TestBit(63));
  EXPECT_TRUE(v.TestBit(64));
  EXPECT_TRUE(v.TestBit(127));
  EXPECT_FALSE(v.TestBit(1));
  EXPECT_EQ(v.CountOnes(), 4u);
  v.ClearBit(63);
  EXPECT_FALSE(v.TestBit(63));
  EXPECT_EQ(v.CountOnes(), 3u);
}

TEST(BitVectorTest, ResizeClearsContent) {
  BitVector v(64);
  v.SetBit(5);
  v.Resize(128);
  EXPECT_TRUE(v.IsZero());
  EXPECT_EQ(v.num_bits(), 128u);
}

TEST(BitVectorTest, OrAndXor) {
  BitVector a(128), b(128);
  a.SetBit(1);
  a.SetBit(70);
  b.SetBit(2);
  b.SetBit(70);
  BitVector or_ab = a;
  or_ab.OrWith(b);
  EXPECT_TRUE(or_ab.TestBit(1));
  EXPECT_TRUE(or_ab.TestBit(2));
  EXPECT_TRUE(or_ab.TestBit(70));
  EXPECT_EQ(or_ab.CountOnes(), 3u);

  BitVector and_ab = a;
  and_ab.AndWith(b);
  EXPECT_EQ(and_ab.CountOnes(), 1u);
  EXPECT_TRUE(and_ab.TestBit(70));

  BitVector xor_ab = a;
  xor_ab.XorWith(b);
  EXPECT_EQ(xor_ab.CountOnes(), 2u);
  EXPECT_FALSE(xor_ab.TestBit(70));
}

TEST(BitVectorTest, SubsetSemantics) {
  BitVector small(128), big(128);
  small.SetBit(3);
  small.SetBit(100);
  big.SetBit(3);
  big.SetBit(100);
  big.SetBit(50);
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  BitVector empty(128);
  EXPECT_TRUE(empty.IsSubsetOf(small));
  EXPECT_FALSE(small.IsSubsetOf(empty));
}

TEST(BitVectorTest, SubsetIsTheSuperKeyMaskEquation) {
  // (q | sk) == sk  <=>  q.IsSubsetOf(sk): the §6.3 membership test.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    BitVector q(128), sk(128);
    for (int i = 0; i < 10; ++i) sk.SetBit(rng.Uniform(128));
    for (int i = 0; i < 4; ++i) q.SetBit(rng.Uniform(128));
    BitVector or_result = q;
    or_result.OrWith(sk);
    EXPECT_EQ(or_result == sk, q.IsSubsetOf(sk));
  }
}

TEST(BitVectorTest, RotateMatchesPaperExample) {
  // §5.3.5: a 3-bit rotation of '01100101' equals '00101011'.
  auto v = BitVector::FromBinaryString("01100101");
  ASSERT_TRUE(v.ok());
  v->RotateRangeLeft(0, 8, 3);
  EXPECT_EQ(v->ToBinaryString(), "00101011");
}

TEST(BitVectorTest, RotateFullCycleIsIdentity) {
  Rng rng(11);
  BitVector v(192);
  for (int i = 0; i < 30; ++i) v.SetBit(rng.Uniform(192));
  BitVector original = v;
  v.RotateRangeLeft(17, 111, 111);  // k == len
  EXPECT_EQ(v, original);
  v.RotateRangeLeft(17, 111, 0);  // k == 0
  EXPECT_EQ(v, original);
}

TEST(BitVectorTest, RotateOnlyTouchesRange) {
  BitVector v(128);
  v.SetBit(0);    // below range
  v.SetBit(20);   // inside
  v.SetBit(120);  // above range
  v.RotateRangeLeft(17, 100, 3);
  EXPECT_TRUE(v.TestBit(0));
  EXPECT_TRUE(v.TestBit(120));
  EXPECT_TRUE(v.TestBit(17));  // 20 moved down by 3
  EXPECT_FALSE(v.TestBit(20));
}

TEST(BitVectorTest, RotateComposes) {
  // Rotating by a then b equals rotating by (a+b) mod len.
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    BitVector v(256);
    for (int i = 0; i < 25; ++i) v.SetBit(rng.Uniform(256));
    BitVector once = v;
    size_t a = rng.Uniform(300);
    size_t b = rng.Uniform(300);
    BitVector twice = v;
    twice.RotateRangeLeft(30, 200, a);
    twice.RotateRangeLeft(30, 200, b);
    once.RotateRangeLeft(30, 200, (a + b) % 200);
    EXPECT_EQ(twice, once);
  }
}

TEST(BitVectorTest, RotatePreservesPopcount) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    BitVector v(512);
    for (int i = 0; i < 40; ++i) v.SetBit(rng.Uniform(512));
    size_t ones = v.CountOnes();
    v.RotateRangeLeft(31, 481, rng.Uniform(481));
    EXPECT_EQ(v.CountOnes(), ones);
  }
}

TEST(BitVectorTest, BinaryStringRoundTrip) {
  Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    BitVector v(128);
    for (int i = 0; i < 12; ++i) v.SetBit(rng.Uniform(128));
    auto parsed = BitVector::FromBinaryString(v.ToBinaryString());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, v);
  }
}

TEST(BitVectorTest, FromBinaryStringRejectsJunk) {
  EXPECT_FALSE(BitVector::FromBinaryString("01x0").ok());
  EXPECT_FALSE(BitVector::FromBinaryString(std::string(600, '0')).ok());
}

TEST(BitVectorTest, SerializationRoundTrip) {
  Rng rng(23);
  for (size_t bits : {64u, 128u, 256u, 512u}) {
    BitVector v(bits);
    for (int i = 0; i < 20; ++i) v.SetBit(rng.Uniform(bits));
    std::string buffer;
    v.AppendToString(&buffer);
    std::string_view cursor = buffer;
    auto parsed = BitVector::ParseFrom(&cursor);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, v);
    EXPECT_TRUE(cursor.empty());
  }
}

TEST(BitVectorTest, ParseRejectsTruncation) {
  BitVector v(128);
  v.SetBit(5);
  std::string buffer;
  v.AppendToString(&buffer);
  std::string_view cursor = std::string_view(buffer).substr(0, 4);
  EXPECT_FALSE(BitVector::ParseFrom(&cursor).ok());
}

TEST(BitVectorTest, HexString) {
  BitVector v(64);
  v.SetBit(0);
  v.SetBit(4);
  EXPECT_EQ(v.ToHexString(), "0000000000000011");
}

TEST(BitVectorTest, NonWordMultipleWidthKeepsTailZero) {
  BitVector v(100);
  v.SetBit(99);
  EXPECT_EQ(v.CountOnes(), 1u);
  v.set_word(1, ~uint64_t{0});
  // Word 1 covers bits 64..99 once the tail is masked: 36 bits.
  EXPECT_EQ(v.CountOnes(), 36u);
}

}  // namespace
}  // namespace mate
