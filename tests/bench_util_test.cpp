#include <gtest/gtest.h>

#include "bench_util/report.h"
#include "bench_util/runner.h"

namespace mate {
namespace {

TEST(ReportTableTest, AlignsColumns) {
  ReportTable table({"Name", "Value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a much longer name", "12345"});
  std::string rendered = table.ToString();
  // Header present, borders present, all rows rendered.
  EXPECT_NE(rendered.find("| Name"), std::string::npos);
  EXPECT_NE(rendered.find("| a much longer name |"), std::string::npos);
  EXPECT_NE(rendered.find("+--"), std::string::npos);
  // Every line has identical width.
  size_t width = rendered.find('\n');
  size_t pos = 0;
  while (pos < rendered.size()) {
    size_t next = rendered.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(ReportTableTest, ShortRowsPadWithEmptyCells) {
  ReportTable table({"A", "B", "C"});
  table.AddRow({"only-one"});
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("only-one"), std::string::npos);
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(FormatTest, FormatSecondsAdaptiveUnits) {
  EXPECT_EQ(FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(FormatSeconds(0.0025), "2.50ms");
  EXPECT_EQ(FormatSeconds(0.0000005), "0.5us");
}

TEST(FormatTest, FormatBytesAdaptiveUnits) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 << 20), "3.00 MB");
  EXPECT_EQ(FormatBytes(uint64_t{5} << 30), "5.00 GB");
}

TEST(FormatTest, FormatMeanStd) {
  EXPECT_EQ(FormatMeanStd(0.876, 0.251), "0.88 ±0.25");
}

TEST(SystemKindTest, Names) {
  EXPECT_EQ(SystemKindName(SystemKind::kMate), "Mate");
  EXPECT_EQ(SystemKindName(SystemKind::kScr), "SCR");
  EXPECT_EQ(SystemKindName(SystemKind::kMcr), "MCR");
  EXPECT_EQ(SystemKindName(SystemKind::kScrJosie), "SCR Josie");
  EXPECT_EQ(SystemKindName(SystemKind::kMcrJosie), "MCR Josie");
}

TEST(ParseBenchArgsTest, DefaultsAndOverrides) {
  BenchArgs defaults;
  defaults.scale = 0.5;
  defaults.queries = 7;
  {
    char prog[] = "bench";
    char* argv[] = {prog};
    BenchArgs args = ParseBenchArgs(1, argv, "t", defaults);
    EXPECT_DOUBLE_EQ(args.scale, 0.5);
    EXPECT_EQ(args.queries, 7u);
    EXPECT_EQ(args.k, 10);
  }
  {
    char prog[] = "bench";
    char scale[] = "--scale=0.25";
    char seed[] = "--seed=99";
    char queries[] = "--queries=3";
    char k[] = "--k=5";
    char* argv[] = {prog, scale, seed, queries, k};
    BenchArgs args = ParseBenchArgs(5, argv, "t", defaults);
    EXPECT_DOUBLE_EQ(args.scale, 0.25);
    EXPECT_EQ(args.seed, 99u);
    EXPECT_EQ(args.queries, 3u);
    EXPECT_EQ(args.k, 5);
  }
}

}  // namespace
}  // namespace mate
