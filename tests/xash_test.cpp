// XASH behavior tests against the paper's §5.2-§5.3 construction.

#include "hash/xash.h"

#include <gtest/gtest.h>

#include "util/math_util.h"

namespace mate {
namespace {

XashOptions Opts(size_t bits) {
  XashOptions o;
  o.hash_bits = bits;
  return o;
}

TEST(XashLayoutTest, PaperParameters128) {
  Xash xash(Opts(128));
  EXPECT_EQ(xash.beta(), 3u);                  // Eq. 6
  EXPECT_EQ(xash.length_segment_bits(), 17u);  // 128 - 37*3
  EXPECT_EQ(xash.char_region_begin(), 17u);
  EXPECT_EQ(xash.char_region_bits(), 111u);
  EXPECT_EQ(xash.alpha(), 6);  // Eq. 5 at the default 700M uniques
}

TEST(XashLayoutTest, PaperParameters512) {
  Xash xash(Opts(512));
  EXPECT_EQ(xash.beta(), 13u);
  EXPECT_EQ(xash.length_segment_bits(), 31u);  // §5.3.2: |a_l| = 31
}

TEST(XashLayoutTest, AlphaFollowsCorpusUniques) {
  XashOptions o = Opts(128);
  o.min_alpha = 2;  // raw Eq. 5
  o.corpus_unique_values = 8000;  // C(128,2) = 8128 > 8000
  EXPECT_EQ(Xash(o).alpha(), 2);
  o.corpus_unique_values = 1'000'000;
  EXPECT_EQ(Xash(o).alpha(), 4);
}

TEST(XashLayoutTest, AlphaFlooredAtPaperConfiguration) {
  XashOptions o = Opts(128);
  o.corpus_unique_values = 8000;  // Eq. 5 would give 2
  EXPECT_EQ(Xash(o).alpha(), 6);  // floored at the deployed alpha
  o.corpus_unique_values = 400'000'000'000ULL;  // Eq. 5 gives 8
  EXPECT_EQ(Xash(o).alpha(), OptimalOnesCount(128, 400'000'000'000ULL));
  EXPECT_GT(Xash(o).alpha(), 6);
}

TEST(XashTest, AtMostAlphaBitsSet) {
  Xash xash(Opts(128));
  for (const char* s : {"muhammad", "lee", "us", "a", "1997-01-01",
                        "some much longer cell value here"}) {
    size_t ones = xash.HashValue(s).CountOnes();
    EXPECT_LE(ones, static_cast<size_t>(xash.alpha())) << s;
    EXPECT_GE(ones, 1u) << s;
  }
}

TEST(XashTest, Deterministic) {
  Xash xash(Opts(128));
  EXPECT_EQ(xash.HashValue("muhammad"), xash.HashValue("muhammad"));
}

TEST(XashTest, EmptyValueSetsOnlyTheLengthBit) {
  Xash xash(Opts(128));
  BitVector sig = xash.HashValue("");
  EXPECT_EQ(sig.CountOnes(), 1u);
  EXPECT_TRUE(sig.TestBit(0));  // len 0 mod 17 = bit 0 of the length segment
}

TEST(XashTest, LengthBitPosition) {
  Xash xash(Opts(128));
  // "abc" has length 3 -> length-segment bit 3.
  BitVector sig = xash.HashValue("abc");
  EXPECT_TRUE(sig.TestBit(3));
  // Length 17 wraps: bit 0.
  BitVector sig17 = xash.HashValue(std::string(17, 'q'));
  EXPECT_TRUE(sig17.TestBit(0));
  // Length 20 -> bit 3 again.
  BitVector sig20 = xash.HashValue(std::string(20, 'q'));
  EXPECT_TRUE(sig20.TestBit(3));
}

TEST(XashTest, LengthDisambiguatesSharedRareChars) {
  // §5.3.4's example: "boxer" and "birder" share 'b' et al.; their
  // different lengths must make the signatures differ.
  Xash xash(Opts(128));
  EXPECT_NE(xash.HashValue("boxer"), xash.HashValue("birder"));
}

TEST(XashTest, AlphabetIsCaseFolded) {
  // The 37-symbol alphabet folds case (NormalizeChar('U') == 'u'), so "US"
  // and "us" hash identically — consistent with the index normalizing all
  // values to lowercase before hashing.
  Xash xash(Opts(128));
  EXPECT_EQ(xash.HashValue("US"), xash.HashValue("us"));
  // Punctuation falls into the shared bucket: "a-b" and "a.b" collide on
  // characters but "ab" differs in length.
  EXPECT_EQ(xash.HashValue("a-b"), xash.HashValue("a.b"));
  EXPECT_NE(xash.HashValue("a-b"), xash.HashValue("ab"));
}

TEST(XashTest, RareCharacterSelection) {
  // In "ezzz", 'z' is rarest but 'e' most common; alpha-1 >= 2 picks both z
  // and e for a 2-char value... use a value with more distinct chars than
  // alpha-1 and check a common char is NOT encoded when rarer ones exist.
  XashOptions o = Opts(128);
  o.alpha = 3;  // 1 length bit + 2 character bits
  Xash xash(o);
  // "ethanqz": distinct chars e,t,h,a,n,q,z; the two rarest are q and z.
  BitVector sig = xash.HashValue("ethanqz");
  // Undo rotation (length 7) to inspect segments.
  BitVector unrotated = sig;
  unrotated.RotateRangeLeft(xash.char_region_begin(), xash.char_region_bits(),
                            xash.char_region_bits() - 7 % xash.char_region_bits());
  auto segment_has_bit = [&](char c) {
    size_t seg = xash.char_region_begin() +
                 static_cast<size_t>(NormalizeChar(c)) * xash.beta();
    for (size_t b = 0; b < xash.beta(); ++b) {
      if (unrotated.TestBit(seg + b)) return true;
    }
    return false;
  };
  EXPECT_TRUE(segment_has_bit('q'));
  EXPECT_TRUE(segment_has_bit('z'));
  EXPECT_FALSE(segment_has_bit('e'));
  EXPECT_FALSE(segment_has_bit('t'));
}

TEST(XashTest, LocationEncodingFollowsCeilFormula) {
  // Disable rotation so segment offsets are directly inspectable.
  XashOptions o = Opts(128);
  o.use_rotation = false;
  o.alpha = 6;
  Xash xash(o);
  // "muhammad" (len 8): 'u' at 1-based position 2 -> ceil(2*3/8)=1 -> first
  // bit of its segment; 'd' at position 8 -> ceil(3)=3 -> third bit.
  BitVector sig = xash.HashValue("muhammad");
  size_t u_seg = xash.char_region_begin() +
                 static_cast<size_t>(NormalizeChar('u')) * xash.beta();
  size_t d_seg = xash.char_region_begin() +
                 static_cast<size_t>(NormalizeChar('d')) * xash.beta();
  EXPECT_TRUE(sig.TestBit(u_seg + 0));
  EXPECT_TRUE(sig.TestBit(d_seg + 2));
}

TEST(XashTest, RepeatedCharacterUsesAveragePosition) {
  XashOptions o = Opts(128);
  o.use_rotation = false;
  o.alpha = 2;  // length + 1 char
  Xash xash(o);
  // "zaz": 'z' occurs at positions 1 and 3, average 2; len 3 ->
  // ceil(2*3/3) = 2 -> second bit of the z segment.
  BitVector sig = xash.HashValue("zaz");
  size_t z_seg = xash.char_region_begin() +
                 static_cast<size_t>(NormalizeChar('z')) * xash.beta();
  EXPECT_TRUE(sig.TestBit(z_seg + 1));
}

TEST(XashTest, RotationMovesCharacterBitsOnly) {
  XashOptions with = Opts(128);
  XashOptions without = Opts(128);
  without.use_rotation = false;
  Xash xw(with), xo(without);
  BitVector a = xw.HashValue("muhammad");
  BitVector b = xo.HashValue("muhammad");
  // Length bit identical...
  for (size_t i = 0; i < xw.length_segment_bits(); ++i) {
    EXPECT_EQ(a.TestBit(i), b.TestBit(i)) << i;
  }
  // ...character region is the unrotated one shifted by len=8.
  BitVector b_rot = b;
  b_rot.RotateRangeLeft(xw.char_region_begin(), xw.char_region_bits(), 8);
  EXPECT_EQ(a, b_rot);
}

TEST(XashTest, AblationFlagsChangeSignatures) {
  XashOptions base = Opts(128);
  Xash full(base);

  XashOptions no_len = base;
  no_len.use_length = false;
  XashOptions no_chars = base;
  no_chars.use_chars = false;
  XashOptions no_loc = base;
  no_loc.use_location = false;
  XashOptions no_rot = base;
  no_rot.use_rotation = false;

  const std::string v = "muhammad";
  EXPECT_NE(Xash(no_len).HashValue(v), full.HashValue(v));
  EXPECT_NE(Xash(no_chars).HashValue(v), full.HashValue(v));
  EXPECT_NE(Xash(no_loc).HashValue(v), full.HashValue(v));
  EXPECT_NE(Xash(no_rot).HashValue(v), full.HashValue(v));
  // Length-only signatures have exactly one bit.
  EXPECT_EQ(Xash(no_chars).HashValue(v).CountOnes(), 1u);
}

TEST(XashTest, FromCorpusStatsUsesMeasuredFrequencies) {
  CorpusStats stats;
  stats.num_unique_values = 5000;
  // A corpus where 'z' is the most common character and 'e' rare.
  stats.char_counts[NormalizeChar('z')] = 100000;
  stats.char_counts[NormalizeChar('e')] = 3;
  stats.char_counts[NormalizeChar('a')] = 50000;
  auto xash = Xash::FromCorpusStats(128, stats);
  ASSERT_NE(xash, nullptr);
  EXPECT_EQ(xash->alpha(),
            std::max(6, OptimalOnesCount(128, 5000)));  // floored Eq. 5
  // With alpha=2 (1 char encoded), "ze" must encode 'e' (rare here), not 'z'.
  XashOptions probe_opts = Opts(128);
  probe_opts.use_rotation = false;
  // Verify through behavior: hash "ze" and check the e-segment.
  BitVector sig = xash->HashValue("ze");
  BitVector unrot = sig;
  unrot.RotateRangeLeft(xash->char_region_begin(), xash->char_region_bits(),
                        xash->char_region_bits() - 2);
  size_t e_seg = xash->char_region_begin() +
                 static_cast<size_t>(NormalizeChar('e')) * xash->beta();
  bool e_encoded = false;
  for (size_t b = 0; b < xash->beta(); ++b) {
    e_encoded = e_encoded || unrot.TestBit(e_seg + b);
  }
  EXPECT_TRUE(e_encoded);
}

TEST(XashTest, DistinctValuesRarelyCollide) {
  Xash xash(Opts(128));
  std::vector<std::string> values;
  for (int i = 0; i < 200; ++i) values.push_back("value_" + std::to_string(i));
  int collisions = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = i + 1; j < values.size(); ++j) {
      if (xash.HashValue(values[i]) == xash.HashValue(values[j])) {
        ++collisions;
      }
    }
  }
  // These values differ only in their numeric suffix — the adversarial case
  // for XASH — but full equality of signatures should still be rare.
  EXPECT_LT(collisions, 400);
}

TEST(XashTest, SignatureNeverExceedsHashWidth) {
  for (size_t bits : {64u, 128u, 192u, 256u, 320u, 384u, 448u, 512u}) {
    XashOptions o = Opts(bits);
    Xash xash(o);
    BitVector sig = xash.HashValue("any value at all");
    EXPECT_EQ(sig.num_bits(), bits);
    EXPECT_EQ(xash.length_segment_bits() + xash.char_region_bits(), bits);
  }
}

}  // namespace
}  // namespace mate
