#include "util/status.h"

#include <gtest/gtest.h>

namespace mate {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such table");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.IsIOError());
  EXPECT_EQ(s.message(), "no such table");
  EXPECT_EQ(s.ToString(), "Not found: no such table");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Overloaded("x").IsOverloaded());
}

TEST(StatusTest, OverloadedIsRetryableAdmissionRefusal) {
  // kOverloaded is the serving front-end's load-shed signal: a well-formed
  // request refused by admission control, distinct from every validation
  // and corruption code so clients can back off and retry.
  Status s = Status::Overloaded("admission queue full");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsOverloaded());
  EXPECT_FALSE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsInternal());
  EXPECT_EQ(s.message(), "admission queue full");
  EXPECT_EQ(s.ToString(), "Overloaded: admission queue full");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IOError("disk gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  MATE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  MATE_ASSIGN_OR_RETURN(int half, HalveEven(x));
  *out = half;
  return Status::OK();
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::UseReturnIfError(1).ok());
  EXPECT_TRUE(helpers::UseReturnIfError(-1).IsInvalidArgument());
}

TEST(StatusMacrosTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(helpers::UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(helpers::UseAssignOrReturn(3, &out).IsInvalidArgument());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOverloaded), "Overloaded");
}

}  // namespace
}  // namespace mate
