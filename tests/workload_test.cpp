#include <gtest/gtest.h>

#include <unordered_set>

#include "core/joinability.h"
#include "workload/generator.h"
#include "workload/query_gen.h"
#include "workload/scenarios.h"

namespace mate {
namespace {

TEST(VocabularyTest, GeneratesDistinctTokens) {
  Vocabulary vocab = Vocabulary::Generate(500, Vocabulary::Style::kMixed, 1);
  ASSERT_EQ(vocab.size(), 500u);
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < vocab.size(); ++i) {
    EXPECT_TRUE(seen.insert(vocab.word(i)).second) << vocab.word(i);
    EXPECT_FALSE(vocab.word(i).empty());
  }
}

TEST(VocabularyTest, DeterministicInSeed) {
  Vocabulary a = Vocabulary::Generate(100, Vocabulary::Style::kWords, 9);
  Vocabulary b = Vocabulary::Generate(100, Vocabulary::Style::kWords, 9);
  Vocabulary c = Vocabulary::Generate(100, Vocabulary::Style::kWords, 10);
  bool all_same = true;
  bool any_diff = false;
  for (size_t i = 0; i < 100; ++i) {
    all_same = all_same && a.word(i) == b.word(i);
    any_diff = any_diff || a.word(i) != c.word(i);
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_diff);
}

TEST(VocabularyTest, StylesProduceDifferentFlavors) {
  Vocabulary words = Vocabulary::Generate(200, Vocabulary::Style::kWords, 3);
  Vocabulary mixed = Vocabulary::Generate(200, Vocabulary::Style::kMixed, 3);
  // Words style: pure letters. Mixed: some tokens contain digits.
  bool words_have_digit = false;
  bool mixed_have_digit = false;
  for (size_t i = 0; i < 200; ++i) {
    for (char ch : words.word(i)) {
      words_have_digit = words_have_digit || (ch >= '0' && ch <= '9');
    }
    for (char ch : mixed.word(i)) {
      mixed_have_digit = mixed_have_digit || (ch >= '0' && ch <= '9');
    }
  }
  EXPECT_FALSE(words_have_digit);
  EXPECT_TRUE(mixed_have_digit);
}

TEST(GeneratorTest, RespectsSpecBounds) {
  Vocabulary vocab = Vocabulary::Generate(300, Vocabulary::Style::kMixed, 2);
  CorpusSpec spec;
  spec.num_tables = 25;
  spec.min_columns = 3;
  spec.max_columns = 6;
  spec.min_rows = 4;
  spec.max_rows = 9;
  spec.seed = 8;
  Corpus corpus = GenerateCorpus(spec, vocab);
  ASSERT_EQ(corpus.NumTables(), 25u);
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    const Table& table = corpus.table(t);
    EXPECT_GE(table.NumColumns(), 3u);
    EXPECT_LE(table.NumColumns(), 6u);
    EXPECT_GE(table.NumRows(), 4u);
    EXPECT_LE(table.NumRows(), 9u);
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  Vocabulary vocab = Vocabulary::Generate(300, Vocabulary::Style::kMixed, 2);
  CorpusSpec spec;
  spec.num_tables = 10;
  spec.seed = 77;
  Corpus a = GenerateCorpus(spec, vocab);
  Corpus b = GenerateCorpus(spec, vocab);
  ASSERT_EQ(a.NumTables(), b.NumTables());
  for (TableId t = 0; t < a.NumTables(); ++t) {
    ASSERT_EQ(a.table(t).NumRows(), b.table(t).NumRows());
    for (RowId r = 0; r < a.table(t).NumRows(); ++r) {
      for (ColumnId c = 0; c < a.table(t).NumColumns(); ++c) {
        ASSERT_EQ(a.table(t).cell(r, c), b.table(t).cell(r, c));
      }
    }
  }
}

TEST(GeneratorTest, ZipfReusesValuesAcrossTables) {
  Vocabulary vocab = Vocabulary::Generate(500, Vocabulary::Style::kMixed, 2);
  CorpusSpec spec;
  spec.num_tables = 50;
  spec.seed = 5;
  Corpus corpus = GenerateCorpus(spec, vocab);
  CorpusStats stats = corpus.ComputeStats();
  // Heavy-tailed reuse: far fewer unique values than cells.
  EXPECT_LT(stats.num_unique_values, stats.num_cells / 2);
}

TEST(QueryGenTest, PlantedJoinabilityIsALowerBound) {
  Vocabulary vocab = Vocabulary::Generate(300, Vocabulary::Style::kMixed, 4);
  CorpusSpec spec;
  spec.num_tables = 20;
  spec.seed = 31;
  Corpus corpus = GenerateCorpus(spec, vocab);
  QuerySetSpec qspec;
  qspec.num_queries = 3;
  qspec.query_rows = 25;
  qspec.key_size = 2;
  qspec.planted_tables = 5;
  qspec.seed = 32;
  std::vector<QueryCase> queries = GenerateQueries(&corpus, vocab, qspec);
  ASSERT_EQ(queries.size(), 3u);
  for (const QueryCase& qc : queries) {
    ASSERT_FALSE(qc.planted.empty());
    for (const auto& [table_id, planted_count] : qc.planted) {
      int64_t true_j = BruteForceJoinability(qc.query, qc.key_columns,
                                             corpus.table(table_id))
                           .joinability;
      EXPECT_GE(true_j, static_cast<int64_t>(planted_count))
          << "table " << table_id;
    }
  }
}

TEST(QueryGenTest, KeyColumnsAreValidAndDistinct) {
  Vocabulary vocab = Vocabulary::Generate(200, Vocabulary::Style::kMixed, 4);
  CorpusSpec spec;
  spec.num_tables = 5;
  spec.seed = 2;
  Corpus corpus = GenerateCorpus(spec, vocab);
  QuerySetSpec qspec;
  qspec.num_queries = 5;
  qspec.query_columns = 6;
  qspec.key_size = 3;
  qspec.seed = 3;
  for (const QueryCase& qc : GenerateQueries(&corpus, vocab, qspec)) {
    EXPECT_EQ(qc.key_columns.size(), 3u);
    std::unordered_set<ColumnId> distinct(qc.key_columns.begin(),
                                          qc.key_columns.end());
    EXPECT_EQ(distinct.size(), 3u);
    for (ColumnId c : qc.key_columns) {
      EXPECT_LT(c, qc.query.NumColumns());
    }
    EXPECT_GE(qc.query.NumRows(), 2u);
  }
}

TEST(ScenarioTest, WebTablesShapesMatchPaperOrdering) {
  WorkloadConfig config;
  config.scale = 0.05;
  config.queries_per_set = 2;
  Workload w = MakeWebTablesWorkload(config);
  ASSERT_EQ(w.query_sets.size(), 3u);
  EXPECT_EQ(w.query_sets[0].first, "WT (10)");
  EXPECT_EQ(w.query_sets[2].first, "WT (1000)");
  // Cardinality ladder: later sets have more rows.
  EXPECT_LT(w.query_sets[0].second[0].query.NumRows(),
            w.query_sets[2].second[0].query.NumRows());
}

TEST(ScenarioTest, OpenDataIsWiderThanWebTables) {
  WorkloadConfig config;
  config.scale = 0.05;
  config.queries_per_set = 2;
  Workload wt = MakeWebTablesWorkload(config);
  Workload od = MakeOpenDataWorkload(config);
  double wt_cols = wt.corpus.ComputeStats().avg_columns_per_table;
  double od_cols = od.corpus.ComputeStats().avg_columns_per_table;
  EXPECT_GT(od_cols, wt_cols);
}

TEST(ScenarioTest, SchoolHasFewLargeTables) {
  WorkloadConfig config;
  config.scale = 0.05;
  config.queries_per_set = 2;
  Workload school = MakeSchoolWorkload(config);
  CorpusStats stats = school.corpus.ComputeStats();
  EXPECT_LE(stats.num_tables, 60u);
  EXPECT_GT(stats.avg_rows_per_table, 50.0);
  EXPECT_GT(stats.avg_columns_per_table, 20.0);
}

TEST(ScenarioTest, KeySizeWorkloadCoversRequestedSizes) {
  WorkloadConfig config;
  config.scale = 0.05;
  config.queries_per_set = 1;
  Workload w = MakeKeySizeWorkload(config, {2, 5, 10});
  ASSERT_EQ(w.query_sets.size(), 3u);
  EXPECT_EQ(w.query_sets[0].second[0].key_columns.size(), 2u);
  EXPECT_EQ(w.query_sets[1].second[0].key_columns.size(), 5u);
  EXPECT_EQ(w.query_sets[2].second[0].key_columns.size(), 10u);
}

TEST(ScenarioTest, DeterministicInSeedAndScale) {
  WorkloadConfig config;
  config.scale = 0.05;
  config.queries_per_set = 1;
  Workload a = MakeWebTablesWorkload(config);
  Workload b = MakeWebTablesWorkload(config);
  EXPECT_EQ(a.corpus.NumTables(), b.corpus.NumTables());
  EXPECT_EQ(a.query_sets[0].second[0].query.NumRows(),
            b.query_sets[0].second[0].query.NumRows());
  EXPECT_EQ(a.query_sets[0].second[0].query.cell(0, 0),
            b.query_sets[0].second[0].query.cell(0, 0));
}

}  // namespace
}  // namespace mate
