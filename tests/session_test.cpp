// Session lifecycle and cache semantics: move-only ownership, Open
// validation (mismatched corpus/index pairs fail up front), QuerySpec
// validation closing the old UB paths, bit-identical cache hits, explicit
// invalidation after index edits, and cache-on vs cache-off agreement
// under the batch engine at >= 4 threads.

#include "core/session.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "core/mate.h"
#include "index/index_builder.h"
#include "util/rng.h"
#include "workload/query_gen.h"
#include "workload/vocabulary.h"

namespace mate {
namespace {

static_assert(!std::is_copy_constructible_v<Session>);
static_assert(!std::is_copy_assignable_v<Session>);
static_assert(std::is_move_constructible_v<Session>);
static_assert(std::is_move_assignable_v<Session>);

// ---- deterministic fixtures ----------------------------------------

// The paper's Figure 1 lake, small enough to reason about exactly.
Corpus MakeLake() {
  Corpus corpus;
  Table t1("people_de");
  t1.AddColumn("Vorname");
  t1.AddColumn("Nachname");
  t1.AddColumn("Land");
  (void)t1.AppendRow({"Helmut", "Newton", "Germany"});
  (void)t1.AppendRow({"Muhammad", "Lee", "US"});
  (void)t1.AppendRow({"Ansel", "Adams", "UK"});
  (void)t1.AppendRow({"Muhammad", "Lee", "Germany"});
  corpus.AddTable(std::move(t1));

  Table t2("partial_match");
  t2.AddColumn("first");
  t2.AddColumn("last");
  (void)t2.AppendRow({"Muhammad", "Lee"});
  (void)t2.AppendRow({"Grace", "Hopper"});
  corpus.AddTable(std::move(t2));
  return corpus;
}

Table MakeQuery() {
  Table query("q");
  query.AddColumn("first");
  query.AddColumn("last");
  query.AddColumn("country");
  (void)query.AppendRow({"Muhammad", "Lee", "US"});
  (void)query.AppendRow({"Helmut", "Newton", "Germany"});
  (void)query.AppendRow({"Ansel", "Adams", "UK"});
  return query;
}

Session OpenLakeSession(size_t cache_bytes,
                        unsigned num_threads = 1) {
  SessionOptions options;
  options.corpus = MakeLake();
  options.build_index = true;
  options.cache_bytes = cache_bytes;
  options.num_threads = num_threads;
  auto session = Session::Open(std::move(options));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(*session);
}

QuerySpec MakeSpec(const Table* query, std::vector<ColumnId> key,
                   int k = 5) {
  QuerySpec spec;
  spec.table = query;
  spec.key_columns = std::move(key);
  spec.options.k = k;
  return spec;
}

// A heftier deterministic world (planted joins) for batch/thread tests;
// calling it twice yields two identical corpora + query sets.
struct World {
  Corpus corpus;
  std::vector<QueryCase> queries;
};

World MakeWorld() {
  World w;
  Rng rng(7);
  Vocabulary vocab = Vocabulary::Generate(120, Vocabulary::Style::kWords, 11);
  for (size_t t = 0; t < 20; ++t) {
    Table table("t" + std::to_string(t));
    size_t cols = 3 + rng.Uniform(3);
    for (size_t c = 0; c < cols; ++c) table.AddColumn("c" + std::to_string(c));
    size_t rows = 4 + rng.Uniform(16);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> cells;
      for (size_t c = 0; c < cols; ++c) {
        cells.push_back(vocab.word(rng.Uniform(vocab.size())));
      }
      (void)table.AppendRow(std::move(cells));
    }
    w.corpus.AddTable(std::move(table));
  }
  QuerySetSpec spec;
  spec.num_queries = 6;
  spec.query_rows = 20;
  spec.query_columns = 4;
  spec.key_size = 2;
  spec.planted_tables = 5;
  spec.seed = 3;
  w.queries = GenerateQueries(&w.corpus, vocab, spec);
  return w;
}

void ExpectBitIdentical(const DiscoveryResult& a, const DiscoveryResult& b,
                        bool include_runtime = false) {
  ASSERT_EQ(a.top_k.size(), b.top_k.size());
  for (size_t i = 0; i < a.top_k.size(); ++i) {
    EXPECT_EQ(a.top_k[i].table_id, b.top_k[i].table_id);
    EXPECT_EQ(a.top_k[i].joinability, b.top_k[i].joinability);
    EXPECT_EQ(a.top_k[i].best_mapping, b.top_k[i].best_mapping);
  }
  EXPECT_EQ(a.stats.pl_items_fetched, b.stats.pl_items_fetched);
  EXPECT_EQ(a.stats.candidate_tables, b.stats.candidate_tables);
  EXPECT_EQ(a.stats.tables_evaluated, b.stats.tables_evaluated);
  EXPECT_EQ(a.stats.rows_checked, b.stats.rows_checked);
  EXPECT_EQ(a.stats.rows_sent_to_verification,
            b.stats.rows_sent_to_verification);
  EXPECT_EQ(a.stats.rows_true_positive, b.stats.rows_true_positive);
  EXPECT_EQ(a.stats.value_comparisons, b.stats.value_comparisons);
  if (include_runtime) {
    EXPECT_DOUBLE_EQ(a.stats.runtime_seconds, b.stats.runtime_seconds);
  }
}

// ---- Open lifecycle -------------------------------------------------

TEST(SessionOpenTest, RequiresExactlyOneCorpusSource) {
  {
    SessionOptions options;  // neither corpus nor corpus_path
    auto session = Session::Open(std::move(options));
    ASSERT_FALSE(session.ok());
    EXPECT_TRUE(session.status().IsInvalidArgument());
  }
  {
    SessionOptions options;
    options.corpus = MakeLake();
    options.corpus_path = "/tmp/nonexistent.corpus";
    auto session = Session::Open(std::move(options));
    ASSERT_FALSE(session.ok());
    EXPECT_TRUE(session.status().IsInvalidArgument());
  }
}

TEST(SessionOpenTest, RejectsMultipleIndexSources) {
  SessionOptions options;
  options.corpus = MakeLake();
  options.build_index = true;
  options.index_path = "/tmp/nonexistent.index";
  auto session = Session::Open(std::move(options));
  ASSERT_FALSE(session.ok());
  EXPECT_TRUE(session.status().IsInvalidArgument());
}

TEST(SessionOpenTest, MissingFilesSurfaceIOError) {
  SessionOptions options;
  options.corpus_path = "/nonexistent/dir/lake.corpus";
  auto session = Session::Open(std::move(options));
  ASSERT_FALSE(session.ok());
  EXPECT_TRUE(session.status().IsIOError()) << session.status().ToString();
}

TEST(SessionOpenTest, MismatchedCorpusAndIndexFailCorruption) {
  // Index built over the two-table lake, adopted next to a corpus with an
  // extra table: table-count skew.
  Corpus original = MakeLake();
  auto index = BuildIndex(original, IndexBuildOptions{});
  ASSERT_TRUE(index.ok());

  Corpus bigger = MakeLake();
  Table extra("extra");
  extra.AddColumn("a");
  (void)extra.AppendRow({"x"});
  bigger.AddTable(std::move(extra));

  SessionOptions options;
  options.corpus = std::move(bigger);
  options.index = std::move(*index);
  auto session = Session::Open(std::move(options));
  ASSERT_FALSE(session.ok());
  EXPECT_TRUE(session.status().IsCorruption()) << session.status().ToString();
}

TEST(SessionOpenTest, RowCountSkewFailsCorruption) {
  Corpus original = MakeLake();
  auto index = BuildIndex(original, IndexBuildOptions{});
  ASSERT_TRUE(index.ok());

  Corpus edited = MakeLake();
  (void)edited.mutable_table(0)->AppendRow({"New", "Row", "Nowhere"});

  SessionOptions options;
  options.corpus = std::move(edited);
  options.index = std::move(*index);
  auto session = Session::Open(std::move(options));
  ASSERT_FALSE(session.ok());
  EXPECT_TRUE(session.status().IsCorruption()) << session.status().ToString();
}

TEST(SessionOpenTest, ValidateOffAdmitsSkewedPair) {
  // The escape hatch for callers who know better (e.g. partially indexed
  // corpora in tests); queries on the skewed tail are their problem.
  Corpus original = MakeLake();
  auto index = BuildIndex(original, IndexBuildOptions{});
  ASSERT_TRUE(index.ok());
  Corpus bigger = MakeLake();
  Table extra("extra");
  extra.AddColumn("a");
  (void)extra.AppendRow({"x"});
  bigger.AddTable(std::move(extra));

  SessionOptions options;
  options.corpus = std::move(bigger);
  options.index = std::move(*index);
  options.validate = false;
  auto session = Session::Open(std::move(options));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
}

TEST(SessionOpenTest, MoveTransfersOwnership) {
  Session a = OpenLakeSession(/*cache_bytes=*/1 << 20);
  const Table query = MakeQuery();
  auto before = a.Discover(MakeSpec(&query, {0, 1, 2}));
  ASSERT_TRUE(before.ok());

  Session b = std::move(a);
  auto after = b.Discover(MakeSpec(&query, {0, 1, 2}));
  ASSERT_TRUE(after.ok());
  ExpectBitIdentical(*before, *after, /*include_runtime=*/true);  // cache hit
  EXPECT_EQ(b.cache_stats().hits, 1u);
}

TEST(SessionOpenTest, CorpusOnlySessionRejectsDiscover) {
  SessionOptions options;
  options.corpus = MakeLake();
  auto session = Session::Open(std::move(options));
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->has_index());
  EXPECT_GT(session->corpus_stats().num_rows, 0u);  // computed by scan
  const Table query = MakeQuery();
  auto result = session->Discover(MakeSpec(&query, {0, 1}));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(SessionOpenTest, SaveAndReopenRoundTrips) {
  const std::string corpus_path = "/tmp/mate_session_test.corpus";
  const std::string index_path = "/tmp/mate_session_test.index";
  const Table query = MakeQuery();
  DiscoveryResult original;
  {
    Session session = OpenLakeSession(/*cache_bytes=*/0);
    auto result = session.Discover(MakeSpec(&query, {0, 1, 2}));
    ASSERT_TRUE(result.ok());
    original = *result;
    ASSERT_TRUE(session.Save(corpus_path, index_path).ok());
  }
  SessionOptions reopen;
  reopen.corpus_path = corpus_path;
  reopen.index_path = index_path;
  auto session = Session::Open(std::move(reopen));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->hash_family(), HashFamily::kXash);
  auto result = session->Discover(MakeSpec(&query, {0, 1, 2}));
  ASSERT_TRUE(result.ok());
  ExpectBitIdentical(original, *result);
  std::remove(corpus_path.c_str());
  std::remove(index_path.c_str());
}

// ---- QuerySpec validation -------------------------------------------

class SessionValidationTest : public testing::Test {
 protected:
  SessionValidationTest()
      : session_(OpenLakeSession(/*cache_bytes=*/1 << 20)),
        query_(MakeQuery()) {}

  void ExpectInvalid(const QuerySpec& spec, const std::string& needle) {
    Status status = session_.ValidateQuery(spec);
    ASSERT_TRUE(status.IsInvalidArgument()) << status.ToString();
    EXPECT_NE(status.message().find(needle), std::string::npos)
        << "message '" << status.message() << "' does not name '" << needle
        << "'";
    // Discover and DiscoverBatch agree with ValidateQuery.
    auto single = session_.Discover(spec);
    EXPECT_TRUE(single.status().IsInvalidArgument());
    auto batch = session_.DiscoverBatch({spec});
    EXPECT_TRUE(batch.status().IsInvalidArgument());
  }

  Session session_;
  Table query_;
};

TEST_F(SessionValidationTest, NullTable) {
  ExpectInvalid(MakeSpec(nullptr, {0}), "null");
}

TEST_F(SessionValidationTest, EmptyKeyColumns) {
  ExpectInvalid(MakeSpec(&query_, {}), "empty");
}

TEST_F(SessionValidationTest, OutOfRangeKeyColumn) {
  ExpectInvalid(MakeSpec(&query_, {0, 7}), "7");
  ExpectInvalid(MakeSpec(&query_, {kInvalidColumnId}),
                std::to_string(kInvalidColumnId));
}

TEST_F(SessionValidationTest, DuplicateKeyColumn) {
  ExpectInvalid(MakeSpec(&query_, {1, 0, 1}), "duplicate key column 1");
}

TEST_F(SessionValidationTest, NonPositiveK) {
  ExpectInvalid(MakeSpec(&query_, {0, 1}, /*k=*/0), "k must be positive");
  ExpectInvalid(MakeSpec(&query_, {0, 1}, /*k=*/-3), "-3");
}

TEST_F(SessionValidationTest, UnknownExcludeTable) {
  QuerySpec spec = MakeSpec(&query_, {0, 1});
  spec.options.exclude_tables = {0, 99};
  ExpectInvalid(spec, "exclude_tables id 99");
}

TEST_F(SessionValidationTest, UnknownRestrictTable) {
  QuerySpec spec = MakeSpec(&query_, {0, 1});
  spec.options.restrict_tables = {41};
  ExpectInvalid(spec, "restrict_tables id 41");
}

TEST_F(SessionValidationTest, BatchErrorNamesFailingPosition) {
  std::vector<QuerySpec> specs = {MakeSpec(&query_, {0, 1}),
                                  MakeSpec(&query_, {0, 0})};
  auto batch = session_.DiscoverBatch(specs);
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().message().find("query 1"), std::string::npos)
      << batch.status().ToString();
}

TEST_F(SessionValidationTest, ValidSpecPasses) {
  EXPECT_TRUE(session_.ValidateQuery(MakeSpec(&query_, {0, 1, 2})).ok());
  QuerySpec spec = MakeSpec(&query_, {2, 0});
  spec.options.exclude_tables = {1};
  spec.options.restrict_tables = {0};
  EXPECT_TRUE(session_.ValidateQuery(spec).ok());
}

// ---- cache semantics ------------------------------------------------

TEST(SessionCacheTest, DiscoverMatchesRawEngine) {
  Session session = OpenLakeSession(/*cache_bytes=*/1 << 20);
  const Table query = MakeQuery();
  auto via_session = session.Discover(MakeSpec(&query, {0, 1, 2}));
  ASSERT_TRUE(via_session.ok());

  MateSearch raw(&session.corpus(), &session.index());
  DiscoveryOptions options;
  options.k = 5;
  DiscoveryResult reference = raw.Discover(query, {0, 1, 2}, options);
  ExpectBitIdentical(reference, *via_session);
}

TEST(SessionCacheTest, HitReturnsBitIdenticalResult) {
  Session session = OpenLakeSession(/*cache_bytes=*/1 << 20);
  const Table query = MakeQuery();
  auto first = session.Discover(MakeSpec(&query, {0, 1, 2}));
  auto second = session.Discover(MakeSpec(&query, {0, 1, 2}));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Verbatim copy: even the recorded runtime is the original's.
  ExpectBitIdentical(*first, *second, /*include_runtime=*/true);
  const ResultCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SessionCacheTest, DifferentOptionsDoNotCollide) {
  Session session = OpenLakeSession(/*cache_bytes=*/1 << 20);
  const Table query = MakeQuery();
  auto k5 = session.Discover(MakeSpec(&query, {0, 1}, /*k=*/5));
  auto k1 = session.Discover(MakeSpec(&query, {0, 1}, /*k=*/1));
  QuerySpec excl = MakeSpec(&query, {0, 1}, /*k=*/5);
  excl.options.exclude_tables = {0};
  auto excluded = session.Discover(excl);
  ASSERT_TRUE(k5.ok());
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(excluded.ok());
  EXPECT_EQ(session.cache_stats().misses, 3u);  // three distinct fingerprints
  EXPECT_LE(k1->top_k.size(), 1u);
  for (const TableResult& tr : excluded->top_k) {
    EXPECT_NE(tr.table_id, 0u);
  }
}

TEST(SessionCacheTest, ExcludeOrderInsensitiveFingerprint) {
  Session session = OpenLakeSession(/*cache_bytes=*/1 << 20);
  const Table query = MakeQuery();
  QuerySpec a = MakeSpec(&query, {0, 1});
  a.options.exclude_tables = {0, 1};
  QuerySpec b = MakeSpec(&query, {0, 1});
  b.options.exclude_tables = {1, 0};  // set semantics -> same fingerprint
  ASSERT_TRUE(session.Discover(a).ok());
  ASSERT_TRUE(session.Discover(b).ok());
  EXPECT_EQ(session.cache_stats().hits, 1u);
}

TEST(SessionCacheTest, ExecutionKnobsDoNotChangeTheFingerprint) {
  // Regression (PR 3): intra_query_threads / intra_query_shards and the
  // session's pool width are execution-only knobs. The same logical query
  // must hit the cache at any parallelism setting — and the hit serves the
  // originally computed result verbatim, execution shape included.
  Session session = OpenLakeSession(/*cache_bytes=*/1 << 20,
                                    /*num_threads=*/1);
  const Table query = MakeQuery();
  QuerySpec serial = MakeSpec(&query, {0, 1});
  serial.intra_query_threads = 1;
  auto first = session.Discover(serial);
  ASSERT_TRUE(first.ok());

  QuerySpec sharded = MakeSpec(&query, {0, 1});
  sharded.intra_query_threads = 8;
  sharded.intra_query_shards = 3;
  session.SetNumThreads(4);  // pool width must not enter the key either
  auto second = session.Discover(sharded);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(session.cache_stats().hits, 1u);
  EXPECT_EQ(session.cache_stats().misses, 1u);
  ExpectBitIdentical(*first, *second, /*include_runtime=*/true);
  EXPECT_EQ(second->stats.shards_used, first->stats.shards_used);
  EXPECT_EQ(second->stats.fanout_threads, first->stats.fanout_threads);

  // Auto mode (the default spec) fingerprints identically as well.
  auto third = session.Discover(MakeSpec(&query, {0, 1}));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(session.cache_stats().hits, 2u);
}

TEST(SessionCacheTest, QueryContentChangeMissesCache) {
  Session session = OpenLakeSession(/*cache_bytes=*/1 << 20);
  Table query = MakeQuery();
  ASSERT_TRUE(session.Discover(MakeSpec(&query, {0, 1})).ok());
  ASSERT_TRUE(query.SetCell(0, 0, "Somebody").ok());
  ASSERT_TRUE(session.Discover(MakeSpec(&query, {0, 1})).ok());
  EXPECT_EQ(session.cache_stats().misses, 2u);  // fingerprint covers cells
  EXPECT_EQ(session.cache_stats().hits, 0u);
}

TEST(SessionCacheTest, InvalidateAfterIndexEditServesFreshResults) {
  Session session = OpenLakeSession(/*cache_bytes=*/1 << 20);
  const Table query = MakeQuery();
  const QuerySpec spec = MakeSpec(&query, {0, 1});
  auto before = session.Discover(spec);
  ASSERT_TRUE(before.ok());
  // people_de matches all 3 query combos, partial_match exactly 1.
  ASSERT_EQ(before->JoinabilityAt(0), 3);
  ASSERT_EQ(before->JoinabilityAt(1), 1);

  // Plant a second matching combo in partial_match and index it (the §5.4
  // InsertRow maintenance path).
  auto row = session.mutable_corpus()->mutable_table(1)->AppendRow(
      {"Ansel", "Adams"});
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(
      session.mutable_index()->InsertRow(session.corpus(), 1, *row).ok());

  // Without invalidation the stale pre-edit result is served verbatim.
  auto stale = session.Discover(spec);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->JoinabilityAt(1), 1);

  session.InvalidateCache();
  auto fresh = session.Discover(spec);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->JoinabilityAt(1), 2);
  EXPECT_EQ(session.cache_stats().entries, 1u);  // refilled after the edit
}

TEST(SessionCacheTest, ResetHashInvalidatesImplicitly) {
  Session session = OpenLakeSession(/*cache_bytes=*/1 << 20);
  const Table query = MakeQuery();
  ASSERT_TRUE(session.Discover(MakeSpec(&query, {0, 1})).ok());
  EXPECT_EQ(session.cache_stats().entries, 1u);
  ASSERT_TRUE(session.ResetHash(HashFamily::kBloom, 128).ok());
  EXPECT_EQ(session.hash_family(), HashFamily::kBloom);
  EXPECT_EQ(session.cache_stats().entries, 0u);
  // Scores are hash-independent: the fresh run agrees on the ranking.
  auto result = session.Discover(MakeSpec(&query, {0, 1}));
  ASSERT_TRUE(result.ok());
}

// ---- tenant partitions ----------------------------------------------

TEST(SessionTenantTest, PartitionsAreIndependentThroughDiscover) {
  // The same query under two tenants computes twice (no cross-tenant
  // leakage) and each tenant's repeat hits only its own partition.
  Session session = OpenLakeSession(/*cache_bytes=*/1 << 20);
  const Table query = MakeQuery();
  QuerySpec acme = MakeSpec(&query, {0, 1});
  acme.tenant = "acme";
  QuerySpec globex = MakeSpec(&query, {0, 1});
  globex.tenant = "globex";

  auto a1 = session.Discover(acme);
  auto g1 = session.Discover(globex);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(g1.ok());
  ExpectBitIdentical(*a1, *g1);
  EXPECT_EQ(session.cache_stats().misses, 2u);  // no sharing across tenants
  EXPECT_EQ(session.cache_partition_stats("acme").entries, 1u);
  EXPECT_EQ(session.cache_partition_stats("globex").entries, 1u);

  auto a2 = session.Discover(acme);
  ASSERT_TRUE(a2.ok());
  ExpectBitIdentical(*a1, *a2, /*include_runtime=*/true);  // cached verbatim
  EXPECT_EQ(session.cache_partition_stats("acme").hits, 1u);
  EXPECT_EQ(session.cache_partition_stats("globex").hits, 0u);
}

TEST(SessionTenantTest, InvalidateCacheWithTenantIsScoped) {
  Session session = OpenLakeSession(/*cache_bytes=*/1 << 20);
  const Table query = MakeQuery();
  QuerySpec acme = MakeSpec(&query, {0, 1});
  acme.tenant = "acme";
  QuerySpec globex = MakeSpec(&query, {0, 1});
  globex.tenant = "globex";
  ASSERT_TRUE(session.Discover(acme).ok());
  ASSERT_TRUE(session.Discover(globex).ok());

  session.InvalidateCache("acme");
  EXPECT_EQ(session.cache_partition_stats("acme").entries, 0u);
  EXPECT_EQ(session.cache_partition_stats("globex").entries, 1u);

  // acme recomputes, globex still hits.
  ASSERT_TRUE(session.Discover(acme).ok());
  EXPECT_EQ(session.cache_partition_stats("acme").misses, 2u);
  ASSERT_TRUE(session.Discover(globex).ok());
  EXPECT_EQ(session.cache_partition_stats("globex").hits, 1u);
}

TEST(SessionTenantTest, InvalidateCacheAndResetHashDropEveryPartition) {
  // Index-wide events (explicit full invalidation, re-keying the hash)
  // invalidate all tenants alike — stale results are stale for everyone.
  Session session = OpenLakeSession(/*cache_bytes=*/1 << 20);
  const Table query = MakeQuery();
  for (const char* tenant : {"acme", "globex", ""}) {
    QuerySpec spec = MakeSpec(&query, {0, 1});
    spec.tenant = tenant;
    ASSERT_TRUE(session.Discover(spec).ok());
  }
  EXPECT_EQ(session.cache_stats().entries, 3u);

  session.InvalidateCache();
  EXPECT_EQ(session.cache_stats().entries, 0u);
  EXPECT_EQ(session.cache_partition_stats("acme").entries, 0u);

  for (const char* tenant : {"acme", "globex", ""}) {
    QuerySpec spec = MakeSpec(&query, {0, 1});
    spec.tenant = tenant;
    ASSERT_TRUE(session.Discover(spec).ok());
  }
  ASSERT_TRUE(session.ResetHash(HashFamily::kBloom, 128).ok());
  EXPECT_EQ(session.cache_stats().entries, 0u);
  EXPECT_EQ(session.cache_partition_stats("globex").entries, 0u);
}

TEST(SessionTenantTest, ConfigureCachePartitionBoundsOneTenant) {
  Session session = OpenLakeSession(/*cache_bytes=*/1 << 20);
  session.ConfigureCachePartition("tiny", 64);  // below any entry's size
  const Table query = MakeQuery();
  QuerySpec tiny = MakeSpec(&query, {0, 1});
  tiny.tenant = "tiny";
  QuerySpec roomy = MakeSpec(&query, {0, 1});
  roomy.tenant = "roomy";
  ASSERT_TRUE(session.Discover(tiny).ok());
  ASSERT_TRUE(session.Discover(roomy).ok());
  // The bounded tenant can't retain its entry; the default-budget one can.
  EXPECT_EQ(session.cache_partition_stats("tiny").entries, 0u);
  EXPECT_EQ(session.cache_partition_stats("tiny").capacity_bytes, 64u);
  EXPECT_EQ(session.cache_partition_stats("roomy").entries, 1u);
}

TEST(SessionCacheTest, DuplicateSpecsInOneBatchComputeOnce) {
  Session session = OpenLakeSession(/*cache_bytes=*/1 << 20,
                                    /*num_threads=*/4);
  const Table query = MakeQuery();
  std::vector<QuerySpec> specs = {MakeSpec(&query, {0, 1}),
                                  MakeSpec(&query, {0, 1}),
                                  MakeSpec(&query, {0, 1, 2})};
  auto batch = session.DiscoverBatch(specs);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->stats.cache_hits, 1u);    // the in-batch duplicate
  EXPECT_EQ(batch->stats.cache_misses, 2u);  // two distinct fingerprints
  ExpectBitIdentical(batch->results[0], batch->results[1],
                     /*include_runtime=*/true);

  auto again = session.DiscoverBatch(specs);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.cache_hits, 3u);  // everything cached now
  EXPECT_EQ(again->stats.cache_misses, 0u);
  for (size_t i = 0; i < specs.size(); ++i) {
    ExpectBitIdentical(batch->results[i], again->results[i],
                       /*include_runtime=*/true);
  }
}

TEST(SessionCacheTest, CacheOnAndOffAgreeUnderBatchAtFourThreads) {
  // Two sessions over identical deterministic worlds; a repeated-query
  // stream through each. Cached and uncached results must be bit-identical
  // at >= 4 threads (ASan/TSan builds make this the shared-pool canary).
  World world_a = MakeWorld();
  World world_b = MakeWorld();

  SessionOptions cached_options;
  cached_options.corpus = std::move(world_a.corpus);
  cached_options.build_index = true;
  cached_options.num_threads = 4;
  cached_options.cache_bytes = 32 << 20;
  auto cached = Session::Open(std::move(cached_options));
  ASSERT_TRUE(cached.ok());

  SessionOptions uncached_options;
  uncached_options.corpus = std::move(world_b.corpus);
  uncached_options.build_index = true;
  uncached_options.num_threads = 4;
  uncached_options.cache_bytes = 0;
  auto uncached = Session::Open(std::move(uncached_options));
  ASSERT_TRUE(uncached.ok());

  // Stream with heavy repetition: every query appears three times.
  auto make_stream = [](const World& world) {
    std::vector<QuerySpec> specs;
    for (int round = 0; round < 3; ++round) {
      for (const QueryCase& qc : world.queries) {
        QuerySpec spec;
        spec.table = &qc.query;
        spec.key_columns = qc.key_columns;
        spec.options.k = 5;
        specs.push_back(std::move(spec));
      }
    }
    return specs;
  };
  const std::vector<QuerySpec> stream_a = make_stream(world_a);
  const std::vector<QuerySpec> stream_b = make_stream(world_b);

  auto warm = cached->DiscoverBatch(stream_a);
  auto cold = uncached->DiscoverBatch(stream_b);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(warm->results.size(), cold->results.size());
  for (size_t i = 0; i < warm->results.size(); ++i) {
    ExpectBitIdentical(cold->results[i], warm->results[i]);
  }
  // Two thirds of the stream are repeats -> all hits.
  EXPECT_EQ(warm->stats.cache_misses, world_a.queries.size());
  EXPECT_EQ(warm->stats.cache_hits, 2 * world_a.queries.size());
  EXPECT_EQ(cold->stats.cache_hits, 0u);
  EXPECT_EQ(cold->stats.cache_misses, 0u);

  // A second identical batch is served entirely from the cache.
  auto warm2 = cached->DiscoverBatch(stream_a);
  ASSERT_TRUE(warm2.ok());
  EXPECT_EQ(warm2->stats.cache_misses, 0u);
  for (size_t i = 0; i < warm2->results.size(); ++i) {
    ExpectBitIdentical(cold->results[i], warm2->results[i]);
  }
}

TEST(SessionCacheTest, TinyBudgetEvictsInsteadOfGrowing) {
  SessionOptions options;
  options.corpus = MakeLake();
  options.build_index = true;
  options.cache_bytes = 1024;  // a couple of entries at most
  auto session = Session::Open(std::move(options));
  ASSERT_TRUE(session.ok());
  const Table query = MakeQuery();
  for (int k = 1; k <= 10; ++k) {
    ASSERT_TRUE(session->Discover(MakeSpec(&query, {0, 1}, k)).ok());
  }
  const ResultCacheStats stats = session->cache_stats();
  EXPECT_LE(stats.bytes, 1024u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(SessionCacheTest, ConfigureCacheTogglesCaching) {
  Session session = OpenLakeSession(/*cache_bytes=*/0);
  EXPECT_FALSE(session.cache_enabled());
  const Table query = MakeQuery();
  ASSERT_TRUE(session.Discover(MakeSpec(&query, {0, 1})).ok());
  EXPECT_EQ(session.cache_stats().misses, 0u);  // no cache, no traffic

  session.ConfigureCache(1 << 20);
  EXPECT_TRUE(session.cache_enabled());
  ASSERT_TRUE(session.Discover(MakeSpec(&query, {0, 1})).ok());
  ASSERT_TRUE(session.Discover(MakeSpec(&query, {0, 1})).ok());
  EXPECT_EQ(session.cache_stats().hits, 1u);
}

TEST(SessionPoolTest, SetNumThreadsKeepsResultsIdentical) {
  World world = MakeWorld();
  SessionOptions options;
  options.corpus = std::move(world.corpus);
  options.build_index = true;
  options.num_threads = 1;
  options.cache_bytes = 0;
  auto session = Session::Open(std::move(options));
  ASSERT_TRUE(session.ok());

  std::vector<QuerySpec> specs;
  for (const QueryCase& qc : world.queries) {
    QuerySpec spec;
    spec.table = &qc.query;
    spec.key_columns = qc.key_columns;
    spec.options.k = 5;
    specs.push_back(std::move(spec));
  }
  auto serial = session->DiscoverBatch(specs);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(session->num_threads(), 1u);

  session->SetNumThreads(4);
  EXPECT_EQ(session->num_threads(), 4u);
  auto parallel = session->DiscoverBatch(specs);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->results.size(), parallel->results.size());
  for (size_t i = 0; i < serial->results.size(); ++i) {
    ExpectBitIdentical(serial->results[i], parallel->results[i]);
  }
}

}  // namespace
}  // namespace mate
