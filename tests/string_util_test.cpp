#include "util/string_util.h"

#include <gtest/gtest.h>

namespace mate {
namespace {

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("MuHaMMad"), "muhammad");
  EXPECT_EQ(ToLower("ABC-123"), "abc-123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-space"), "no-space");
}

TEST(StringUtilTest, NormalizeValue) {
  EXPECT_EQ(NormalizeValue("  Muhammad "), "muhammad");
  EXPECT_EQ(NormalizeValue("US"), "us");
  EXPECT_EQ(NormalizeValue(" 60K"), "60k");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",b,", ','), (std::vector<std::string>{"", "b", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  std::string original = "x|y||z";
  EXPECT_EQ(Join(Split(original, '|'), "|"), original);
}

TEST(StringUtilTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("0123456789"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits("-12"));
}

TEST(StringUtilTest, ParseSmallUint) {
  unsigned value = 99;
  EXPECT_TRUE(ParseSmallUint("0", 1024, &value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(ParseSmallUint("1024", 1024, &value));
  EXPECT_EQ(value, 1024u);

  value = 99;
  EXPECT_FALSE(ParseSmallUint("1025", 1024, &value));
  EXPECT_FALSE(ParseSmallUint("", 1024, &value));
  EXPECT_FALSE(ParseSmallUint("abc", 1024, &value));
  EXPECT_FALSE(ParseSmallUint("-1", 1024, &value));
  EXPECT_FALSE(ParseSmallUint("12 ", 1024, &value));
  // 2^32 and far beyond must not wrap into range.
  EXPECT_FALSE(ParseSmallUint("4294967296", 1024, &value));
  EXPECT_FALSE(ParseSmallUint("99999999999999999999", 1024, &value));
  EXPECT_EQ(value, 99u);  // untouched on every failure
}

TEST(StringUtilTest, NormalizedEqualsMatchesNormalizeValue) {
  const char* raws[] = {"  Muhammad ", "US", "us ", "60k", "", "  ",
                        "Ansel Adams", "a"};
  const char* norms[] = {"muhammad", "us", "lee", "", "ansel adams"};
  for (const char* raw : raws) {
    for (const char* norm : norms) {
      EXPECT_EQ(NormalizedEquals(norm, raw), NormalizeValue(raw) == norm)
          << "raw=[" << raw << "] norm=[" << norm << "]";
    }
  }
}

TEST(StringUtilTest, NormalizedEqualsIsZeroAllocCorrect) {
  EXPECT_TRUE(NormalizedEquals("muhammad", "  MUHAMMAD  "));
  EXPECT_FALSE(NormalizedEquals("muhammad", "muhammed"));
  EXPECT_FALSE(NormalizedEquals("muhammad", "muhamma"));
  EXPECT_TRUE(NormalizedEquals("", "   "));
}

TEST(StringUtilTest, FormatKeyCombo) {
  EXPECT_EQ(FormatKeyCombo({"muhammad", "lee", "us"}), "muhammad|lee|us");
}

}  // namespace
}  // namespace mate
