#include "core/mate.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "util/rng.h"
#include "workload/vocabulary.h"

namespace mate {
namespace {

Table MakeQueryD() {
  Table d("d");
  d.AddColumn("F. Name");
  d.AddColumn("L. Name");
  d.AddColumn("Country");
  d.AddColumn("Salary");
  (void)d.AppendRow({"Muhammad", "Lee", "US", "60k"});
  (void)d.AppendRow({"Ansel", "Adams", "UK", "50k"});
  (void)d.AppendRow({"Ansel", "Adams", "US", "400k"});
  (void)d.AppendRow({"Muhammad", "Lee", "Germany", "90k"});
  (void)d.AppendRow({"Helmut", "Newton", "Germany", "300k"});
  return d;
}

Corpus MakeFigure1Corpus() {
  Corpus corpus;
  Table t1("T1");
  t1.AddColumn("Vorname");
  t1.AddColumn("Nachname");
  t1.AddColumn("Land");
  t1.AddColumn("Besetzung");
  (void)t1.AppendRow({"Helmut", "Newton", "Germany", "Photographer"});
  (void)t1.AppendRow({"Muhammad", "Lee", "US", "Dancer"});
  (void)t1.AppendRow({"Ansel", "Adams", "UK", "Dancer"});
  (void)t1.AppendRow({"Ansel", "Adams", "US", "Photographer"});
  (void)t1.AppendRow({"Muhammad", "Ali", "US", "Boxer"});
  (void)t1.AppendRow({"Muhammad", "Lee", "Germany", "Birder"});
  (void)t1.AppendRow({"Gretchen", "Lee", "Germany", "Artist"});
  (void)t1.AppendRow({"Adam", "Sandler", "US", "Actor"});
  corpus.AddTable(std::move(t1));

  // A partially joinable table (2 of the 5 combos).
  Table t2("T2");
  t2.AddColumn("first");
  t2.AddColumn("last");
  t2.AddColumn("country");
  (void)t2.AppendRow({"Muhammad", "Lee", "US"});
  (void)t2.AppendRow({"Helmut", "Newton", "Germany"});
  (void)t2.AppendRow({"Nobody", "Else", "Nowhere"});
  corpus.AddTable(std::move(t2));

  // A table sharing single values but no combo.
  Table t3("T3");
  t3.AddColumn("a");
  t3.AddColumn("b");
  t3.AddColumn("c");
  (void)t3.AppendRow({"Muhammad", "Newton", "UK"});
  (void)t3.AppendRow({"Ansel", "Lee", "Germany"});
  corpus.AddTable(std::move(t3));
  return corpus;
}

std::unique_ptr<InvertedIndex> Build(const Corpus& corpus,
                                     HashFamily family = HashFamily::kXash) {
  IndexBuildOptions options;
  options.hash_family = family;
  auto index = BuildIndex(corpus, options);
  EXPECT_TRUE(index.ok());
  return std::move(*index);
}

TEST(MateSearchTest, Figure1TopTableIsT1WithJoinability5) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = Build(corpus);
  MateSearch mate(&corpus, index.get());
  DiscoveryOptions options;
  options.k = 3;
  DiscoveryResult result = mate.Discover(MakeQueryD(), {0, 1, 2}, options);
  ASSERT_GE(result.top_k.size(), 2u);
  EXPECT_EQ(result.top_k[0].table_id, 0u);
  EXPECT_EQ(result.top_k[0].joinability, 5);
  EXPECT_EQ(result.top_k[0].best_mapping, (std::vector<ColumnId>{0, 1, 2}));
  EXPECT_EQ(result.top_k[1].table_id, 1u);
  EXPECT_EQ(result.top_k[1].joinability, 2);
  // T3 shares values but no combos: never reported.
  for (const TableResult& tr : result.top_k) {
    EXPECT_NE(tr.table_id, 2u);
  }
}

TEST(MateSearchTest, RowFilterNeverChangesResults) {
  // The super key may only prune rows that cannot match (§6.3 lemma), so
  // MATE with and without the row filter must return identical scores.
  Corpus corpus = MakeFigure1Corpus();
  auto index = Build(corpus);
  MateSearch mate(&corpus, index.get());
  DiscoveryOptions with, without;
  with.k = without.k = 3;
  without.use_row_filter = false;
  DiscoveryResult a = mate.Discover(MakeQueryD(), {0, 1, 2}, with);
  DiscoveryResult b = mate.Discover(MakeQueryD(), {0, 1, 2}, without);
  ASSERT_EQ(a.top_k.size(), b.top_k.size());
  for (size_t i = 0; i < a.top_k.size(); ++i) {
    EXPECT_EQ(a.top_k[i].table_id, b.top_k[i].table_id);
    EXPECT_EQ(a.top_k[i].joinability, b.top_k[i].joinability);
  }
  // And the filter must not pass more rows than SCR verifies.
  EXPECT_LE(a.stats.rows_sent_to_verification,
            b.stats.rows_sent_to_verification);
}

TEST(MateSearchTest, SwappedKeyColumnsStillFindT1) {
  // Joinability is mapping-invariant (Eq. 2): permuting the query's key
  // columns must not change the top score.
  Corpus corpus = MakeFigure1Corpus();
  auto index = Build(corpus);
  MateSearch mate(&corpus, index.get());
  DiscoveryOptions options;
  options.k = 1;
  DiscoveryResult result = mate.Discover(MakeQueryD(), {2, 0, 1}, options);
  ASSERT_EQ(result.top_k.size(), 1u);
  EXPECT_EQ(result.top_k[0].table_id, 0u);
  EXPECT_EQ(result.top_k[0].joinability, 5);
}

TEST(MateSearchTest, KEqualsOneReturnsBestOnly) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = Build(corpus);
  MateSearch mate(&corpus, index.get());
  DiscoveryOptions options;
  options.k = 1;
  DiscoveryResult result = mate.Discover(MakeQueryD(), {0, 1, 2}, options);
  ASSERT_EQ(result.top_k.size(), 1u);
  EXPECT_EQ(result.top_k[0].table_id, 0u);
}

TEST(MateSearchTest, ExcludeTablesDropsThem) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = Build(corpus);
  MateSearch mate(&corpus, index.get());
  DiscoveryOptions options;
  options.k = 3;
  options.exclude_tables = {0};
  DiscoveryResult result = mate.Discover(MakeQueryD(), {0, 1, 2}, options);
  ASSERT_FALSE(result.top_k.empty());
  EXPECT_EQ(result.top_k[0].table_id, 1u);
}

TEST(MateSearchTest, RestrictTablesLimitsSearch) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = Build(corpus);
  MateSearch mate(&corpus, index.get());
  DiscoveryOptions options;
  options.k = 3;
  options.restrict_tables = {1, 2};
  DiscoveryResult result = mate.Discover(MakeQueryD(), {0, 1, 2}, options);
  ASSERT_EQ(result.top_k.size(), 1u);
  EXPECT_EQ(result.top_k[0].table_id, 1u);
}

TEST(MateSearchTest, EmptyKeyOrZeroKReturnsNothing) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = Build(corpus);
  MateSearch mate(&corpus, index.get());
  DiscoveryOptions options;
  options.k = 0;
  EXPECT_TRUE(mate.Discover(MakeQueryD(), {0, 1}, options).top_k.empty());
  options.k = 5;
  EXPECT_TRUE(mate.Discover(MakeQueryD(), {}, options).top_k.empty());
}

TEST(MateSearchTest, QueryWithNoIndexedValues) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = Build(corpus);
  MateSearch mate(&corpus, index.get());
  Table q("q");
  q.AddColumn("a");
  q.AddColumn("b");
  (void)q.AppendRow({"zz-not-there", "yy-not-there"});
  DiscoveryOptions options;
  DiscoveryResult result = mate.Discover(q, {0, 1}, options);
  EXPECT_TRUE(result.top_k.empty());
  EXPECT_EQ(result.stats.pl_items_fetched, 0u);
}

TEST(MateSearchTest, StatsAreCoherent) {
  Corpus corpus = MakeFigure1Corpus();
  auto index = Build(corpus);
  MateSearch mate(&corpus, index.get());
  DiscoveryOptions options;
  options.k = 3;
  DiscoveryResult result = mate.Discover(MakeQueryD(), {0, 1, 2}, options);
  const DiscoveryStats& s = result.stats;
  EXPECT_GT(s.pl_items_fetched, 0u);
  EXPECT_GE(s.rows_checked, s.rows_sent_to_verification);
  EXPECT_GE(s.rows_sent_to_verification, s.rows_true_positive);
  EXPECT_GE(s.candidate_tables, result.top_k.size());
  EXPECT_GE(s.runtime_seconds, 0.0);
  EXPECT_LE(s.Precision(), 1.0);
  EXPECT_GE(s.Precision(), 0.0);
}

TEST(MateSearchTest, WorksWithEveryHashFamily) {
  Corpus corpus = MakeFigure1Corpus();
  for (HashFamily family : AllHashFamilies()) {
    auto index = Build(corpus, family);
    MateSearch mate(&corpus, index.get());
    DiscoveryOptions options;
    options.k = 2;
    DiscoveryResult result = mate.Discover(MakeQueryD(), {0, 1, 2}, options);
    ASSERT_GE(result.top_k.size(), 1u) << HashFamilyName(family);
    EXPECT_EQ(result.top_k[0].table_id, 0u) << HashFamilyName(family);
    EXPECT_EQ(result.top_k[0].joinability, 5) << HashFamilyName(family);
  }
}

TEST(MateSearchTest, TableFiltersPreserveTopKScores) {
  // Pruning rules must never change the reported top-k joinabilities.
  Rng rng(123);
  Vocabulary vocab = Vocabulary::Generate(60, Vocabulary::Style::kWords, 5);
  for (int trial = 0; trial < 20; ++trial) {
    Corpus corpus;
    size_t num_tables = 5 + rng.Uniform(10);
    for (size_t t = 0; t < num_tables; ++t) {
      Table table("t" + std::to_string(t));
      size_t cols = 2 + rng.Uniform(3);
      for (size_t c = 0; c < cols; ++c) table.AddColumn("c");
      size_t rows = 2 + rng.Uniform(10);
      for (size_t r = 0; r < rows; ++r) {
        std::vector<std::string> cells;
        for (size_t c = 0; c < cols; ++c) {
          cells.push_back(vocab.word(rng.Uniform(vocab.size())));
        }
        (void)table.AppendRow(std::move(cells));
      }
      corpus.AddTable(std::move(table));
    }
    auto index = Build(corpus);
    Table q("q");
    q.AddColumn("k1");
    q.AddColumn("k2");
    for (int r = 0; r < 6; ++r) {
      (void)q.AppendRow({vocab.word(rng.Uniform(vocab.size())),
                         vocab.word(rng.Uniform(vocab.size()))});
    }
    MateSearch mate(&corpus, index.get());
    DiscoveryOptions filtered, unfiltered;
    filtered.k = unfiltered.k = 3;
    unfiltered.use_table_filters = false;
    DiscoveryResult a = mate.Discover(q, {0, 1}, filtered);
    DiscoveryResult b = mate.Discover(q, {0, 1}, unfiltered);
    ASSERT_EQ(a.top_k.size(), b.top_k.size()) << trial;
    for (size_t i = 0; i < a.top_k.size(); ++i) {
      EXPECT_EQ(a.top_k[i].joinability, b.top_k[i].joinability) << trial;
      EXPECT_EQ(a.top_k[i].table_id, b.top_k[i].table_id) << trial;
    }
  }
}

}  // namespace
}  // namespace mate
