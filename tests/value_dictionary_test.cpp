#include "storage/value_dictionary.h"

#include <gtest/gtest.h>

namespace mate {
namespace {

TEST(ValueDictionaryTest, AssignsDenseIds) {
  ValueDictionary dict;
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);
  EXPECT_EQ(dict.GetOrAdd("b"), 1u);
  EXPECT_EQ(dict.GetOrAdd("c"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(ValueDictionaryTest, GetOrAddIsIdempotent) {
  ValueDictionary dict;
  ValueId a = dict.GetOrAdd("value");
  EXPECT_EQ(dict.GetOrAdd("value"), a);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(ValueDictionaryTest, FindWithoutInsert) {
  ValueDictionary dict;
  dict.GetOrAdd("present");
  EXPECT_EQ(dict.Find("present"), 0u);
  EXPECT_EQ(dict.Find("absent"), kInvalidValueId);
  EXPECT_EQ(dict.size(), 1u);  // Find never inserts
}

TEST(ValueDictionaryTest, ValueOfRoundTrips) {
  ValueDictionary dict;
  ValueId id = dict.GetOrAdd("muhammad");
  dict.GetOrAdd("lee");
  EXPECT_EQ(dict.ValueOf(id), "muhammad");
  EXPECT_EQ(dict.ValueOf(dict.Find("lee")), "lee");
}

TEST(ValueDictionaryTest, PointersSurviveRehash) {
  ValueDictionary dict;
  ValueId first = dict.GetOrAdd("first");
  // Force many rehashes of the underlying map.
  for (int i = 0; i < 10000; ++i) dict.GetOrAdd("v" + std::to_string(i));
  EXPECT_EQ(dict.ValueOf(first), "first");
  EXPECT_EQ(dict.size(), 10001u);
}

TEST(ValueDictionaryTest, EmptyStringIsAValue) {
  ValueDictionary dict;
  ValueId id = dict.GetOrAdd("");
  EXPECT_EQ(dict.Find(""), id);
  EXPECT_EQ(dict.ValueOf(id), "");
}

TEST(ValueDictionaryTest, MemoryBytesGrows) {
  ValueDictionary dict;
  size_t empty = dict.MemoryBytes();
  for (int i = 0; i < 100; ++i) dict.GetOrAdd("value" + std::to_string(i));
  EXPECT_GT(dict.MemoryBytes(), empty);
}

}  // namespace
}  // namespace mate
