#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mate {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int order = 0;
  pool.Submit([&] { EXPECT_EQ(order++, 0); });
  // Inline mode completed before Submit returned.
  EXPECT_EQ(order, 1);
  pool.Wait();
}

TEST(ThreadPoolTest, ZeroResolvesToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  const size_t n = 500;
  std::vector<std::atomic<int>> hits(n);
  {
    ThreadPool pool(4);
    for (size_t i = 0; i < n; ++i) {
      pool.Submit([&hits, i] { hits[i].fetch_add(1); });
    }
    pool.Wait();
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, WaitThenReuse) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 50);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No Wait(): the destructor must drain before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  const size_t n = 300;
  std::vector<std::atomic<int>> hits(n);
  ThreadPool::ParallelFor(4, n, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForEmptyAndSerial) {
  ThreadPool::ParallelFor(4, 0, [](size_t) { FAIL(); });
  std::vector<int> order;
  // Serial ParallelFor preserves submission order (inline execution).
  ThreadPool::ParallelFor(1, 5, [&order](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, StealingKeepsWorkersBusyWithUnevenTasks) {
  // One long task on one queue, many short ones: total work must finish
  // even though round-robin parks short tasks behind long ones.
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done, i] {
        if (i % 16 == 0) {
          volatile uint64_t x = 0;
          for (int spin = 0; spin < 2000000; ++spin) x = x + spin;
        }
        done.fetch_add(1);
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(done.load(), 64);
}

// ---- Latch (the readiness primitive behind phased Session::Open) ------

TEST(LatchTest, TryWaitTracksTheCount) {
  Latch latch(2);
  EXPECT_FALSE(latch.TryWait());
  latch.CountDown();
  EXPECT_FALSE(latch.TryWait());
  latch.CountDown();
  EXPECT_TRUE(latch.TryWait());
  latch.CountDown();  // saturates at zero, no underflow
  EXPECT_TRUE(latch.TryWait());
  latch.Wait();  // returns immediately at zero
}

TEST(LatchTest, ZeroCountIsImmediatelyOpen) {
  Latch latch(0);
  EXPECT_TRUE(latch.TryWait());
  latch.Wait();
}

TEST(LatchTest, WaitersObserveWritesMadeBeforeCountDown) {
  // The Session readiness pattern: a loader publishes a value, counts the
  // latch down, and many waiters read the value after Wait. TSan verifies
  // the happens-before edge.
  Latch latch(1);
  int payload = 0;
  std::atomic<int> seen{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&] {
        latch.Wait();
        if (payload == 42) seen.fetch_add(1);
      });
    }
    payload = 42;
    latch.CountDown();
    pool.Wait();
  }
  EXPECT_EQ(seen.load(), 8);
}

}  // namespace
}  // namespace mate
